package isrl

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"isrl/client"
	"isrl/internal/core"
	"isrl/internal/ea"
	"isrl/internal/netfault"
	"isrl/internal/obs"
	"isrl/internal/server"
	"isrl/internal/wal"
)

// chaosServer builds a journaled server over an EA factory with fixed seeds,
// so two instances given the same answer sequence produce byte-identical
// results.
func chaosServer(t *testing.T, dir string) (*server.Server, *wal.Log) {
	t.Helper()
	ds := chaosDataset()
	j, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed int64) core.Algorithm {
		return ea.New(ds, 0.1, ea.Config{}, rand.New(rand.NewSource(seed)))
	}
	return server.New(ds, 0.1, factory,
		server.WithJournal(j), server.WithSessionSeed(11)), j
}

// chaosSessions is how many back-to-back EA sessions each run drives. One
// session is only a handful of connections; several keep the proxy busy
// enough that a 25% fault rate is guaranteed to bite.
const chaosSessions = 8

// chaosRun drives chaosSessions full EA sessions through the resilient
// client and returns their final results, JSON-marshaled in order for byte
// comparison. Different simulated users per session exercise distinct
// question paths.
func chaosRun(t *testing.T, base string, hc *http.Client) []byte {
	t.Helper()
	c := client.New(base,
		client.WithHTTPClient(hc),
		client.WithRegistry(obs.NewRegistry()),
		client.WithAttempts(15),
		client.WithPerTryTimeout(3*time.Second),
		client.WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		client.WithJitterSeed(3),
		client.WithBreaker(6, 50*time.Millisecond))
	users := [][]float64{
		{0.2, 0.5, 0.3}, {0.7, 0.1, 0.2}, {0.1, 0.1, 0.8}, {0.4, 0.4, 0.2},
		{0.9, 0.05, 0.05}, {0.3, 0.3, 0.4}, {0.05, 0.9, 0.05}, {0.5, 0.25, 0.25},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out bytes.Buffer
	for i := 0; i < chaosSessions; i++ {
		truth := core.SimulatedUser{Utility: users[i%len(users)]}
		res, err := c.Run(ctx, func(q client.Question) bool {
			return truth.Prefer(q.First, q.Second)
		})
		if err != nil {
			t.Fatalf("session %d through client failed: %v", i, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(data)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestChaosClientProxyExactlyOnce is the acceptance test for the
// exactly-once protocol: a seeded netfault plan kills 20% of connections
// mid-response (plus 5% dropped outright), and the retrying client must
// still deliver a final result byte-identical to a fault-free run — with
// zero double-applied rounds in the WAL.
func TestChaosClientProxyExactlyOnce(t *testing.T) {
	// Baseline: fault-free run straight at the server.
	cleanDir := t.TempDir()
	cleanSrv, cleanJ := chaosServer(t, cleanDir)
	cleanTS := httptest.NewServer(cleanSrv)
	want := chaosRun(t, cleanTS.URL, &http.Client{Transport: &http.Transport{DisableKeepAlives: true}})
	cleanTS.Close()
	cleanJ.Close()

	// Chaos: same server configuration behind the fault proxy.
	chaosDir := t.TempDir()
	chaosSrv, chaosJ := chaosServer(t, chaosDir)
	chaosTS := httptest.NewServer(chaosSrv)
	defer chaosTS.Close()
	tu, err := url.Parse(chaosTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netfault.ParsePlan("drop=0.05,kill=0.20")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netfault.New(tu.Host, plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Keep-alives off: one request per connection, in protocol order, so the
	// seeded fate sequence is a deterministic schedule, not a race.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	got := chaosRun(t, "http://"+proxy.Addr(), hc)

	if !bytes.Equal(got, want) {
		t.Errorf("result under chaos differs from fault-free run:\n chaos: %s\n clean: %s", got, want)
	}
	injected := 0
	for _, f := range proxy.Fates() {
		if f != 0 { // fatePass
			injected++
		}
	}
	if injected == 0 {
		t.Fatalf("proxy injected no faults across %d connections; the chaos plan never armed", len(proxy.Fates()))
	}
	t.Logf("proxy: %d connections, %d faulted", len(proxy.Fates()), injected)

	// The exactly-once audit: raw journaled answer rounds for the session
	// must be strictly increasing with no duplicates — a double-applied
	// retry would journal the same round twice.
	chaosJ.Close()
	recs, err := wal.Records(chaosDir)
	if err != nil {
		t.Fatal(err)
	}
	creates := 0
	lastRound := map[string]int{}
	for _, r := range recs {
		switch r.Kind {
		case wal.KindCreate:
			creates++
			if r.IdemKey == "" {
				t.Errorf("create for %s journaled without its idempotency key", r.ID)
			}
		case wal.KindAnswer:
			if r.Round != lastRound[r.ID]+1 {
				t.Errorf("journaled answer rounds for %s not strictly increasing: %d after %d (a double-applied retry?)",
					r.ID, r.Round, lastRound[r.ID])
			}
			lastRound[r.ID] = r.Round
		}
	}
	if creates != chaosSessions {
		t.Errorf("journal holds %d create records, want %d (idempotent create leaked sessions)", creates, chaosSessions)
	}
}
