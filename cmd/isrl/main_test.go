package main

import (
	"bufio"
	"math"
	"math/rand"
	"strings"
	"testing"

	"isrl/internal/dataset"
)

func TestParseUtility(t *testing.T) {
	u, err := parseUtility("0.5, 0.3, 0.2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[2]-0.2) > 1e-12 {
		t.Errorf("u = %v", u)
	}
	// Normalization.
	u, err = parseUtility("2,1,1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]-0.5) > 1e-12 {
		t.Errorf("unnormalized parse: %v", u)
	}
	for _, bad := range []string{"1,2", "a,b,c", "-1,1,1", "0,0,0"} {
		if _, err := parseUtility(bad, 3); err == nil {
			t.Errorf("parseUtility(%q) should fail", bad)
		}
	}
}

func TestLoadDataKinds(t *testing.T) {
	for _, kind := range []string{"anti", "indep", "corr"} {
		ds, err := loadData("", kind, 200, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ds.Len() == 0 || ds.Dim() != 3 {
			t.Errorf("%s: shape %dx%d", kind, ds.Len(), ds.Dim())
		}
	}
	if _, err := loadData("", "nope", 10, 2, 1); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := loadData("/does/not/exist.csv", "", 0, 0, 1); err == nil {
		t.Error("missing csv must fail")
	}
}

func TestBuildAlgorithmNames(t *testing.T) {
	ds, err := loadData("", "anti", 200, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"ea", "aa", "uh-random", "uh-simplex", "singlepass", "utilityapprox", "adaptive"} {
		alg, err := buildAlgorithm(name, ds, 0.1, 0, "", rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg == nil {
			t.Fatalf("%s: nil algorithm", name)
		}
	}
	if _, err := buildAlgorithm("nope", ds, 0.1, 0, "", rng); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if _, err := buildAlgorithm("ea", ds, 0.1, 0, "/missing.model", rng); err == nil {
		t.Error("missing model must fail")
	}
}

func TestConsoleUserAnswers(t *testing.T) {
	ds := &dataset.Dataset{Points: [][]float64{{0.2, 0.8}, {0.9, 0.1}}, Attrs: []string{"x", "y"}}
	cu := &consoleUser{ds: ds, in: bufio.NewReader(strings.NewReader("junk\n2\n1\n"))}
	if cu.Prefer(ds.Points[0], ds.Points[1]) {
		t.Error("answer 2 must map to preferring the second point")
	}
	if !cu.Prefer(ds.Points[0], ds.Points[1]) {
		t.Error("answer 1 must map to preferring the first point")
	}
	// EOF falls back to 1 so sessions terminate.
	if !cu.Prefer(ds.Points[0], ds.Points[1]) {
		t.Error("EOF must default to the first point")
	}
}

func TestFormatPoint(t *testing.T) {
	ds := &dataset.Dataset{Points: [][]float64{{0.25, 0.75}}, Attrs: []string{"price"}}
	got := formatPoint(ds, ds.Points[0])
	if !strings.Contains(got, "price=0.250") || !strings.Contains(got, "a2=0.750") {
		t.Errorf("formatPoint = %q", got)
	}
}
