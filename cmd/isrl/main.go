// Command isrl runs an interactive regret-query session: it asks you (or a
// simulated user) to choose between pairs of tuples until a tuple close to
// your favorite can be returned.
//
// Usage:
//
//	isrl -data car -algo ea -eps 0.1             # interactive, console answers
//	isrl -data anti -n 5000 -d 4 -algo aa        # synthetic data
//	isrl -data car -simulate "0.5,0.3,0.2"       # scripted user for demos
//	isrl -data car -algo ea -model ea.model      # use a pre-trained agent
//
// Without -model, the RL algorithms train in-process before the session
// starts (a few seconds at the default -episodes).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"isrl/client"
	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
)

func main() {
	var (
		data     = flag.String("data", "car", "anti, indep, corr, car, player (ignored with -csv)")
		csvPath  = flag.String("csv", "", "interact over a CSV dataset")
		n        = flag.Int("n", 10000, "synthetic dataset size")
		d        = flag.Int("d", 4, "synthetic dimensionality")
		algo     = flag.String("algo", "ea", "ea, aa, uh-random, uh-simplex, singlepass, utilityapprox, adaptive")
		eps      = flag.Float64("eps", 0.1, "regret-ratio threshold")
		episodes = flag.Int("episodes", 300, "in-process training episodes for ea/aa (0 = untrained)")
		model    = flag.String("model", "", "pre-trained model file from isrl-train")
		seed     = flag.Int64("seed", 1, "random seed")
		simulate = flag.String("simulate", "", "comma-separated utility vector for a simulated user")
		remote   = flag.String("server", "", "drive a session on a running isrl-serve instead of in-process (e.g. http://localhost:8080)")
	)
	flag.Parse()

	if *remote != "" {
		runRemote(*remote, *simulate)
		return
	}

	ds, err := loadData(*csvPath, *data, *n, *d, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("Dataset: %s — %d candidate tuples (skyline), %d attributes.\n", ds.Name, ds.Len(), ds.Dim())

	rng := rand.New(rand.NewSource(*seed))
	alg, err := buildAlgorithm(*algo, ds, *eps, *episodes, *model, rng)
	if err != nil {
		fatalf("%v", err)
	}

	var user core.User
	var hidden []float64
	if *simulate != "" {
		hidden, err = parseUtility(*simulate, ds.Dim())
		if err != nil {
			fatalf("%v", err)
		}
		user = core.SimulatedUser{Utility: hidden}
		fmt.Printf("Simulated user with utility vector %v.\n", hidden)
	} else {
		user = &consoleUser{ds: ds, in: bufio.NewReader(os.Stdin)}
		fmt.Println("Answer each question with 1 or 2 (your preferred option).")
	}

	res, err := alg.Run(ds, user, *eps, nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\nDone after %d questions. Recommended tuple:\n", res.Rounds)
	printTuple(ds, res.PointIndex)
	if hidden != nil {
		fmt.Printf("Actual regret ratio: %.4f (threshold %.2f)\n", ds.RegretRatio(res.Point, hidden), *eps)
	}
}

// runRemote drives a session on a running isrl-serve through the resilient
// client SDK: the dataset, algorithm and training flags are the server's
// business; this side only answers questions. Retries, backoff and the
// exactly-once round protocol all live inside the client package.
func runRemote(base, simulate string) {
	c := client.New(base)
	in := bufio.NewReader(os.Stdin)
	var hidden []float64
	round := 0
	if simulate == "" {
		fmt.Println("Answer each question with 1 or 2 (your preferred option).")
	}
	res, err := c.Run(context.Background(), func(q client.Question) bool {
		if simulate != "" {
			if hidden == nil {
				var perr error
				hidden, perr = parseUtility(simulate, len(q.First))
				if perr != nil {
					fatalf("%v", perr)
				}
				fmt.Printf("Simulated user with utility vector %v.\n", hidden)
			}
			return core.SimulatedUser{Utility: hidden}.Prefer(q.First, q.Second)
		}
		round++
		fmt.Printf("\nQuestion %d — which do you prefer?\n", round)
		fmt.Printf("  [1] %s\n", formatRemote(q.Attrs, q.First))
		fmt.Printf("  [2] %s\n", formatRemote(q.Attrs, q.Second))
		for {
			fmt.Print("> ")
			line, err := in.ReadString('\n')
			if err != nil {
				fmt.Println("(input closed; choosing 1)")
				return true
			}
			switch strings.TrimSpace(line) {
			case "1":
				return true
			case "2":
				return false
			}
			fmt.Println("Please answer 1 or 2.")
		}
	})
	if err != nil {
		fatalf("remote session: %v", err)
	}
	fmt.Printf("\nDone after %d questions. Recommended tuple:\n", res.Rounds)
	fmt.Printf("  #%d: %s\n", res.PointIndex, formatRemote(nil, res.Point))
	if res.Degraded {
		fmt.Printf("(degraded result: %s)\n", res.DegradedReason)
	}
}

// formatRemote renders one tuple with the attribute names the server sent.
func formatRemote(attrs []string, p []float64) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteString("  ")
		}
		name := fmt.Sprintf("a%d", i+1)
		if i < len(attrs) {
			name = attrs[i]
		}
		fmt.Fprintf(&b, "%s=%.3f", name, v)
	}
	return b.String()
}

func loadData(csvPath, kind string, n, d int, seed int64) (*dataset.Dataset, error) {
	if csvPath != "" {
		ds, err := dataset.LoadFile(csvPath)
		if err != nil {
			return nil, err
		}
		return ds.Skyline(), nil
	}
	ds, err := dataset.Generate(kind, rand.New(rand.NewSource(seed)), n, d)
	if err != nil {
		return nil, err
	}
	return ds.Skyline(), nil
}

func buildAlgorithm(name string, ds *dataset.Dataset, eps float64, episodes int, modelPath string, rng *rand.Rand) (core.Algorithm, error) {
	trainUsers := func() [][]float64 {
		users := make([][]float64, episodes)
		for i := range users {
			users[i] = geom.SampleSimplex(rng, ds.Dim())
		}
		return users
	}
	switch name {
	case "ea":
		if modelPath != "" {
			blob, err := os.ReadFile(modelPath)
			if err != nil {
				return nil, err
			}
			return ea.Load(ds, eps, ea.Config{}, blob, rng)
		}
		e := ea.New(ds, eps, ea.Config{}, rng)
		if episodes > 0 {
			fmt.Printf("Training EA on %d simulated users...\n", episodes)
			if _, err := e.Train(trainUsers()); err != nil {
				return nil, err
			}
		}
		return e, nil
	case "aa":
		if modelPath != "" {
			blob, err := os.ReadFile(modelPath)
			if err != nil {
				return nil, err
			}
			return aa.Load(ds, eps, aa.Config{}, blob, rng)
		}
		a := aa.New(ds, eps, aa.Config{}, rng)
		if episodes > 0 {
			fmt.Printf("Training AA on %d simulated users...\n", episodes)
			if _, err := a.Train(trainUsers()); err != nil {
				return nil, err
			}
		}
		return a, nil
	case "uh-random":
		return baselines.NewUHRandom(baselines.UHConfig{}, rng), nil
	case "uh-simplex":
		return baselines.NewUHSimplex(baselines.UHConfig{}, rng), nil
	case "singlepass":
		return baselines.NewSinglePass(baselines.SinglePassConfig{}, rng), nil
	case "utilityapprox":
		return baselines.NewUtilityApprox(baselines.UtilityApproxConfig{}), nil
	case "adaptive":
		return baselines.NewAdaptive(baselines.AdaptiveConfig{}, rng), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func parseUtility(s string, d int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("utility vector needs %d components, got %d", d, len(parts))
	}
	u := make([]float64, d)
	var sum float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i+1, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("component %d is negative", i+1)
		}
		u[i] = v
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("utility vector sums to zero")
	}
	for i := range u {
		u[i] /= sum
	}
	return u, nil
}

// consoleUser asks the human at the terminal.
type consoleUser struct {
	ds    *dataset.Dataset
	in    *bufio.Reader
	round int
}

// Prefer implements core.User.
func (c *consoleUser) Prefer(pi, pj []float64) bool {
	c.round++
	fmt.Printf("\nQuestion %d — which do you prefer?\n", c.round)
	fmt.Printf("  [1] %s\n", formatPoint(c.ds, pi))
	fmt.Printf("  [2] %s\n", formatPoint(c.ds, pj))
	for {
		fmt.Print("> ")
		line, err := c.in.ReadString('\n')
		if err != nil {
			// EOF or closed stdin: fall back to option 1 so the session
			// terminates instead of spinning.
			fmt.Println("(input closed; choosing 1)")
			return true
		}
		switch strings.TrimSpace(line) {
		case "1":
			return true
		case "2":
			return false
		}
		fmt.Println("Please answer 1 or 2.")
	}
}

func formatPoint(ds *dataset.Dataset, p []float64) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteString("  ")
		}
		name := fmt.Sprintf("a%d", i+1)
		if i < len(ds.Attrs) {
			name = ds.Attrs[i]
		}
		fmt.Fprintf(&b, "%s=%.3f", name, v)
	}
	return b.String()
}

func printTuple(ds *dataset.Dataset, idx int) {
	fmt.Printf("  #%d: %s\n", idx, formatPoint(ds, ds.Points[idx]))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl: "+format+"\n", args...)
	os.Exit(1)
}
