// Command isrl-serve runs the interactive regret query as a JSON/HTTP
// service — the deployment shape of the paper's motivating scenario (a
// database system helping users find their favorite tuple).
//
// Usage:
//
//	isrl-serve -data car -algo ea -episodes 500 -addr :8080
//	curl -X POST localhost:8080/sessions
//	curl -X POST localhost:8080/sessions/s1/answer -d '{"prefer_first":true}'
//	curl localhost:8080/sessions/s1
//
// Each answered question narrows the session's utility range; when the
// ε-guarantee is met the response carries the recommended tuple.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"

	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
	"isrl/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "car", "anti, indep, corr, car, player (ignored with -csv)")
		csvPath  = flag.String("csv", "", "serve a CSV dataset")
		n        = flag.Int("n", 10000, "synthetic dataset size")
		d        = flag.Int("d", 4, "synthetic dimensionality")
		algo     = flag.String("algo", "ea", "ea, aa, uh-random, uh-simplex")
		eps      = flag.Float64("eps", 0.1, "regret-ratio threshold")
		episodes = flag.Int("episodes", 500, "training episodes for ea/aa")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	ds, err := loadData(*csvPath, *data, *n, *d, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("dataset: %d skyline tuples, d=%d", ds.Len(), ds.Dim())

	factory, err := buildFactory(*algo, ds, *eps, *episodes, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	srv := server.New(ds, *eps, factory)
	log.Printf("serving interactive search on %s (algo=%s eps=%.2f)", *addr, *algo, *eps)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatalf("%v", err)
	}
}

func loadData(csvPath, kind string, n, d int, seed int64) (*dataset.Dataset, error) {
	if csvPath != "" {
		ds, err := dataset.LoadFile(csvPath)
		if err != nil {
			return nil, err
		}
		return ds.Skyline(), nil
	}
	ds, err := dataset.Generate(kind, rand.New(rand.NewSource(seed)), n, d)
	if err != nil {
		return nil, err
	}
	return ds.Skyline(), nil
}

// buildFactory trains RL agents once up front and hands each session its
// own algorithm instance (the RL agents keep per-call scratch state, so
// sessions get independent handles; baselines are cheap to rebuild).
func buildFactory(algo string, ds *dataset.Dataset, eps float64, episodes int, seed int64) (server.AlgorithmFactory, error) {
	rng := rand.New(rand.NewSource(seed))
	trainVectors := func() [][]float64 {
		users := make([][]float64, episodes)
		for i := range users {
			users[i] = geom.SampleSimplex(rng, ds.Dim())
		}
		return users
	}
	switch algo {
	case "ea":
		log.Printf("training EA on %d simulated users...", episodes)
		e := ea.New(ds, eps, ea.Config{}, rng)
		if episodes > 0 {
			if _, err := e.Train(trainVectors()); err != nil {
				return nil, err
			}
		}
		blob, err := e.Agent().MarshalBinary()
		if err != nil {
			return nil, err
		}
		var ctr atomic.Int64
		return func() core.Algorithm {
			inst, err := ea.Load(ds, eps, ea.Config{}, blob, rand.New(rand.NewSource(seed+ctr.Add(1))))
			if err != nil {
				panic(fmt.Sprintf("isrl-serve: reload trained agent: %v", err))
			}
			return inst
		}, nil
	case "aa":
		log.Printf("training AA on %d simulated users...", episodes)
		a := aa.New(ds, eps, aa.Config{}, rng)
		if episodes > 0 {
			if _, err := a.Train(trainVectors()); err != nil {
				return nil, err
			}
		}
		blob, err := a.Agent().MarshalBinary()
		if err != nil {
			return nil, err
		}
		var ctr atomic.Int64
		return func() core.Algorithm {
			inst, err := aa.Load(ds, eps, aa.Config{}, blob, rand.New(rand.NewSource(seed+ctr.Add(1))))
			if err != nil {
				panic(fmt.Sprintf("isrl-serve: reload trained agent: %v", err))
			}
			return inst
		}, nil
	case "uh-random":
		var ctr atomic.Int64
		return func() core.Algorithm {
			return baselines.NewUHRandom(baselines.UHConfig{}, rand.New(rand.NewSource(seed+ctr.Add(1))))
		}, nil
	case "uh-simplex":
		var ctr atomic.Int64
		return func() core.Algorithm {
			return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(seed+ctr.Add(1))))
		}, nil
	}
	return nil, fmt.Errorf("unknown -algo %q", algo)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-serve: "+format+"\n", args...)
	os.Exit(1)
}
