// Command isrl-serve runs the interactive regret query as a JSON/HTTP
// service — the deployment shape of the paper's motivating scenario (a
// database system helping users find their favorite tuple).
//
// Usage:
//
//	isrl-serve -data car -algo ea -episodes 500 -addr :8080
//	curl -X POST localhost:8080/sessions
//	curl -X POST localhost:8080/sessions/s1/answer \
//	     -H "Content-Type: application/json" -d '{"prefer_first":true}'
//	curl localhost:8080/sessions/s1
//	curl localhost:8080/metrics        # counters, gauges, latency quantiles
//	curl localhost:8080/healthz        # liveness probe
//
// Each answered question narrows the session's utility range; when the
// ε-guarantee is met the response carries the recommended tuple.
//
// Observability: requests are logged through log/slog (text or JSON via
// -log-json; per-request lines at -log-level=debug), metrics accumulate in
// the process-wide obs registry exported at /metrics, idle sessions are
// swept after -session-ttl, and -debug-addr exposes net/http/pprof on a
// separate listener that is never reachable from the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (debug listener only)
	"os"
	"os/signal"
	"syscall"
	"time"

	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/fault"
	"isrl/internal/geom"
	"isrl/internal/obs"
	"isrl/internal/repl"
	"isrl/internal/rl"
	"isrl/internal/server"
	"isrl/internal/trace"
	"isrl/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "pprof/debug listen address (disabled when empty)")
		data        = flag.String("data", "car", "anti, indep, corr, car, player (ignored with -csv)")
		csvPath     = flag.String("csv", "", "serve a CSV dataset")
		n           = flag.Int("n", 10000, "synthetic dataset size")
		d           = flag.Int("d", 4, "synthetic dimensionality")
		algo        = flag.String("algo", "ea", "ea, aa, uh-random, uh-simplex")
		eps         = flag.Float64("eps", 0.1, "regret-ratio threshold")
		episodes    = flag.Int("episodes", 500, "training episodes for ea/aa")
		seed        = flag.Int64("seed", 1, "random seed")
		sessionTTL  = flag.Duration("session-ttl", server.DefaultSessionTTL, "evict sessions idle longer than this (0 disables)")
		deadline    = flag.Duration("answer-deadline", server.DefaultAnswerDeadline, "max wait for the next question before 503 (0 waits forever)")
		stateDir    = flag.String("state-dir", "", "write-ahead journal directory; restarts recover in-flight sessions (empty disables)")
		scrubEvery  = flag.Duration("scrub-every", 5*time.Minute, "background scrub interval for sealed journal segments; also paces the anti-entropy digest exchange on a primary (0 disables)")
		scrubRate   = flag.Int64("scrub-rate", 8<<20, "scrub read budget in bytes/sec (0 removes the limit)")
		maxSessions = flag.Int("max-sessions", 0, "admission cap on live sessions; at capacity POST /sessions returns 429 (0 disables)")
		answerQueue = flag.Int("answer-queue", server.DefaultAnswerQueue, "bounded answer-work queue size; excess requests shed with 503 (0 disables)")
		shutGrace   = flag.Duration("shutdown-grace", 10*time.Second, "on SIGTERM, let in-flight sessions finish for up to this long before journaling expiry tombstones")
		replTarget  = flag.String("replicate-to", "", "run as primary: stream the journal to the follower at host:port (requires -state-dir)")
		followAddr  = flag.String("follow", "", "run as follower: listen for a primary's journal stream on this address (requires -state-dir)")
		promAfter   = flag.Duration("promote-after", 10*time.Second, "follower only: promote to primary after this much stream silence (0 disables auto-promotion)")
		replToken   = flag.String("repl-token", "", "shared secret for the replication link; a follower drops handshakes without it (empty disables)")
		faultSpec   = flag.String("fault", "", "fault-injection plan, e.g. 'lp.solve:err=0.01;geom.vertices:panic=0.001' (testing only)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the fault-injection plan")
		logLevel    = flag.String("log-level", "info", "debug, info, warn, error")
		logJSON     = flag.Bool("log-json", false, "emit JSON logs instead of text")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of sessions traced to /debug/traces (0 disables tracing)")
		traceSlow   = flag.Duration("trace-slow", 0, "log traces slower than this and pin them in the slow reservoir (0 disables)")
		traceBuffer = flag.Int("trace-buffer", trace.DefaultBufferSize, "completed traces kept in the /debug/traces ring")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logJSON)
	if err != nil {
		fatalf("%v", err)
	}
	slog.SetDefault(logger)

	if *replTarget != "" && *followAddr != "" {
		fatalf("-replicate-to and -follow are mutually exclusive: a node is a primary or a follower, not both")
	}
	if (*replTarget != "" || *followAddr != "") && *stateDir == "" {
		fatalf("replication ships the write-ahead journal; -replicate-to/-follow require -state-dir")
	}

	if *faultSpec != "" {
		plan, err := fault.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			fatalf("%v", err)
		}
		fault.Install(plan)
		logger.Warn("fault injection active", "plan", plan.String(), "seed", *faultSeed)
	}

	ds, err := loadData(*csvPath, *data, *n, *d, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	logger.Info("dataset loaded", "skyline_tuples", ds.Len(), "dim", ds.Dim())

	factory, err := buildFactory(*algo, ds, *eps, *episodes, *seed, logger)
	if err != nil {
		fatalf("%v", err)
	}
	srvOpts := []server.Option{
		server.WithLogger(logger),
		server.WithSessionTTL(*sessionTTL),
		server.WithAnswerDeadline(*deadline),
		server.WithSessionSeed(*seed),
		server.WithMaxSessions(*maxSessions),
		server.WithAnswerQueue(*answerQueue),
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Options{
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			BufferSize:    *traceBuffer,
			Logger:        logger,
		})
		srvOpts = append(srvOpts, server.WithTracer(tracer))
		logger.Info("session tracing enabled", "sample", *traceSample, "buffer", *traceBuffer, "slow", *traceSlow)
	}
	var journal *wal.Log
	var recoveredStates []wal.SessionState
	if *stateDir != "" {
		journal, recoveredStates, err = wal.Open(*stateDir, wal.Options{Logger: logger})
		if err != nil {
			fatalf("open journal: %v", err)
		}
		defer journal.Close()
		srvOpts = append(srvOpts, server.WithJournal(journal))
	}
	var node *repl.Node
	switch {
	case *replTarget != "":
		node = repl.NewPrimary(journal, *replTarget, repl.Options{
			Seed: *seed, Logger: logger, Tracer: tracer, Token: *replToken,
			DigestEvery: *scrubEvery,
		})
		srvOpts = append(srvOpts, server.WithReplication(node))
		logger.Info("replication primary", "target", *replTarget, "epoch", journal.Epoch())
	case *followAddr != "":
		node, err = repl.NewFollower(journal, *followAddr, repl.Options{
			Seed: *seed, Logger: logger, Tracer: tracer, PromoteAfter: *promAfter, Token: *replToken,
		})
		if err != nil {
			fatalf("%v", err)
		}
		srvOpts = append(srvOpts, server.WithReplication(node))
		logger.Info("replication follower", "listen", node.Addr(),
			"promote_after", *promAfter, "epoch", journal.Epoch())
	}
	srv := server.New(ds, *eps, factory, srvOpts...)
	switch {
	case node != nil && node.Role() == "follower":
		// A follower keeps its journal warm but runs no live sessions (every
		// session route sheds 503 until promotion); promotion rebuilds them
		// from a consistent snapshot through the same recovery path a
		// restart uses.
		node.OnPromote(func(epoch uint64, states []wal.SessionState) {
			n := srv.Recover(states)
			logger.Warn("promoted to primary; serving", "epoch", epoch,
				"journaled_sessions", len(states), "recovered", n)
		})
	case journal != nil:
		n := srv.Recover(recoveredStates)
		logger.Info("journal recovery complete", "dir", *stateDir,
			"journaled_sessions", len(recoveredStates), "recovered", n)
	}
	if node != nil {
		node.Start()
		defer node.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if journal != nil && *scrubEvery > 0 {
		go journal.ScrubLoop(ctx, *scrubEvery, *scrubRate)
		logger.Info("journal scrubber running", "every", *scrubEvery, "rate_bytes_per_s", *scrubRate)
	}

	if *debugAddr != "" {
		// net/http/pprof registered itself on the DefaultServeMux; serve it
		// (plus a text metrics dump) on the private debug listener only.
		http.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.Default().WriteText(w)
		})
		dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux}
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "err", err)
			}
		}()
		defer dbg.Close()
	}

	if *sessionTTL > 0 {
		go sweeper(ctx, srv, *sessionTTL)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving interactive search", "addr", *addr, "algo", *algo, "eps", *eps, "session_ttl", *sessionTTL)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining")
		// Drain first: new creates shed with 503 + Retry-After while in-flight
		// rounds keep answering for up to the grace. Sessions still alive when
		// it expires get journaled expiry tombstones, so a later restart
		// recovers them instead of silently losing their answer prefix.
		expired := srv.Drain(*shutGrace)
		if expired > 0 {
			logger.Warn("drain grace expired", "sessions_tombstoned", expired)
		}
		sctx, cancel := context.WithTimeout(context.Background(), *shutGrace+10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}

// buildLogger constructs the process logger from the CLI flags.
func buildLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

// sweeper periodically evicts idle sessions so a server with no traffic
// still reclaims abandoned algorithm goroutines.
func sweeper(ctx context.Context, srv *server.Server, ttl time.Duration) {
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			srv.Sweep()
		}
	}
}

func loadData(csvPath, kind string, n, d int, seed int64) (*dataset.Dataset, error) {
	if csvPath != "" {
		ds, err := dataset.LoadFile(csvPath)
		if err != nil {
			return nil, err
		}
		return ds.Skyline(), nil
	}
	ds, err := dataset.Generate(kind, rand.New(rand.NewSource(seed)), n, d)
	if err != nil {
		return nil, err
	}
	return ds.Skyline(), nil
}

// publishTraining pushes a finished training run into the default obs
// registry so /metrics reports DQN state alongside the serving metrics.
func publishTraining(episodes int, avgRounds float64, stats rl.TrainStats) {
	reg := obs.Default()
	reg.Gauge("train.episodes").Set(int64(episodes))
	reg.FloatGauge("train.avg_rounds").Set(avgRounds)
	stats.Publish(reg)
}

// buildFactory trains RL agents once up front and hands each session its
// own algorithm instance (the RL agents keep per-call scratch state, so
// sessions get independent handles; baselines are cheap to rebuild). The
// per-session seed comes from the server, which journals it: rebuilding an
// instance with the same seed after a restart reproduces the identical
// question sequence, the property session replay recovery rests on.
func buildFactory(algo string, ds *dataset.Dataset, eps float64, episodes int, seed int64, logger *slog.Logger) (server.AlgorithmFactory, error) {
	rng := rand.New(rand.NewSource(seed))
	trainVectors := func() [][]float64 {
		users := make([][]float64, episodes)
		for i := range users {
			users[i] = geom.SampleSimplex(rng, ds.Dim())
		}
		return users
	}
	switch algo {
	case "ea":
		logger.Info("training EA", "episodes", episodes)
		e := ea.New(ds, eps, ea.Config{}, rng)
		if episodes > 0 {
			st, err := e.Train(trainVectors())
			if err != nil {
				return nil, err
			}
			logger.Info("EA trained", "avg_rounds", st.AvgRounds,
				"loss_ema", st.RL.LossEMA, "updates", st.RL.Updates, "target_syncs", st.RL.TargetSyncs)
			publishTraining(st.Episodes, st.AvgRounds, st.RL)
		}
		blob, err := e.Agent().MarshalBinary()
		if err != nil {
			return nil, err
		}
		return func(sessionSeed int64) core.Algorithm {
			inst, err := ea.Load(ds, eps, ea.Config{}, blob, rand.New(rand.NewSource(sessionSeed)))
			if err != nil {
				panic(fmt.Sprintf("isrl-serve: reload trained agent: %v", err))
			}
			return inst
		}, nil
	case "aa":
		logger.Info("training AA", "episodes", episodes)
		a := aa.New(ds, eps, aa.Config{}, rng)
		if episodes > 0 {
			st, err := a.Train(trainVectors())
			if err != nil {
				return nil, err
			}
			logger.Info("AA trained", "avg_rounds", st.AvgRounds,
				"loss_ema", st.RL.LossEMA, "updates", st.RL.Updates, "target_syncs", st.RL.TargetSyncs)
			publishTraining(st.Episodes, st.AvgRounds, st.RL)
		}
		blob, err := a.Agent().MarshalBinary()
		if err != nil {
			return nil, err
		}
		return func(sessionSeed int64) core.Algorithm {
			inst, err := aa.Load(ds, eps, aa.Config{}, blob, rand.New(rand.NewSource(sessionSeed)))
			if err != nil {
				panic(fmt.Sprintf("isrl-serve: reload trained agent: %v", err))
			}
			return inst
		}, nil
	case "uh-random":
		return func(sessionSeed int64) core.Algorithm {
			return baselines.NewUHRandom(baselines.UHConfig{}, rand.New(rand.NewSource(sessionSeed)))
		}, nil
	case "uh-simplex":
		return func(sessionSeed int64) core.Algorithm {
			return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(sessionSeed)))
		}, nil
	}
	return nil, fmt.Errorf("unknown -algo %q", algo)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-serve: "+format+"\n", args...)
	os.Exit(1)
}
