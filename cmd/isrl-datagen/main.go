// Command isrl-datagen writes datasets to CSV for use with the other tools.
//
// Usage:
//
//	isrl-datagen -kind anti -n 100000 -d 4 -out anti4d.csv
//	isrl-datagen -kind player -skyline -out player.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"isrl/internal/dataset"
)

func main() {
	var (
		kind    = flag.String("kind", "anti", "anti, indep, corr, car, or player")
		n       = flag.Int("n", 10000, "number of tuples (anti/indep/corr)")
		d       = flag.Int("d", 4, "dimensionality (anti/indep/corr)")
		seed    = flag.Int64("seed", 1, "random seed")
		skyline = flag.Bool("skyline", false, "apply skyline preprocessing before writing")
		out     = flag.String("out", "", "output CSV path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatalf("-out is required")
	}
	rng := rand.New(rand.NewSource(*seed))
	var ds *dataset.Dataset
	switch *kind {
	case "anti":
		ds = dataset.Anticorrelated(rng, *n, *d)
	case "indep":
		ds = dataset.Independent(rng, *n, *d)
	case "corr":
		ds = dataset.Correlated(rng, *n, *d)
	case "car":
		ds = dataset.SyntheticCar(rng)
	case "player":
		ds = dataset.SyntheticPlayer(rng)
	default:
		fatalf("unknown kind %q", *kind)
	}
	if *skyline {
		before := ds.Len()
		ds = ds.Skyline()
		fmt.Fprintf(os.Stderr, "skyline: %d of %d tuples kept\n", ds.Len(), before)
	}
	if err := ds.SaveFile(*out); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples x %d attrs to %s\n", ds.Len(), ds.Dim(), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-datagen: "+format+"\n", args...)
	os.Exit(1)
}
