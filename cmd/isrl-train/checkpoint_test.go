package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicCreatesAndOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")

	if err := writeAtomic(path, []byte("v1")); err != nil {
		t.Fatalf("writeAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back: %q, %v", got, err)
	}

	if err := writeAtomic(path, []byte("v2 longer payload")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2 longer payload" {
		t.Fatalf("after overwrite: %q", got)
	}

	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the model file, found %d entries", len(entries))
	}
}

func TestWriteAtomicKeepsOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := writeAtomic(path, []byte("good")); err != nil {
		t.Fatalf("writeAtomic: %v", err)
	}
	// A path in a missing directory fails before touching the old file.
	bad := filepath.Join(dir, "nope", "model.bin")
	if err := writeAtomic(bad, []byte("x")); err == nil {
		t.Fatal("expected error writing into missing directory")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good" {
		t.Fatalf("old checkpoint damaged: %q, %v", got, err)
	}
}

func TestChunkUsers(t *testing.T) {
	mk := func(n int) [][]float64 {
		us := make([][]float64, n)
		for i := range us {
			us[i] = []float64{float64(i)}
		}
		return us
	}
	cases := []struct {
		n, size int
		want    []int // chunk lengths
	}{
		{0, 10, nil},
		{5, 0, []int{5}},
		{5, 10, []int{5}},
		{5, 5, []int{5}},
		{7, 3, []int{3, 3, 1}},
		{6, 2, []int{2, 2, 2}},
	}
	for _, c := range cases {
		users := mk(c.n)
		chunks := chunkUsers(users, c.size)
		if len(chunks) != len(c.want) {
			t.Fatalf("n=%d size=%d: %d chunks, want %d", c.n, c.size, len(chunks), len(c.want))
		}
		var flat [][]float64
		for i, ch := range chunks {
			if len(ch) != c.want[i] {
				t.Fatalf("n=%d size=%d chunk %d: len %d, want %d", c.n, c.size, i, len(ch), c.want[i])
			}
			flat = append(flat, ch...)
		}
		// Order and content preserved end to end.
		for i := range flat {
			if !bytes.Equal([]byte{byte(i)}, []byte{byte(int(flat[i][0]))}) {
				t.Fatalf("n=%d size=%d: element %d reordered", c.n, c.size, i)
			}
		}
	}
}
