// Command isrl-train trains an EA or AA agent for a dataset and saves the
// learned Q-network so interactive sessions start instantly.
//
// Usage:
//
//	isrl-train -algo ea -data anti -n 10000 -d 4 -eps 0.1 -episodes 1000 -out ea4d.model
//	isrl-train -algo aa -data player -eps 0.1 -episodes 2000 -out aa-player.model
//	isrl-train -algo aa -csv mydata.csv -out custom.model
//
// The dataset is regenerated from the same -seed at inference time
// (cmd/isrl does this), or supply -csv on both sides.
//
// Long runs can checkpoint: -checkpoint-every N atomically rewrites -out
// every N episodes (temp file + rename, so a crash never truncates a saved
// model), and -resume picks the weights back up from -out to continue
// training after an interruption.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"isrl/internal/aa"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
	"isrl/internal/rl"
)

func main() {
	var (
		algo     = flag.String("algo", "ea", "ea or aa")
		data     = flag.String("data", "anti", "anti, indep, corr, car, player (ignored with -csv)")
		csvPath  = flag.String("csv", "", "train on a CSV dataset instead of a generated one")
		n        = flag.Int("n", 10000, "synthetic dataset size")
		d        = flag.Int("d", 4, "synthetic dimensionality")
		eps      = flag.Float64("eps", 0.1, "regret-ratio threshold the agent trains for")
		episodes = flag.Int("episodes", 1000, "training utility vectors (paper: 10000)")
		seed     = flag.Int64("seed", 1, "random seed (dataset + training)")
		out      = flag.String("out", "", "output model path (required)")
		resume   = flag.Bool("resume", false, "continue training from the model at -out when it exists")
		ckpEvery = flag.Int("checkpoint-every", 0, "atomically checkpoint -out every N episodes (0 = only at the end)")
	)
	flag.Parse()
	if *out == "" {
		fatalf("-out is required")
	}

	ds, err := loadData(*csvPath, *data, *n, *d, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d skyline tuples, d=%d\n", ds.Len(), ds.Dim())

	var resumeBlob []byte
	if *resume {
		blob, err := os.ReadFile(*out)
		switch {
		case err == nil:
			resumeBlob = blob
			fmt.Fprintf(os.Stderr, "resuming from %s (%d bytes)\n", *out, len(blob))
		case errors.Is(err, os.ErrNotExist):
			// Crashed before the first checkpoint landed: start fresh.
			fmt.Fprintf(os.Stderr, "resume: no checkpoint at %s, starting fresh\n", *out)
		default:
			fatalf("resume: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	users := make([][]float64, *episodes)
	for i := range users {
		users[i] = geom.SampleSimplex(rng, ds.Dim())
	}

	start := time.Now()
	var (
		trainChunk func([][]float64) error
		marshal    func() ([]byte, error)
	)
	switch *algo {
	case "ea":
		var e *ea.EA
		if resumeBlob != nil {
			if e, err = ea.Load(ds, *eps, ea.Config{}, resumeBlob, rng); err != nil {
				fatalf("resume: %v", err)
			}
		} else {
			e = ea.New(ds, *eps, ea.Config{}, rng)
		}
		trainChunk = func(chunk [][]float64) error {
			stats, err := e.Train(chunk)
			if err != nil {
				return err
			}
			reportStats("EA", stats.Episodes, stats.AvgRounds, stats.RL, start)
			return nil
		}
		marshal = func() ([]byte, error) { return e.Agent().MarshalBinary() }
	case "aa":
		var a *aa.AA
		if resumeBlob != nil {
			if a, err = aa.Load(ds, *eps, aa.Config{}, resumeBlob, rng); err != nil {
				fatalf("resume: %v", err)
			}
		} else {
			a = aa.New(ds, *eps, aa.Config{}, rng)
		}
		trainChunk = func(chunk [][]float64) error {
			stats, err := a.Train(chunk)
			if err != nil {
				return err
			}
			reportStats("AA", stats.Episodes, stats.AvgRounds, stats.RL, start)
			return nil
		}
		marshal = func() ([]byte, error) { return a.Agent().MarshalBinary() }
	default:
		fatalf("unknown -algo %q (ea or aa)", *algo)
	}

	// Each chunk ends with an atomic rewrite of -out, so an interrupted run
	// loses at most -checkpoint-every episodes. Note the DQN ε-greedy anneal
	// restarts per Train call, so chunked runs re-explore briefly after each
	// checkpoint — harmless for the small chunk counts this flag is for.
	var blob []byte
	trained := 0
	for _, chunk := range chunkUsers(users, *ckpEvery) {
		if err := trainChunk(chunk); err != nil {
			fatalf("train: %v", err)
		}
		trained += len(chunk)
		if blob, err = marshal(); err != nil {
			fatalf("serialize: %v", err)
		}
		if err := writeAtomic(*out, blob); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		if trained < len(users) {
			fmt.Fprintf(os.Stderr, "checkpoint: %d/%d episodes -> %s\n", trained, len(users), *out)
		}
	}
	if blob == nil { // -episodes 0: still save the (possibly resumed) model
		if blob, err = marshal(); err != nil {
			fatalf("serialize: %v", err)
		}
		if err := writeAtomic(*out, blob); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}
	fmt.Fprintf(os.Stderr, "model saved to %s (%d bytes)\n", *out, len(blob))
}

// reportStats prints one training summary block to stderr.
func reportStats(name string, episodes int, avgRounds float64, st rl.TrainStats, start time.Time) {
	fmt.Fprintf(os.Stderr, "%s trained: %d episodes, avg %.1f rounds, %v\n",
		name, episodes, avgRounds, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "  dqn: %d updates, %d target syncs, loss ema %.5f, replay %d/%d, final eps %.3f\n",
		st.Updates, st.TargetSyncs, st.LossEMA, st.ReplaySize, st.ReplayCap, st.Epsilon)
}

// loadData builds the skyline-preprocessed training dataset.
func loadData(csvPath, kind string, n, d int, seed int64) (*dataset.Dataset, error) {
	if csvPath != "" {
		ds, err := dataset.LoadFile(csvPath)
		if err != nil {
			return nil, err
		}
		return ds.Skyline(), nil
	}
	ds, err := dataset.Generate(kind, rand.New(rand.NewSource(seed)), n, d)
	if err != nil {
		return nil, err
	}
	return ds.Skyline(), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-train: "+format+"\n", args...)
	os.Exit(1)
}
