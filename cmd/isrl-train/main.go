// Command isrl-train trains an EA or AA agent for a dataset and saves the
// learned Q-network so interactive sessions start instantly.
//
// Usage:
//
//	isrl-train -algo ea -data anti -n 10000 -d 4 -eps 0.1 -episodes 1000 -out ea4d.model
//	isrl-train -algo aa -data player -eps 0.1 -episodes 2000 -out aa-player.model
//	isrl-train -algo aa -csv mydata.csv -out custom.model
//
// The dataset is regenerated from the same -seed at inference time
// (cmd/isrl does this), or supply -csv on both sides.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"isrl/internal/aa"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
)

func main() {
	var (
		algo     = flag.String("algo", "ea", "ea or aa")
		data     = flag.String("data", "anti", "anti, indep, corr, car, player (ignored with -csv)")
		csvPath  = flag.String("csv", "", "train on a CSV dataset instead of a generated one")
		n        = flag.Int("n", 10000, "synthetic dataset size")
		d        = flag.Int("d", 4, "synthetic dimensionality")
		eps      = flag.Float64("eps", 0.1, "regret-ratio threshold the agent trains for")
		episodes = flag.Int("episodes", 1000, "training utility vectors (paper: 10000)")
		seed     = flag.Int64("seed", 1, "random seed (dataset + training)")
		out      = flag.String("out", "", "output model path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatalf("-out is required")
	}

	ds, err := loadData(*csvPath, *data, *n, *d, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d skyline tuples, d=%d\n", ds.Len(), ds.Dim())

	rng := rand.New(rand.NewSource(*seed))
	users := make([][]float64, *episodes)
	for i := range users {
		users[i] = geom.SampleSimplex(rng, ds.Dim())
	}

	start := time.Now()
	var blob []byte
	switch *algo {
	case "ea":
		e := ea.New(ds, *eps, ea.Config{}, rng)
		stats, err := e.Train(users)
		if err != nil {
			fatalf("train: %v", err)
		}
		fmt.Fprintf(os.Stderr, "EA trained: %d episodes, avg %.1f rounds, %v\n",
			stats.Episodes, stats.AvgRounds, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "  dqn: %d updates, %d target syncs, loss ema %.5f, replay %d/%d, final eps %.3f\n",
			stats.RL.Updates, stats.RL.TargetSyncs, stats.RL.LossEMA,
			stats.RL.ReplaySize, stats.RL.ReplayCap, stats.RL.Epsilon)
		if blob, err = e.Agent().MarshalBinary(); err != nil {
			fatalf("serialize: %v", err)
		}
	case "aa":
		a := aa.New(ds, *eps, aa.Config{}, rng)
		stats, err := a.Train(users)
		if err != nil {
			fatalf("train: %v", err)
		}
		fmt.Fprintf(os.Stderr, "AA trained: %d episodes, avg %.1f rounds, %v\n",
			stats.Episodes, stats.AvgRounds, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "  dqn: %d updates, %d target syncs, loss ema %.5f, replay %d/%d, final eps %.3f\n",
			stats.RL.Updates, stats.RL.TargetSyncs, stats.RL.LossEMA,
			stats.RL.ReplaySize, stats.RL.ReplayCap, stats.RL.Epsilon)
		if blob, err = a.Agent().MarshalBinary(); err != nil {
			fatalf("serialize: %v", err)
		}
	default:
		fatalf("unknown -algo %q (ea or aa)", *algo)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "model saved to %s (%d bytes)\n", *out, len(blob))
}

// loadData builds the skyline-preprocessed training dataset.
func loadData(csvPath, kind string, n, d int, seed int64) (*dataset.Dataset, error) {
	if csvPath != "" {
		ds, err := dataset.LoadFile(csvPath)
		if err != nil {
			return nil, err
		}
		return ds.Skyline(), nil
	}
	ds, err := dataset.Generate(kind, rand.New(rand.NewSource(seed)), n, d)
	if err != nil {
		return nil, err
	}
	return ds.Skyline(), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-train: "+format+"\n", args...)
	os.Exit(1)
}
