package main

import (
	"os"
	"path/filepath"
)

// writeAtomic writes data to path via a same-directory temp file and an
// os.Rename, so a crash or SIGKILL mid-write can never leave a truncated
// model on disk: readers observe either the previous complete checkpoint or
// the new one, nothing in between.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has happened
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// chunkUsers splits the training vectors into checkpoint-sized chunks.
// size <= 0 (or >= len) means a single chunk: no intermediate checkpoints.
func chunkUsers(users [][]float64, size int) [][][]float64 {
	if len(users) == 0 {
		return nil
	}
	if size <= 0 || size >= len(users) {
		return [][][]float64{users}
	}
	out := make([][][]float64, 0, (len(users)+size-1)/size)
	for start := 0; start < len(users); start += size {
		end := start + size
		if end > len(users) {
			end = len(users)
		}
		out = append(out, users[start:end])
	}
	return out
}
