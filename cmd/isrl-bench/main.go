// Command isrl-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	isrl-bench -fig fig9                 # one figure, quick scale
//	isrl-bench -fig all -scale tiny      # whole registry, test scale
//	isrl-bench -fig fig16 -scale full    # paper-scale workload (hours)
//	isrl-bench -fig fig9 -csv out/       # also write CSV per figure
//	isrl-bench -hotpaths                 # benchmark hot paths -> BENCH_hotpaths.json
//	isrl-bench -hotpaths -quick          # smaller workloads (CI smoke)
//	isrl-bench -hotpaths -quick -out /tmp/b.json -compare BENCH_hotpaths.json
//	                                     # regression gate vs the committed report
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"isrl/internal/exp"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment id (see -list) or 'all'")
		scale   = flag.String("scale", "quick", "workload scale: tiny, quick, or full")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quiet   = flag.Bool("q", false, "suppress progress logging")
		trials  = flag.Int("trials", 0, "override number of simulated users per point")
		train   = flag.Int("train", 0, "override training episodes per agent")
		numPts  = flag.Int("n", 0, "override synthetic dataset size")
		epsilon = flag.Float64("eps", 0, "override default regret threshold")

		hotpaths = flag.Bool("hotpaths", false, "measure batched/parallel hot paths and write a JSON report")
		quick    = flag.Bool("quick", false, "with -hotpaths: smaller workloads for CI smoke runs")
		outPath  = flag.String("out", "BENCH_hotpaths.json", "with -hotpaths: report destination")
		compare  = flag.String("compare", "", "with -hotpaths: baseline report to gate against (fails on speedup sign flips and alloc growth; skipped on host mismatch)")
	)
	flag.Parse()

	if *hotpaths {
		if err := runHotpaths(*quick, *outPath, *compare); err != nil {
			fatalf("hotpaths: %v", err)
		}
		return
	}

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var cfg exp.Config
	switch *scale {
	case "tiny":
		cfg = exp.Tiny()
	case "quick":
		cfg = exp.Quick()
	case "full":
		cfg = exp.Full()
	default:
		fatalf("unknown scale %q (tiny, quick, full)", *scale)
	}
	cfg.Seed = *seed
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *train > 0 {
		cfg.TrainEpisodes = *train
	}
	if *numPts > 0 {
		cfg.N = *numPts
	}
	if *epsilon > 0 {
		cfg.Eps = *epsilon
	}

	var todo []exp.Experiment
	if *fig == "all" {
		todo = exp.Registry
	} else {
		e, err := exp.ByID(*fig)
		if err != nil {
			fatalf("%v", err)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fatalf("render %s: %v", e.ID, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("mkdir %s: %v", *csvDir, err)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			if err := tab.WriteCSV(f); err != nil {
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-bench: "+format+"\n", args...)
	os.Exit(1)
}
