package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isrl/internal/aa"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
	"isrl/internal/lp"
	"isrl/internal/obs"
	"isrl/internal/par"
	"isrl/internal/rl"
	"isrl/internal/trace"
)

// The -hotpaths mode measures the optimized hot paths against their serial
// baselines with testing.Benchmark and writes a machine-readable report
// (BENCH_hotpaths.json). The serial baselines replicate the pre-batching
// code paths exactly, so the speedup column is apples-to-apples.

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`

	// RoundsPerSec is set only on whole-session rows (one op = one full
	// seeded interactive session): the session's deterministic round count
	// divided by its wall time, the end-to-end number the incremental
	// geometry engine is meant to move.
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
}

type speedupRow struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
}

type hotpathsReport struct {
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Quick       bool           `json:"quick"`
	Note        string         `json:"note"`
	Benchmarks  []benchRow     `json:"benchmarks"`
	Speedups    []speedupRow   `json:"speedups"`
	PoolMetrics map[string]any `json:"pool_metrics"`
}

// benchReps is how many times each benchmark is repeated outside -quick; the
// fastest repetition is reported, which filters out scheduler/GC interference
// the same way benchstat's min column does.
var benchReps = 3

func row(name string, fn func(b *testing.B)) benchRow {
	best := testing.Benchmark(fn)
	for rep := 1; rep < benchReps; rep++ {
		if r := testing.Benchmark(fn); nsPerOp(r) < nsPerOp(best) {
			best = r
		}
	}
	return benchRow{
		Name:        name,
		NsPerOp:     nsPerOp(best),
		BytesPerOp:  best.AllocedBytesPerOp(),
		AllocsPerOp: best.AllocsPerOp(),
		Iterations:  best.N,
	}
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// hotPoly builds a d-dimensional utility range narrowed by random preference
// halfspaces, mirroring mid-interaction polytope state.
func hotPoly(d int, seed int64) (*geom.Polytope, error) {
	rng := rand.New(rand.NewSource(seed))
	p := geom.NewPolytope(d)
	for k := 0; k < d+2; k++ {
		pi := make([]float64, d)
		pj := make([]float64, d)
		for i := 0; i < d; i++ {
			pi[i] = rng.Float64()
			pj[i] = rng.Float64()
		}
		h := geom.NewHalfspace(pi, pj)
		q := p.Clone()
		q.Add(h)
		if !q.IsEmpty() {
			p.Add(h)
		}
	}
	if p.IsEmpty() {
		return nil, fmt.Errorf("hotpaths: benchmark polytope is empty")
	}
	return p, nil
}

// hotLP mirrors the geometry layer's feasibility probes: a random objective
// over the utility simplex cut by extra halfspaces, oriented to stay feasible.
func hotLP(rng *rand.Rand, d, cuts int) *lp.Problem {
	p := &lp.Problem{NumVars: d, Maximize: make([]float64, d)}
	for i := range p.Maximize {
		p.Maximize[i] = rng.NormFloat64()
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	p.AddEQ(ones, 1)
	for k := 0; k < cuts; k++ {
		w := make([]float64, d)
		var wu float64
		for i := range w {
			w[i] = rng.NormFloat64()
			wu += w[i] / float64(d)
		}
		if wu < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		p.AddGE(w, 0)
	}
	return p
}

// roundCuts builds a fixed sequence of n preference halfspaces at dimension
// d, each oriented to keep a hidden witness vector feasible — the cut stream
// a real interactive session feeds the geometry layer. The sequence is
// independent of -quick so alloc counts stay comparable across runs.
func roundCuts(d, n int, seed int64) []geom.Halfspace {
	rng := rand.New(rand.NewSource(seed))
	u := geom.SampleSimplex(rng, d)
	cuts := make([]geom.Halfspace, n)
	for k := range cuts {
		pi := make([]float64, d)
		pj := make([]float64, d)
		for i := 0; i < d; i++ {
			pi[i] = rng.Float64()
			pj[i] = rng.Float64()
		}
		h := geom.NewHalfspace(pi, pj)
		var hu float64
		for i := range h.Normal {
			hu += h.Normal[i] * u[i]
		}
		if hu < 0 {
			h = h.Flip()
		}
		cuts[k] = h
	}
	return cuts
}

func hotActions(rng *rand.Rand, k, dim int) [][]float64 {
	actions := make([][]float64, k)
	for i := range actions {
		actions[i] = make([]float64, dim)
		for j := range actions[i] {
			actions[i][j] = rng.Float64()
		}
	}
	return actions
}

// benchScoring returns the serial (per-candidate Q forward + argmax, the
// pre-batching code path) and batched (Agent.Best, one GEMM) rows for an
// agent of the given shape scoring k candidates.
func benchScoring(prefix string, stateDim, actionDim, k int) (serial, batched benchRow) {
	rng := rand.New(rand.NewSource(4))
	a := rl.NewAgent(stateDim, actionDim, rl.Config{}, rng)
	state := make([]float64, stateDim)
	actions := hotActions(rng, k, actionDim)
	serial = row(prefix+"_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best, bq := 0, math.Inf(-1)
			for c, act := range actions {
				if q := a.Q(state, act); q > bq {
					best, bq = c, q
				}
			}
			_ = best
		}
	})
	batched = row(prefix+"_batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Best(state, actions)
		}
	})
	return serial, batched
}

func runHotpaths(quick bool, outPath, comparePath string) error {
	cands, samples := 64, 256
	if quick {
		cands, samples = 32, 64
		benchReps = 1
	}

	rep := hotpathsReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Note: "Serial baselines replicate the pre-batching code paths. " +
			"dqn/question scoring speedups are algorithmic (batched GEMM + shared state " +
			"prefix) and hold at any core count; the sampling pair compares worker " +
			"counts and only exceeds 1 when GOMAXPROCS > 1.",
	}
	add := func(rs ...benchRow) {
		rep.Benchmarks = append(rep.Benchmarks, rs...)
	}
	speed := func(name string, base, opt benchRow) {
		rep.Speedups = append(rep.Speedups, speedupRow{
			Name:      name,
			Baseline:  base.Name,
			Optimized: opt.Name,
			Speedup:   base.NsPerOp / opt.NsPerOp,
		})
	}

	// DQN candidate scoring, EA shape at d=4 (state 5d+1=21, action 2d=8).
	s, b := benchScoring("dqn_score_ea_d4", 21, 8, cands)
	add(s, b)
	speed("dqn_candidate_scoring", s, b)

	// Candidate-question scoring, AA shape at d=4 (state 3d+1=13, action 2d=8).
	s, b = benchScoring("question_score_aa_d4", 13, 8, cands)
	add(s, b)
	speed("question_scoring", s, b)

	// Hit-and-run sampling at d=4: fixed chain decomposition executed by one
	// worker vs all available workers.
	poly, err := hotPoly(4, 11)
	if err != nil {
		return err
	}
	benchSample := func(name string, workers int) benchRow {
		return row(name, func(b *testing.B) {
			defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := poly.Sample(rand.New(rand.NewSource(7)), samples, geom.SampleOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s = benchSample("sample_d4_workers1", 1)
	b = benchSample("sample_d4_workersN", runtime.NumCPU())
	add(s, b)
	speed("sampling_d4", s, b)

	// LP solver (arena-pooled) and vertex enumeration timings.
	for _, c := range []struct {
		name    string
		d, cuts int
	}{{"lp_solve_d4", 4, 10}, {"lp_solve_d20", 20, 15}} {
		prob := hotLP(rand.New(rand.NewSource(int64(c.d))), c.d, c.cuts)
		add(row(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lp.Solve(prob)
			}
		}))
	}
	add(row("vertices_d4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Clone the never-enumerated base so each iteration recomputes
			// rather than reading the vertex cache.
			if _, err := poly.Clone().Vertices(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Round geometry: replay a fixed 12-cut d=4 interaction through the
	// per-round geometry reads (vertices, inner sphere, outer rectangle).
	// The scratch row rebuilds everything from the halfspace set each round —
	// the pre-engine behavior — while the incremental row maintains the
	// vertex set by halfspace clipping and re-solves warm LPs.
	cuts := roundCuts(4, 12, 13)
	scr := row("round_geometry_scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := geom.NewPolytope(4)
			for _, h := range cuts {
				p.Add(h)
				if _, err := p.Vertices(); err != nil {
					b.Fatal(err)
				}
				if _, err := p.InnerBall(); err != nil {
					b.Fatal(err)
				}
				if _, _, err := p.OuterRect(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	inc := row("round_geometry_incremental", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := geom.NewPolytope(4)
			g := geom.NewIncremental(p)
			for _, h := range cuts {
				g.AddCtx(ctx, h)
				if _, err := g.VerticesCtx(ctx); err != nil {
					b.Fatal(err)
				}
				if _, err := g.InnerBallCtx(ctx); err != nil {
					b.Fatal(err)
				}
				if _, _, err := g.OuterRectCtx(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	add(scr, inc)
	speed("round_geometry_d4", scr, inc)

	// End-to-end sessions at d=4: one op runs a full seeded interaction to
	// completion; rounds_per_sec divides the deterministic round count by the
	// per-op wall time. Engine off vs on is the user-visible payoff.
	dsEA := dataset.Anticorrelated(rand.New(rand.NewSource(21)), 300, 4).Skyline()
	benchUser := core.SimulatedUser{Utility: []float64{0.4, 0.3, 0.2, 0.1}}
	runEASession := func(scratch bool) (core.Result, error) {
		cfg := ea.Config{Me: 3, Mh: 4, NumSamples: 24, MaxRounds: 60, ScratchGeometry: scratch}
		e := ea.New(dsEA, 0.1, cfg, rand.New(rand.NewSource(22)))
		return e.Run(dsEA, benchUser, 0.1, nil)
	}
	runAASession := func(scratch bool) (core.Result, error) {
		cfg := aa.Config{Mh: 4, TopK: 10, RandPairs: 40, MaxLPChecks: 30, MaxRounds: 120, ScratchGeometry: scratch}
		a := aa.New(dsEA, 0.1, cfg, rand.New(rand.NewSource(23)))
		return a.Run(dsEA, benchUser, 0.1, nil)
	}
	session := func(name string, run func(bool) (core.Result, error), scratch bool) (benchRow, error) {
		ref, err := run(scratch)
		if err != nil {
			return benchRow{}, fmt.Errorf("hotpaths: %s: %w", name, err)
		}
		if ref.Degraded || ref.Rounds == 0 {
			return benchRow{}, fmt.Errorf("hotpaths: %s: degenerate session (%+v)", name, ref)
		}
		r := row(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.RoundsPerSec = float64(ref.Rounds) / (r.NsPerOp * 1e-9)
		return r, nil
	}
	for _, sc := range []struct {
		prefix string
		run    func(bool) (core.Result, error)
	}{{"ea_session_d4", runEASession}, {"aa_session_d4", runAASession}} {
		base, err := session(sc.prefix+"_scratch", sc.run, true)
		if err != nil {
			return err
		}
		opt, err := session(sc.prefix+"_incremental", sc.run, false)
		if err != nil {
			return err
		}
		add(base, opt)
		speed(sc.prefix+"_rounds_per_sec", base, opt)
	}

	// Disabled-path tracing overhead: a span start attempt on a context with
	// no active trace, the extra cost every hot-path call pays when tracing
	// is off. This must stay at zero allocations and single-digit
	// nanoseconds; the row both records it in the report and enforces it.
	disabled := row("trace_disabled_span", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := trace.StartLeaf(ctx, "bench.noop")
			sp.SetInt("n", int64(i))
			sp.End()
		}
	})
	if disabled.AllocsPerOp != 0 {
		return fmt.Errorf("hotpaths: disabled-path span costs %d allocs/op, want 0", disabled.AllocsPerOp)
	}
	if disabled.NsPerOp > 100 {
		return fmt.Errorf("hotpaths: disabled-path span costs %.1f ns/op, want ≤100", disabled.NsPerOp)
	}
	add(disabled)

	rep.PoolMetrics = map[string]any{}
	for k, v := range obs.Default().Snapshot() {
		if strings.HasPrefix(k, "par.") {
			rep.PoolMetrics[k] = v
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	for _, sp := range rep.Speedups {
		fmt.Printf("  %-24s %.2fx (%s vs %s)\n", sp.Name, sp.Speedup, sp.Optimized, sp.Baseline)
	}
	if comparePath != "" {
		return compareReports(comparePath, rep)
	}
	return nil
}

// fixedWorkloadRows are the benchmarks whose per-op workload is identical in
// -quick and full runs, so their allocation counts are directly comparable
// against a committed baseline. Sampling and scoring rows scale with -quick
// and are excluded.
var fixedWorkloadRows = map[string]bool{
	"vertices_d4":                true,
	"lp_solve_d4":                true,
	"lp_solve_d20":               true,
	"trace_disabled_span":        true,
	"round_geometry_scratch":     true,
	"round_geometry_incremental": true,
}

// compareReports gates the fresh report against a committed baseline: any
// speedup the baseline reported as a real win (≥1.1×) must not have decayed
// into a slowdown (<1.0×), and fixed-workload allocation counts must not
// blow past the baseline by more than 25% + 2 allocs. Timing noise is
// expected — only sign flips and alloc growth fail — and a baseline recorded
// on different hardware is incomparable, so the gate skips itself.
func compareReports(basePath string, cur hotpathsReport) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base hotpathsReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("compare: parse %s: %w", basePath, err)
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH ||
		base.NumCPU != cur.NumCPU || base.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Printf("compare: baseline host (%s/%s, %d cpu, GOMAXPROCS %d) differs from this host (%s/%s, %d cpu, GOMAXPROCS %d); skipping regression gate\n",
			base.GOOS, base.GOARCH, base.NumCPU, base.GOMAXPROCS,
			cur.GOOS, cur.GOARCH, cur.NumCPU, cur.GOMAXPROCS)
		return nil
	}
	var fails []string
	gatedSpeedups, gatedAllocs := 0, 0
	curSp := map[string]float64{}
	for _, sp := range cur.Speedups {
		curSp[sp.Name] = sp.Speedup
	}
	for _, sp := range base.Speedups {
		if sp.Speedup < 1.1 {
			continue // the baseline never claimed a win worth gating
		}
		gatedSpeedups++
		got, ok := curSp[sp.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("speedup %s missing from this run", sp.Name))
			continue
		}
		if got < 1.0 {
			fails = append(fails, fmt.Sprintf("speedup %s regressed to %.2fx (baseline %.2fx)", sp.Name, got, sp.Speedup))
		}
	}
	curRows := map[string]benchRow{}
	for _, r := range cur.Benchmarks {
		curRows[r.Name] = r
	}
	for _, r := range base.Benchmarks {
		if !fixedWorkloadRows[r.Name] {
			continue
		}
		gatedAllocs++
		got, ok := curRows[r.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("benchmark %s missing from this run", r.Name))
			continue
		}
		if limit := float64(r.AllocsPerOp)*1.25 + 2; float64(got.AllocsPerOp) > limit {
			fails = append(fails, fmt.Sprintf("%s allocates %d/op (baseline %d/op, limit %.0f)", r.Name, got.AllocsPerOp, r.AllocsPerOp, limit))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("compare: %d regression(s) vs %s:\n  %s", len(fails), basePath, strings.Join(fails, "\n  "))
	}
	fmt.Printf("compare: no regressions vs %s (%d gated speedups, %d alloc floors)\n",
		basePath, gatedSpeedups, gatedAllocs)
	return nil
}
