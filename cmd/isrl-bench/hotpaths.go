package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isrl/internal/geom"
	"isrl/internal/lp"
	"isrl/internal/obs"
	"isrl/internal/par"
	"isrl/internal/rl"
	"isrl/internal/trace"
)

// The -hotpaths mode measures the optimized hot paths against their serial
// baselines with testing.Benchmark and writes a machine-readable report
// (BENCH_hotpaths.json). The serial baselines replicate the pre-batching
// code paths exactly, so the speedup column is apples-to-apples.

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

type speedupRow struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
}

type hotpathsReport struct {
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Quick       bool           `json:"quick"`
	Note        string         `json:"note"`
	Benchmarks  []benchRow     `json:"benchmarks"`
	Speedups    []speedupRow   `json:"speedups"`
	PoolMetrics map[string]any `json:"pool_metrics"`
}

// benchReps is how many times each benchmark is repeated outside -quick; the
// fastest repetition is reported, which filters out scheduler/GC interference
// the same way benchstat's min column does.
var benchReps = 3

func row(name string, fn func(b *testing.B)) benchRow {
	best := testing.Benchmark(fn)
	for rep := 1; rep < benchReps; rep++ {
		if r := testing.Benchmark(fn); nsPerOp(r) < nsPerOp(best) {
			best = r
		}
	}
	return benchRow{
		Name:        name,
		NsPerOp:     nsPerOp(best),
		BytesPerOp:  best.AllocedBytesPerOp(),
		AllocsPerOp: best.AllocsPerOp(),
		Iterations:  best.N,
	}
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// hotPoly builds a d-dimensional utility range narrowed by random preference
// halfspaces, mirroring mid-interaction polytope state.
func hotPoly(d int, seed int64) (*geom.Polytope, error) {
	rng := rand.New(rand.NewSource(seed))
	p := geom.NewPolytope(d)
	for k := 0; k < d+2; k++ {
		pi := make([]float64, d)
		pj := make([]float64, d)
		for i := 0; i < d; i++ {
			pi[i] = rng.Float64()
			pj[i] = rng.Float64()
		}
		h := geom.NewHalfspace(pi, pj)
		q := p.Clone()
		q.Add(h)
		if !q.IsEmpty() {
			p.Add(h)
		}
	}
	if p.IsEmpty() {
		return nil, fmt.Errorf("hotpaths: benchmark polytope is empty")
	}
	return p, nil
}

// hotLP mirrors the geometry layer's feasibility probes: a random objective
// over the utility simplex cut by extra halfspaces, oriented to stay feasible.
func hotLP(rng *rand.Rand, d, cuts int) *lp.Problem {
	p := &lp.Problem{NumVars: d, Maximize: make([]float64, d)}
	for i := range p.Maximize {
		p.Maximize[i] = rng.NormFloat64()
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	p.AddEQ(ones, 1)
	for k := 0; k < cuts; k++ {
		w := make([]float64, d)
		var wu float64
		for i := range w {
			w[i] = rng.NormFloat64()
			wu += w[i] / float64(d)
		}
		if wu < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		p.AddGE(w, 0)
	}
	return p
}

func hotActions(rng *rand.Rand, k, dim int) [][]float64 {
	actions := make([][]float64, k)
	for i := range actions {
		actions[i] = make([]float64, dim)
		for j := range actions[i] {
			actions[i][j] = rng.Float64()
		}
	}
	return actions
}

// benchScoring returns the serial (per-candidate Q forward + argmax, the
// pre-batching code path) and batched (Agent.Best, one GEMM) rows for an
// agent of the given shape scoring k candidates.
func benchScoring(prefix string, stateDim, actionDim, k int) (serial, batched benchRow) {
	rng := rand.New(rand.NewSource(4))
	a := rl.NewAgent(stateDim, actionDim, rl.Config{}, rng)
	state := make([]float64, stateDim)
	actions := hotActions(rng, k, actionDim)
	serial = row(prefix+"_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best, bq := 0, math.Inf(-1)
			for c, act := range actions {
				if q := a.Q(state, act); q > bq {
					best, bq = c, q
				}
			}
			_ = best
		}
	})
	batched = row(prefix+"_batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Best(state, actions)
		}
	})
	return serial, batched
}

func runHotpaths(quick bool, outPath string) error {
	cands, samples := 64, 256
	if quick {
		cands, samples = 32, 64
		benchReps = 1
	}

	rep := hotpathsReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Note: "Serial baselines replicate the pre-batching code paths. " +
			"dqn/question scoring speedups are algorithmic (batched GEMM + shared state " +
			"prefix) and hold at any core count; the sampling pair compares worker " +
			"counts and only exceeds 1 when GOMAXPROCS > 1.",
	}
	add := func(rs ...benchRow) {
		rep.Benchmarks = append(rep.Benchmarks, rs...)
	}
	speed := func(name string, base, opt benchRow) {
		rep.Speedups = append(rep.Speedups, speedupRow{
			Name:      name,
			Baseline:  base.Name,
			Optimized: opt.Name,
			Speedup:   base.NsPerOp / opt.NsPerOp,
		})
	}

	// DQN candidate scoring, EA shape at d=4 (state 5d+1=21, action 2d=8).
	s, b := benchScoring("dqn_score_ea_d4", 21, 8, cands)
	add(s, b)
	speed("dqn_candidate_scoring", s, b)

	// Candidate-question scoring, AA shape at d=4 (state 3d+1=13, action 2d=8).
	s, b = benchScoring("question_score_aa_d4", 13, 8, cands)
	add(s, b)
	speed("question_scoring", s, b)

	// Hit-and-run sampling at d=4: fixed chain decomposition executed by one
	// worker vs all available workers.
	poly, err := hotPoly(4, 11)
	if err != nil {
		return err
	}
	benchSample := func(name string, workers int) benchRow {
		return row(name, func(b *testing.B) {
			defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := poly.Sample(rand.New(rand.NewSource(7)), samples, geom.SampleOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s = benchSample("sample_d4_workers1", 1)
	b = benchSample("sample_d4_workersN", runtime.NumCPU())
	add(s, b)
	speed("sampling_d4", s, b)

	// LP solver (arena-pooled) and vertex enumeration timings.
	for _, c := range []struct {
		name    string
		d, cuts int
	}{{"lp_solve_d4", 4, 10}, {"lp_solve_d20", 20, 15}} {
		prob := hotLP(rand.New(rand.NewSource(int64(c.d))), c.d, c.cuts)
		add(row(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lp.Solve(prob)
			}
		}))
	}
	add(row("vertices_d4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Clone the never-enumerated base so each iteration recomputes
			// rather than reading the vertex cache.
			if _, err := poly.Clone().Vertices(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Disabled-path tracing overhead: a span start attempt on a context with
	// no active trace, the extra cost every hot-path call pays when tracing
	// is off. This must stay at zero allocations and single-digit
	// nanoseconds; the row both records it in the report and enforces it.
	disabled := row("trace_disabled_span", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := trace.StartLeaf(ctx, "bench.noop")
			sp.SetInt("n", int64(i))
			sp.End()
		}
	})
	if disabled.AllocsPerOp != 0 {
		return fmt.Errorf("hotpaths: disabled-path span costs %d allocs/op, want 0", disabled.AllocsPerOp)
	}
	if disabled.NsPerOp > 100 {
		return fmt.Errorf("hotpaths: disabled-path span costs %.1f ns/op, want ≤100", disabled.NsPerOp)
	}
	add(disabled)

	rep.PoolMetrics = map[string]any{}
	for k, v := range obs.Default().Snapshot() {
		if strings.HasPrefix(k, "par.") {
			rep.PoolMetrics[k] = v
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	for _, sp := range rep.Speedups {
		fmt.Printf("  %-24s %.2fx (%s vs %s)\n", sp.Name, sp.Speedup, sp.Optimized, sp.Baseline)
	}
	return nil
}
