package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestEmit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig9.csv")
	if err := os.WriteFile(path, []byte("eps,algorithm,rounds\n0.1,EA,5\n0.1,AA,8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := emit(path, "fig9"); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"### fig9", "| eps | algorithm | rounds |", "| 0.1 | EA | 5 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitThinsLongTables(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	b.WriteString("round,v\n")
	for i := 0; i < 100; i++ {
		b.WriteString("1,2\n")
	}
	path := filepath.Join(dir, "fig7.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := emit(path, "fig7"); err != nil {
			t.Fatal(err)
		}
	})
	rows := strings.Count(out, "| 1 | 2 |")
	if rows >= 100 || rows < 10 {
		t.Errorf("thinning produced %d rows", rows)
	}
	if !strings.Contains(out, "every 5th row shown") {
		t.Error("thinning note missing")
	}
}

func TestEmitErrors(t *testing.T) {
	if err := emit("/does/not/exist.csv", "x"); err == nil {
		t.Error("missing file must error")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(path, []byte("only,header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emit(path, "empty"); err == nil {
		t.Error("header-only file must error")
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what was written.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		n, _ := r.Read(buf)
		// Drain any remainder.
		for {
			m, err := r.Read(buf[n:])
			if m <= 0 || err != nil {
				break
			}
			n += m
		}
		done <- string(buf[:n])
	}()
	f()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}

// Integration sanity: the binary builds and runs against a fixtures dir.
func TestMainIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig6a.csv"),
		[]byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "isrl-report")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := exec.Command(bin, "-dir", dir).Output()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(string(out), "### fig6a") {
		t.Errorf("output:\n%s", out)
	}
}
