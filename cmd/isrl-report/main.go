// Command isrl-report turns the CSV tables written by `isrl-bench -csv`
// into the markdown section of EXPERIMENTS.md, so measured numbers stay
// mechanically in sync with the latest run.
//
// Usage:
//
//	isrl-bench -fig all -scale quick -csv results/
//	isrl-report -dir results/ >> EXPERIMENTS.md
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// order lists experiment ids in presentation order; unknown files sort last.
var order = []string{
	"fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16",
	"abl-state", "abl-action", "abl-greedy", "abl-rl", "abl-dqn",
	"ext-noise", "ext-opt", "ext-adaptive",
}

func main() {
	dir := flag.String("dir", "results", "directory of per-figure CSV files")
	flag.Parse()

	entries, err := os.ReadDir(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	rank := map[string]int{}
	for i, id := range order {
		rank[id] = i
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, e.Name())
		}
	}
	sort.Slice(files, func(a, b int) bool {
		ra, oka := rank[strings.TrimSuffix(files[a], ".csv")]
		rb, okb := rank[strings.TrimSuffix(files[b], ".csv")]
		switch {
		case oka && okb:
			return ra < rb
		case oka:
			return true
		case okb:
			return false
		}
		return files[a] < files[b]
	})
	if len(files) == 0 {
		fatalf("no CSV files in %s", *dir)
	}
	for _, f := range files {
		id := strings.TrimSuffix(f, ".csv")
		if err := emit(filepath.Join(*dir, f), id); err != nil {
			fatalf("%s: %v", f, err)
		}
	}
}

// emit prints one CSV as a markdown table. Long per-round traces (fig7/8)
// are summarized to every 5th row to keep the document readable.
func emit(path, id string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	recs, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		return err
	}
	if len(recs) < 2 {
		return fmt.Errorf("no data rows")
	}
	fmt.Printf("### %s\n\n", id)
	fmt.Printf("| %s |\n", strings.Join(recs[0], " | "))
	sep := make([]string, len(recs[0]))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Printf("| %s |\n", strings.Join(sep, " | "))
	rows := recs[1:]
	thin := len(rows) > 40
	for i, row := range rows {
		if thin && i%5 != 0 && i != len(rows)-1 {
			continue
		}
		fmt.Printf("| %s |\n", strings.Join(row, " | "))
	}
	if thin {
		fmt.Printf("\n*(every 5th row shown; full data in %s)*\n", path)
	}
	fmt.Println()
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "isrl-report: "+format+"\n", args...)
	os.Exit(1)
}
