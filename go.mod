module isrl

go 1.22
