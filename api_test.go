package isrl

import (
	"math"
	"math/rand"
	"testing"
)

// End-to-end through the public API only: generate data, train EA, run a
// simulated interaction, verify the exactness guarantee.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := Anticorrelated(rng, 500, 3).Skyline()
	e := NewEA(ds, 0.1, EAConfig{NumSamples: 24, MaxRounds: 60}, rng)
	if _, err := e.Train(TrainVectors(rng, 3, 30)); err != nil {
		t.Fatal(err)
	}
	u := SampleUtility(rng, 3)
	res, err := e.Run(ds, SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
		t.Errorf("regret %v > eps", rr)
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := Anticorrelated(rng, 300, 3).Skyline()
	a := NewAA(ds, 0.1, AAConfig{MaxRounds: 80}, rng)
	blob, err := a.Agent().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadAA(ds, 0.1, AAConfig{MaxRounds: 80}, blob, rng)
	if err != nil {
		t.Fatal(err)
	}
	u := SampleUtility(rng, 3)
	r1, err := back.Run(ds, SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds <= 0 {
		t.Errorf("loaded agent asked %d questions", r1.Rounds)
	}
	// Mismatched dataset dims must be rejected.
	other := Anticorrelated(rng, 300, 4).Skyline()
	if _, err := LoadAA(other, 0.1, AAConfig{}, blob, rng); err == nil {
		t.Error("dimension mismatch must fail to load")
	}
	eaBlobRejected := func() {
		e := NewEA(ds, 0.1, EAConfig{}, rng)
		eb, err := e.Agent().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := LoadAA(ds, 0.1, AAConfig{}, eb, rng); err == nil {
			t.Error("EA blob must not load as AA (state dims differ)")
		}
		if _, err := LoadEA(ds, 0.1, EAConfig{}, eb, rng); err != nil {
			t.Errorf("EA blob must load as EA: %v", err)
		}
	}
	eaBlobRejected()
}

func TestPublicAPIBaselinesAndUtilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := SyntheticCar(rng).Skyline()
	if ds.Dim() != 3 {
		t.Fatalf("car dim %d", ds.Dim())
	}
	u := SampleUtility(rng, 3)
	algos := []Algorithm{
		NewUHRandom(UHConfig{}, rng),
		NewUHSimplex(UHConfig{}, rng),
		NewSinglePass(SinglePassConfig{}, rng),
		NewUtilityApprox(UtilityApproxConfig{}),
	}
	for _, alg := range algos {
		res, err := alg.Run(ds, SimulatedUser{Utility: u}, 0.15, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
			t.Errorf("%s: bad index", alg.Name())
		}
	}
	// Utility sampling lands on the simplex.
	for i := 0; i < 50; i++ {
		v := SampleUtility(rng, 5)
		var s float64
		for _, x := range v {
			if x < 0 {
				t.Fatal("negative utility component")
			}
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("utility sums to %v", s)
		}
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Experiments()) < 12 {
		t.Errorf("registry has %d experiments, want ≥ 12 (one per figure)", len(Experiments()))
	}
	if _, err := ExperimentByID("fig16"); err != nil {
		t.Error(err)
	}
	tiny := TinyScale()
	if tiny.N <= 0 || tiny.Trials <= 0 {
		t.Errorf("tiny preset %+v", tiny)
	}
}

// Session integration: drive a trained EA through the pull-based API.
func TestPublicAPISession(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := Anticorrelated(rng, 400, 3).Skyline()
	e := NewEA(ds, 0.1, EAConfig{NumSamples: 24, MaxRounds: 60}, rng)
	u := SampleUtility(rng, 3)
	truth := SimulatedUser{Utility: u}
	s := NewSession(e, ds, 0.1)
	rounds := 0
	for {
		pi, pj, done := s.Next()
		if done {
			break
		}
		rounds++
		if rounds > 100 {
			t.Fatal("session did not terminate")
		}
		if err := s.Answer(truth.Prefer(pi, pj)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds {
		t.Errorf("session rounds %d != result rounds %d", rounds, res.Rounds)
	}
	if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
		t.Errorf("regret %v > eps through session API", rr)
	}
}
