package isrl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/fault"
)

// chaosDataset is a small low-dimensional skyline usable by every algorithm
// (EA's exact polytope needs d small).
func chaosDataset() *dataset.Dataset {
	return dataset.Anticorrelated(rand.New(rand.NewSource(7)), 300, 3).Skyline()
}

// runGuarded runs alg against user with a hard timeout, converting panics
// and hangs into test failures. Returns the result when the run terminates.
func runGuarded(t *testing.T, alg core.Algorithm, ds *dataset.Dataset, user core.User, eps float64, limit time.Duration) core.Result {
	t.Helper()
	type outcome struct {
		res core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic escaped %s: %v", alg.Name(), r)}
			}
		}()
		res, err := alg.Run(ds, user, eps, nil)
		ch <- outcome{res: res, err: err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("%s: %v", alg.Name(), out.err)
		}
		return out.res
	case <-time.After(limit):
		t.Fatalf("%s did not terminate within %s under noise", alg.Name(), limit)
		return core.Result{}
	}
}

// TestNoisyOracleTermination is the satellite's table-driven suite: EA, AA
// and a baseline driven by a noisy user (seeded flips at 5% and 20%) must
// terminate with either a valid result or an explicitly Degraded one —
// never panic, never hang.
func TestNoisyOracleTermination(t *testing.T) {
	ds := chaosDataset()
	const eps = 0.1
	algos := []struct {
		name string
		mk   func(seed int64) core.Algorithm
	}{
		{"EA", func(seed int64) core.Algorithm {
			return ea.New(ds, eps, ea.Config{MaxRounds: 60}, rand.New(rand.NewSource(seed)))
		}},
		{"AA", func(seed int64) core.Algorithm {
			return aa.New(ds, eps, aa.Config{MaxRounds: 60}, rand.New(rand.NewSource(seed)))
		}},
		{"UH-Random", func(seed int64) core.Algorithm {
			return baselines.NewUHRandom(baselines.UHConfig{MaxRounds: 60}, rand.New(rand.NewSource(seed)))
		}},
	}
	for _, a := range algos {
		for _, flip := range []float64{0.05, 0.2} {
			a, flip := a, flip
			t.Run(fmt.Sprintf("%s/flip=%v", a.name, flip), func(t *testing.T) {
				truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
				noisy := fault.NewNoisyUser(truth, flip, 42)
				res := runGuarded(t, a.mk(1), ds, noisy, eps, 60*time.Second)
				if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
					t.Fatalf("invalid point index %d (degraded=%v reason=%q)",
						res.PointIndex, res.Degraded, res.DegradedReason)
				}
				if res.Degraded && res.DegradedReason == "" {
					t.Error("degraded result must carry a reason")
				}
				if noisy.Asks() == 0 {
					t.Error("noisy oracle was never consulted")
				}
				t.Logf("%s flip=%v: rounds=%d degraded=%v flips=%d/%d reason=%q",
					a.name, flip, res.Rounds, res.Degraded, noisy.Flips(), noisy.Asks(), res.DegradedReason)
			})
		}
	}
}

// TestChaosSessionOraclePanicContained: a panic injected at the session
// oracle boundary must surface as a *core.PanicError from Result, not kill
// the process.
func TestChaosSessionOraclePanicContained(t *testing.T) {
	fault.Install(fault.NewPlan(5).Set(fault.PointOracle, fault.Spec{PanicProb: 1}))
	defer fault.Install(nil)

	ds := chaosDataset()
	alg := baselines.NewUHRandom(baselines.UHConfig{MaxRounds: 60}, rand.New(rand.NewSource(3)))
	s := core.NewSession(alg, ds, 0.1)
	defer s.Close()

	// The first oracle call panics before the question is published, so the
	// session is done immediately.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, done := s.Next()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never finished after injected oracle panic")
		}
		if err := s.Answer(true); err != nil {
			break
		}
	}
	_, err := s.Result()
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *core.PanicError from Result, got %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("contained panic should carry a stack trace")
	}
}

// TestChaosLPFaultDegradesAA: when every LP solve is poisoned, AA's
// inner-ball computation fails from round one and the run must come back as
// an explicit best-effort degraded result, not an error or a hang.
func TestChaosLPFaultDegradesAA(t *testing.T) {
	fault.Install(fault.NewPlan(6).Set(fault.PointLPSolve, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)

	ds := chaosDataset()
	alg := aa.New(ds, 0.1, aa.Config{MaxRounds: 60}, rand.New(rand.NewSource(4)))
	res := runGuarded(t, alg, ds, core.SimulatedUser{Utility: []float64{0.3, 0.3, 0.4}}, 0.1, 60*time.Second)
	if !res.Degraded {
		t.Fatalf("expected degraded result with all LPs failing, got %+v", res)
	}
	if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
		t.Fatalf("degraded result has invalid index %d", res.PointIndex)
	}
}

// TestChaosVertexPanicGuardedEA: a panic injected inside EA's per-round
// geometry is contained by the core.Guard boundary and converted into a
// degraded result with the recovery counted on the Result itself.
func TestChaosVertexPanicGuardedEA(t *testing.T) {
	fault.Install(fault.NewPlan(8).Set(fault.PointVertices, fault.Spec{PanicProb: 1}))
	defer fault.Install(nil)

	ds := chaosDataset()
	alg := ea.New(ds, 0.1, ea.Config{MaxRounds: 60}, rand.New(rand.NewSource(9)))
	res := runGuarded(t, alg, ds, core.SimulatedUser{Utility: []float64{0.25, 0.25, 0.5}}, 0.1, 60*time.Second)
	if !res.Degraded {
		t.Fatalf("expected degraded result after guarded panic, got %+v", res)
	}
	if res.PanicsRecovered == 0 {
		t.Error("Result.PanicsRecovered should count the contained panic")
	}
	if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
		t.Fatalf("degraded result has invalid index %d", res.PointIndex)
	}
}

// TestChaosReplayDeterministic: the same seed and single-threaded drive
// produce the identical fault sequence — chaos runs are regressions, not
// flakes.
func TestChaosReplayDeterministic(t *testing.T) {
	run := func() (int, int, bool) {
		plan := fault.NewPlan(21).Set(fault.PointVertices, fault.Spec{ErrProb: 0.3})
		fault.Install(plan)
		defer fault.Install(nil)
		ds := chaosDataset()
		alg := baselines.NewUHSimplex(baselines.UHConfig{MaxRounds: 60}, rand.New(rand.NewSource(2)))
		res := runGuarded(t, alg, ds, core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}, 0.1, 60*time.Second)
		return plan.Hits(fault.PointVertices), plan.Injections(fault.PointVertices), res.Degraded
	}
	h1, i1, d1 := run()
	h2, i2, d2 := run()
	if h1 != h2 || i1 != i2 || d1 != d2 {
		t.Fatalf("seeded chaos run not reproducible: (%d,%d,%v) vs (%d,%d,%v)", h1, i1, d1, h2, i2, d2)
	}
}
