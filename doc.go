// Package isrl is a from-scratch Go implementation of "Interactive Search
// with Reinforcement Learning" (ICDE 2025): interactive regret queries whose
// question-selection policy is trained with deep Q-learning so that the
// *whole* interaction — not each round in isolation — needs as few questions
// as possible.
//
// # The problem
//
// A dataset holds tuples p ∈ (0,1]^d (larger is better). A user has a hidden
// linear utility vector u on the probability simplex. The system repeatedly
// shows the user two tuples and asks which one they prefer; each answer
// reveals a halfspace containing u (Lemma 1 of the paper). The goal is to
// return a tuple whose regret ratio — the relative utility gap to the user's
// true favorite — is below a threshold ε, after as few questions as
// possible.
//
// # The algorithms
//
// Two RL algorithms are provided, plus every baseline the paper compares
// against:
//
//   - EA (exact): maintains the utility range as an exact polytope, encodes
//     states from its extreme vectors and outer sphere, and restricts
//     actions to pairs of terminal-polyhedron representatives. The returned
//     tuple is *certified* to have regret ratio ≤ ε.
//   - AA (approximate): never builds the polytope; it uses the LP-computed
//     inner sphere and outer rectangle of the halfspace intersection, which
//     scales to tens of dimensions. Regret is bounded by d²ε (Lemma 9) and
//     is below ε in practice.
//   - Baselines: UH-Random, UH-Simplex (SIGMOD'19), SinglePass (KDD'23) and
//     UtilityApprox (SIGMOD'12).
//
// # Quick start
//
//	rng := rand.New(rand.NewSource(1))
//	ds := isrl.Anticorrelated(rng, 10000, 4).Skyline()
//	ea := isrl.NewEA(ds, 0.1, isrl.EAConfig{}, rng)
//	ea.Train(isrl.TrainVectors(rng, 4, 1000))      // offline, once
//	user := isrl.SimulatedUser{Utility: []float64{0.3, 0.3, 0.2, 0.2}}
//	res, err := ea.Run(ds, user, 0.1, nil)
//	// res.Point is within ε of the user's favorite; res.Rounds questions asked.
//
// # Observability
//
// The stack is instrumented through internal/obs, a stdlib-only metrics
// layer (atomic counters, gauges, quantile histograms, a named registry).
// The HTTP server (internal/server, cmd/isrl-serve) exports the registry at
// GET /metrics next to a GET /healthz liveness probe; DQN training
// publishes loss/epsilon/replay telemetry into the same registry, and the
// geometry hot paths (LP solves, hit-and-run sampling, vertex enumeration)
// keep baseline counters for performance work.
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package isrl
