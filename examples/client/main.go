// Resilient client: drive an interactive search session on a running
// isrl-serve through the client SDK — retries, backoff, Retry-After,
// circuit breaking and the exactly-once round protocol all included.
//
// Start a server, then run this against it:
//
//	isrl-serve -data car -algo ea -addr :8080 &
//	go run ./examples/client -server http://localhost:8080
//
// The example answers questions from a simulated user so it runs
// unattended; swap the choose function for a real UI to ask a human.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"isrl"
	"isrl/client"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "base URL of a running isrl-serve")
	flag.Parse()

	// The SDK's defaults already retry transient failures; the knobs below
	// just make the behaviour explicit. Every retried POST is safe: creates
	// carry an Idempotency-Key, answers carry their round index, and the
	// server deduplicates both.
	c := client.New(*server,
		client.WithAttempts(8),                                 // wire attempts per logical call
		client.WithPerTryTimeout(5*time.Second),                // bound each attempt, not just the call
		client.WithBackoff(50*time.Millisecond, 2*time.Second), // capped exponential + jitter
		client.WithBreaker(8, time.Second),                     // fail fast while the host is down
	)

	// A simulated user stands in for the human: it answers from a hidden
	// utility vector, sized lazily from the first question so the example
	// works against any dataset the server happens to serve.
	var truth isrl.SimulatedUser

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rounds := 0
	res, err := c.Run(ctx, func(q client.Question) bool {
		if truth.Utility == nil {
			truth.Utility = make([]float64, len(q.First))
			for i := range truth.Utility {
				truth.Utility[i] = float64(len(q.First) - i) // descending weights; only relative order matters
			}
		}
		rounds++
		fmt.Printf("q%d: round %d, %d attributes\n", rounds, q.Round, len(q.First))
		return truth.Prefer(q.First, q.Second)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended tuple #%d after %d rounds: %v\n", res.PointIndex, res.Rounds, res.Point)
	if res.Degraded {
		fmt.Printf("degraded result: %s\n", res.DegradedReason)
	}
}
