// Quickstart: train the exact RL algorithm EA on a synthetic dataset and
// run one interactive session with a simulated user, printing every
// question the agent asks and the certified recommendation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"isrl"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Data: 5,000 anti-correlated tuples in 4 dimensions, reduced to the
	// skyline (the tuples that can be someone's favorite).
	ds := isrl.Anticorrelated(rng, 5000, 4).Skyline()
	fmt.Printf("dataset: %d skyline tuples, %d attributes\n", ds.Len(), ds.Dim())

	// 2. Train EA offline on simulated users (the paper uses 10,000; a few
	// hundred already helps).
	agent := isrl.NewEA(ds, 0.1, isrl.EAConfig{}, rng)
	if _, err := agent.Train(isrl.TrainVectors(rng, 4, 500)); err != nil {
		log.Fatal(err)
	}

	// 3. Interact with a user whose (hidden) utility vector we know, so we
	// can verify the guarantee afterwards.
	hidden := []float64{0.4, 0.3, 0.2, 0.1}
	user := isrl.SimulatedUser{Utility: hidden}
	res, err := agent.Run(ds, user, 0.1, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquestions asked: %d\n", res.Rounds)
	for i, qa := range res.Trace {
		winner, loser := qa.I, qa.J
		if !qa.PreferredI {
			winner, loser = qa.J, qa.I
		}
		fmt.Printf("  q%d: tuple #%d preferred over #%d\n", i+1, winner, loser)
	}
	fmt.Printf("\nrecommended tuple #%d: %v\n", res.PointIndex, res.Point)
	fmt.Printf("actual regret ratio: %.4f (guaranteed ≤ 0.10)\n", ds.RegretRatio(res.Point, hidden))
}
