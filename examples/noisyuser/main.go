// Noisy users — the paper's future-work scenario (§VI): real users make
// mistakes. This example measures how both RL algorithms degrade as the
// probability of a flipped answer grows, reporting questions asked and the
// regret actually achieved. The exact certificates of EA assume truthful
// answers, so under noise its guarantee becomes best-effort — quantified
// here.
//
//	go run ./examples/noisyuser
package main

import (
	"fmt"
	"log"
	"math/rand"

	"isrl"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	ds := isrl.Anticorrelated(rng, 3000, 3).Skyline()
	const eps = 0.1
	const trials = 10

	ea := isrl.NewEA(ds, eps, isrl.EAConfig{}, rng)
	if _, err := ea.Train(isrl.TrainVectors(rng, 3, 300)); err != nil {
		log.Fatal(err)
	}
	aa := isrl.NewAA(ds, eps, isrl.AAConfig{}, rng)
	if _, err := aa.Train(isrl.TrainVectors(rng, 3, 300)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s | %22s | %22s\n", "", "EA", "AA")
	fmt.Printf("%8s | %10s %11s | %10s %11s\n", "flip p", "questions", "mean regret", "questions", "mean regret")
	for _, flip := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		var eaRounds, eaRegret, aaRounds, aaRegret float64
		for t := 0; t < trials; t++ {
			u := isrl.SampleUtility(rng, 3)
			user := isrl.NoisyUser{Utility: u, FlipProb: flip, Rng: rng}
			res, err := ea.Run(ds, user, eps, nil)
			if err != nil {
				log.Fatal(err)
			}
			eaRounds += float64(res.Rounds)
			eaRegret += ds.RegretRatio(res.Point, u)
			res, err = aa.Run(ds, user, eps, nil)
			if err != nil {
				log.Fatal(err)
			}
			aaRounds += float64(res.Rounds)
			aaRegret += ds.RegretRatio(res.Point, u)
		}
		fmt.Printf("%8.2f | %10.1f %11.4f | %10.1f %11.4f\n",
			flip, eaRounds/trials, eaRegret/trials, aaRounds/trials, aaRegret/trials)
	}
	fmt.Println("\nwith noise, regret can exceed eps — the open problem the paper leaves for future work")
}
