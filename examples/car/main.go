// Car shopping — the paper's motivating scenario (§I): Alice wants a car
// and cares about affordability, condition and fuel economy in some hidden
// proportion. This example runs the full low-dimensional algorithm line-up
// on the Car dataset stand-in and compares how many questions each one
// needs before it can recommend a car within 10% of Alice's true favorite.
//
//	go run ./examples/car
package main

import (
	"fmt"
	"log"
	"math/rand"

	"isrl"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ds := isrl.SyntheticCar(rng).Skyline()
	fmt.Printf("car market: %d undominated cars (of 10,668), attributes: %v\n\n",
		ds.Len(), ds.Attrs)

	// Alice cares mostly about price, then condition, then fuel economy.
	alice := []float64{0.55, 0.30, 0.15}
	user := isrl.SimulatedUser{Utility: alice}
	const eps = 0.1

	ea := isrl.NewEA(ds, eps, isrl.EAConfig{}, rng)
	if _, err := ea.Train(isrl.TrainVectors(rng, ds.Dim(), 500)); err != nil {
		log.Fatal(err)
	}
	aa := isrl.NewAA(ds, eps, isrl.AAConfig{}, rng)
	if _, err := aa.Train(isrl.TrainVectors(rng, ds.Dim(), 500)); err != nil {
		log.Fatal(err)
	}

	algos := []isrl.Algorithm{
		ea,
		aa,
		isrl.NewUHRandom(isrl.UHConfig{}, rand.New(rand.NewSource(8))),
		isrl.NewUHSimplex(isrl.UHConfig{}, rand.New(rand.NewSource(9))),
		isrl.NewSinglePass(isrl.SinglePassConfig{}, rand.New(rand.NewSource(10))),
	}
	fmt.Printf("%-12s %9s %14s %s\n", "algorithm", "questions", "regret ratio", "recommended car")
	for _, alg := range algos {
		res, err := alg.Run(ds, user, eps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9d %14.4f %v\n",
			alg.Name(), res.Rounds, ds.RegretRatio(res.Point, alice), fmtCar(res.Point))
	}
	best := ds.Points[ds.TopPoint(alice)]
	fmt.Printf("\nAlice's true favorite: %v\n", fmtCar(best))
}

func fmtCar(p []float64) string {
	return fmt.Sprintf("afford=%.2f cond=%.2f mpg=%.2f", p[0], p[1], p[2])
}
