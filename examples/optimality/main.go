// How close to optimal is the learned policy? In two dimensions the utility
// space is a segment and the best possible interaction tree (paper §IV-A,
// Figure 1) can be computed exactly by dynamic programming. This example
// builds a 2-d market, solves for the optimal worst-case question count,
// and compares every algorithm against it.
//
//	go run ./examples/optimality
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"isrl"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	ds := isrl.Anticorrelated(rng, 20000, 2).Skyline()
	const eps = 0.002
	fmt.Printf("market: %d skyline tuples, d=2, eps=%.3f\n", ds.Len(), eps)

	opt, err := isrl.OptimalRounds(ds, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal policy (exact interaction-tree DP): %d questions worst-case\n\n", opt)

	ea := isrl.NewEA(ds, eps, isrl.EAConfig{}, rng)
	if _, err := ea.Train(isrl.TrainVectors(rng, 2, 400)); err != nil {
		log.Fatal(err)
	}
	aa := isrl.NewAA(ds, eps, isrl.AAConfig{}, rng)
	if _, err := aa.Train(isrl.TrainVectors(rng, 2, 400)); err != nil {
		log.Fatal(err)
	}
	algos := []isrl.Algorithm{
		ea,
		aa,
		isrl.NewUHRandom(isrl.UHConfig{}, rand.New(rand.NewSource(14))),
		isrl.NewUHSimplex(isrl.UHConfig{}, rand.New(rand.NewSource(15))),
		isrl.NewSinglePass(isrl.SinglePassConfig{}, rand.New(rand.NewSource(16))),
		isrl.NewAdaptive(isrl.AdaptiveConfig{}, rand.New(rand.NewSource(17))),
	}

	const trials = 20
	fmt.Printf("%-12s %12s %10s\n", "algorithm", "mean rounds", "worst")
	for _, alg := range algos {
		var sum, worst int
		for t := 0; t < trials; t++ {
			u := isrl.SampleUtility(rng, 2)
			res, err := alg.Run(ds, isrl.SimulatedUser{Utility: u}, eps, nil)
			if err != nil {
				log.Fatal(err)
			}
			sum += res.Rounds
			if res.Rounds > worst {
				worst = res.Rounds
			}
		}
		fmt.Printf("%-12s %12.1f %10d\n", alg.Name(), float64(sum)/trials, worst)
	}
	fmt.Printf("\n(optimal worst-case for comparison: %d)\n", opt)

	// Render the optimal interaction tree (the paper's Figure 1) to DOT;
	// view with: dot -Tpng itree.dot -o itree.png
	f, err := os.Create("itree.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := isrl.WriteOptimalTreeDOT(ds, eps, f, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal interaction tree written to itree.dot")
}
