// Bring-your-own-data: load a CSV of tuples, preprocess it, train the
// approximate algorithm, persist the model, reload it, and run a search —
// the full lifecycle a downstream application goes through. The example
// generates a small CSV in a temp directory first so it is self-contained.
//
//	go run ./examples/csvsearch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"isrl"
)

func main() {
	dir, err := os.MkdirTemp("", "isrl-csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Pretend this CSV came from your own pipeline.
	csvPath := filepath.Join(dir, "laptops.csv")
	rng := rand.New(rand.NewSource(3))
	raw := isrl.Anticorrelated(rng, 3000, 4)
	raw.Attrs = []string{"battery", "cpu", "display", "value"}
	if err := raw.SaveFile(csvPath); err != nil {
		log.Fatal(err)
	}

	// 1. Load and preprocess: values must be in (0,1], larger preferred;
	// the skyline keeps every tuple that can be someone's favorite.
	ds, err := isrl.LoadDataset(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	ds = ds.Normalize().Skyline()
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d candidate laptops, attrs %v\n", csvPath, ds.Len(), ds.Attrs)

	// 2. Train once, persist the agent.
	const eps = 0.1
	agent := isrl.NewAA(ds, eps, isrl.AAConfig{}, rng)
	if _, err := agent.Train(isrl.TrainVectors(rng, ds.Dim(), 300)); err != nil {
		log.Fatal(err)
	}
	blob, err := agent.Agent().MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	modelPath := filepath.Join(dir, "aa.model")
	if err := os.WriteFile(modelPath, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved: %d bytes\n", len(blob))

	// 3. Later (another process): reload and serve searches.
	blob, err = os.ReadFile(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	served, err := isrl.LoadAA(ds, eps, isrl.AAConfig{}, blob, rng)
	if err != nil {
		log.Fatal(err)
	}
	for _, hidden := range [][]float64{
		{0.7, 0.1, 0.1, 0.1}, // battery-obsessed
		{0.1, 0.6, 0.1, 0.2}, // performance-first
	} {
		res, err := served.Run(ds, isrl.SimulatedUser{Utility: hidden}, eps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %v → %d questions, regret %.4f, pick %v\n",
			hidden, res.Rounds, ds.RegretRatio(res.Point, hidden), res.Point)
	}
}
