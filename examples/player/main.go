// Scouting basketball players — the paper's high-dimensional scenario: the
// Player dataset has twenty attributes, far beyond what polytope-based
// algorithms (EA, UH-Random, UH-Simplex) can handle. This example shows the
// regime where AA earns its keep: it answers in a handful of questions
// where the only other viable algorithm, SinglePass, needs hundreds.
//
//	go run ./examples/player
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"isrl"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	ds := isrl.SyntheticPlayer(rng).Skyline()
	fmt.Printf("player pool: %d undominated players (of 17,386), d=%d\n\n", ds.Len(), ds.Dim())

	// A scout who values scoring above all, with some interest in defense.
	scout := isrl.SampleUtility(rng, ds.Dim())
	user := isrl.SimulatedUser{Utility: scout}
	const eps = 0.15

	fmt.Println("training AA (this is the offline step a deployment does once)...")
	aa := isrl.NewAA(ds, eps, isrl.AAConfig{}, rng)
	start := time.Now()
	if _, err := aa.Train(isrl.TrainVectors(rng, ds.Dim(), 200)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	algos := []isrl.Algorithm{
		aa,
		isrl.NewSinglePass(isrl.SinglePassConfig{}, rand.New(rand.NewSource(12))),
	}
	fmt.Printf("%-12s %9s %10s %14s\n", "algorithm", "questions", "time", "regret ratio")
	for _, alg := range algos {
		t0 := time.Now()
		res, err := alg.Run(ds, user, eps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9d %10v %14.4f\n",
			alg.Name(), res.Rounds, time.Since(t0).Round(time.Millisecond),
			ds.RegretRatio(res.Point, scout))
	}
}
