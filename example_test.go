package isrl_test

import (
	"fmt"
	"math/rand"

	"isrl"
)

// Example_quickstart shows the minimal end-to-end flow: generate data,
// train the exact algorithm, and run one interactive session against a
// simulated user. (Compiled as documentation; see examples/quickstart for a
// runnable program.)
func Example_quickstart() {
	rng := rand.New(rand.NewSource(1))
	ds := isrl.Anticorrelated(rng, 2000, 3).Skyline()

	agent := isrl.NewEA(ds, 0.1, isrl.EAConfig{}, rng)
	if _, err := agent.Train(isrl.TrainVectors(rng, 3, 100)); err != nil {
		panic(err)
	}

	user := isrl.SimulatedUser{Utility: []float64{0.5, 0.3, 0.2}}
	res, err := agent.Run(ds, user, 0.1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rounds <= 200) // certified within eps after few questions
	// Output: true
}

// Example_customUser shows how to plug a real questioner into any
// algorithm: implement isrl.User, optionally wrapped for auditing.
func Example_customUser() {
	rng := rand.New(rand.NewSource(2))
	ds := isrl.SyntheticCar(rng).Skyline()

	// Any type with Prefer(pi, pj []float64) bool is a User. Production
	// code would ask a human; here a fixed rule stands in.
	favorCheap := isrl.UserFunc(func(pi, pj []float64) bool {
		return pi[0] >= pj[0] // always pick the more affordable car
	})
	audited := &isrl.RecordingUser{Inner: favorCheap}

	alg := isrl.NewUHSimplex(isrl.UHConfig{}, rng)
	res, err := alg.Run(ds, audited, 0.15, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(audited.Record) >= res.Rounds)
	// Output: true
}
