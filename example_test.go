package isrl_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"

	"isrl"
	"isrl/client"
)

// Example_quickstart shows the minimal end-to-end flow: generate data,
// train the exact algorithm, and run one interactive session against a
// simulated user. (Compiled as documentation; see examples/quickstart for a
// runnable program.)
func Example_quickstart() {
	rng := rand.New(rand.NewSource(1))
	ds := isrl.Anticorrelated(rng, 2000, 3).Skyline()

	agent := isrl.NewEA(ds, 0.1, isrl.EAConfig{}, rng)
	if _, err := agent.Train(isrl.TrainVectors(rng, 3, 100)); err != nil {
		panic(err)
	}

	user := isrl.SimulatedUser{Utility: []float64{0.5, 0.3, 0.2}}
	res, err := agent.Run(ds, user, 0.1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rounds <= 200) // certified within eps after few questions
	// Output: true
}

// Example_customUser shows how to plug a real questioner into any
// algorithm: implement isrl.User, optionally wrapped for auditing.
func Example_customUser() {
	rng := rand.New(rand.NewSource(2))
	ds := isrl.SyntheticCar(rng).Skyline()

	// Any type with Prefer(pi, pj []float64) bool is a User. Production
	// code would ask a human; here a fixed rule stands in.
	favorCheap := isrl.UserFunc(func(pi, pj []float64) bool {
		return pi[0] >= pj[0] // always pick the more affordable car
	})
	audited := &isrl.RecordingUser{Inner: favorCheap}

	alg := isrl.NewUHSimplex(isrl.UHConfig{}, rng)
	res, err := alg.Run(ds, audited, 0.15, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(audited.Record) >= res.Rounds)
	// Output: true
}

// Example_resilientClient runs a full session through the client SDK: the
// server side is the same handler isrl-serve mounts, and the client brings
// retries, backoff and the exactly-once round protocol. Against a healthy
// in-process server no retry fires, but the same code survives dropped and
// truncated connections unchanged (see TestChaosClientProxyExactlyOnce).
func Example_resilientClient() {
	rng := rand.New(rand.NewSource(3))
	ds := isrl.Anticorrelated(rng, 1000, 3).Skyline()
	srv := httptest.NewServer(isrl.NewHTTPServer(ds, 0.1, func() isrl.Algorithm {
		return isrl.NewUHSimplex(isrl.UHConfig{}, rand.New(rand.NewSource(4)))
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	truth := isrl.SimulatedUser{Utility: []float64{0.5, 0.3, 0.2}}
	res, err := c.Run(context.Background(), func(q client.Question) bool {
		return truth.Prefer(q.First, q.Second)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rounds > 0 && len(res.Point) == 3)
	// Output: true
}
