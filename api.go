package isrl

import (
	"io"
	"math/rand"
	"net/http"

	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/exp"
	"isrl/internal/geom"
	"isrl/internal/itree"
	"isrl/internal/server"
)

// Core problem types (see internal/core for full documentation).
type (
	// Dataset is a set of tuples in (0,1]^d, larger preferred.
	Dataset = dataset.Dataset
	// User answers pairwise comparison questions.
	User = core.User
	// SimulatedUser answers truthfully from a hidden utility vector.
	SimulatedUser = core.SimulatedUser
	// NoisyUser flips answers with a fixed probability.
	NoisyUser = core.NoisyUser
	// RecordingUser wraps a User and transcripts every comparison.
	RecordingUser = core.RecordingUser
	// MajorityUser asks K times and takes the majority (noise robustness).
	MajorityUser = core.MajorityUser
	// UserFunc adapts a comparison function to the User interface.
	UserFunc = core.UserFunc
	// Algorithm is any interactive regret-query algorithm.
	Algorithm = core.Algorithm
	// Result is an algorithm's outcome: returned tuple, rounds, transcript.
	Result = core.Result
	// QA is one question/answer record.
	QA = core.QA
	// Observer receives a per-round snapshot during interaction.
	Observer = core.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = core.ObserverFunc
	// Session drives an interactive search step by step (Next/Answer),
	// for applications that cannot block inside Run.
	Session = core.Session
)

// ErrSessionClosed is returned by Session.Result after Close.
var ErrSessionClosed = core.ErrSessionClosed

// NewSession starts alg on ds in a background goroutine and returns the
// pull-based handle: Next yields the question to show, Answer submits the
// choice, Result returns the outcome.
func NewSession(alg Algorithm, ds *Dataset, eps float64) *Session {
	return core.NewSession(alg, ds, eps)
}

// The paper's algorithms.
type (
	// EA is the exact RL algorithm (§IV-B).
	EA = ea.EA
	// EAConfig tunes EA; the zero value selects the paper's settings.
	EAConfig = ea.Config
	// AA is the approximate, high-dimension-capable RL algorithm (§IV-C).
	AA = aa.AA
	// AAConfig tunes AA; the zero value selects the paper's settings.
	AAConfig = aa.Config
)

// Baselines from the literature.
type (
	// UHRandom is the SIGMOD'19 random-pair baseline.
	UHRandom = baselines.UHRandom
	// UHSimplex is the SIGMOD'19 greedy baseline.
	UHSimplex = baselines.UHSimplex
	// SinglePass is the KDD'23 streaming baseline.
	SinglePass = baselines.SinglePass
	// UtilityApprox is the SIGMOD'12 fake-tuple baseline.
	UtilityApprox = baselines.UtilityApprox
	// Adaptive is the VLDB'15 preference-learning baseline.
	Adaptive = baselines.Adaptive
	// UHConfig tunes the UH family.
	UHConfig = baselines.UHConfig
	// SinglePassConfig tunes SinglePass.
	SinglePassConfig = baselines.SinglePassConfig
	// UtilityApproxConfig tunes UtilityApprox.
	UtilityApproxConfig = baselines.UtilityApproxConfig
	// AdaptiveConfig tunes Adaptive.
	AdaptiveConfig = baselines.AdaptiveConfig
)

// Experiment harness (regenerates the paper's figures).
type (
	// ExpConfig scales an experiment run.
	ExpConfig = exp.Config
	// ExpTable is a rendered experiment result.
	ExpTable = exp.Table
	// Experiment is a registered reproduction of one paper figure.
	Experiment = exp.Experiment
)

// NewEA creates an untrained exact algorithm for ds and threshold eps.
// Train it with EA.Train before use (an untrained EA is still exact, just
// short-term-blind like the baselines).
func NewEA(ds *Dataset, eps float64, cfg EAConfig, rng *rand.Rand) *EA {
	return ea.New(ds, eps, cfg, rng)
}

// LoadEA restores a trained EA from a serialized agent blob.
func LoadEA(ds *Dataset, eps float64, cfg EAConfig, blob []byte, rng *rand.Rand) (*EA, error) {
	return ea.Load(ds, eps, cfg, blob, rng)
}

// NewAA creates an untrained approximate algorithm for ds and threshold eps.
func NewAA(ds *Dataset, eps float64, cfg AAConfig, rng *rand.Rand) *AA {
	return aa.New(ds, eps, cfg, rng)
}

// LoadAA restores a trained AA from a serialized agent blob.
func LoadAA(ds *Dataset, eps float64, cfg AAConfig, blob []byte, rng *rand.Rand) (*AA, error) {
	return aa.Load(ds, eps, cfg, blob, rng)
}

// NewUHRandom creates the UH-Random baseline.
func NewUHRandom(cfg UHConfig, rng *rand.Rand) *UHRandom { return baselines.NewUHRandom(cfg, rng) }

// NewUHSimplex creates the UH-Simplex baseline.
func NewUHSimplex(cfg UHConfig, rng *rand.Rand) *UHSimplex { return baselines.NewUHSimplex(cfg, rng) }

// NewSinglePass creates the SinglePass baseline.
func NewSinglePass(cfg SinglePassConfig, rng *rand.Rand) *SinglePass {
	return baselines.NewSinglePass(cfg, rng)
}

// NewUtilityApprox creates the UtilityApprox baseline.
func NewUtilityApprox(cfg UtilityApproxConfig) *UtilityApprox {
	return baselines.NewUtilityApprox(cfg)
}

// NewAdaptive creates the Adaptive preference-learning baseline.
func NewAdaptive(cfg AdaptiveConfig, rng *rand.Rand) *Adaptive {
	return baselines.NewAdaptive(cfg, rng)
}

// OptimalRounds computes the exact minimum worst-case number of questions
// for a 2-dimensional dataset at threshold eps, by solving the paper's
// interaction tree optimally (package itree). It errors for d ≠ 2.
func OptimalRounds(ds *Dataset, eps float64) (int, error) {
	tree, err := itree.New(ds, eps)
	if err != nil {
		return 0, err
	}
	return tree.OptimalRounds(), nil
}

// WriteOptimalTreeDOT renders the optimal interaction tree of a
// 2-dimensional dataset in Graphviz DOT format — the paper's Figure 1 for
// real data. maxDepth ≤ 0 renders the whole tree.
func WriteOptimalTreeDOT(ds *Dataset, eps float64, w io.Writer, maxDepth int) error {
	tree, err := itree.New(ds, eps)
	if err != nil {
		return err
	}
	return tree.WriteDOT(w, maxDepth)
}

// Dataset constructors.

// Anticorrelated generates the paper's synthetic benchmark distribution.
func Anticorrelated(rng *rand.Rand, n, d int) *Dataset { return dataset.Anticorrelated(rng, n, d) }

// Independent generates i.i.d. uniform tuples.
func Independent(rng *rand.Rand, n, d int) *Dataset { return dataset.Independent(rng, n, d) }

// Correlated generates tuples sharing a latent quality factor.
func Correlated(rng *rand.Rand, n, d int) *Dataset { return dataset.Correlated(rng, n, d) }

// SyntheticCar builds the stand-in for the paper's Car dataset
// (10,668 × 3; see DESIGN.md §3 for the substitution rationale).
func SyntheticCar(rng *rand.Rand) *Dataset { return dataset.SyntheticCar(rng) }

// SyntheticPlayer builds the stand-in for the paper's Player dataset
// (17,386 × 20; see DESIGN.md §3).
func SyntheticPlayer(rng *rand.Rand) *Dataset { return dataset.SyntheticPlayer(rng) }

// LoadDataset reads a CSV dataset (header row + numeric columns).
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// TrainVectors samples n utility vectors uniformly from the d-dimensional
// utility space — the training-set construction of §V.
func TrainVectors(rng *rand.Rand, d, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = geom.SampleSimplex(rng, d)
	}
	return out
}

// SampleUtility draws one utility vector uniformly from the utility space.
func SampleUtility(rng *rand.Rand, d int) []float64 { return geom.SampleSimplex(rng, d) }

// Experiment access.

// Experiments lists every registered reproduction (one per paper figure,
// plus ablations).
func Experiments() []Experiment { return exp.Registry }

// ExperimentByID finds a registered experiment, e.g. "fig9".
func ExperimentByID(id string) (Experiment, error) { return exp.ByID(id) }

// Experiment scale presets.
var (
	// TinyScale runs in seconds (unit-test sized).
	TinyScale = exp.Tiny
	// QuickScale runs in minutes (default CLI scale).
	QuickScale = exp.Quick
	// FullScale matches the paper's workload sizes.
	FullScale = exp.Full
)

// NewHTTPServer returns an http.Handler exposing interactive sessions over
// a small JSON API (POST /sessions, GET /sessions/{id},
// POST /sessions/{id}/answer, DELETE /sessions/{id}). factory builds a
// fresh algorithm per session; see cmd/isrl-serve for a complete server.
func NewHTTPServer(ds *Dataset, eps float64, factory func() Algorithm) http.Handler {
	return server.New(ds, eps, func(int64) Algorithm { return factory() })
}
