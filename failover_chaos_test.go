package isrl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"isrl/client"
	"isrl/internal/core"
	"isrl/internal/ea"
	"isrl/internal/netfault"
	"isrl/internal/obs"
	"isrl/internal/repl"
	"isrl/internal/server"
	"isrl/internal/wal"
)

// replServer is chaosServer with a replication node attached: same dataset,
// factory and session-seed base, so a primary/follower pair and the solo
// baseline all produce byte-identical results for the same answer stream.
func replServer(t *testing.T, j *wal.Log, node server.Replication) *server.Server {
	t.Helper()
	ds := chaosDataset()
	factory := func(seed int64) core.Algorithm {
		return ea.New(ds, 0.1, ea.Config{}, rand.New(rand.NewSource(seed)))
	}
	return server.New(ds, 0.1, factory,
		server.WithJournal(j), server.WithSessionSeed(11), server.WithReplication(node))
}

// failoverRun drives chaosSessions EA sessions through a multi-endpoint
// client, invoking hook before each answer with (session index, answers so
// far) — the kill switch's trigger point. Results come back JSON-marshaled
// in order for byte comparison.
func failoverRun(t *testing.T, bases []string, hook func(session, answer int)) []byte {
	t.Helper()
	c := client.NewMulti(bases,
		client.WithHTTPClient(&http.Client{Transport: &http.Transport{DisableKeepAlives: true}}),
		client.WithRegistry(obs.NewRegistry()),
		client.WithAttempts(15),
		client.WithPerTryTimeout(3*time.Second),
		client.WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		client.WithJitterSeed(3),
		client.WithBreaker(6, 50*time.Millisecond))
	users := [][]float64{
		{0.2, 0.5, 0.3}, {0.7, 0.1, 0.2}, {0.1, 0.1, 0.8}, {0.4, 0.4, 0.2},
		{0.9, 0.05, 0.05}, {0.3, 0.3, 0.4}, {0.05, 0.9, 0.05}, {0.5, 0.25, 0.25},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out bytes.Buffer
	for i := 0; i < chaosSessions; i++ {
		truth := core.SimulatedUser{Utility: users[i%len(users)]}
		answers := 0
		res, err := c.Run(ctx, func(q client.Question) bool {
			if hook != nil {
				hook(i, answers)
			}
			answers++
			return truth.Prefer(q.First, q.Second)
		})
		if err != nil {
			t.Fatalf("session %d through client failed: %v", i, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(data)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestChaosFailoverKillPrimary is the acceptance test for hot-standby
// failover: sessions run through a netfault proxy at a primary that
// replicates to a follower; mid-session the primary is killed, the
// follower's watchdog promotes it, and the multi-endpoint client finishes
// every session against the new primary — byte-identical to a fault-free
// solo run. Afterwards the deposed primary must be fenced: its journal
// rejects appends with ErrStaleEpoch and its HTTP surface sheds with a
// stale-epoch 503.
func TestChaosFailoverKillPrimary(t *testing.T) {
	// Baseline: fault-free solo run.
	cleanDir := t.TempDir()
	cleanSrv, cleanJ := chaosServer(t, cleanDir)
	cleanTS := httptest.NewServer(cleanSrv)
	want := failoverRun(t, []string{cleanTS.URL}, nil)
	cleanTS.Close()
	cleanJ.Close()

	// The pair: follower first (the primary dials it), then primary.
	dirA, dirB := t.TempDir(), t.TempDir()
	fLog, _, err := wal.Open(dirB, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fLog.Close()
	fNode, err := repl.NewFollower(fLog, "127.0.0.1:0", repl.Options{
		Heartbeat:     25 * time.Millisecond,
		PromoteAfter:  250 * time.Millisecond,
		PromoteJitter: 50 * time.Millisecond,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fSrv := replServer(t, fLog, fNode)
	fNode.OnPromote(func(epoch uint64, states []wal.SessionState) {
		n := fSrv.Recover(states)
		t.Logf("promoted at epoch %d with %d live sessions", epoch, n)
	})
	fNode.Start()
	defer fNode.Close()
	fTS := httptest.NewServer(fSrv)
	defer fTS.Close()

	pLog, _, err := wal.Open(dirA, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pLog.Close()
	pNode := repl.NewPrimary(pLog, fNode.Addr(), repl.Options{
		Heartbeat:     25 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
		Seed:          8,
	})
	pSrv := replServer(t, pLog, pNode)
	pTS := httptest.NewServer(pSrv)
	defer pTS.Close()
	pNode.Start()
	defer pNode.Close()

	// Client traffic reaches the primary through the chaos proxy; the
	// follower endpoint is the standby in the client's rotation.
	tu, err := url.Parse(pTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netfault.ParsePlan("kill=0.15")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netfault.New(tu.Host, plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The kill switch: mid-way through the fourth session, wait for the
	// follower to fully catch up, then take the primary down — HTTP and
	// replication link both. The fallback arm guarantees the kill happens
	// even if a session finishes in fewer rounds than expected.
	killed := false
	kill := func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if r, _ := pNode.Lag(); r == 0 {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatal("follower never caught up before the kill")
			}
			time.Sleep(2 * time.Millisecond)
		}
		proxy.Close()
		pNode.Close()
		killed = true
	}
	hook := func(session, answer int) {
		if killed {
			return
		}
		if (session == 3 && answer >= 2) || session > 3 {
			kill()
		}
	}
	got := failoverRun(t, []string{"http://" + proxy.Addr(), fTS.URL}, hook)

	if !killed {
		t.Fatal("kill switch never fired; the failover path was not exercised")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("results after failover differ from fault-free run:\nfailover: %s\n   clean: %s", got, want)
	}
	if role := fNode.Role(); role != "primary" {
		t.Errorf("follower role after failover = %q, want primary", role)
	}
	if fLog.Epoch() != 1 {
		t.Errorf("promoted journal epoch = %d, want 1", fLog.Epoch())
	}

	// The revenant: the deposed primary restarts its ship loop, hears about
	// the higher epoch, and fences its own journal.
	revenant := repl.NewPrimary(pLog, fNode.Addr(), repl.Options{
		Heartbeat:     25 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
		Seed:          10,
	})
	revenant.Start()
	defer revenant.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !pLog.Fenced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !pLog.Fenced() {
		t.Fatal("deposed primary's journal never fenced")
	}
	if err := pLog.AppendAnswer("s1", true); !errors.Is(err, wal.ErrStaleEpoch) {
		t.Errorf("deposed primary append: %v, want wal.ErrStaleEpoch", err)
	}
	// And its HTTP surface sheds session traffic with the stale-epoch 503.
	resp, err := http.Post(pTS.URL+"/sessions/s1/answer", "application/json",
		strings.NewReader(`{"prefer_first":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("answer POST to deposed primary: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "stale epoch") {
		t.Errorf("deposed primary rejection body %q lacks stale-epoch hint", body)
	}

	// Exactly-once audit of the promoted journal: every session's answer
	// rounds strictly increasing, every create present exactly once —
	// replicated records and post-promotion appends alike.
	recs, err := wal.Records(dirB)
	if err != nil {
		t.Fatal(err)
	}
	creates := 0
	lastRound := map[string]int{}
	for _, r := range recs {
		switch r.Kind {
		case wal.KindCreate:
			creates++
		case wal.KindAnswer:
			if r.Round != lastRound[r.ID]+1 {
				t.Errorf("journaled answer rounds for %s not strictly increasing: %d after %d",
					r.ID, r.Round, lastRound[r.ID])
			}
			lastRound[r.ID] = r.Round
		}
	}
	if creates != chaosSessions {
		t.Errorf("promoted journal holds %d create records, want %d", creates, chaosSessions)
	}
}
