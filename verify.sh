#!/bin/sh
# Tier-1 verification gate: everything must be gofmt-clean, build, vet
# clean, and pass the full test suite under the race detector, plus a
# double-run chaos pass over the fault-injection and noisy-oracle suites.
# CI and pre-merge checks run this exact script; keep it dependency-free
# (sh + the go toolchain).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -race -run 'Fault|Noisy|Chaos|Recover|Journal|Proxy|Client|Repl|Failover|Scrub|Repair' -count=2 ./...

# Fuzz smoke: the WAL frame parser must survive a short fuzzing burst (the
# seed corpus plus a few seconds of mutation) — it guards both the on-disk
# journal and the replication wire.
go test -fuzz '^FuzzReadFrame$' -fuzztime=5s -run '^FuzzReadFrame$' ./internal/wal/

# Benchmark smoke + regression gate: the hot-path harness must run end to
# end, emit well-formed JSON (checked with grep to stay dependency-free),
# and not regress against the committed baseline — speedups the baseline
# reports as real wins (>=1.1x) must not flip into slowdowns, and
# fixed-workload allocation counts must stay within 25% + 2 allocs of the
# baseline. The gate skips itself when the baseline was recorded on
# different hardware. The trace_disabled_span row doubles as the
# tracing-overhead gate — the harness itself fails if the disabled path
# costs any allocations.
go run ./cmd/isrl-bench -hotpaths -quick -out /tmp/isrl_hotpaths_smoke.json -compare BENCH_hotpaths.json
grep -q '"speedup"' /tmp/isrl_hotpaths_smoke.json
grep -q '"dqn_candidate_scoring"' /tmp/isrl_hotpaths_smoke.json
grep -q '"trace_disabled_span"' /tmp/isrl_hotpaths_smoke.json
grep -q '"round_geometry_incremental"' /tmp/isrl_hotpaths_smoke.json
grep -q '"rounds_per_sec"' /tmp/isrl_hotpaths_smoke.json
rm -f /tmp/isrl_hotpaths_smoke.json
