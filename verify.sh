#!/bin/sh
# Tier-1 verification gate: everything must be gofmt-clean, build, vet
# clean, and pass the full test suite under the race detector, plus a
# double-run chaos pass over the fault-injection and noisy-oracle suites.
# CI and pre-merge checks run this exact script; keep it dependency-free
# (sh + the go toolchain).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -race -run 'Fault|Noisy|Chaos|Recover|Journal|Proxy|Client' -count=2 ./...

# Benchmark smoke: the hot-path harness must run end to end and emit
# well-formed JSON (checked with grep to stay dependency-free). The
# trace_disabled_span row doubles as the tracing-overhead gate — the
# harness itself fails if the disabled path costs any allocations.
go run ./cmd/isrl-bench -hotpaths -quick -out /tmp/isrl_hotpaths_smoke.json
grep -q '"speedup"' /tmp/isrl_hotpaths_smoke.json
grep -q '"dqn_candidate_scoring"' /tmp/isrl_hotpaths_smoke.json
grep -q '"trace_disabled_span"' /tmp/isrl_hotpaths_smoke.json
rm -f /tmp/isrl_hotpaths_smoke.json
