package isrl

// One benchmark per table/figure of the paper's evaluation (§V). Each bench
// executes the registered experiment that regenerates the figure and
// reports the headline series — mean interactive rounds per algorithm — as
// custom benchmark metrics, so `go test -bench=.` output doubles as a
// compact reproduction summary.
//
// Scale is controlled with ISRL_BENCH_SCALE = tiny (default) | quick | full.
// Tiny keeps the whole suite in the minutes range; full matches the paper's
// workload sizes (n=100,000, 10,000 training episodes) and takes hours.

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"isrl/internal/exp"
)

func benchConfig() exp.Config {
	switch os.Getenv("ISRL_BENCH_SCALE") {
	case "full":
		return exp.Full()
	case "quick":
		return exp.Quick()
	default:
		c := exp.Tiny()
		c.N = 2000
		c.TrainEpisodes = 100
		c.Trials = 3
		return c
	}
}

// runFigure executes one registered experiment per iteration and reports
// the per-algorithm mean of the given column as custom metrics.
func runFigure(b *testing.B, id, metricCol string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	if last == nil {
		return
	}
	col := -1
	algCol := -1
	for i, c := range last.Columns {
		switch c {
		case metricCol:
			col = i
		case "algorithm", "variant":
			algCol = i
		}
	}
	if col < 0 || algCol < 0 {
		return
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, row := range last.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		sums[row[algCol]] += v
		counts[row[algCol]]++
	}
	for alg, sum := range sums {
		name := strings.ReplaceAll(alg, " ", "-") + "-" + metricCol
		b.ReportMetric(sum/float64(counts[alg]), name)
	}
}

func BenchmarkFig6aTrainingSize(b *testing.B)   { runFigure(b, "fig6a", "rounds") }
func BenchmarkFig6bActionSpace(b *testing.B)    { runFigure(b, "fig6b", "rounds") }
func BenchmarkFig7ProgressD4(b *testing.B)      { runFigure(b, "fig7", "max_regret") }
func BenchmarkFig8ProgressD20(b *testing.B)     { runFigure(b, "fig8", "max_regret") }
func BenchmarkFig9VaryEpsD4(b *testing.B)       { runFigure(b, "fig9", "rounds") }
func BenchmarkFig10VaryEpsD20(b *testing.B)     { runFigure(b, "fig10", "rounds") }
func BenchmarkFig11VaryND4(b *testing.B)        { runFigure(b, "fig11", "rounds") }
func BenchmarkFig12VaryND20(b *testing.B)       { runFigure(b, "fig12", "rounds") }
func BenchmarkFig13VaryDLow(b *testing.B)       { runFigure(b, "fig13", "rounds") }
func BenchmarkFig14VaryDHigh(b *testing.B)      { runFigure(b, "fig14", "rounds") }
func BenchmarkFig15Car(b *testing.B)            { runFigure(b, "fig15", "rounds") }
func BenchmarkFig16Player(b *testing.B)         { runFigure(b, "fig16", "rounds") }
func BenchmarkAblationState(b *testing.B)       { runFigure(b, "abl-state", "rounds") }
func BenchmarkAblationAction(b *testing.B)      { runFigure(b, "abl-action", "rounds") }
func BenchmarkAblationGreedyCover(b *testing.B) { runFigure(b, "abl-greedy", "rounds") }
func BenchmarkAblationRL(b *testing.B)          { runFigure(b, "abl-rl", "rounds") }
func BenchmarkAblationDQNRecipe(b *testing.B)   { runFigure(b, "abl-dqn", "rounds") }
func BenchmarkExtNoise(b *testing.B)            { runFigure(b, "ext-noise", "regret") }
func BenchmarkExtOptimalityGap(b *testing.B)    { runFigure(b, "ext-opt", "rounds") }
func BenchmarkExtAdaptive(b *testing.B)         { runFigure(b, "ext-adaptive", "rounds") }
