// Package vec provides the dense vector and matrix kernels used by the
// geometry, linear-programming and neural-network packages.
//
// Everything operates on plain []float64 slices so callers can share storage
// with other representations without conversions. Functions that write into a
// destination slice follow the stdlib convention of taking dst first and
// returning it, allocating only when dst is nil or mis-sized.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ, since a silent truncation would corrupt
// every geometric predicate built on top of it.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	var s float64
	for _, ai := range a {
		s += ai * ai
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of a.
func Norm1(a []float64) float64 {
	var s float64
	for _, ai := range a {
		s += math.Abs(ai)
	}
	return s
}

// NormInf returns the L∞ norm of a.
func NormInf(a []float64) float64 {
	var s float64
	for _, ai := range a {
		if v := math.Abs(ai); v > s {
			s = v
		}
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dist length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		d := ai - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sub stores a-b into dst and returns dst. A nil or mis-sized dst is
// reallocated.
func Sub(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d != %d", len(a), len(b)))
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Add stores a+b into dst and returns dst.
func Add(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add length mismatch %d != %d", len(a), len(b)))
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst.
func Scale(dst []float64, s float64, a []float64) []float64 {
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// AddScaled stores a + s*b into dst and returns dst (axpy).
func AddScaled(dst, a []float64, s float64, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: AddScaled length mismatch %d != %d", len(a), len(b)))
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] + s*b[i]
	}
	return dst
}

// Mid stores (a+b)/2 into dst and returns dst.
func Mid(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Mid length mismatch %d != %d", len(a), len(b)))
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = (a[i] + b[i]) / 2
	}
	return dst
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	c := make([]float64, len(a))
	copy(c, a)
	return c
}

// Sum returns the sum of the entries of a.
func Sum(a []float64) float64 {
	var s float64
	for _, ai := range a {
		s += ai
	}
	return s
}

// Min returns the smallest entry of a. It panics on an empty slice.
func Min(a []float64) float64 {
	if len(a) == 0 {
		panic("vec: Min of empty slice")
	}
	m := a[0]
	for _, ai := range a[1:] {
		if ai < m {
			m = ai
		}
	}
	return m
}

// Max returns the largest entry of a. It panics on an empty slice.
func Max(a []float64) float64 {
	if len(a) == 0 {
		panic("vec: Max of empty slice")
	}
	m := a[0]
	for _, ai := range a[1:] {
		if ai > m {
			m = ai
		}
	}
	return m
}

// ArgMax returns the index of the largest entry of a, breaking ties toward
// the smallest index. It panics on an empty slice.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		panic("vec: ArgMax of empty slice")
	}
	k := 0
	for i, ai := range a {
		if ai > a[k] {
			k = i
		}
	}
	return k
}

// Normalize scales a in place to unit L2 norm and returns its former norm.
// A zero vector is left untouched and 0 is returned.
func Normalize(a []float64) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	for i := range a {
		a[i] /= n
	}
	return n
}

// Equal reports whether a and b agree entry-wise within tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// AllFinite reports whether every entry of a is finite (no NaN/Inf).
func AllFinite(a []float64) bool {
	for _, ai := range a {
		if math.IsNaN(ai) || math.IsInf(ai, 0) {
			return false
		}
	}
	return true
}

// Fill sets every entry of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

func ensure(dst []float64, n int) []float64 {
	if len(dst) != n {
		return make([]float64, n)
	}
	return dst
}
