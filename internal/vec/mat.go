package vec

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix. The zero value is an empty matrix; use
// NewMat to allocate one with a given shape.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat returns a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMat negative shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec stores m·x into dst and returns dst.
func (m *Mat) MulVec(dst, x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec shape mismatch %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	dst = ensure(dst, m.Rows)
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// MulTransVec stores mᵀ·x into dst and returns dst.
func (m *Mat) MulTransVec(dst, x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("vec: MulTransVec shape mismatch %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	dst = ensure(dst, m.Cols)
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, rij := range row {
			dst[j] += rij * xi
		}
	}
	return dst
}

// SolveLinear solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are left unmodified. It reports failure when the
// system is (numerically) singular, i.e. a pivot falls below tol.
func SolveLinear(A *Mat, b []float64, tol float64) ([]float64, bool) {
	var s LinSolver
	return s.Solve(nil, A, b, tol)
}

// LinSolver is reusable scratch for repeated SolveLinear-style solves of
// similar size, avoiding the per-call augmented-matrix allocation. The zero
// value is ready to use; not safe for concurrent use.
type LinSolver struct {
	aug Mat
}

// Solve is SolveLinear writing the solution into dst (grown when too small).
// The elimination is arithmetic-for-arithmetic the same as SolveLinear, so
// results are bit-identical. On failure dst's contents are unspecified.
func (s *LinSolver) Solve(dst []float64, A *Mat, b []float64, tol float64) ([]float64, bool) {
	n := A.Rows
	if A.Cols != n || len(b) != n {
		panic(fmt.Sprintf("vec: SolveLinear shape mismatch %dx%d, b=%d", A.Rows, A.Cols, len(b)))
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Work on an augmented copy.
	if cap(s.aug.Data) < n*(n+1) {
		s.aug.Data = make([]float64, n*(n+1))
	}
	s.aug.Rows, s.aug.Cols = n, n+1
	s.aug.Data = s.aug.Data[:n*(n+1)]
	aug := &s.aug
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], A.Row(i))
		aug.Set(i, n, b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < tol {
			return nil, false
		}
		if p != col {
			pr, cr := aug.Row(p), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		piv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / piv
			if f == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for j := col; j <= n; j++ {
				rr[j] -= f * cr[j]
			}
		}
	}
	// Back substitution.
	x := ensure(dst, n)
	for i := n - 1; i >= 0; i-- {
		s := aug.At(i, n)
		row := aug.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, true
}

// Rank returns the numerical rank of A using Gaussian elimination with
// partial pivoting and the given tolerance.
func Rank(A *Mat, tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	m := A.Clone()
	rank := 0
	for col := 0; col < m.Cols && rank < m.Rows; col++ {
		p, best := -1, tol
		for r := rank; r < m.Rows; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if p < 0 {
			continue
		}
		if p != rank {
			pr, cr := m.Row(p), m.Row(rank)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		piv := m.At(rank, col)
		for r := rank + 1; r < m.Rows; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			rr, kr := m.Row(r), m.Row(rank)
			for j := col; j < m.Cols; j++ {
				rr[j] -= f * kr[j]
			}
		}
		rank++
	}
	return rank
}
