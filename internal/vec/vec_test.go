package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 0.5}, []float64{2, 4}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	a := []float64{3, -4}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm=%v want 5", got)
	}
	if got := Norm1(a); got != 7 {
		t.Errorf("Norm1=%v want 7", got)
	}
	if got := NormInf(a); got != 4 {
		t.Errorf("NormInf=%v want 4", got)
	}
	if got := Dist([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Errorf("Dist=%v want 5", got)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, b := []float64{1, 2, 3}, []float64{4, 5, 6}
	if got := Sub(nil, b, a); !Equal(got, []float64{3, 3, 3}, 0) {
		t.Errorf("Sub=%v", got)
	}
	if got := Add(nil, a, b); !Equal(got, []float64{5, 7, 9}, 0) {
		t.Errorf("Add=%v", got)
	}
	if got := Scale(nil, 2, a); !Equal(got, []float64{2, 4, 6}, 0) {
		t.Errorf("Scale=%v", got)
	}
	if got := AddScaled(nil, a, 2, b); !Equal(got, []float64{9, 12, 15}, 0) {
		t.Errorf("AddScaled=%v", got)
	}
	if got := Mid(nil, a, b); !Equal(got, []float64{2.5, 3.5, 4.5}, 0) {
		t.Errorf("Mid=%v", got)
	}
}

func TestSubReusesDst(t *testing.T) {
	dst := make([]float64, 2)
	out := Sub(dst, []float64{3, 4}, []float64{1, 1})
	if &out[0] != &dst[0] {
		t.Error("Sub should reuse a correctly sized dst")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	a := []float64{2, -1, 5, 5, 0}
	if Min(a) != -1 || Max(a) != 5 {
		t.Errorf("Min/Max wrong: %v %v", Min(a), Max(a))
	}
	if got := ArgMax(a); got != 2 {
		t.Errorf("ArgMax=%d want 2 (first of ties)", got)
	}
	if Sum(a) != 11 {
		t.Errorf("Sum=%v want 11", Sum(a))
	}
}

func TestNormalize(t *testing.T) {
	a := []float64{3, 4}
	n := Normalize(a)
	if n != 5 {
		t.Errorf("Normalize returned %v want 5", n)
	}
	if math.Abs(Norm(a)-1) > 1e-15 {
		t.Errorf("normalized norm %v", Norm(a))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Error("Normalize(0) must be a no-op returning 0")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Error("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Error("NaN/Inf not detected")
	}
}

// squash maps arbitrary float64s into [-1e6, 1e6] so properties are tested
// away from the overflow region of float64 arithmetic.
func squash(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		if math.IsNaN(v) {
			v = 0
		}
		out[i] = math.Tanh(v) * 1e6
	}
	return out
}

// Property: Cauchy–Schwarz, |a·b| ≤ ‖a‖‖b‖.
func TestDotCauchySchwarz(t *testing.T) {
	f := func(a, b [6]float64) bool {
		av, bv := squash(a[:]), squash(b[:])
		return math.Abs(Dot(av, bv)) <= Norm(av)*Norm(bv)+1e-6*(1+Norm(av)*Norm(bv))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestDistTriangle(t *testing.T) {
	f := func(a, b, c [5]float64) bool {
		av, bv, cv := squash(a[:]), squash(b[:]), squash(c[:])
		return Dist(av, cv) <= Dist(av, bv)+Dist(bv, cv)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub then Add round-trips (inputs squashed to avoid overflow at
// the extremes of the float64 range, where x-y is not representable).
func TestSubAddRoundTrip(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := squash(a[:]), squash(b[:])
		d := Sub(nil, av, bv)
		back := Add(nil, d, bv)
		return Equal(back, av, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	A := NewMat(2, 2)
	A.Set(0, 0, 2)
	A.Set(0, 1, 1)
	A.Set(1, 0, 1)
	A.Set(1, 1, 3)
	x, ok := SolveLinear(A, []float64{5, 10}, 0)
	if !ok {
		t.Fatal("solve failed")
	}
	if !Equal(x, []float64{1, 3}, 1e-12) {
		t.Errorf("x=%v want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := NewMat(2, 2)
	A.Set(0, 0, 1)
	A.Set(0, 1, 2)
	A.Set(1, 0, 2)
	A.Set(1, 1, 4)
	if _, ok := SolveLinear(A, []float64{1, 2}, 0); ok {
		t.Error("singular system must be rejected")
	}
}

// Property: for random well-conditioned systems, A·x = b holds after solving.
func TestSolveLinearResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		A := NewMat(n, n)
		for i := range A.Data {
			A.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			A.Set(i, i, A.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, ok := SolveLinear(A, b, 0)
		if !ok {
			t.Fatalf("trial %d: unexpected singular", trial)
		}
		r := A.MulVec(nil, x)
		if !Equal(r, b, 1e-8) {
			t.Fatalf("trial %d: residual too large: %v vs %v", trial, r, b)
		}
	}
}

func TestMatMulTransVec(t *testing.T) {
	A := NewMat(2, 3)
	copy(A.Data, []float64{1, 2, 3, 4, 5, 6})
	got := A.MulTransVec(nil, []float64{1, 1})
	if !Equal(got, []float64{5, 7, 9}, 0) {
		t.Errorf("MulTransVec=%v", got)
	}
	got = A.MulVec(nil, []float64{1, 0, 1})
	if !Equal(got, []float64{4, 10}, 0) {
		t.Errorf("MulVec=%v", got)
	}
}

func TestRank(t *testing.T) {
	A := NewMat(3, 3)
	copy(A.Data, []float64{1, 2, 3, 2, 4, 6, 1, 0, 1})
	if got := Rank(A, 0); got != 2 {
		t.Errorf("Rank=%d want 2", got)
	}
	I := NewMat(3, 3)
	I.Set(0, 0, 1)
	I.Set(1, 1, 1)
	I.Set(2, 2, 1)
	if got := Rank(I, 0); got != 3 {
		t.Errorf("Rank(I)=%d want 3", got)
	}
	Z := NewMat(2, 4)
	if got := Rank(Z, 0); got != 0 {
		t.Errorf("Rank(0)=%d want 0", got)
	}
}

func TestMatCloneIndependence(t *testing.T) {
	A := NewMat(1, 2)
	A.Set(0, 0, 1)
	B := A.Clone()
	B.Set(0, 0, 9)
	if A.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}
