package vec

import "fmt"

// Blocked GEMM kernels for the batched neural-network and scoring paths.
//
// Every kernel computes each output element with a single accumulator that
// walks the shared dimension k in index order — exactly the accumulation
// order of the serial Dot/MulVec loops — so a batched result is bit-identical
// to the corresponding sequence of single-vector products. Speed comes from
// register blocking across *independent* output elements (four accumulators
// advancing in lock-step over k), which breaks the one-add-per-cycle latency
// chain of a lone accumulator without ever reassociating a single sum.

// EnsureMat returns m resized to rows×cols, reusing m.Data when it has
// capacity. Contents are unspecified after the call; kernels overwrite their
// destination unless documented otherwise. A nil m allocates fresh.
func EnsureMat(m *Mat, rows, cols int) *Mat {
	if m == nil {
		return NewMat(rows, cols)
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// MatMul stores A·B into dst and returns dst (dst is reshaped as needed; it
// must not alias A or B). Each dst element accumulates over k in index
// order, matching MulVec applied row by row.
func MatMul(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vec: MatMul shape mismatch %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = EnsureMat(dst, a.Rows, b.Cols)
	gemmNN(dst, a, b, false)
	return dst
}

// MatMulAcc accumulates A·B into dst (dst += A·B) and returns dst. dst must
// already have shape a.Rows×b.Cols.
func MatMulAcc(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vec: MatMulAcc shape mismatch %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MatMulAcc dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	gemmNN(dst, a, b, true)
	return dst
}

// gemmNN computes dst = A·B (or dst += A·B when acc), walking k in order per
// element. B is traversed row-wise in the inner loop, so four independent
// column accumulators stream through the same cache lines.
func gemmNN(dst, a, b *Mat, acc bool) {
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+4 <= m; j += 4 {
			var s0, s1, s2, s3 float64
			if acc {
				s0, s1, s2, s3 = drow[j], drow[j+1], drow[j+2], drow[j+3]
			}
			for p := 0; p < k; p++ {
				brow := b.Data[p*m+j : p*m+j+4 : p*m+j+4]
				ap := arow[p]
				s0 += ap * brow[0]
				s1 += ap * brow[1]
				s2 += ap * brow[2]
				s3 += ap * brow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < m; j++ {
			var s float64
			if acc {
				s = drow[j]
			}
			for p := 0; p < k; p++ {
				s += arow[p] * b.Data[p*m+j]
			}
			drow[j] = s
		}
	}
}

// MatMulNT stores A·Bᵀ (+ bias broadcast across rows, when non-nil) into dst
// and returns dst. This is the dense-layer forward shape: X (n×k) times a
// row-major weight matrix W (m×k). Each element starts from bias[j] and
// accumulates over k in index order — bit-identical to the serial
// y[j] = b[j] + Σ w[j,i]·x[i] loop.
func MatMulNT(dst, a, b *Mat, bias []float64) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MatMulNT shape mismatch %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias != nil && len(bias) != b.Rows {
		panic(fmt.Sprintf("vec: MatMulNT bias %d, want %d", len(bias), b.Rows))
	}
	dst = EnsureMat(dst, a.Rows, b.Rows)
	n, k, m := a.Rows, a.Cols, b.Rows
	for i := 0; i < n; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+4 <= m; j += 4 {
			var s0, s1, s2, s3 float64
			if bias != nil {
				s0, s1, s2, s3 = bias[j], bias[j+1], bias[j+2], bias[j+3]
			}
			b0 := b.Row(j)
			b1 := b.Row(j + 1)
			b2 := b.Row(j + 2)
			b3 := b.Row(j + 3)
			for p := 0; p < k; p++ {
				ap := arow[p]
				s0 += ap * b0[p]
				s1 += ap * b1[p]
				s2 += ap * b2[p]
				s3 += ap * b3[p]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < m; j++ {
			var s float64
			if bias != nil {
				s = bias[j]
			}
			brow := b.Row(j)
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			drow[j] = s
		}
	}
	return dst
}

// MatMulTNAcc accumulates Aᵀ·B into dst (dst += Aᵀ·B) and returns dst. This
// is the weight-gradient shape: G (n×m)ᵀ times X (n×k) summed over the batch
// dimension n in index order — bit-identical to accumulating per-sample
// outer products one transition at a time. dst must have shape a.Cols×b.Cols.
func MatMulTNAcc(dst, a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("vec: MatMulTNAcc shape mismatch (%dx%d)ᵀ by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MatMulTNAcc dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	n, m, k := a.Rows, a.Cols, b.Cols
	for o := 0; o < m; o++ {
		drow := dst.Row(o)
		j := 0
		for ; j+4 <= k; j += 4 {
			s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
			for p := 0; p < n; p++ {
				g := a.Data[p*m+o]
				brow := b.Data[p*k+j : p*k+j+4 : p*k+j+4]
				s0 += g * brow[0]
				s1 += g * brow[1]
				s2 += g * brow[2]
				s3 += g * brow[3]
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			s := drow[j]
			for p := 0; p < n; p++ {
				s += a.Data[p*m+o] * b.Data[p*k+j]
			}
			drow[j] = s
		}
	}
	return dst
}
