package vec

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// MatMul must agree bit-for-bit with row-by-row MulVec-style accumulation,
// since the batched NN path relies on exact equivalence with serial forwards.
func TestMatMulBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 64, 1}, {13, 29, 64}, {5, 3, 4}} {
		n, k, m := shape[0], shape[1], shape[2]
		a, b := randMat(rng, n, k), randMat(rng, k, m)
		got := MatMul(nil, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				if got.At(i, j) != s {
					t.Fatalf("shape %v: MatMul[%d,%d] = %v, serial %v", shape, i, j, got.At(i, j), s)
				}
			}
		}
	}
}

func TestMatMulNTBitIdenticalToDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][3]int{{1, 4, 3}, {7, 29, 64}, {64, 64, 1}, {3, 5, 6}} {
		n, k, m := shape[0], shape[1], shape[2]
		x, w := randMat(rng, n, k), randMat(rng, m, k)
		bias := make([]float64, m)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		got := MatMulNT(nil, x, w, bias)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				s := bias[j]
				row := w.Row(j)
				for p, xp := range x.Row(i) {
					s += xp * row[p]
				}
				if got.At(i, j) != s {
					t.Fatalf("shape %v: MatMulNT[%d,%d] = %v, serial %v", shape, i, j, got.At(i, j), s)
				}
			}
		}
	}
}

func TestMatMulTNAccBitIdenticalToPerSampleAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m, k := 9, 6, 11
	g, x := randMat(rng, n, m), randMat(rng, n, k)
	dst := randMat(rng, m, k) // pre-existing gradient contents
	want := dst.Clone()
	for p := 0; p < n; p++ { // serial: one sample at a time, in order
		for o := 0; o < m; o++ {
			gv := g.At(p, o)
			row := want.Row(o)
			for j, xv := range x.Row(p) {
				row[j] += gv * xv
			}
		}
	}
	MatMulTNAcc(dst, g, x)
	for i := range dst.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("MatMulTNAcc data[%d] = %v, serial %v", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAcc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(rng, 4, 5), randMat(rng, 5, 3)
	base := MatMul(nil, a, b)
	dst := NewMat(4, 3) // zeros
	MatMulAcc(dst, a, b)
	for i := range dst.Data {
		if dst.Data[i] != base.Data[i] {
			t.Fatalf("MatMulAcc from zero differs at %d: %v vs %v", i, dst.Data[i], base.Data[i])
		}
	}
}

func TestEnsureMatReuse(t *testing.T) {
	m := NewMat(4, 8)
	data := &m.Data[0]
	m = EnsureMat(m, 2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("EnsureMat shape = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != data {
		t.Fatal("EnsureMat reallocated despite sufficient capacity")
	}
	if got := EnsureMat(nil, 3, 3); got == nil || len(got.Data) != 9 {
		t.Fatal("EnsureMat(nil) did not allocate")
	}
}

func BenchmarkMatMulNT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, w := randMat(rng, 64, 29), randMat(rng, 64, 29)
	bias := make([]float64, 64)
	dst := NewMat(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulNT(dst, x, w, bias)
	}
}
