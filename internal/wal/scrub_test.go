package wal

import (
	"bytes"
	"context"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"isrl/internal/fault"
)

// segmented builds a journal with several sealed segments plus a live tail
// and returns it open.
func segmented(t *testing.T, dir string, answers int) *Log {
	t.Helper()
	l, _, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	mustCreate(t, l, "s1", 1)
	for i := 0; i < answers; i++ {
		if err := l.AppendAnswer("s1", i%2 == 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return l
}

// Rotation must seal segments into the manifest with their true length and
// whole-file CRC32 — the invariant everything else in the self-healing
// layer verifies against.
func TestManifestSealsOnRotation(t *testing.T) {
	dir := t.TempDir()
	l := segmented(t, dir, 30)
	infos := l.SealedSegments()
	if len(infos) < 2 {
		t.Fatalf("expected ≥2 sealed segments, got %d", len(infos))
	}
	for _, info := range infos {
		data, err := os.ReadFile(filepath.Join(dir, segName(info.Seq)))
		if err != nil {
			t.Fatalf("segment %d: %v", info.Seq, err)
		}
		if int64(len(data)) != info.Len {
			t.Errorf("segment %d manifest len %d, file %d", info.Seq, info.Len, len(data))
		}
		if crc := crc32.ChecksumIEEE(data); crc != info.CRC {
			t.Errorf("segment %d manifest crc %d, file %d", info.Seq, info.CRC, crc)
		}
		if info.Quarantined {
			t.Errorf("segment %d wrongly quarantined", info.Seq)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Errorf("MANIFEST missing after rotation: %v", err)
	}
	// The manifest must survive a restart.
	l2, _ := reopen(t, l, Options{SegmentBytes: 96})
	if got := l2.SealedSegments(); len(got) != len(infos) {
		t.Errorf("reopen lost manifest entries: %d, want %d", len(got), len(infos))
	}
}

// A scrub pass over a journal with one bit flipped in sealed history must
// detect exactly that segment, quarantine it, and leave the healthy ones
// alone; a manifest-matching repair then restores it.
func TestScrubDetectsQuarantinesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	l := segmented(t, dir, 30)
	infos := l.SealedSegments()
	victim := infos[len(infos)/2]
	path := filepath.Join(dir, segName(victim.Seq))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted := append([]byte(nil), pristine...)
	rotted[len(rotted)/2] ^= 0x01
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := l.Scrub(context.Background(), 0)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corrupt != 1 || len(rep.Quarantined) != 1 || rep.Quarantined[0] != victim.Seq {
		t.Fatalf("scrub report = %+v, want exactly segment %d corrupt", rep, victim.Seq)
	}
	if rep.Segments != len(infos)-1 {
		t.Errorf("scrub verified %d segments, want %d healthy ones", rep.Segments, len(infos)-1)
	}
	if q := l.Quarantined(); len(q) != 1 || q[0] != victim.Seq {
		t.Fatalf("quarantined = %v, want [%d]", q, victim.Seq)
	}
	in := l.Integrity()
	if in.LastScrubUnix == 0 || in.CorruptDetected != 1 {
		t.Errorf("integrity after scrub = %+v", in)
	}

	// Serving the quarantined segment must refuse; repairing with the wrong
	// bytes must refuse; the pristine bytes must heal it.
	if _, _, err := l.SegmentData(victim.Seq); err == nil {
		t.Error("SegmentData served a quarantined segment")
	}
	if err := l.RepairSegment(victim.Seq, rotted); err == nil {
		t.Error("repair accepted bytes that fail manifest verification")
	}
	if err := l.RepairSegment(victim.Seq, pristine); err != nil {
		t.Fatalf("repair with pristine bytes: %v", err)
	}
	if q := l.Quarantined(); len(q) != 0 {
		t.Fatalf("repair left quarantine set %v", q)
	}
	rep2, err := l.Scrub(context.Background(), 1<<20)
	if err != nil {
		t.Fatalf("post-repair scrub: %v", err)
	}
	if rep2.Corrupt != 0 || rep2.Segments != len(infos) {
		t.Errorf("post-repair scrub = %+v, want all %d segments clean", rep2, len(infos))
	}
	if in := l.Integrity(); in.Repaired != 1 {
		t.Errorf("integrity repaired = %d, want 1", in.Repaired)
	}
}

// An injected read failure at the wal.scrub.read fault point is treated as
// corruption: the sector the disk refuses to return is as gone as a
// flipped bit.
func TestScrubReadFaultQuarantines(t *testing.T) {
	dir := t.TempDir()
	l := segmented(t, dir, 30)
	sealed := l.SealedSegments()
	fault.Install(fault.NewPlan(1).Set(fault.PointScrubRead, fault.Spec{ErrProb: 1}))
	rep, err := l.Scrub(context.Background(), 0)
	fault.Install(nil)
	if err != nil {
		t.Fatalf("scrub under read faults: %v", err)
	}
	if rep.Corrupt != len(sealed) {
		t.Errorf("scrub quarantined %d segments under total read failure, want %d", rep.Corrupt, len(sealed))
	}
	if q := l.Quarantined(); len(q) != len(sealed) {
		t.Errorf("quarantined %v, want all %d sealed segments", q, len(sealed))
	}
}

// CompareDigest drives anti-entropy: a quarantined local segment whose
// peer copy matches the manifest is wanted; same-length different-CRC
// healthy pairs are flagged divergent but never auto-adopted.
func TestCompareDigestWantsAndDivergence(t *testing.T) {
	dir := t.TempDir()
	l := segmented(t, dir, 30)
	infos := l.SealedSegments()
	victim, other := infos[0], infos[1]
	path := filepath.Join(dir, segName(victim.Seq))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x80
	os.WriteFile(path, data, 0o644)
	if _, err := l.Scrub(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	peer := []SegmentInfo{
		victim, // healthy at the peer: we want it
		{Seq: other.Seq, Len: other.Len, CRC: other.CRC ^ 1}, // silent divergence
		{Seq: infos[len(infos)-1].Seq, Len: 1, CRC: 2},       // different layout: ignored
		{Seq: 9999, Len: 5, CRC: 5},                          // unknown to us: ignored
	}
	want, div := l.CompareDigest(peer)
	if len(want) != 1 || want[0] != victim.Seq {
		t.Errorf("want = %v, expected [%d]", want, victim.Seq)
	}
	if len(div) != 1 || div[0] != other.Seq {
		t.Errorf("divergent = %v, expected [%d]", div, other.Seq)
	}

	// A peer whose copy of the quarantined segment is itself quarantined or
	// diverged cannot serve a repair.
	want, _ = l.CompareDigest([]SegmentInfo{{Seq: victim.Seq, Len: victim.Len, CRC: victim.CRC, Quarantined: true}})
	if len(want) != 0 {
		t.Errorf("wanted a segment from a peer that quarantined it: %v", want)
	}
}

// Compaction supersedes the sealed history: manifest entries and
// quarantine files alike must be gone afterwards, and the live state must
// survive untouched.
func TestCompactionRetiresQuarantine(t *testing.T) {
	dir := t.TempDir()
	l := segmented(t, dir, 30)
	infos := l.SealedSegments()
	path := filepath.Join(dir, segName(infos[0].Seq))
	data, _ := os.ReadFile(path)
	data[frameHeaderLen] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := l.Scrub(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if len(l.Quarantined()) != 1 {
		t.Fatal("setup: scrub did not quarantine")
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if q := l.Quarantined(); len(q) != 0 {
		t.Errorf("quarantine survived compaction: %v", q)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*"+quarantineSuffix)); len(left) != 0 {
		t.Errorf("quarantine files survived compaction: %v", left)
	}
	_, states := reopen(t, l, Options{})
	if got := sessionAnswers(states, "s1"); len(got) != 30 {
		t.Errorf("compaction lost answers: %d, want 30", len(got))
	}
}

// Satellite regression: a torn tail must not vanish silently — recovery
// logs a structured Warn naming the segment, offset and dropped bytes, and
// bumps the wal.torn_tail_truncations counter.
func TestRecoverTornTailWarnsAndCounts(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, l, "s1", 1)
	for i := 0; i < 4; i++ {
		if err := l.AppendAnswer("s1", true); err != nil {
			t.Fatal(err)
		}
	}
	fault.Install(fault.NewPlan(1).Set(fault.PointWALWrite, fault.Spec{TornProb: 1}))
	l.AppendAnswer("s1", false)
	fault.Install(nil)
	l.Close()

	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(syncWriter{&mu, &buf}, nil))
	before := mTornTails.Value()
	l2, _, err := Open(dir, Options{Logger: logger})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if got := mTornTails.Value() - before; got != 1 {
		t.Errorf("wal.torn_tail_truncations advanced by %d, want 1", got)
	}
	if in := l2.Integrity(); in.TornTailTruncations != 1 {
		t.Errorf("integrity torn-tail count = %d, want 1", in.TornTailTruncations)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, needle := range []string{"truncating torn tail", segName(1), "offset=", "dropped_bytes="} {
		if !strings.Contains(out, needle) {
			t.Errorf("torn-tail warning lacks %q; log was: %s", needle, out)
		}
	}
}

// syncWriter serializes concurrent handler writes into a test buffer.
type syncWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// Satellite regression: a live Subscribe stream must stay gap-free and
// duplicate-free in LSN order while Compact rewrites the segment files
// underneath it — compaction moves bytes, not the logical stream the
// replication primary tails.
func TestSubscribeGapFreeDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256, CompactDeadSessions: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const sessions = 40
	ch, cancel := l.Subscribe(16384)
	defer cancel()

	var appends int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sessions; i++ {
			id := "s" + string(rune('A'+i%26)) + segName(i) // unique, cheap
			if err := l.AppendCreate(SessionState{ID: id, Algo: "UH", Seed: int64(i)}); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			appends++
			for a := 0; a < 5; a++ {
				if err := l.AppendAnswer(id, a%2 == 0); err != nil {
					t.Errorf("answer %d/%d: %v", i, a, err)
					return
				}
				appends++
			}
			if err := l.AppendFinish(id, ReasonFinished); err != nil {
				t.Errorf("finish %d: %v", i, err)
				return
			}
			appends++
		}
	}()

	// Race compactions against the writer until it finishes.
	for {
		select {
		case <-done:
		default:
			if err := l.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			continue
		}
		break
	}

	var got int64
	var last int64
drain:
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatal("subscription overflowed; raise the buffer")
			}
			if e.LSN != last+1 {
				t.Fatalf("LSN stream gap or duplicate: %d after %d", e.LSN, last)
			}
			last = e.LSN
			got++
		default:
			break drain
		}
	}
	if got != appends {
		t.Errorf("subscriber saw %d entries, writer committed %d", got, appends)
	}
}
