// Package wal is a write-ahead journal for interactive sessions: an
// append-only, CRC-framed, fsync-on-commit record log that makes a serving
// process crash-safe. Because every algorithm in this repository is
// deterministic given its seed and answer trace (the invariant the
// determinism test suites pin down), a session's entire state can be
// reconstructed by replaying its journaled answers — no polytope snapshots,
// no custom serialization, just three tiny record kinds:
//
//	create  {id, algorithm, eps, seed, dataset fingerprint}
//	answer  {id, round index, prefer-first}
//	finish  {id, reason}        — the tombstone: finished | aborted | expired
//
// On-disk format: numbered segment files (wal-00000001.log, ...) holding
// length- and CRC32-framed JSON records. Appends fsync before returning
// (commit durability); segments rotate at a size threshold; tombstone-heavy
// logs are compacted by rewriting only live sessions into a fresh segment
// via the atomic temp+rename pattern. Recovery tolerates torn and corrupted
// tails: the longest valid record prefix wins, the rest is truncated away
// and counted, never panicked over.
//
// Fault injection: writes, fsyncs and renames are threaded through
// internal/fault points (wal.write / wal.sync / wal.rename, including
// torn-write truncation), so chaos tests can kill and recover a server
// under injected disk failure.
package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"isrl/internal/fault"
	"isrl/internal/obs"
	"isrl/internal/trace"
)

// Kind discriminates journal records.
type Kind uint8

// Record kinds. Values are stable on-disk identifiers; never renumber.
const (
	KindCreate Kind = 1
	KindAnswer Kind = 2
	KindFinish Kind = 3
)

// Finish reasons written with KindFinish tombstones.
const (
	ReasonFinished = "finished"
	ReasonAborted  = "aborted"
	ReasonExpired  = "expired"
)

// record is the JSON payload inside one frame.
type record struct {
	Kind   Kind    `json:"k"`
	ID     string  `json:"id"`
	Algo   string  `json:"algo,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	FP     uint64  `json:"fp,omitempty"`
	Round  int     `json:"n,omitempty"`   // 1-based answer index within the session
	Prefer bool    `json:"a,omitempty"`   // answer payload
	Reason string  `json:"why,omitempty"` // finish payload
	IK     string  `json:"ik,omitempty"`  // Idempotency-Key the create carried
}

// SessionState is one session reconstructed from (or about to enter) the
// journal: the creation parameters plus the committed answer prefix.
type SessionState struct {
	ID          string
	Algo        string
	Eps         float64
	Seed        int64
	Fingerprint uint64
	IdemKey     string // Idempotency-Key of the create, if the client sent one
	Answers     []bool
	Finished    bool   // a tombstone was journaled
	Reason      string // tombstone reason when Finished
}

// Options tunes a Log. The zero value selects production defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 4 MiB.
	SegmentBytes int64
	// CompactDeadSessions triggers compaction once at least this many
	// tombstoned sessions sit in the log. Default 256.
	CompactDeadSessions int
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactDeadSessions <= 0 {
		o.CompactDeadSessions = 256
	}
}

// frameHeader is uint32 payload length + uint32 CRC32(payload), little
// endian. maxRecordBytes rejects absurd lengths when scanning a corrupted
// log (a flipped bit in the length field must not allocate gigabytes).
const (
	frameHeaderLen = 8
	maxRecordBytes = 1 << 20
)

// Journal metrics, process-wide like the fault counters so a chaos run is
// auditable from /metrics.
var (
	mAppends       = obs.Default().Counter("wal.appends")
	mFsyncs        = obs.Default().Counter("wal.fsyncs")
	mFsyncErrors   = obs.Default().Counter("wal.fsync_errors")
	mWriteErrors   = obs.Default().Counter("wal.write_errors")
	mCorrupt       = obs.Default().Counter("wal.corrupt_records")
	mTruncBytes    = obs.Default().Counter("wal.truncated_bytes")
	mSegsDropped   = obs.Default().Counter("wal.segments_dropped")
	mRotations     = obs.Default().Counter("wal.rotations")
	mCompactions   = obs.Default().Counter("wal.compactions")
	mRecovered     = obs.Default().Counter("wal.recovered_sessions")
	mRecoveredAns  = obs.Default().Counter("wal.recovered_answers")
	mOrphanRecords = obs.Default().Counter("wal.orphan_records")

	// mFsyncMS times individual fsyncs — the dominant append cost and the
	// first thing to look at when commit latency spikes.
	mFsyncMS = obs.Default().Histogram("wal.fsync_ms", obs.LatencyBuckets())
)

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	active   *os.File
	actSeq   int
	actSize  int64
	sessions map[string]*SessionState // full in-memory mirror, incl. tombstoned
	dead     int                      // tombstoned sessions not yet compacted away
	sticky   error                    // first write/sync failure; surfaces on /healthz
	fsyncErr int64                    // count of fsync failures on this Log
	closed   bool
}

// segName renders the file name of segment seq.
func segName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegName extracts the sequence number, reporting ok=false for files
// that are not journal segments.
func parseSegName(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil || segName(seq) != name {
		return 0, false
	}
	return seq, true
}

// Open replays the journal in dir (creating the directory if needed),
// truncates any corrupted tail, and returns the log ready for appends plus
// every session found — tombstoned ones included, so callers can refuse to
// resurrect them.
func Open(dir string, opts Options) (*Log, []SessionState, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, sessions: make(map[string]*SessionState)}
	if err := l.recover(); err != nil {
		return nil, nil, err
	}
	states := l.snapshotStates()
	return l, states, nil
}

// snapshotStates deep-copies the session mirror in a stable order.
func (l *Log) snapshotStates() []SessionState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SessionState, 0, len(l.sessions))
	for _, st := range l.sessions {
		cp := *st
		cp.Answers = append([]bool(nil), st.Answers...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the sticky write/fsync error, if any: the journal keeps
// accepting appends after a disk fault (availability over durability), but
// the degradation must surface on health checks.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sticky
}

// FsyncErrors returns how many fsyncs failed on this Log.
func (l *Log) FsyncErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncErr
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// AppendCreate journals a session birth. st.Answers and st.Finished are
// ignored (a new session has neither).
func (l *Log) AppendCreate(st SessionState) error {
	return l.AppendCreateCtx(context.Background(), st)
}

// AppendCreateCtx is AppendCreate with tracing: the framed write and its
// fsync show up as "wal.append" / "wal.fsync" spans when ctx carries an
// active trace.
func (l *Log) AppendCreateCtx(ctx context.Context, st SessionState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.sessions[st.ID]; dup {
		return fmt.Errorf("wal: duplicate session id %q", st.ID)
	}
	err := l.append(ctx, record{Kind: KindCreate, ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, FP: st.Fingerprint, IK: st.IdemKey})
	if err == nil {
		l.sessions[st.ID] = &SessionState{ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, Fingerprint: st.Fingerprint, IdemKey: st.IdemKey}
	}
	return err
}

// AppendAnswer journals one committed answer for id. The round index is
// assigned from the in-memory mirror, which makes replay after a crashed
// compaction idempotent (duplicate rounds are skipped on recovery).
func (l *Log) AppendAnswer(id string, prefer bool) error {
	return l.AppendAnswerCtx(context.Background(), id, prefer)
}

// AppendAnswerCtx is AppendAnswer with tracing (see AppendCreateCtx).
func (l *Log) AppendAnswerCtx(ctx context.Context, id string, prefer bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.sessions[id]
	if !ok {
		return fmt.Errorf("wal: answer for unknown session %q", id)
	}
	err := l.append(ctx, record{Kind: KindAnswer, ID: id, Round: len(st.Answers) + 1, Prefer: prefer})
	if err == nil {
		st.Answers = append(st.Answers, prefer)
	}
	return err
}

// AppendFinish journals a tombstone for id and, when enough dead sessions
// have accumulated, compacts the log.
func (l *Log) AppendFinish(id, reason string) error {
	return l.AppendFinishCtx(context.Background(), id, reason)
}

// AppendFinishCtx is AppendFinish with tracing (see AppendCreateCtx).
func (l *Log) AppendFinishCtx(ctx context.Context, id, reason string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.sessions[id]
	if !ok {
		return fmt.Errorf("wal: finish for unknown session %q", id)
	}
	if st.Finished {
		return nil
	}
	err := l.append(ctx, record{Kind: KindFinish, ID: id, Reason: reason})
	if err == nil {
		st.Finished, st.Reason = true, reason
		l.dead++
		if l.dead >= l.opts.CompactDeadSessions {
			// Best-effort: compaction failure must not fail the session.
			if cerr := l.compactLocked(); cerr != nil && l.sticky == nil {
				l.sticky = cerr
			}
		}
	}
	return err
}

// append frames, writes and fsyncs one record into the active segment,
// rotating first when the segment is full. Callers hold l.mu. The whole
// commit is timed as a "wal.append" span when ctx carries an active trace.
func (l *Log) append(ctx context.Context, rec record) error {
	sp := trace.StartLeaf(ctx, "wal.append")
	if sp != nil {
		sp.SetInt("kind", int64(rec.Kind))
		defer sp.End()
	}
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.active == nil {
		// A failed compaction left no active segment; reopen before appending.
		if err := l.openSegment(l.actSeq + 1); err != nil {
			return err
		}
	}
	if l.actSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil && l.sticky == nil {
			l.sticky = err // keep appending into the oversized segment
		}
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	n, err := l.writeFrame(l.active, frame)
	l.actSize += int64(n)
	if err != nil {
		mWriteErrors.Inc()
		if l.sticky == nil {
			l.sticky = err
		}
		return err
	}
	mAppends.Inc()
	if err := l.syncActive(ctx); err != nil {
		// The record reached the OS but not necessarily the platter. Keep
		// serving (the in-memory session is fine) but surface the hazard.
		return nil
	}
	return nil
}

// writeFrame writes one frame through the wal.write fault point. A torn
// fault persists only the first half of the frame — exactly the tail state a
// power cut mid-write leaves behind.
func (l *Log) writeFrame(f *os.File, frame []byte) (int, error) {
	if err := fault.Hit(fault.PointWALWrite); err != nil {
		if errors.Is(err, fault.ErrTornWrite) {
			n, _ := f.Write(frame[:len(frame)/2])
			return n, err
		}
		return 0, err
	}
	return f.Write(frame)
}

// syncActive fsyncs the active segment through the wal.sync fault point,
// tracking failures for the health check. The fsync is timed into
// wal.fsync_ms and, when ctx carries an active trace, as a "wal.fsync"
// span — fsync is where commit latency lives.
func (l *Log) syncActive(ctx context.Context) error {
	sp := trace.StartLeaf(ctx, "wal.fsync")
	start := time.Now()
	err := fault.Hit(fault.PointWALSync)
	if err == nil {
		err = l.active.Sync()
	}
	mFsyncMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if sp != nil {
		sp.SetBool("error", err != nil)
		sp.End()
	}
	if err != nil {
		mFsyncErrors.Inc()
		l.fsyncErr++
		if l.sticky == nil {
			l.sticky = fmt.Errorf("wal: fsync: %w", err)
		}
		return err
	}
	mFsyncs.Inc()
	return nil
}

// encodeFrame renders len+crc+payload.
func encodeFrame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// rotateLocked opens the next segment, then seals the old one. Opening
// first means a failure leaves the old (oversized but healthy) segment
// active instead of leaving the log with no file to append to.
func (l *Log) rotateLocked() error {
	old := l.active
	if err := l.openSegment(l.actSeq + 1); err != nil {
		return err
	}
	mRotations.Inc()
	if err := old.Sync(); err != nil {
		old.Close()
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	return nil
}

// openSegment opens (creating if absent) segment seq for appends.
func (l *Log) openSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	l.active, l.actSeq, l.actSize = f, seq, info.Size()
	return nil
}

// Compact rewrites live sessions into a fresh segment and drops everything
// older, reclaiming tombstoned space.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

// compactLocked writes every live session's create+answer records into a
// new highest-numbered segment via temp+rename, then deletes all older
// segments. A crash between rename and deletion leaves duplicate records,
// which recovery dedupes by round index — so every step is individually
// crash-safe. Callers hold l.mu.
func (l *Log) compactLocked() error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	newSeq := l.actSeq + 1
	tmp, err := os.CreateTemp(l.dir, "wal-compact-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	ids := make([]string, 0, len(l.sessions))
	for id, st := range l.sessions {
		if !st.Finished {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := l.sessions[id]
		frames := make([]record, 0, len(st.Answers)+1)
		frames = append(frames, record{Kind: KindCreate, ID: id, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, FP: st.Fingerprint, IK: st.IdemKey})
		for i, a := range st.Answers {
			frames = append(frames, record{Kind: KindAnswer, ID: id, Round: i + 1, Prefer: a})
		}
		for _, rec := range frames {
			frame, err := encodeFrame(rec)
			if err != nil {
				tmp.Close()
				return err
			}
			if _, err := tmp.Write(frame); err != nil {
				tmp.Close()
				return fmt.Errorf("wal: compact write: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	if err := fault.Hit(fault.PointWALRename); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.dir, segName(newSeq))); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	// The compacted segment now holds everything live; retire the past.
	old := l.active
	l.active = nil
	if old != nil {
		old.Sync()
		old.Close()
	}
	for seq := l.actSeq; seq > 0; seq-- {
		name := filepath.Join(l.dir, segName(seq))
		if _, err := os.Stat(name); err != nil {
			break
		}
		os.Remove(name)
	}
	for id, st := range l.sessions {
		if st.Finished {
			delete(l.sessions, id)
		}
	}
	l.dead = 0
	mCompactions.Inc()
	return l.openSegment(newSeq)
}
