// Package wal is a write-ahead journal for interactive sessions: an
// append-only, CRC-framed, fsync-on-commit record log that makes a serving
// process crash-safe. Because every algorithm in this repository is
// deterministic given its seed and answer trace (the invariant the
// determinism test suites pin down), a session's entire state can be
// reconstructed by replaying its journaled answers — no polytope snapshots,
// no custom serialization, just three tiny record kinds:
//
//	create  {id, algorithm, eps, seed, dataset fingerprint}
//	answer  {id, round index, prefer-first}
//	finish  {id, reason}        — the tombstone: finished | aborted | expired
//
// On-disk format: numbered segment files (wal-00000001.log, ...) holding
// length- and CRC32-framed JSON records. Appends fsync before returning
// (commit durability); segments rotate at a size threshold; tombstone-heavy
// logs are compacted by rewriting only live sessions into a fresh segment
// via the atomic temp+rename pattern. Recovery tolerates torn and corrupted
// tails: the longest valid record prefix wins, the rest is truncated away
// and counted, never panicked over.
//
// Fault injection: writes, fsyncs and renames are threaded through
// internal/fault points (wal.write / wal.sync / wal.rename, including
// torn-write truncation), so chaos tests can kill and recover a server
// under injected disk failure.
//
// Replication (internal/repl) builds on three additions. Every append is
// assigned an in-memory log sequence number and published to Subscribe
// channels as an Entry, so a primary can tail its own journal without
// re-reading segment files; ReplSnapshot returns the full session mirror
// plus the position it is consistent with, the catch-up path for a
// follower that is too far behind the tail. A follower folds shipped
// state in with ApplyEntries/ApplySnapshot, which are idempotent (creates
// for known ids and answers at already-applied rounds are skipped), so
// at-least-once shipping yields exactly-once state. Finally, a fourth
// record kind — control {epoch} — persists the failover epoch: SetEpoch
// journals a bump at promotion, and Fence rejects every later append with
// ErrStaleEpoch once the node learns a higher epoch exists, which is what
// keeps a deposed primary from committing writes nobody will replicate.
package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"isrl/internal/fault"
	"isrl/internal/obs"
	"isrl/internal/trace"
)

// Kind discriminates journal records.
type Kind uint8

// Record kinds. Values are stable on-disk identifiers; never renumber.
const (
	KindCreate  Kind = 1
	KindAnswer  Kind = 2
	KindFinish  Kind = 3
	KindControl Kind = 4 // replication control: persisted failover epoch
)

// Finish reasons written with KindFinish tombstones.
const (
	ReasonFinished = "finished"
	ReasonAborted  = "aborted"
	ReasonExpired  = "expired"
)

// record is the JSON payload inside one frame.
type record struct {
	Kind   Kind    `json:"k"`
	ID     string  `json:"id"`
	Algo   string  `json:"algo,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	FP     uint64  `json:"fp,omitempty"`
	Round  int     `json:"n,omitempty"`   // 1-based answer index within the session
	Prefer bool    `json:"a,omitempty"`   // answer payload
	Reason string  `json:"why,omitempty"` // finish payload
	IK     string  `json:"ik,omitempty"`  // Idempotency-Key the create carried
	Epoch  uint64  `json:"ep,omitempty"`  // control payload: failover epoch
}

// SessionState is one session reconstructed from (or about to enter) the
// journal: the creation parameters plus the committed answer prefix.
type SessionState struct {
	ID          string
	Algo        string
	Eps         float64
	Seed        int64
	Fingerprint uint64
	IdemKey     string // Idempotency-Key of the create, if the client sent one
	Answers     []bool
	Finished    bool   // a tombstone was journaled
	Reason      string // tombstone reason when Finished
}

// Options tunes a Log. The zero value selects production defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 4 MiB.
	SegmentBytes int64
	// CompactDeadSessions triggers compaction once at least this many
	// tombstoned sessions sit in the log. Default 256.
	CompactDeadSessions int
	// Logger receives recovery and scrub warnings (torn-tail truncations,
	// quarantines, manifest trouble). Default slog.Default().
	Logger *slog.Logger
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactDeadSessions <= 0 {
		o.CompactDeadSessions = 256
	}
}

func (o *Options) logger() *slog.Logger {
	if o.Logger == nil {
		return slog.Default()
	}
	return o.Logger
}

// frameHeader is uint32 payload length + uint32 CRC32(payload), little
// endian. maxRecordBytes rejects absurd lengths when scanning a corrupted
// log (a flipped bit in the length field must not allocate gigabytes).
const (
	frameHeaderLen = 8
	maxRecordBytes = 1 << 20
)

// Journal metrics, process-wide like the fault counters so a chaos run is
// auditable from /metrics.
var (
	mAppends       = obs.Default().Counter("wal.appends")
	mFsyncs        = obs.Default().Counter("wal.fsyncs")
	mFsyncErrors   = obs.Default().Counter("wal.fsync_errors")
	mWriteErrors   = obs.Default().Counter("wal.write_errors")
	mCorrupt       = obs.Default().Counter("wal.corrupt_records")
	mTruncBytes    = obs.Default().Counter("wal.truncated_bytes")
	mSegsDropped   = obs.Default().Counter("wal.segments_dropped")
	mRotations     = obs.Default().Counter("wal.rotations")
	mCompactions   = obs.Default().Counter("wal.compactions")
	mRecovered     = obs.Default().Counter("wal.recovered_sessions")
	mRecoveredAns  = obs.Default().Counter("wal.recovered_answers")
	mOrphanRecords = obs.Default().Counter("wal.orphan_records")

	// mFsyncMS times individual fsyncs — the dominant append cost and the
	// first thing to look at when commit latency spikes.
	mFsyncMS = obs.Default().Histogram("wal.fsync_ms", obs.LatencyBuckets())
)

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	active   *os.File
	actSeq   int
	actSize  int64
	actCRC   uint32                   // running CRC32 of the active segment's bytes
	sessions map[string]*SessionState // full in-memory mirror, incl. tombstoned
	dead     int                      // tombstoned sessions not yet compacted away
	sticky   error                    // first write/sync failure; surfaces on /healthz
	fsyncErr int64                    // count of fsync failures on this Log
	closed   bool

	// Self-healing state: the sealed-segment manifest, the quarantine set,
	// and the scrub/repair bookkeeping Integrity() reports.
	manifest      map[int]segMeta
	quarantined   map[int]bool
	lastScrubUnix int64
	scrubbed      int64 // sealed segments verified clean, lifetime
	corruptSeen   int64 // sealed segments that failed verification, lifetime
	repaired      int64 // quarantined segments restored from a peer, lifetime
	tornTails     int64 // unsealed-tail truncations at recovery, lifetime

	// Replication state. lsn/cumBytes are in-memory positions (they reset
	// every process start; followers resync with a snapshot, which is safe
	// because apply is idempotent). epoch is durable via control records;
	// fencedBy, when above epoch, rejects every append with ErrStaleEpoch.
	lsn      int64
	cumBytes int64
	epoch    uint64
	fencedBy uint64
	boot     bool // sessions existed at Open: state invisible to the LSN stream
	subs     map[*subscriber]struct{}
}

// subscriber is one live Subscribe channel.
type subscriber struct{ ch chan Entry }

// ErrStaleEpoch is returned by appends on a fenced log: the node learned a
// higher failover epoch exists, so committing here would split-brain the
// session state. Mutations must be redirected to the current primary.
var ErrStaleEpoch = errors.New("wal: stale epoch (node deposed)")

// Entry is one journal append in replication form: the record plus the
// in-memory position it was assigned. Positions order the tail stream and
// size the replication lag; they are not persisted on disk.
type Entry struct {
	LSN    int64   `json:"lsn"`
	Bytes  int64   `json:"b"` // cumulative appended frame bytes at this entry
	Kind   Kind    `json:"k"`
	ID     string  `json:"id,omitempty"`
	Algo   string  `json:"algo,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	FP     uint64  `json:"fp,omitempty"`
	Round  int     `json:"n,omitempty"`
	Prefer bool    `json:"a,omitempty"`
	Reason string  `json:"why,omitempty"`
	IK     string  `json:"ik,omitempty"`
	Epoch  uint64  `json:"ep,omitempty"`
}

// Position is a replication stream offset: how many records the log has
// appended this process lifetime and how many framed bytes they cover.
type Position struct{ LSN, Bytes int64 }

// segName renders the file name of segment seq.
func segName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// SegName returns the file name of segment seq, exported for tools and
// tests that inspect journal directories from outside the package.
func SegName(seq int) string { return segName(seq) }

// parseSegName extracts the sequence number, reporting ok=false for files
// that are not journal segments.
func parseSegName(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil || segName(seq) != name {
		return 0, false
	}
	return seq, true
}

// Open replays the journal in dir (creating the directory if needed),
// truncates any corrupted tail, and returns the log ready for appends plus
// every session found — tombstoned ones included, so callers can refuse to
// resurrect them.
func Open(dir string, opts Options) (*Log, []SessionState, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir: dir, opts: opts,
		sessions:    make(map[string]*SessionState),
		quarantined: make(map[int]bool),
	}
	if err := l.recover(); err != nil {
		return nil, nil, err
	}
	states := l.snapshotStates()
	return l, states, nil
}

// snapshotStates deep-copies the session mirror in a stable order.
func (l *Log) snapshotStates() []SessionState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotStatesLocked()
}

// snapshotStatesLocked is snapshotStates for callers already holding l.mu.
func (l *Log) snapshotStatesLocked() []SessionState {
	out := make([]SessionState, 0, len(l.sessions))
	for _, st := range l.sessions {
		cp := *st
		cp.Answers = append([]bool(nil), st.Answers...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the sticky write/fsync error, if any: the journal keeps
// accepting appends after a disk fault (availability over durability), but
// the degradation must surface on health checks.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sticky
}

// FsyncErrors returns how many fsyncs failed on this Log.
func (l *Log) FsyncErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncErr
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// AppendCreate journals a session birth. st.Answers and st.Finished are
// ignored (a new session has neither).
func (l *Log) AppendCreate(st SessionState) error {
	return l.AppendCreateCtx(context.Background(), st)
}

// AppendCreateCtx is AppendCreate with tracing: the framed write and its
// fsync show up as "wal.append" / "wal.fsync" spans when ctx carries an
// active trace.
func (l *Log) AppendCreateCtx(ctx context.Context, st SessionState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.sessions[st.ID]; dup {
		return fmt.Errorf("wal: duplicate session id %q", st.ID)
	}
	err := l.append(ctx, record{Kind: KindCreate, ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, FP: st.Fingerprint, IK: st.IdemKey})
	if err == nil {
		l.sessions[st.ID] = &SessionState{ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, Fingerprint: st.Fingerprint, IdemKey: st.IdemKey}
	}
	return err
}

// AppendAnswer journals one committed answer for id. The round index is
// assigned from the in-memory mirror, which makes replay after a crashed
// compaction idempotent (duplicate rounds are skipped on recovery).
func (l *Log) AppendAnswer(id string, prefer bool) error {
	return l.AppendAnswerCtx(context.Background(), id, prefer)
}

// AppendAnswerCtx is AppendAnswer with tracing (see AppendCreateCtx).
func (l *Log) AppendAnswerCtx(ctx context.Context, id string, prefer bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.sessions[id]
	if !ok {
		return fmt.Errorf("wal: answer for unknown session %q", id)
	}
	err := l.append(ctx, record{Kind: KindAnswer, ID: id, Round: len(st.Answers) + 1, Prefer: prefer})
	if err == nil {
		st.Answers = append(st.Answers, prefer)
	}
	return err
}

// AppendFinish journals a tombstone for id and, when enough dead sessions
// have accumulated, compacts the log.
func (l *Log) AppendFinish(id, reason string) error {
	return l.AppendFinishCtx(context.Background(), id, reason)
}

// AppendFinishCtx is AppendFinish with tracing (see AppendCreateCtx).
func (l *Log) AppendFinishCtx(ctx context.Context, id, reason string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.sessions[id]
	if !ok {
		return fmt.Errorf("wal: finish for unknown session %q", id)
	}
	if st.Finished {
		return nil
	}
	err := l.append(ctx, record{Kind: KindFinish, ID: id, Reason: reason})
	if err == nil {
		st.Finished, st.Reason = true, reason
		l.dead++
		if l.dead >= l.opts.CompactDeadSessions {
			// Best-effort: compaction failure must not fail the session.
			if cerr := l.compactLocked(); cerr != nil && l.sticky == nil {
				l.sticky = cerr
			}
		}
	}
	return err
}

// append frames, writes and fsyncs one record into the active segment,
// rotating first when the segment is full. Callers hold l.mu. The whole
// commit is timed as a "wal.append" span when ctx carries an active trace.
func (l *Log) append(ctx context.Context, rec record) error {
	return l.appendLocked(ctx, rec, true)
}

// appendLocked is append with the fsync made optional, so batched replica
// application can commit many records under one fsync. Callers hold l.mu.
func (l *Log) appendLocked(ctx context.Context, rec record, sync bool) error {
	sp := trace.StartLeaf(ctx, "wal.append")
	if sp != nil {
		sp.SetInt("kind", int64(rec.Kind))
		defer sp.End()
	}
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.fencedBy > l.epoch {
		return fmt.Errorf("%w: fenced at epoch %d, local epoch %d", ErrStaleEpoch, l.fencedBy, l.epoch)
	}
	if l.active == nil {
		// A failed compaction left no active segment; reopen before appending.
		if err := l.openSegment(l.actSeq + 1); err != nil {
			return err
		}
	}
	if l.actSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil && l.sticky == nil {
			l.sticky = err // keep appending into the oversized segment
		}
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	n, err := l.writeFrame(l.active, frame)
	l.actSize += int64(n)
	if n > 0 {
		// Keep the running hash in lockstep with what actually reached the
		// file — torn writes included — so sealing never needs a re-read.
		l.actCRC = crc32.Update(l.actCRC, crc32.IEEETable, frame[:n])
	}
	if err != nil {
		mWriteErrors.Inc()
		if l.sticky == nil {
			l.sticky = err
		}
		return err
	}
	mAppends.Inc()
	l.lsn++
	l.cumBytes += int64(len(frame))
	l.publishLocked(rec)
	if !sync {
		return nil
	}
	if err := l.syncActive(ctx); err != nil {
		// The record reached the OS but not necessarily the platter. Keep
		// serving (the in-memory session is fine) but surface the hazard.
		return nil
	}
	return nil
}

// publishLocked fans the freshly appended record out to every subscriber.
// A subscriber whose channel is full is dropped and its channel closed —
// the closed channel tells the replication sender it fell off the tail and
// must resynchronize from a snapshot. Callers hold l.mu.
func (l *Log) publishLocked(rec record) {
	if len(l.subs) == 0 {
		return
	}
	e := Entry{
		LSN: l.lsn, Bytes: l.cumBytes, Kind: rec.Kind, ID: rec.ID,
		Algo: rec.Algo, Eps: rec.Eps, Seed: rec.Seed, FP: rec.FP,
		Round: rec.Round, Prefer: rec.Prefer, Reason: rec.Reason,
		IK: rec.IK, Epoch: rec.Epoch,
	}
	for s := range l.subs {
		select {
		case s.ch <- e:
		default:
			delete(l.subs, s)
			close(s.ch)
		}
	}
}

// Subscribe returns a channel of every append from now on, in commit order,
// plus a cancel function. When the subscriber falls more than buf entries
// behind, the channel is closed instead of blocking the append path: the
// consumer must then resynchronize (ReplSnapshot) and re-subscribe.
func (l *Log) Subscribe(buf int) (<-chan Entry, func()) {
	if buf <= 0 {
		buf = 1024
	}
	s := &subscriber{ch: make(chan Entry, buf)}
	l.mu.Lock()
	if l.subs == nil {
		l.subs = make(map[*subscriber]struct{})
	}
	l.subs[s] = struct{}{}
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		if _, ok := l.subs[s]; ok {
			delete(l.subs, s)
			close(s.ch)
		}
		l.mu.Unlock()
	}
	return s.ch, cancel
}

// HasBootState reports whether this log recovered any sessions at Open.
// Such state predates the in-memory LSN counter, so it can never arrive at
// a follower through the entry stream — a replication sender whose peer
// resumes at LSN 0 must push a snapshot first when this is true.
func (l *Log) HasBootState() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.boot
}

// Pos returns the log's current replication position.
func (l *Log) Pos() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{LSN: l.lsn, Bytes: l.cumBytes}
}

// Epoch returns the durable failover epoch (0 until a control record is
// journaled).
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// SetEpoch journals a control record raising the failover epoch to e. It is
// a no-op when e is not above the current epoch. Raising the epoch clears
// any fence at or below it — the promotion path: the new primary must be
// able to append.
func (l *Log) SetEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e <= l.epoch {
		return nil
	}
	if l.fencedBy > e {
		return fmt.Errorf("%w: cannot adopt epoch %d below fence %d", ErrStaleEpoch, e, l.fencedBy)
	}
	l.fencedBy = 0 // adopting e supersedes any fence at or below it
	if err := l.append(context.Background(), record{Kind: KindControl, Epoch: e}); err != nil {
		return err
	}
	l.epoch = e
	return nil
}

// Fence rejects every subsequent append with ErrStaleEpoch: the node
// learned that epoch e (above its own) exists, so it has been deposed and
// must not commit session state anymore. Fencing at or below the current
// epoch is a no-op.
func (l *Log) Fence(e uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e > l.epoch && e > l.fencedBy {
		l.fencedBy = e
	}
}

// Fenced reports whether appends are currently rejected with ErrStaleEpoch.
func (l *Log) Fenced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fencedBy > l.epoch
}

// ReplSnapshot returns a deep copy of every session (tombstoned included)
// plus the position and epoch the copy is consistent with: entries with
// LSN above the returned position are exactly the appends not reflected in
// the states.
func (l *Log) ReplSnapshot() ([]SessionState, Position, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotStatesLocked(), Position{LSN: l.lsn, Bytes: l.cumBytes}, l.epoch
}

// writeFrame writes one frame through the wal.write fault point. A torn
// fault persists only the first half of the frame — exactly the tail state a
// power cut mid-write leaves behind.
func (l *Log) writeFrame(f *os.File, frame []byte) (int, error) {
	if err := fault.Hit(fault.PointWALWrite); err != nil {
		if errors.Is(err, fault.ErrTornWrite) {
			n, _ := f.Write(frame[:len(frame)/2])
			return n, err
		}
		return 0, err
	}
	return f.Write(frame)
}

// syncActive fsyncs the active segment through the wal.sync fault point,
// tracking failures for the health check. The fsync is timed into
// wal.fsync_ms and, when ctx carries an active trace, as a "wal.fsync"
// span — fsync is where commit latency lives.
func (l *Log) syncActive(ctx context.Context) error {
	sp := trace.StartLeaf(ctx, "wal.fsync")
	start := time.Now()
	err := fault.Hit(fault.PointWALSync)
	if err == nil {
		err = l.active.Sync()
	}
	mFsyncMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if sp != nil {
		sp.SetBool("error", err != nil)
		sp.End()
	}
	if err != nil {
		mFsyncErrors.Inc()
		l.fsyncErr++
		if l.sticky == nil {
			l.sticky = fmt.Errorf("wal: fsync: %w", err)
		}
		return err
	}
	mFsyncs.Inc()
	return nil
}

// encodeFrame renders len+crc+payload.
func encodeFrame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	return Frame(payload, maxRecordBytes)
}

// Frame wraps payload in the journal's framing — uint32 length + uint32
// CRC32(payload), little endian — the exact layout segments use on disk.
// Exported so the replication wire protocol (internal/repl) ships messages
// under the same checksummed framing. max bounds the payload (0: no bound).
func Frame(payload []byte, max int) ([]byte, error) {
	if max > 0 && len(payload) > max {
		return nil, fmt.Errorf("wal: frame payload too large (%d bytes, max %d)", len(payload), max)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// Frame parsing failure modes, distinguishable with errors.Is so callers
// (the scrubber's corruption classifier, tests) can name what broke.
var (
	ErrFrameTorn     = errors.New("wal: torn frame")
	ErrFrameTooLarge = errors.New("wal: frame exceeds size limit")
	ErrFrameChecksum = errors.New("wal: frame checksum mismatch")
)

// ReadFrame reads one length+CRC32 frame from r and returns its payload.
// io.EOF surfaces untouched on a clean boundary; a frame longer than max
// (when max > 0) or failing its checksum is an error — over a network
// stream corruption must fail loudly, not truncate silently like the
// on-disk tail scan does.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short header: %w", ErrFrameTorn, err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if max > 0 && int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d bytes, limit %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %w", ErrFrameTorn, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrFrameChecksum
	}
	return payload, nil
}

// ApplyEntries folds shipped journal entries into this (follower) log:
// each entry is deduplicated against the session mirror, appended to the
// local journal, and the whole batch is committed under a single fsync.
// Application is idempotent — creates for known ids, answers at rounds
// already applied and repeated tombstones are skipped — so an at-least-once
// shipping protocol still yields exactly-once state. A gap (an answer
// beyond the next expected round, or an answer/finish for an unknown id)
// aborts the batch with an error: the sender must resynchronize from a
// snapshot. Returns how many entries were actually applied.
func (l *Log) ApplyEntries(entries []Entry) (applied int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ctx := context.Background()
	for _, e := range entries {
		ok, aerr := l.applyEntryLocked(ctx, e)
		if aerr != nil {
			err = aerr
			break
		}
		if ok {
			applied++
		}
	}
	if applied > 0 {
		l.syncActive(ctx) // failure is sticky and surfaces on /healthz
		l.maybeCompactLocked()
	}
	return applied, err
}

// applyEntryLocked applies one shipped entry, reporting whether it changed
// state. Callers hold l.mu.
func (l *Log) applyEntryLocked(ctx context.Context, e Entry) (bool, error) {
	rec := record{
		Kind: e.Kind, ID: e.ID, Algo: e.Algo, Eps: e.Eps, Seed: e.Seed,
		FP: e.FP, Round: e.Round, Prefer: e.Prefer, Reason: e.Reason,
		IK: e.IK, Epoch: e.Epoch,
	}
	switch e.Kind {
	case KindCreate:
		if _, dup := l.sessions[e.ID]; dup {
			return false, nil
		}
		if err := l.appendLocked(ctx, rec, false); err != nil {
			return false, err
		}
		l.sessions[e.ID] = &SessionState{ID: e.ID, Algo: e.Algo, Eps: e.Eps, Seed: e.Seed, Fingerprint: e.FP, IdemKey: e.IK}
		return true, nil
	case KindAnswer:
		st, ok := l.sessions[e.ID]
		if !ok {
			return false, fmt.Errorf("wal: replica answer for unknown session %q", e.ID)
		}
		if e.Round <= len(st.Answers) {
			return false, nil // duplicate: already applied
		}
		if e.Round != len(st.Answers)+1 {
			return false, fmt.Errorf("wal: replica answer gap for %q: round %d after %d applied", e.ID, e.Round, len(st.Answers))
		}
		if err := l.appendLocked(ctx, rec, false); err != nil {
			return false, err
		}
		st.Answers = append(st.Answers, e.Prefer)
		return true, nil
	case KindFinish:
		st, ok := l.sessions[e.ID]
		if !ok {
			return false, fmt.Errorf("wal: replica finish for unknown session %q", e.ID)
		}
		if st.Finished {
			return false, nil
		}
		if err := l.appendLocked(ctx, rec, false); err != nil {
			return false, err
		}
		st.Finished, st.Reason = true, e.Reason
		l.dead++
		return true, nil
	case KindControl:
		if e.Epoch <= l.epoch {
			return false, nil
		}
		if err := l.appendLocked(ctx, rec, false); err != nil {
			return false, err
		}
		l.epoch = e.Epoch
		return true, nil
	default:
		return false, fmt.Errorf("wal: replica entry with unknown kind %d", e.Kind)
	}
}

// ApplySnapshot merges a full session-state snapshot into this (follower)
// log, journaling only the deltas: unknown sessions are created whole,
// known ones have their missing answer suffix and tombstone appended. Like
// ApplyEntries the merge is idempotent and commits under one fsync, so a
// sender may push a snapshot at every reconnect without bloating the
// follower's journal. Returns how many records were appended.
func (l *Log) ApplySnapshot(states []SessionState) (applied int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ctx := context.Background()
	for _, st := range states {
		cur := l.sessions[st.ID]
		if cur == nil {
			rec := record{Kind: KindCreate, ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, FP: st.Fingerprint, IK: st.IdemKey}
			if err := l.appendLocked(ctx, rec, false); err != nil {
				return applied, err
			}
			cur = &SessionState{ID: st.ID, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, Fingerprint: st.Fingerprint, IdemKey: st.IdemKey}
			l.sessions[st.ID] = cur
			applied++
		}
		for i := len(cur.Answers); i < len(st.Answers); i++ {
			rec := record{Kind: KindAnswer, ID: st.ID, Round: i + 1, Prefer: st.Answers[i]}
			if err := l.appendLocked(ctx, rec, false); err != nil {
				return applied, err
			}
			cur.Answers = append(cur.Answers, st.Answers[i])
			applied++
		}
		if st.Finished && !cur.Finished {
			rec := record{Kind: KindFinish, ID: st.ID, Reason: st.Reason}
			if err := l.appendLocked(ctx, rec, false); err != nil {
				return applied, err
			}
			cur.Finished, cur.Reason = true, st.Reason
			l.dead++
			applied++
		}
	}
	if applied > 0 {
		l.syncActive(ctx)
		l.maybeCompactLocked()
	}
	return applied, nil
}

// maybeCompactLocked runs a best-effort compaction once enough tombstoned
// sessions accumulated. Callers hold l.mu.
func (l *Log) maybeCompactLocked() {
	if l.dead >= l.opts.CompactDeadSessions {
		if cerr := l.compactLocked(); cerr != nil && l.sticky == nil {
			l.sticky = cerr
		}
	}
}

// rotateLocked opens the next segment, then seals the old one. Opening
// first means a failure leaves the old (oversized but healthy) segment
// active instead of leaving the log with no file to append to. A fully
// sealed segment (synced, closed) gets a manifest entry freezing its
// length and whole-file CRC — the contract recovery and the scrubber
// verify against.
func (l *Log) rotateLocked() error {
	old, oldSeq, oldSize, oldCRC := l.active, l.actSeq, l.actSize, l.actCRC
	if err := l.openSegment(l.actSeq + 1); err != nil {
		return err
	}
	mRotations.Inc()
	if err := old.Sync(); err != nil {
		old.Close()
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.sealLocked(oldSeq, oldSize, oldCRC)
	return nil
}

// openSegment opens (creating if absent) segment seq for appends, priming
// the running CRC from any bytes already present.
func (l *Log) openSegment(seq int) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	var crc uint32
	if info.Size() > 0 {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: read segment: %w", err)
		}
		crc = crc32.ChecksumIEEE(data)
	}
	l.active, l.actSeq, l.actSize, l.actCRC = f, seq, info.Size(), crc
	return nil
}

// Compact rewrites live sessions into a fresh segment and drops everything
// older, reclaiming tombstoned space.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

// compactLocked writes every live session's create+answer records into a
// new highest-numbered segment via temp+rename, then deletes all older
// segments. A crash between rename and deletion leaves duplicate records,
// which recovery dedupes by round index — so every step is individually
// crash-safe. Callers hold l.mu.
func (l *Log) compactLocked() error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	newSeq := l.actSeq + 1
	tmp, err := os.CreateTemp(l.dir, "wal-compact-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	ids := make([]string, 0, len(l.sessions))
	for id, st := range l.sessions {
		if !st.Finished {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if l.epoch > 0 {
		// The epoch must survive compaction: a deposed primary that compacts
		// away its control record and restarts would come back believing an
		// older epoch and re-enter split brain. Write it first so recovery
		// adopts it before any session state.
		frame, err := encodeFrame(record{Kind: KindControl, Epoch: l.epoch})
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: compact write: %w", err)
		}
	}
	for _, id := range ids {
		st := l.sessions[id]
		frames := make([]record, 0, len(st.Answers)+1)
		frames = append(frames, record{Kind: KindCreate, ID: id, Algo: st.Algo, Eps: st.Eps, Seed: st.Seed, FP: st.Fingerprint, IK: st.IdemKey})
		for i, a := range st.Answers {
			frames = append(frames, record{Kind: KindAnswer, ID: id, Round: i + 1, Prefer: a})
		}
		for _, rec := range frames {
			frame, err := encodeFrame(rec)
			if err != nil {
				tmp.Close()
				return err
			}
			if _, err := tmp.Write(frame); err != nil {
				tmp.Close()
				return fmt.Errorf("wal: compact write: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	if err := fault.Hit(fault.PointWALRename); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.dir, segName(newSeq))); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	// The compacted segment now holds everything live; retire the past.
	// Deletion walks a glob rather than counting down sequence numbers so a
	// quarantine hole in the sequence cannot strand older segments.
	old := l.active
	l.active = nil
	if old != nil {
		old.Sync()
		old.Close()
	}
	if segs, gerr := filepath.Glob(filepath.Join(l.dir, "wal-*.log")); gerr == nil {
		for _, p := range segs {
			if seq, ok := parseSegName(filepath.Base(p)); ok && seq < newSeq {
				os.Remove(p)
			}
		}
	}
	// The whole sealed history was just superseded: every manifest entry is
	// stale and every quarantined segment's records were rewritten live into
	// the new segment, which ends their quarantine lifecycle.
	for seq := range l.quarantined {
		os.Remove(filepath.Join(l.dir, quarantineName(seq)))
		delete(l.quarantined, seq)
	}
	for seq := range l.manifest {
		delete(l.manifest, seq)
	}
	l.saveManifestLocked()
	for id, st := range l.sessions {
		if st.Finished {
			delete(l.sessions, id)
		}
	}
	l.dead = 0
	mCompactions.Inc()
	return l.openSegment(newSeq)
}
