package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// recover scans every segment in seq order, rebuilds the session mirror,
// and leaves the log ready for appends. Segments the manifest knows
// (sealed at a rotation or compaction) are verified whole-file against
// their recorded length and CRC32; a mismatch quarantines the segment —
// renamed aside, never deleted, repairable from a replication peer — and
// the scan continues, because the round-indexed dedup in applyRecord keeps
// the recovered state a valid prefix even across the hole. Unsealed
// segments (the live tail, or a pre-manifest journal) keep the legacy
// discipline: the longest valid record prefix wins, the torn suffix is
// truncated away with a structured warning, and later segments are
// dropped. The journal never refuses to boot over corruption; it degrades
// and counts.
func (l *Log) recover() error {
	l.loadManifest()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
		if seq, ok := parseQuarantineName(e.Name()); ok {
			l.quarantined[seq] = true
		}
	}
	sort.Ints(seqs)

	present := make(map[int]bool, len(seqs))
	for _, seq := range seqs {
		present[seq] = true
	}
	for seq := range l.manifest {
		if !present[seq] && !l.quarantined[seq] {
			// Sealed but gone entirely — nothing left to verify or repair
			// against once the active sequence moves past it.
			delete(l.manifest, seq)
		}
	}

scan:
	for i, seq := range seqs {
		path := filepath.Join(l.dir, segName(seq))
		if m, sealed := l.manifest[seq]; sealed {
			data, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("wal: read sealed segment: %w", err)
			}
			if int64(len(data)) != m.Len || crc32.ChecksumIEEE(data) != m.CRC {
				// Bit rot in sealed history. Keep the segment's valid record
				// prefix (each surviving frame is individually CRC-guarded),
				// park the file for anti-entropy repair, and keep scanning:
				// later answers past the hole orphan harmlessly.
				mCorrupt.Inc()
				mScrubCorrupt.Inc()
				scanFrameBytes(data, l.applyRecord)
				if err := l.quarantineLocked(seq, "recovery: manifest verification failed"); err != nil {
					return err
				}
				continue
			}
			// Byte-identical to what was sealed; apply without truncation
			// (a sealed torn record from a crashed write is part of the
			// sealed bytes and must stay, or the manifest CRC would lie).
			scanFrameBytes(data, l.applyRecord)
			continue
		}
		valid, total, err := l.scanSegment(path)
		if err != nil {
			return err
		}
		if valid == total {
			continue
		}
		// Corrupted unsealed tail: truncate this segment to its valid prefix
		// and drop everything after it in the sequence.
		mCorrupt.Inc()
		mTruncBytes.Add(total - valid)
		mTornTails.Inc()
		l.tornTails++
		l.opts.logger().Warn("wal: truncating torn tail",
			"segment", path, "offset", valid, "dropped_bytes", total-valid)
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("wal: truncate corrupt tail: %w", err)
		}
		for _, later := range seqs[i+1:] {
			if info, err := os.Stat(filepath.Join(l.dir, segName(later))); err == nil {
				mTruncBytes.Add(info.Size())
			}
			os.Remove(filepath.Join(l.dir, segName(later)))
			delete(l.manifest, later)
			mSegsDropped.Inc()
		}
		seqs = seqs[:i+1]
		break scan
	}

	for _, st := range l.sessions {
		if !st.Finished {
			mRecovered.Inc()
			mRecoveredAns.Add(int64(len(st.Answers)))
		} else {
			l.dead++
		}
	}
	l.boot = len(l.sessions) > 0
	l.saveManifestLocked()

	// Resume appends on the highest unsealed segment; when the top of the
	// sequence is sealed or quarantined, its bytes are frozen, so open a
	// fresh successor instead of reusing the number.
	top := 0
	for _, seq := range seqs {
		if seq > top {
			top = seq
		}
	}
	for seq := range l.quarantined {
		if seq > top {
			top = seq
		}
	}
	for seq := range l.manifest {
		if seq > top {
			top = seq
		}
	}
	if top == 0 {
		return l.openSegment(1)
	}
	if _, sealed := l.manifest[top]; sealed || l.quarantined[top] {
		return l.openSegment(top + 1)
	}
	return l.openSegment(top)
}

// scanSegment reads records from one segment file, applying each valid one
// to the session mirror. It returns the byte offset of the last valid
// record's end and the file size; valid < total signals a corrupted tail.
func (l *Log) scanSegment(path string) (valid, total int64, err error) {
	return scanFrames(path, l.applyRecord)
}

// scanFrames iterates the valid record prefix of one segment file, calling
// fn for each decoded record. It returns the byte offset of the last valid
// record's end and the file size; valid < total signals a corrupted tail.
// Corruption — a short header, an absurd length, a CRC mismatch, an
// undecodable payload — ends the scan without error.
func scanFrames(path string, fn func(record)) (valid, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	total = info.Size()
	var off int64
	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, total, nil // clean EOF or torn header: prefix ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes {
			return off, total, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, total, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, total, nil
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return off, total, nil
		}
		fn(rec)
		off += frameHeaderLen + int64(n)
	}
}

// RecordInfo is one journaled record in on-disk order, exposed read-only so
// tests and tools can audit the raw log (e.g. assert answer rounds are
// strictly increasing — the exactly-once property) without going through the
// deduplicating recovery path.
type RecordInfo struct {
	Kind    Kind
	ID      string
	Round   int
	Prefer  bool
	Reason  string
	IdemKey string
	Epoch   uint64
}

// Records scans every segment in dir in sequence order and returns the raw
// valid-prefix record stream, without mutating anything on disk. Unlike
// Open it performs no truncation and no deduplication: what was physically
// appended is what comes back.
func Records(dir string) ([]RecordInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	var out []RecordInfo
	for _, seq := range seqs {
		_, _, err := scanFrames(filepath.Join(dir, segName(seq)), func(rec record) {
			out = append(out, RecordInfo{
				Kind: rec.Kind, ID: rec.ID, Round: rec.Round,
				Prefer: rec.Prefer, Reason: rec.Reason, IdemKey: rec.IK,
				Epoch: rec.Epoch,
			})
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyRecord folds one valid record into the session mirror. Duplicates
// (from a compaction that crashed between rename and cleanup) are skipped:
// creates for known ids are no-ops and answers carry an explicit round
// index, so replaying the same record twice cannot double-feed an answer.
func (l *Log) applyRecord(rec record) {
	switch rec.Kind {
	case KindCreate:
		if _, dup := l.sessions[rec.ID]; dup {
			return
		}
		l.sessions[rec.ID] = &SessionState{ID: rec.ID, Algo: rec.Algo, Eps: rec.Eps, Seed: rec.Seed, Fingerprint: rec.FP, IdemKey: rec.IK}
	case KindAnswer:
		st, ok := l.sessions[rec.ID]
		if !ok {
			mOrphanRecords.Inc()
			return
		}
		if rec.Round <= len(st.Answers) {
			return // duplicate
		}
		if rec.Round != len(st.Answers)+1 {
			mOrphanRecords.Inc() // gap: a lost record upstream; keep the prefix
			return
		}
		st.Answers = append(st.Answers, rec.Prefer)
	case KindFinish:
		st, ok := l.sessions[rec.ID]
		if !ok {
			mOrphanRecords.Inc()
			return
		}
		st.Finished, st.Reason = true, rec.Reason
	case KindControl:
		// Failover epoch: adopt the highest seen. Not an orphan — control
		// records carry no session id by design.
		if rec.Epoch > l.epoch {
			l.epoch = rec.Epoch
		}
	default:
		mOrphanRecords.Inc()
	}
}
