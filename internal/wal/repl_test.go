package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip pins the exported framing helpers to the on-disk
// layout: whatever Frame produces, ReadFrame returns verbatim, and any
// payload bit flip fails the checksum loudly (the network path must not
// inherit the disk scan's silent-truncation semantics).
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	frame, err := Frame(payload, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(frame), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q want %q", got, payload)
	}

	// Clean EOF on an exact boundary surfaces as io.EOF untouched.
	if _, err := ReadFrame(bytes.NewReader(nil), 1<<20); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}

	// A flipped payload byte must fail the CRC.
	bad := append([]byte(nil), frame...)
	bad[frameHeaderLen] ^= 0x40
	if _, err := ReadFrame(bytes.NewReader(bad), 1<<20); err == nil {
		t.Fatal("corrupted frame read back without error")
	}

	// A frame longer than the limit is rejected before allocation.
	if _, err := ReadFrame(bytes.NewReader(frame), 4); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := Frame(payload, 4); err == nil {
		t.Fatal("oversized payload framed")
	}

	// A torn frame (header promises more than the stream holds) errors.
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), 1<<20); err == nil {
		t.Fatal("torn frame read back without error")
	}
}

// TestApplyEntriesIdempotent replays the same shipped batch twice: the
// second application must change nothing, which is what makes at-least-once
// shipping exactly-once in effect.
func TestApplyEntriesIdempotent(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	batch := []Entry{
		{LSN: 1, Kind: KindCreate, ID: "s1", Algo: "ea", Eps: 0.1, Seed: 7, IK: "k1"},
		{LSN: 2, Kind: KindAnswer, ID: "s1", Round: 1, Prefer: true},
		{LSN: 3, Kind: KindAnswer, ID: "s1", Round: 2, Prefer: false},
		{LSN: 4, Kind: KindControl, Epoch: 3},
	}
	applied, err := l.ApplyEntries(batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("first apply: %d entries applied, want 4", applied)
	}
	if got := l.Epoch(); got != 3 {
		t.Fatalf("epoch after control entry: %d, want 3", got)
	}
	applied, err = l.ApplyEntries(batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("replayed batch applied %d entries, want 0", applied)
	}
	states, _, _ := l.ReplSnapshot()
	if len(states) != 1 || len(states[0].Answers) != 2 || !states[0].Answers[0] || states[0].Answers[1] {
		t.Fatalf("unexpected state after replay: %+v", states)
	}
}

// TestApplyEntriesGap asserts a non-contiguous answer aborts the batch with
// an error — the signal that forces the primary back onto the snapshot path
// instead of silently corrupting the follower.
func TestApplyEntriesGap(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.ApplyEntries([]Entry{{LSN: 1, Kind: KindCreate, ID: "s1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ApplyEntries([]Entry{{LSN: 2, Kind: KindAnswer, ID: "s1", Round: 5, Prefer: true}}); err == nil {
		t.Fatal("answer gap applied without error")
	}
	if _, err := l.ApplyEntries([]Entry{{LSN: 3, Kind: KindAnswer, ID: "nope", Round: 1}}); err == nil {
		t.Fatal("orphan answer applied without error")
	}
}

// TestApplySnapshotMergesDeltas pushes overlapping snapshots and verifies
// only the missing suffix is journaled each time.
func TestApplySnapshotMergesDeltas(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := []SessionState{{ID: "s1", Algo: "ea", Eps: 0.1, Seed: 3, Answers: []bool{true}}}
	if applied, err := l.ApplySnapshot(first); err != nil || applied != 2 {
		t.Fatalf("first snapshot: applied=%d err=%v, want 2 records (create+answer)", applied, err)
	}
	second := []SessionState{
		{ID: "s1", Algo: "ea", Eps: 0.1, Seed: 3, Answers: []bool{true, false, true}, Finished: true, Reason: "finished"},
		{ID: "s2", Algo: "ea", Eps: 0.1, Seed: 4},
	}
	// s1 gains two answers + tombstone, s2 is new: 3 + 1 records.
	if applied, err := l.ApplySnapshot(second); err != nil || applied != 4 {
		t.Fatalf("second snapshot: applied=%d err=%v, want 4", applied, err)
	}
	if applied, err := l.ApplySnapshot(second); err != nil || applied != 0 {
		t.Fatalf("replayed snapshot: applied=%d err=%v, want 0", applied, err)
	}
	l.Close()

	// A restart must recover exactly the merged state: s1 complete and
	// tombstoned, s2 live and empty.
	l2, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	byID := map[string]SessionState{}
	for _, st := range states {
		byID[st.ID] = st
	}
	s1, s2 := byID["s1"], byID["s2"]
	if len(states) != 2 || !s1.Finished || s1.Reason != "finished" || len(s1.Answers) != 3 {
		t.Fatalf("recovered s1 = %+v, want 3 answers + tombstone", s1)
	}
	if s2.Finished || len(s2.Answers) != 0 {
		t.Fatalf("recovered s2 = %+v, want live empty session", s2)
	}
}

// TestEpochSurvivesRestartAndCompaction is the split-brain durability pin:
// the fencing epoch must come back after a clean reopen AND after a
// compaction rewrote every segment.
func TestEpochSurvivesRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCreate(SessionState{ID: "s1", Algo: "ea"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, _, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 5 {
		t.Fatalf("epoch after reopen: %d, want 5", got)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, _, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Epoch(); got != 5 {
		t.Fatalf("epoch after compaction+reopen: %d, want 5 (compaction dropped the control record)", got)
	}
}

// TestFenceRejectsAppends pins the deposed-primary behaviour: after Fence,
// every append fails with ErrStaleEpoch, and SetEpoch to a value at or
// above the fence clears it (the re-seeding path).
func TestFenceRejectsAppends(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendCreate(SessionState{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	l.Fence(2)
	if !l.Fenced() {
		t.Fatal("Fence(2) did not fence a log at epoch 0")
	}
	err = l.AppendAnswer("s1", true)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("append on fenced log: %v, want ErrStaleEpoch", err)
	}
	if _, err := l.ApplyEntries([]Entry{{LSN: 9, Kind: KindCreate, ID: "s2"}}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("replica apply on fenced log: %v, want ErrStaleEpoch", err)
	}
	// Adopting an epoch below the fence stays rejected; at the fence, clears.
	if err := l.SetEpoch(1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("SetEpoch below fence: %v, want ErrStaleEpoch", err)
	}
	if err := l.SetEpoch(2); err != nil {
		t.Fatalf("SetEpoch at fence: %v", err)
	}
	if l.Fenced() {
		t.Fatal("log still fenced after adopting the fencing epoch")
	}
	if err := l.AppendAnswer("s1", true); err != nil {
		t.Fatalf("append after unfencing: %v", err)
	}
}

// TestSubscribeStreamsAppends verifies the LSN stream: consecutive LSNs in
// commit order, and an overflowing subscriber is cut off via channel close
// rather than blocking the append path.
func TestSubscribeStreamsAppends(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ch, cancel := l.Subscribe(8)
	defer cancel()
	if err := l.AppendCreate(SessionState{ID: "s1", Algo: "ea"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAnswer("s1", true); err != nil {
		t.Fatal(err)
	}
	e1, e2 := <-ch, <-ch
	if e1.LSN != 1 || e1.Kind != KindCreate || e1.ID != "s1" {
		t.Fatalf("first entry = %+v, want create s1 at LSN 1", e1)
	}
	if e2.LSN != 2 || e2.Kind != KindAnswer || e2.Round != 1 || !e2.Prefer {
		t.Fatalf("second entry = %+v, want answer round 1 at LSN 2", e2)
	}
	if e2.Bytes <= e1.Bytes {
		t.Fatalf("cumulative bytes not monotone: %d then %d", e1.Bytes, e2.Bytes)
	}

	// Overflow: a 1-slot subscriber that never drains gets closed, appends
	// keep succeeding.
	slow, cancelSlow := l.Subscribe(1)
	defer cancelSlow()
	for i := 0; i < 3; i++ {
		if err := l.AppendAnswer("s1", false); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for range slow {
		n++
	}
	if n != 1 {
		t.Fatalf("overflowing subscriber read %d entries before close, want 1", n)
	}
}

// TestRecordsExposesEpoch pins the audit API: control records come back
// with their epoch so tests can assert fencing history.
func TestRecordsExposesEpoch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	l.Close()
	recs, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindControl || recs[0].Epoch != 7 {
		t.Fatalf("audit records = %+v, want one control record at epoch 7", recs)
	}
}
