package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// reopen closes l and replays the directory fresh, as a restarted process
// would.
func reopen(t *testing.T, l *Log, opts Options) (*Log, []SessionState) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, states, err := Open(l.Dir(), opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { l2.Close() })
	return l2, states
}

func mustCreate(t *testing.T, l *Log, id string, seed int64) {
	t.Helper()
	if err := l.AppendCreate(SessionState{ID: id, Algo: "UH", Eps: 0.1, Seed: seed, Fingerprint: 42}); err != nil {
		t.Fatalf("AppendCreate(%s): %v", id, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	l, states, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(states) != 0 {
		t.Fatalf("fresh journal has %d sessions", len(states))
	}
	mustCreate(t, l, "s1", 7)
	answers := []bool{true, false, false, true, true}
	for _, a := range answers {
		if err := l.AppendAnswer("s1", a); err != nil {
			t.Fatalf("AppendAnswer: %v", err)
		}
	}
	mustCreate(t, l, "s2", 8)
	if err := l.AppendFinish("s2", ReasonAborted); err != nil {
		t.Fatalf("AppendFinish: %v", err)
	}

	_, got := reopen(t, l, Options{})
	if len(got) != 2 {
		t.Fatalf("recovered %d sessions, want 2", len(got))
	}
	s1 := got[0]
	if s1.ID != "s1" || s1.Algo != "UH" || s1.Eps != 0.1 || s1.Seed != 7 || s1.Fingerprint != 42 {
		t.Errorf("s1 metadata mismatch: %+v", s1)
	}
	if len(s1.Answers) != len(answers) {
		t.Fatalf("s1 answers = %d, want %d", len(s1.Answers), len(answers))
	}
	for i, a := range answers {
		if s1.Answers[i] != a {
			t.Errorf("answer %d = %v, want %v", i, s1.Answers[i], a)
		}
	}
	if s1.Finished {
		t.Error("s1 wrongly tombstoned")
	}
	s2 := got[1]
	if !s2.Finished || s2.Reason != ReasonAborted {
		t.Errorf("s2 tombstone = %v/%q, want true/%q", s2.Finished, s2.Reason, ReasonAborted)
	}
}

func TestJournalErrorsOnBadAppends(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	mustCreate(t, l, "s1", 1)
	if err := l.AppendCreate(SessionState{ID: "s1"}); err == nil {
		t.Error("duplicate create accepted")
	}
	if err := l.AppendAnswer("ghost", true); err == nil {
		t.Error("answer for unknown session accepted")
	}
	if err := l.AppendFinish("ghost", ReasonFinished); err == nil {
		t.Error("finish for unknown session accepted")
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 1)
	for i := 0; i < 50; i++ {
		if err := l.AppendAnswer("s1", i%2 == 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: %d segments", len(segs))
	}
	_, states := reopen(t, l, Options{SegmentBytes: 128})
	if len(states) != 1 || len(states[0].Answers) != 50 {
		t.Fatalf("rotated journal recovery lost records: %+v", states)
	}
}

func TestJournalCompactionDropsTombstones(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{CompactDeadSessions: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// s1 stays live with some answers; s2..s6 die and trip compaction.
	mustCreate(t, l, "s1", 1)
	l.AppendAnswer("s1", true)
	l.AppendAnswer("s1", false)
	for _, id := range []string{"s2", "s3", "s4", "s5"} {
		mustCreate(t, l, id, 2)
		l.AppendAnswer(id, true)
		if err := l.AppendFinish(id, ReasonFinished); err != nil {
			t.Fatalf("finish %s: %v", id, err)
		}
	}
	// Compaction ran; only the live session should survive a replay, and
	// the dead sessions' bytes should be gone from disk.
	_, states := reopen(t, l, Options{})
	if len(states) != 1 || states[0].ID != "s1" {
		t.Fatalf("compacted journal = %+v, want only s1", states)
	}
	if len(states[0].Answers) != 2 {
		t.Fatalf("s1 lost answers in compaction: %+v", states[0])
	}
}

func TestJournalCompactionExplicit(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 1)
	mustCreate(t, l, "s2", 2)
	l.AppendFinish("s1", ReasonExpired)
	sizeBefore := dirSize(t, dir)
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if sz := dirSize(t, dir); sz >= sizeBefore {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", sizeBefore, sz)
	}
	_, states := reopen(t, l, Options{})
	if len(states) != 1 || states[0].ID != "s2" {
		t.Fatalf("post-compaction sessions = %+v, want only s2", states)
	}
	// The expired session must stay dead even though its tombstone was
	// compacted away (it vanished wholesale, not just the tombstone).
	for _, st := range states {
		if st.ID == "s1" {
			t.Error("expired session resurrected by compaction")
		}
	}
}

// A compaction that crashed after writing the new segment but before
// deleting the old ones leaves every record duplicated. The round-indexed
// answers must dedupe on replay, not double-feed.
func TestJournalRecoverAfterCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 1)
	l.AppendAnswer("s1", true)
	l.AppendAnswer("s1", false)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate the crash window: duplicate the whole segment under the next
	// sequence number, as if compaction renamed but never cleaned up.
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over duplicated segments: %v", err)
	}
	if len(states) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(states))
	}
	if got := states[0].Answers; len(got) != 2 || got[0] != true || got[1] != false {
		t.Fatalf("duplicated segment double-fed answers: %v", got)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
