package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The segment manifest records every sealed segment's exact length and
// whole-file CRC32, written via the same temp+rename idiom the compactor
// uses. A segment seals when rotation (or compaction) stops appending to it
// forever; from that moment its bytes must never change, which is what
// makes silent bit rot detectable: recovery and the background scrubber
// re-hash sealed files against the manifest instead of trusting the disk.
//
// A sealed segment that fails verification is quarantined — renamed to
// <segment>.quarantine, never deleted — so the evidence survives for
// anti-entropy repair (internal/repl re-fetches the byte range from the
// peer) or operator forensics. The quarantine lifecycle ends one of two
// ways: RepairSegment restores a verified byte-identical copy, or a
// compaction supersedes the whole sealed history and removes the file.
const manifestName = "MANIFEST"

// quarantineSuffix is appended to a sealed segment's file name when it
// fails verification.
const quarantineSuffix = ".quarantine"

// segMeta is one manifest entry: the sealed segment's frozen size and
// whole-file checksum.
type segMeta struct {
	Len int64  `json:"len"`
	CRC uint32 `json:"crc"`
}

// manifestFile is the on-disk MANIFEST shape.
type manifestFile struct {
	V        int           `json:"v"`
	Segments []segManifest `json:"segments"`
}

type segManifest struct {
	Seq int    `json:"seq"`
	Len int64  `json:"len"`
	CRC uint32 `json:"crc"`
}

// SegmentInfo is one sealed segment's public identity: sequence number,
// manifest length and checksum, and whether the local copy is quarantined.
// The replication digest exchange ships these across the link.
type SegmentInfo struct {
	Seq         int    `json:"seq"`
	Len         int64  `json:"len"`
	CRC         uint32 `json:"crc"`
	Quarantined bool   `json:"q,omitempty"`
}

// Integrity is the journal's self-healing status block, surfaced on
// /healthz. Counters are lifetime totals for this Log instance.
type Integrity struct {
	SealedSegments      int   `json:"sealed_segments"`
	Quarantined         []int `json:"quarantined,omitempty"`
	LastScrubUnix       int64 `json:"last_scrub_unix"`
	ScrubbedSegments    int64 `json:"scrubbed_segments"`
	CorruptDetected     int64 `json:"corrupt_detected"`
	Repaired            int64 `json:"repaired"`
	TornTailTruncations int64 `json:"torn_tail_truncations"`
}

// quarantineName renders the parking name of a corrupt sealed segment.
func quarantineName(seq int) string { return segName(seq) + quarantineSuffix }

// parseQuarantineName extracts the sequence number from a quarantine file
// name.
func parseQuarantineName(name string) (int, bool) {
	base, ok := strings.CutSuffix(name, quarantineSuffix)
	if !ok {
		return 0, false
	}
	return parseSegName(base)
}

// loadManifest reads MANIFEST into the in-memory map. A missing file is an
// empty manifest; an unreadable or undecodable one is treated the same way
// (the entries regenerate at the next seal) but warned about, since losing
// the manifest downgrades sealed segments to unverifiable legacy ones.
func (l *Log) loadManifest() {
	l.manifest = make(map[int]segMeta)
	data, err := os.ReadFile(filepath.Join(l.dir, manifestName))
	if err != nil {
		if !os.IsNotExist(err) {
			l.opts.logger().Warn("wal: manifest unreadable; sealed segments unverifiable until resealed", "err", err)
		}
		return
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		l.opts.logger().Warn("wal: manifest corrupt; sealed segments unverifiable until resealed", "err", err)
		return
	}
	for _, s := range mf.Segments {
		l.manifest[s.Seq] = segMeta{Len: s.Len, CRC: s.CRC}
	}
}

// saveManifestLocked writes the manifest via temp+rename (fsynced), or
// removes the file when no segment is sealed. Failures are warned, not
// fatal: a lost manifest costs verifiability, not data. Callers hold l.mu.
func (l *Log) saveManifestLocked() {
	path := filepath.Join(l.dir, manifestName)
	if len(l.manifest) == 0 {
		os.Remove(path)
		return
	}
	mf := manifestFile{V: 1}
	seqs := make([]int, 0, len(l.manifest))
	for seq := range l.manifest {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		m := l.manifest[seq]
		mf.Segments = append(mf.Segments, segManifest{Seq: seq, Len: m.Len, CRC: m.CRC})
	}
	data, err := json.Marshal(mf)
	if err != nil {
		l.opts.logger().Warn("wal: manifest encode failed", "err", err)
		return
	}
	tmp, err := os.CreateTemp(l.dir, "wal-manifest-*.tmp")
	if err != nil {
		l.opts.logger().Warn("wal: manifest write failed", "err", err)
		return
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		l.opts.logger().Warn("wal: manifest write failed", "err", err)
	}
}

// sealLocked records a freshly sealed segment in the manifest. Callers hold
// l.mu and must have synced+closed the segment already.
func (l *Log) sealLocked(seq int, length int64, crc uint32) {
	l.manifest[seq] = segMeta{Len: length, CRC: crc}
	l.saveManifestLocked()
}

// quarantineLocked parks a corrupt sealed segment under its .quarantine
// name. The manifest entry is kept — it is the repair contract: only a
// byte-identical replacement (same length, same CRC) may take the
// segment's place. Quarantine does NOT set the sticky error: the live tail
// still commits, and degrading the whole node over repairable history
// would shed traffic for nothing. Callers hold l.mu.
func (l *Log) quarantineLocked(seq int, reason string) error {
	if l.quarantined[seq] {
		return nil
	}
	if _, sealed := l.manifest[seq]; !sealed {
		return fmt.Errorf("wal: quarantine of unsealed segment %d", seq)
	}
	from := filepath.Join(l.dir, segName(seq))
	to := filepath.Join(l.dir, quarantineName(seq))
	if err := os.Rename(from, to); err != nil {
		return fmt.Errorf("wal: quarantine segment %d: %w", seq, err)
	}
	l.quarantined[seq] = true
	l.corruptSeen++
	mScrubQuarantined.Inc()
	l.opts.logger().Warn("wal: sealed segment quarantined",
		"segment", from, "reason", reason, "seq", seq)
	return nil
}

// SealedSegments returns the manifest view of every sealed segment in
// sequence order, quarantined ones flagged. This is the digest the
// replication link exchanges for anti-entropy comparison.
func (l *Log) SealedSegments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealedSegmentsLocked()
}

func (l *Log) sealedSegmentsLocked() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(l.manifest))
	for seq, m := range l.manifest {
		out = append(out, SegmentInfo{Seq: seq, Len: m.Len, CRC: m.CRC, Quarantined: l.quarantined[seq]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Quarantined returns the sequence numbers currently parked under
// quarantine, sorted.
func (l *Log) Quarantined() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.quarantined))
	for seq := range l.quarantined {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}

// SegmentData reads one healthy sealed segment for serving to a peer,
// verifying it against the manifest first — a node must never "repair" its
// peer with bytes it cannot vouch for. A verification failure quarantines
// the segment on the spot and returns an error.
func (l *Log) SegmentData(seq int) ([]byte, SegmentInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, sealed := l.manifest[seq]
	if !sealed {
		return nil, SegmentInfo{}, fmt.Errorf("wal: segment %d is not sealed", seq)
	}
	if l.quarantined[seq] {
		return nil, SegmentInfo{}, fmt.Errorf("wal: segment %d is quarantined", seq)
	}
	data, err := os.ReadFile(filepath.Join(l.dir, segName(seq)))
	if err != nil {
		return nil, SegmentInfo{}, fmt.Errorf("wal: read segment %d: %w", seq, err)
	}
	if int64(len(data)) != m.Len || crc32.ChecksumIEEE(data) != m.CRC {
		mScrubCorrupt.Inc()
		if qerr := l.quarantineLocked(seq, "manifest_mismatch"); qerr != nil {
			l.opts.logger().Warn("wal: quarantine failed", "seq", seq, "err", qerr)
		}
		return nil, SegmentInfo{}, fmt.Errorf("wal: segment %d fails manifest verification", seq)
	}
	return data, SegmentInfo{Seq: seq, Len: m.Len, CRC: m.CRC}, nil
}

// RepairSegment replaces a quarantined segment with data fetched from a
// peer. The replacement must match the manifest byte-for-byte (length and
// CRC) — anything else is rejected, so a diverged or malicious peer cannot
// rewrite history. On success the quarantine file is removed and the
// repaired records are folded back into the session mirror (idempotently;
// runtime quarantines already have them, boot-time quarantines may not).
func (l *Log) RepairSegment(seq int, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if !l.quarantined[seq] {
		return fmt.Errorf("wal: segment %d is not quarantined", seq)
	}
	m, sealed := l.manifest[seq]
	if !sealed {
		return fmt.Errorf("wal: segment %d has no manifest entry to verify against", seq)
	}
	if int64(len(data)) != m.Len || crc32.ChecksumIEEE(data) != m.CRC {
		return fmt.Errorf("wal: repair for segment %d does not match manifest (len %d/%d)", seq, len(data), m.Len)
	}
	tmp, err := os.CreateTemp(l.dir, "wal-repair-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: repair segment %d: %w", seq, err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(l.dir, segName(seq)))
	}
	if err != nil {
		return fmt.Errorf("wal: repair segment %d: %w", seq, err)
	}
	os.Remove(filepath.Join(l.dir, quarantineName(seq)))
	delete(l.quarantined, seq)
	l.repaired++
	mScrubRepaired.Inc()
	scanFrameBytes(data, l.applyRecord)
	l.opts.logger().Info("wal: quarantined segment repaired from peer", "seq", seq, "bytes", len(data))
	return nil
}

// CompareDigest diffs a peer's sealed-segment digest against the local
// manifest. It returns the sequence numbers this node wants re-fetched (a
// local quarantined segment the peer holds a healthy, manifest-matching
// copy of) and the sequences where both sides look healthy at the same
// length but different checksums — divergence neither side detected
// locally, which is counted and warned but never auto-adopted: with no
// third vote there is no way to know whose bytes rotted.
func (l *Log) CompareDigest(peer []SegmentInfo) (want, divergent []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range peer {
		m, sealed := l.manifest[p.Seq]
		if !sealed || p.Quarantined {
			continue
		}
		if p.Len != m.Len || p.CRC != m.CRC {
			if !l.quarantined[p.Seq] && p.Len == m.Len {
				divergent = append(divergent, p.Seq)
				mScrubDivergent.Inc()
				l.opts.logger().Warn("wal: sealed segment diverged from peer; not auto-adopting",
					"seq", p.Seq, "local_crc", m.CRC, "peer_crc", p.CRC)
			}
			// A length mismatch means the peer laid its journal out
			// differently (snapshot-bootstrapped follower); raw-segment
			// repair cannot apply and the snapshot path is the fallback.
			continue
		}
		if l.quarantined[p.Seq] {
			want = append(want, p.Seq)
		}
	}
	return want, divergent
}

// Integrity returns the self-healing status block for /healthz.
func (l *Log) Integrity() Integrity {
	l.mu.Lock()
	defer l.mu.Unlock()
	in := Integrity{
		SealedSegments:      len(l.manifest),
		LastScrubUnix:       l.lastScrubUnix,
		ScrubbedSegments:    l.scrubbed,
		CorruptDetected:     l.corruptSeen,
		Repaired:            l.repaired,
		TornTailTruncations: l.tornTails,
	}
	for seq := range l.quarantined {
		in.Quarantined = append(in.Quarantined, seq)
	}
	sort.Ints(in.Quarantined)
	return in
}

// scanFrameBytes iterates the valid record prefix of an in-memory segment
// image, calling fn for each decoded record, and returns the byte offset
// where the valid prefix ends. The logic mirrors scanFrames but never
// touches the filesystem.
func scanFrameBytes(data []byte, fn func(record)) (valid int64) {
	off := 0
	for {
		if off+frameHeaderLen > len(data) {
			return int64(off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			return int64(off)
		}
		end := off + frameHeaderLen + int(n)
		if end > len(data) {
			return int64(off)
		}
		payload := data[off+frameHeaderLen : end]
		if crc32.ChecksumIEEE(payload) != sum {
			return int64(off)
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return int64(off)
		}
		if fn != nil {
			fn(rec)
		}
		off = end
	}
}

// classifyCorruption walks a corrupt sealed segment's frames with ReadFrame
// (the same parser the replication wire uses) and names the first failure:
// an impossible length field, a mid-segment CRC failure, or a torn frame.
func classifyCorruption(data []byte) string {
	r := bytes.NewReader(data)
	for {
		_, err := ReadFrame(r, maxRecordBytes)
		switch {
		case err == nil:
			continue
		case errors.Is(err, io.EOF):
			// Every frame parsed clean, yet the whole-file hash disagrees
			// with the manifest: the damage is outside any frame payload
			// ReadFrame checks (e.g. trailing garbage).
			return "manifest_mismatch"
		case errors.Is(err, ErrFrameTooLarge):
			return "impossible_length"
		case errors.Is(err, ErrFrameChecksum):
			return "crc_mismatch"
		default:
			return "torn"
		}
	}
}
