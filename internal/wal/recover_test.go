package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"isrl/internal/fault"
)

// buildJournal writes a known single-segment journal and returns its path
// and the full answer sequence of the one live session.
func buildJournal(t *testing.T, dir string, answers int) string {
	t.Helper()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 11)
	for i := 0; i < answers; i++ {
		if err := l.AppendAnswer("s1", i%3 == 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return filepath.Join(dir, segName(1))
}

// Property: truncating the journal at EVERY byte offset must recover a
// valid prefix of the answer sequence and never panic or fail to boot.
func TestJournalRecoverEveryTruncationPoint(t *testing.T) {
	master := t.TempDir()
	seg := buildJournal(t, master, 12)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	full := answersOf(t, master)

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, states, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: recovery refused to boot: %v", cut, err)
		}
		got := sessionAnswers(states, "s1")
		if len(got) > len(full) {
			t.Fatalf("cut=%d: recovered MORE answers than written", cut)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("cut=%d: answer %d diverged from prefix", cut, i)
			}
		}
		// The truncated log must accept new appends (if s1 survived).
		if len(states) == 1 && !states[0].Finished {
			if err := l.AppendAnswer("s1", true); err != nil {
				t.Fatalf("cut=%d: append after recovery: %v", cut, err)
			}
		}
		l.Close()
	}
}

// Property: flipping any single bit must never panic recovery, and the
// recovered answers must be a prefix of the original sequence (the flip
// either lands in a record, killing it and everything after, or in dead
// space past the last frame).
func TestJournalRecoverBitFlips(t *testing.T) {
	master := t.TempDir()
	seg := buildJournal(t, master, 10)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	full := answersOf(t, master)

	rng := rand.New(rand.NewSource(3))
	trials := 200
	for trial := 0; trial < trials; trial++ {
		mut := append([]byte(nil), data...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, states, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d (bit %d): recovery refused to boot: %v", trial, bit, err)
		}
		got := sessionAnswers(states, "s1")
		if len(got) > len(full) {
			t.Fatalf("trial %d: recovered more answers than written", trial)
		}
		for i := range got {
			if got[i] != full[i] {
				// A flip inside an answer's payload byte would change the
				// answer but also break the CRC, so a surviving record is
				// always intact; divergence means CRC framing failed.
				t.Fatalf("trial %d (bit %d): recovered answer %d diverged", trial, bit, i)
			}
		}
		l.Close()
	}
}

// Property: torn tails produced by the fault injector (half-written frames,
// failed fsyncs) recover the longest valid prefix, count the corruption,
// and never panic.
func TestJournalRecoverTornTailFault(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 5)
	for i := 0; i < 6; i++ {
		if err := l.AppendAnswer("s1", true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Arm a guaranteed torn write: the next append persists half a frame.
	fault.Install(fault.NewPlan(1).Set(fault.PointWALWrite, fault.Spec{TornProb: 1}))
	err = l.AppendAnswer("s1", false)
	fault.Install(nil)
	if !errors.Is(err, fault.ErrTornWrite) {
		t.Fatalf("torn append error = %v, want ErrTornWrite", err)
	}
	if l.Err() == nil {
		t.Error("torn write did not leave a sticky error for healthz")
	}
	l.Close()

	l2, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer l2.Close()
	got := sessionAnswers(states, "s1")
	if len(got) != 6 {
		t.Fatalf("recovered %d answers, want the 6 committed before the tear", len(got))
	}
	// The torn bytes were truncated away: appends go to a clean tail.
	if err := l2.AppendAnswer("s1", false); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
	_, states = reopen(t, l2, Options{})
	if got := sessionAnswers(states, "s1"); len(got) != 7 {
		t.Fatalf("post-truncation append lost: %d answers, want 7", len(got))
	}
}

// Injected fsync failures keep the journal appending (availability) but
// must be counted and surfaced as the sticky error.
func TestJournalFsyncFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	mustCreate(t, l, "s1", 5)
	fault.Install(fault.NewPlan(1).Set(fault.PointWALSync, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)
	if err := l.AppendAnswer("s1", true); err != nil {
		t.Fatalf("append with failing fsync should still commit in memory: %v", err)
	}
	if l.FsyncErrors() == 0 {
		t.Error("fsync failure not counted")
	}
	if l.Err() == nil {
		t.Error("fsync failure not sticky")
	}
}

// Garbage that merely LOOKS like a huge record (corrupted length field)
// must not allocate or crash recovery.
func TestJournalRecoverAbsurdLength(t *testing.T) {
	dir := t.TempDir()
	data := []byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery over garbage: %v", err)
	}
	defer l.Close()
	if len(states) != 0 {
		t.Fatalf("garbage produced sessions: %+v", states)
	}
}

// Corruption in a sealed middle segment no longer drops the tail: the
// manifest check quarantines the segment (renamed aside, never deleted)
// and the scan continues over the hole. Recovered answers stay a valid
// PREFIX — records past the hole orphan on the round-index gap — and a
// byte-identical repair restores the full history.
func TestJournalRecoverMidSegmentCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustCreate(t, l, "s1", 1)
	for i := 0; i < 30; i++ {
		if err := l.AppendAnswer("s1", true); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments for this test, got %d", len(segs))
	}
	// Corrupt the second segment's first payload byte, keeping a pristine
	// copy — the stand-in for the replication peer's healthy bytes.
	second := filepath.Join(dir, segName(2))
	pristine, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), pristine...)
	data[frameHeaderLen] ^= 0xff
	if err := os.WriteFile(second, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := sessionAnswers(states, "s1")
	if len(got) >= 30 || len(got) == 0 {
		t.Fatalf("corruption in segment 2 should recover a proper answer prefix, got %d", len(got))
	}
	if q := l2.Quarantined(); len(q) != 1 || q[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", q)
	}
	if _, err := os.Stat(second); !os.IsNotExist(err) {
		t.Errorf("corrupt segment still present under its live name: %v", err)
	}
	if _, err := os.Stat(second + quarantineSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(left) != len(segs)-1 {
		t.Errorf("later segments should survive a quarantine, have %d of %d", len(left), len(segs))
	}
	// A manifest-matching replacement ends the quarantine; a fresh replay
	// then sees the complete history again.
	if err := l2.RepairSegment(2, pristine); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if q := l2.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine not cleared by repair: %v", q)
	}
	if restored, err := os.ReadFile(second); err != nil || !bytes.Equal(restored, pristine) {
		t.Errorf("repaired segment not byte-identical (err=%v)", err)
	}
	_, states = reopen(t, l2, Options{})
	if got := sessionAnswers(states, "s1"); len(got) != 30 {
		t.Errorf("post-repair replay recovered %d answers, want all 30", len(got))
	}
}

// answersOf replays the master journal and returns s1's full answers.
func answersOf(t *testing.T, dir string) []bool {
	t.Helper()
	l, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return sessionAnswers(states, "s1")
}

func sessionAnswers(states []SessionState, id string) []bool {
	for _, st := range states {
		if st.ID == id {
			return st.Answers
		}
	}
	return nil
}
