package wal

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"isrl/internal/fault"
	"isrl/internal/obs"
)

// Scrub metrics plus the torn-tail counter, process-wide like the rest of
// the journal metrics so a chaos run is auditable from /metrics.
var (
	mTornTails        = obs.Default().Counter("wal.torn_tail_truncations")
	mScrubRuns        = obs.Default().Counter("wal.scrub.runs")
	mScrubSegments    = obs.Default().Counter("wal.scrub.segments")
	mScrubBytes       = obs.Default().Counter("wal.scrub.bytes")
	mScrubCorrupt     = obs.Default().Counter("wal.scrub.corrupt")
	mScrubQuarantined = obs.Default().Counter("wal.scrub.quarantined")
	mScrubRepaired    = obs.Default().Counter("wal.scrub.repaired")
	mScrubDivergent   = obs.Default().Counter("wal.scrub.divergent")
	mScrubLastUnix    = obs.Default().Gauge("wal.scrub.last_unix")
)

// scrubChunk is how many bytes one rate-limited read covers. Small enough
// that pacing is smooth at low rates, large enough that syscall overhead
// stays negligible at high ones.
const scrubChunk = 256 << 10

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Segments    int   // sealed segments verified this pass
	Bytes       int64 // bytes re-read and hashed
	Corrupt     int   // segments that failed verification this pass
	Quarantined []int // sequence numbers quarantined this pass
}

// Scrub re-reads every healthy sealed segment, verifies it against the
// manifest, and quarantines anything that fails. rate caps the read
// bandwidth in bytes/second (0 or negative: unlimited) so a background
// scrub cannot starve the commit path's fsyncs. Corruption is classified —
// manifest mismatch, mid-segment CRC failure, impossible length, torn
// frame — with the frame walk reusing ReadFrame, the same parser the
// replication wire trusts. Reads pass through the wal.scrub.read fault
// point; an injected read error is treated as corruption (a sector the
// disk no longer returns is as gone as a flipped bit).
//
// Scrubbing never touches the active segment (it is still growing) and
// never sets the journal's sticky error: quarantined history is repairable
// (anti-entropy re-fetches it from the peer) and must not shed live
// traffic.
func (l *Log) Scrub(ctx context.Context, rate int64) (ScrubReport, error) {
	var rep ScrubReport
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return rep, fmt.Errorf("wal: log closed")
	}
	targets := make([]SegmentInfo, 0, len(l.manifest))
	for _, info := range l.sealedSegmentsLocked() {
		if !info.Quarantined && info.Seq != l.actSeq {
			targets = append(targets, info)
		}
	}
	l.mu.Unlock()

	for _, target := range targets {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		data, err := l.scrubRead(ctx, filepath.Join(l.dir, segName(target.Seq)), rate)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			if os.IsNotExist(err) {
				continue // compacted away mid-scrub
			}
			// The disk refused to return the segment: corruption by another
			// name. Quarantine what is left of it.
			l.scrubFail(&rep, target, "read_error: "+err.Error())
			continue
		}
		rep.Bytes += int64(len(data))
		mScrubBytes.Add(int64(len(data)))
		switch {
		case int64(len(data)) != target.Len:
			l.scrubFail(&rep, target, fmt.Sprintf("manifest_mismatch: %d bytes on disk, %d sealed", len(data), target.Len))
		case crc32.ChecksumIEEE(data) != target.CRC:
			l.scrubFail(&rep, target, classifyCorruption(data))
		default:
			rep.Segments++
			mScrubSegments.Inc()
		}
	}

	now := time.Now().Unix()
	l.mu.Lock()
	l.lastScrubUnix = now
	l.scrubbed += int64(rep.Segments)
	l.mu.Unlock()
	mScrubRuns.Inc()
	mScrubLastUnix.Set(now)
	return rep, nil
}

// scrubFail records one failed verification and quarantines the segment,
// re-checking under the lock that it is still sealed and healthy (a
// compaction or a concurrent quarantine may have raced the read).
func (l *Log) scrubFail(rep *ScrubReport, target SegmentInfo, reason string) {
	mScrubCorrupt.Inc()
	l.mu.Lock()
	defer l.mu.Unlock()
	m, sealed := l.manifest[target.Seq]
	if !sealed || m != (segMeta{Len: target.Len, CRC: target.CRC}) || l.quarantined[target.Seq] {
		return
	}
	rep.Corrupt++
	if err := l.quarantineLocked(target.Seq, reason); err != nil {
		l.opts.logger().Warn("wal: quarantine failed", "seq", target.Seq, "err", err)
		return
	}
	rep.Quarantined = append(rep.Quarantined, target.Seq)
}

// scrubRead reads one segment in rate-limited chunks through the
// wal.scrub.read fault point.
func (l *Log) scrubRead(ctx context.Context, path string, rate int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, 0, info.Size())
	buf := make([]byte, scrubChunk)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := fault.Hit(fault.PointScrubRead); err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := f.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return data, nil
			}
			return nil, err
		}
		if rate > 0 && n > 0 {
			// Pace so the sustained rate stays at the cap: the chunk "costs"
			// n/rate seconds; sleep whatever the read itself did not spend.
			budget := time.Duration(float64(n) / float64(rate) * float64(time.Second))
			if spent := time.Since(start); budget > spent {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(budget - spent):
				}
			}
		}
	}
}

// ScrubLoop runs Scrub every interval until ctx is cancelled — the
// background self-healing daemon isrl-serve starts with -scrub-every.
func (l *Log) ScrubLoop(ctx context.Context, every time.Duration, rate int64) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rep, err := l.Scrub(ctx, rate)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			l.opts.logger().Warn("wal: scrub pass failed", "err", err)
			continue
		}
		if rep.Corrupt > 0 {
			l.opts.logger().Warn("wal: scrub found corruption",
				"segments", rep.Segments, "corrupt", rep.Corrupt, "quarantined", rep.Quarantined)
		}
	}
}
