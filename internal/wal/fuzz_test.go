package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame parser shared by the
// on-disk journal and the replication wire: it must never panic or
// over-allocate, and whenever it accepts a frame, re-framing the payload
// must reproduce exactly the bytes consumed — the round-trip property the
// scrubber and the shipping protocol both rest on.
func FuzzReadFrame(f *testing.F) {
	real, err := Frame([]byte(`{"k":2,"id":"s1","n":3,"a":true}`), maxRecordBytes)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)                                          // one valid frame
	f.Add(real[:len(real)/2])                            // torn mid-payload
	f.Add(real[:frameHeaderLen-2])                       // torn mid-header
	f.Add(append(append([]byte(nil), real...), real...)) // two frames back to back
	absurd := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(absurd[0:4], 0x7fffffff) // impossible length
	f.Add(absurd)
	flipped := append([]byte(nil), real...)
	flipped[frameHeaderLen] ^= 0xff // payload bit rot: checksum must catch it
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r, maxRecordBytes)
			if err != nil {
				return // corruption and EOF are legitimate outcomes
			}
			consumed := len(data) - r.Len()
			re, err := Frame(payload, maxRecordBytes)
			if err != nil {
				t.Fatalf("accepted payload of %d bytes cannot be re-framed: %v", len(payload), err)
			}
			start := consumed - len(re)
			if start < 0 || !bytes.Equal(data[start:consumed], re) {
				t.Fatalf("round-trip mismatch: frame at [%d:%d] does not re-encode to itself", start, consumed)
			}
		}
	})
}
