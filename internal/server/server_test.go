package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/vec"
)

func testServer(t *testing.T) (*Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(1)), 500, 3).Skyline()
	srv := New(ds, 0.1, func(int64) core.Algorithm {
		return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(2)))
	})
	return srv, ds
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, statePayload) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out statePayload
	if rec.Code < 300 && rec.Code != http.StatusNoContent {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON (%d): %s", rec.Code, rec.Body.String())
		}
	}
	return rec, out
}

// Full happy path: create a session, answer questions as a simulated user,
// and receive a result whose regret respects the threshold.
func TestServerFullSession(t *testing.T) {
	srv, ds := testServer(t)
	u := []float64{0.2, 0.5, 0.3}
	truth := core.SimulatedUser{Utility: u}

	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body.String())
	}
	id := state.ID
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 200 {
			t.Fatal("session did not finish")
		}
		if state.Question == nil {
			t.Fatalf("no question and not done: %+v", state)
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		rec, state = doJSON(t, srv, http.MethodPost, fmt.Sprintf("/sessions/%s/answer", id), answerPayload{PreferFirst: prefer})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if state.Result == nil {
		t.Fatalf("done without result: %+v", state)
	}
	if rr := ds.RegretRatio(state.Result.Point, u); rr > 0.1+1e-9 {
		t.Errorf("served result regret %v > eps", rr)
	}
	// The session is gone once finished.
	rec, _ = doJSON(t, srv, http.MethodGet, "/sessions/"+id, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("finished session still routable: %d", rec.Code)
	}
}

func TestServerGetRepeatsPendingQuestion(t *testing.T) {
	srv, _ := testServer(t)
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	_, again := doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
	if created.Question == nil || again.Question == nil {
		t.Fatal("expected a pending question on both reads")
	}
	if !vec.Equal(created.Question.First, again.Question.First, 0) {
		t.Error("GET must re-deliver the same pending question")
	}
}

func TestServerAbort(t *testing.T) {
	srv, _ := testServer(t)
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	rec, _ := doJSON(t, srv, http.MethodDelete, "/sessions/"+created.ID, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("aborted session still routable: %d", rec.Code)
	}
}

func TestServerErrors(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodGet, "/sessions/nope", nil, http.StatusNotFound},
		{http.MethodDelete, "/sessions/nope", nil, http.StatusNotFound},
		{http.MethodPost, "/sessions/nope/answer", answerPayload{}, http.StatusNotFound},
		{http.MethodPut, "/sessions/x", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/other", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, srv, c.method, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, rec.Code, c.want)
		}
	}
	// Malformed answer body.
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	req := httptest.NewRequest(http.MethodPost, "/sessions/"+created.ID+"/answer", bytes.NewBufferString("{bad"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body status %d", rec.Code)
	}
}

// Two sessions must progress independently.
func TestServerConcurrentSessions(t *testing.T) {
	srv, _ := testServer(t)
	_, a := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	_, b := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if a.ID == b.ID {
		t.Fatal("duplicate session ids")
	}
	// Answer only session A; session B's pending question must be intact.
	rec, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+a.ID+"/answer", answerPayload{PreferFirst: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("answer A: %d", rec.Code)
	}
	rec, stateB := doJSON(t, srv, http.MethodGet, "/sessions/"+b.ID, nil)
	if rec.Code != http.StatusOK || (stateB.Question == nil && !stateB.Done) {
		t.Errorf("session B disturbed: %d %+v", rec.Code, stateB)
	}
}

func BenchmarkServerFullSession(b *testing.B) {
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(1)), 500, 3).Skyline()
	srv := New(ds, 0.1, func(int64) core.Algorithm {
		return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(2)))
	})
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/sessions", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var state statePayload
		if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
			b.Fatal(err)
		}
		for !state.Done {
			prefer := truth.Prefer(state.Question.First, state.Question.Second)
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(answerPayload{PreferFirst: prefer}); err != nil {
				b.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/sessions/"+state.ID+"/answer", &buf)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
				b.Fatal(err)
			}
		}
	}
}
