package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeRepl is a canned Replication view so the gate can be tested without a
// live replication link.
type fakeRepl struct {
	role   string
	epoch  uint64
	fenced bool
	lagR   int64
	lagB   int64
}

func (f *fakeRepl) Role() string        { return f.role }
func (f *fakeRepl) Epoch() uint64       { return f.epoch }
func (f *fakeRepl) Fenced() bool        { return f.fenced }
func (f *fakeRepl) Lag() (int64, int64) { return f.lagR, f.lagB }

// TestReplGateFollowerShedsSessions pins the follower contract: every
// session route — including GET, whose 404 a client would treat as
// definitive — answers 503 with Retry-After, while health and metrics stay
// reachable for probes.
func TestReplGateFollowerShedsSessions(t *testing.T) {
	srv, _ := testServer(t)
	WithReplication(&fakeRepl{role: "follower", epoch: 0, lagR: 7})(srv)

	for _, c := range []struct{ method, path string }{
		{http.MethodPost, "/sessions"},
		{http.MethodGet, "/sessions/abc"},
		{http.MethodDelete, "/sessions/abc"},
		{http.MethodPost, "/sessions/abc/answer"},
	} {
		rec, _ := doJSON(t, srv, c.method, c.path, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s on follower: status %d, want 503", c.method, c.path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s %s on follower: no Retry-After header", c.method, c.path)
		}
		if !strings.Contains(rec.Body.String(), "follower catching up") {
			t.Errorf("%s %s on follower: body %q lacks catching-up hint", c.method, c.path, rec.Body.String())
		}
	}
	rec, _ := doJSON(t, srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz on follower: status %d, want 200", rec.Code)
	}
}

// TestReplGateFencedPrimaryRejects pins the split-brain guard: a deposed
// primary sheds mutations with a stale-epoch 503 and reports itself
// degraded on the health probe.
func TestReplGateFencedPrimaryRejects(t *testing.T) {
	srv, _ := testServer(t)
	WithReplication(&fakeRepl{role: "primary", epoch: 3, fenced: true})(srv)

	rec, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create on fenced primary: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "stale epoch") {
		t.Errorf("fenced rejection body %q lacks stale-epoch hint", rec.Body.String())
	}

	health := healthPayload(t, srv)
	if health["status"] != "degraded" {
		t.Errorf("fenced primary healthz status %v, want degraded", health["status"])
	}
	rep := health["replication"].(map[string]any)
	if rep["fenced"] != true || rep["epoch"] != float64(3) {
		t.Errorf("fenced primary replication block = %v", rep)
	}
}

// TestHealthzReplicationBlock pins the three healthz shapes: solo (no
// replication configured), an unfenced primary, and a catching-up follower
// with its lag gauges.
func TestHealthzReplicationBlock(t *testing.T) {
	srv, _ := testServer(t)
	health := healthPayload(t, srv)
	if rep := health["replication"].(map[string]any); rep["role"] != "solo" {
		t.Errorf("standalone node replication block = %v, want role solo", rep)
	}

	WithReplication(&fakeRepl{role: "primary", epoch: 2, lagR: 1, lagB: 64})(srv)
	health = healthPayload(t, srv)
	rep := health["replication"].(map[string]any)
	if rep["role"] != "primary" || rep["epoch"] != float64(2) || rep["fenced"] != false {
		t.Errorf("primary replication block = %v", rep)
	}
	if rep["lag_records"] != float64(1) || rep["lag_bytes"] != float64(64) {
		t.Errorf("primary lag gauges = %v", rep)
	}
	if health["status"] != "ok" {
		t.Errorf("healthy primary status %v, want ok", health["status"])
	}
	// An unfenced primary serves sessions normally.
	if rec, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil); rec.Code != http.StatusCreated {
		t.Errorf("create on healthy primary: status %d, want 201", rec.Code)
	}
}

func healthPayload(t *testing.T, srv *Server) map[string]any {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}
