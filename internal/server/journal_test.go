package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/fault"
	"isrl/internal/wal"
)

// seededFactory builds a per-session UH-Simplex from the journaled seed —
// the determinism contract crash recovery relies on.
func seededFactory() AlgorithmFactory {
	return func(seed int64) core.Algorithm {
		return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(seed)))
	}
}

func journalDataset() *dataset.Dataset {
	return dataset.Anticorrelated(rand.New(rand.NewSource(1)), 400, 3).Skyline()
}

// answerLoop drives state to completion with the simulated user, returning
// the raw body of the final (done) response.
func answerLoop(t *testing.T, srv *Server, id string, state statePayload, truth core.User) []byte {
	t.Helper()
	var body []byte
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 300 {
			t.Fatal("session did not finish")
		}
		if state.Question == nil {
			t.Fatalf("no question and not done: %+v", state)
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		rec, next := doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer", answerPayload{PreferFirst: prefer})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
		}
		state, body = next, rec.Body.Bytes()
	}
	return body
}

// The headline crash-safety property: a server restarted mid-session from
// its journal re-delivers the exact pending question, and the replayed
// session's final response is byte-identical to an uninterrupted run with
// the same seed and answers.
func TestJournalKillAndRestartRecoversSession(t *testing.T) {
	ds := journalDataset()
	truth := core.SimulatedUser{Utility: []float64{0.3, 0.4, 0.3}}

	// Uninterrupted baseline (same base seed, no journal).
	srvA := New(ds, 0.1, seededFactory())
	rec, state := doJSON(t, srvA, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("baseline create: %d", rec.Code)
	}
	wantFinal := answerLoop(t, srvA, state.ID, state, truth)

	// Interrupted run: journal attached, killed after three answers.
	dir := t.TempDir()
	log1, states, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvB := New(ds, 0.1, seededFactory(), WithJournal(log1))
	if n := srvB.Recover(states); n != 0 {
		t.Fatalf("fresh journal recovered %d sessions", n)
	}
	rec, state = doJSON(t, srvB, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	id := state.ID
	for i := 0; i < 3; i++ {
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		rec, state = doJSON(t, srvB, http.MethodPost, "/sessions/"+id+"/answer", answerPayload{PreferFirst: prefer})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer %d: %d", i, rec.Code)
		}
	}
	if state.Done || state.Question == nil {
		t.Fatalf("session finished too fast for the test: %+v", state)
	}
	pending := state.Question

	// Kill: no graceful shutdown, no tombstones — srvB simply stops being
	// driven, exactly like a SIGKILL. A new process opens the same dir.
	log2, states2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("restart open: %v", err)
	}
	defer log2.Close()
	srvC := New(ds, 0.1, seededFactory(), WithJournal(log2))
	if n := srvC.Recover(states2); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}

	// The restarted server re-delivers the same pending question.
	rec, state = doJSON(t, srvC, http.MethodGet, "/sessions/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get after restart: %d: %s", rec.Code, rec.Body.String())
	}
	if state.Question == nil {
		t.Fatalf("no question after restart: %+v", state)
	}
	if fmt.Sprint(state.Question.First) != fmt.Sprint(pending.First) ||
		fmt.Sprint(state.Question.Second) != fmt.Sprint(pending.Second) {
		t.Fatalf("restart re-delivered a different question:\n got %v vs %v\nwant %v vs %v",
			state.Question.First, state.Question.Second, pending.First, pending.Second)
	}

	// Finishing the replayed session matches the uninterrupted run byte
	// for byte.
	gotFinal := answerLoop(t, srvC, id, state, truth)
	if !bytes.Equal(gotFinal, wantFinal) {
		t.Errorf("replayed final response differs from uninterrupted run:\n got: %s\nwant: %s", gotFinal, wantFinal)
	}
}

// Finished sessions are tombstoned: a restart must not resurrect them.
func TestJournalRecoverRefusesFinishedSessions(t *testing.T) {
	ds := journalDataset()
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	dir := t.TempDir()
	log1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds, 0.1, seededFactory(), WithJournal(log1))
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	id := state.ID
	answerLoop(t, srv, id, state, truth)

	log2, states, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	srv2 := New(ds, 0.1, seededFactory(), WithJournal(log2))
	if n := srv2.Recover(states); n != 0 {
		t.Fatalf("resurrected %d finished sessions", n)
	}
	if rec, _ := doJSON(t, srv2, http.MethodGet, "/sessions/"+id, nil); rec.Code != http.StatusNotFound {
		t.Errorf("finished session served after restart: %d", rec.Code)
	}
	// New ids must not collide with journaled ones.
	rec, state = doJSON(t, srv2, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after recovery: %d", rec.Code)
	}
	if state.ID == id {
		t.Errorf("journaled id %q reused", id)
	}
}

// Regression: the TTL sweep must journal an expiry tombstone, or a restart
// resurrects sessions the sweeper already killed.
func TestJournalExpiryTombstoneBlocksResurrection(t *testing.T) {
	ds := journalDataset()
	dir := t.TempDir()
	log1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds, 0.1, seededFactory(), WithJournal(log1), WithSessionTTL(time.Minute))
	clock := time.Now()
	srv.now = func() time.Time { return clock }
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	id := state.ID
	clock = clock.Add(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}

	log2, states, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	for _, st := range states {
		if st.ID == id && (!st.Finished || st.Reason != wal.ReasonExpired) {
			t.Fatalf("expiry not tombstoned: %+v", st)
		}
	}
	srv2 := New(ds, 0.1, seededFactory(), WithJournal(log2))
	if n := srv2.Recover(states); n != 0 {
		t.Fatalf("restart resurrected %d expired sessions", n)
	}
	if rec, _ := doJSON(t, srv2, http.MethodGet, "/sessions/"+id, nil); rec.Code != http.StatusNotFound {
		t.Errorf("expired session served after restart: %d", rec.Code)
	}
}

// Sessions journaled against a different dataset must be refused: replaying
// their trace over other points would silently produce a different search.
func TestJournalRecoverRefusesFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	log1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.AppendCreate(wal.SessionState{ID: "s1", Algo: "UH-Simplex", Eps: 0.1, Seed: 2, Fingerprint: 12345}); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	log2, states, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	srv, reg, _ := obsServer(t, WithJournal(log2))
	if n := srv.Recover(states); n != 0 {
		t.Fatalf("recovered %d sessions across datasets", n)
	}
	if got := reg.Counter("sessions.recovery_skipped").Value(); got != 1 {
		t.Errorf("recovery_skipped = %d, want 1", got)
	}
}

// With -max-sessions saturated, creates shed with 429 + Retry-After while
// existing sessions keep answering.
func TestMaxSessionsShedsWith429(t *testing.T) {
	srv, reg, _ := obsServer(t, WithMaxSessions(2))
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}

	rec1, st1 := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	rec2, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec1.Code != http.StatusCreated || rec2.Code != http.StatusCreated {
		t.Fatalf("creates under capacity: %d, %d", rec1.Code, rec2.Code)
	}
	rec3, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec3.Code != http.StatusTooManyRequests {
		t.Fatalf("create at capacity = %d, want 429", rec3.Code)
	}
	if rec3.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if got := reg.Counter("server.shed.max_sessions").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// The saturated server still serves existing sessions.
	prefer := truth.Prefer(st1.Question.First, st1.Question.Second)
	rec, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+st1.ID+"/answer", answerPayload{PreferFirst: prefer})
	if rec.Code != http.StatusOK {
		t.Errorf("answer at create-capacity = %d, want 200", rec.Code)
	}
	// Finishing or aborting a session frees a slot.
	rec, _ = doJSON(t, srv, http.MethodDelete, "/sessions/"+st1.ID, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("abort: %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Errorf("create after freeing a slot = %d, want 201", rec.Code)
	}
}

// A full answer-work queue sheds with 503 + Retry-After instead of stacking
// goroutines behind slow geometry.
func TestAnswerQueueShedsWhenFull(t *testing.T) {
	srv, reg, _ := obsServer(t, WithAnswerQueue(1))
	// Occupy the single slot directly (a request stuck in slow geometry).
	srv.work <- struct{}{}
	defer func() { <-srv.work }()

	rec, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create with full queue = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed 503 missing Retry-After")
	}
	if got := reg.Counter("server.shed.queue_full").Value(); got != 1 {
		t.Errorf("queue shed counter = %d, want 1", got)
	}
	// Metrics and health stay reachable under overload.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz under overload = %d", rec.Code)
	}
}

// Retry-After jitter: values spread over more than one bucket (no retry
// lockstep) while staying within +-20% of the base.
func TestRetryAfterJitterSpreads(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		v := retryAfter()
		if v < 1 || v > 2 {
			t.Fatalf("retryAfter() = %d outside [1,2]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Error("retryAfter() never jittered away from a single value")
	}
}

// Injected fsync failures surface on /healthz as a degraded status.
func TestHealthzSurfacesFsyncFaults(t *testing.T) {
	dir := t.TempDir()
	log1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log1.Close()
	srv, _, _ := obsServer(t, WithJournal(log1))

	rec := get(t, srv, "/healthz")
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"status":"ok"`)) {
		t.Fatalf("healthy healthz: %s", rec.Body.String())
	}

	fault.Install(fault.NewPlan(1).Set(fault.PointWALSync, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)
	if rec, _ := doJSON(t, srv, http.MethodPost, "/sessions", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	rec = get(t, srv, "/healthz")
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"status":"degraded"`)) {
		t.Errorf("healthz after fsync fault not degraded: %s", rec.Body.String())
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"fsync_errors":1`)) {
		t.Errorf("healthz missing fsync error count: %s", rec.Body.String())
	}
}

// Chaos: kill-and-recover loops under injected disk failure. Every restart
// must boot (longest-valid-prefix recovery), re-deliver a consistent
// question, and never panic — answers lost to injected write faults may
// shorten the replayed prefix, which is exactly the at-most-once contract.
func TestChaosKillRecoverUnderDiskFaults(t *testing.T) {
	ds := journalDataset()
	truth := core.SimulatedUser{Utility: []float64{0.25, 0.45, 0.3}}
	dir := t.TempDir()

	plan := fault.NewPlan(99).
		Set(fault.PointWALWrite, fault.Spec{TornProb: 0.05, ErrProb: 0.05}).
		Set(fault.PointWALSync, fault.Spec{ErrProb: 0.1})
	fault.Install(plan)
	defer fault.Install(nil)

	id := ""
	for generation := 0; generation < 5; generation++ {
		log, states, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("generation %d: journal refused to boot: %v", generation, err)
		}
		srv := New(ds, 0.1, seededFactory(), WithJournal(log))
		srv.Recover(states)

		var state statePayload
		if id != "" {
			rec, st := doJSON(t, srv, http.MethodGet, "/sessions/"+id, nil)
			switch rec.Code {
			case http.StatusOK:
				state = st
			case http.StatusNotFound:
				id = "" // create lost to an injected fault; start over
			default:
				t.Fatalf("generation %d: get: %d: %s", generation, rec.Code, rec.Body.String())
			}
		}
		if id == "" {
			rec, st := doJSON(t, srv, http.MethodPost, "/sessions", nil)
			if rec.Code != http.StatusCreated {
				t.Fatalf("generation %d: create: %d", generation, rec.Code)
			}
			id, state = st.ID, st
		}
		// Drive a few rounds under fire.
		for i := 0; i < 3 && !state.Done; i++ {
			if state.Question == nil {
				t.Fatalf("generation %d: no question, not done: %+v", generation, state)
			}
			prefer := truth.Prefer(state.Question.First, state.Question.Second)
			r, st := doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer", answerPayload{PreferFirst: prefer})
			if r.Code != http.StatusOK {
				t.Fatalf("generation %d: answer: %d: %s", generation, r.Code, r.Body.String())
			}
			state = st
		}
		if state.Done {
			id = "" // start a fresh session next generation
		}
		// Kill: abandon srv and log without shutdown.
	}
}
