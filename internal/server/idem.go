package server

import "container/list"

// lruMap is a bounded string-keyed LRU used for the two exactly-once side
// tables: Idempotency-Key → session id (so a retried POST /sessions never
// creates a duplicate session) and session id → final response (so a retried
// final answer can be replayed after the session left the live table). Both
// tables are best-effort by design — the bound means entries eventually fall
// out — but within the window a retry is exactly-once, and the bound keeps a
// hostile client from growing server memory without limit.
//
// lruMap is not self-locking: the idempotency table is only touched under
// Server.mu (its lookup and the session-create must be one critical section
// or two racing creates could both miss), while the completed cache wraps it
// in its own mutex.
type lruMap struct {
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry struct {
	key string
	val any
}

func newLRUMap(capacity int) *lruMap {
	return &lruMap{cap: capacity, m: make(map[string]*list.Element), l: list.New()}
}

// get returns the value for key and marks it most recently used.
func (c *lruMap) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry when
// the table is over capacity.
func (c *lruMap) put(key string, val any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.l.MoveToFront(el)
		return
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, val: val})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len reports how many entries the table holds.
func (c *lruMap) len() int { return c.l.Len() }
