package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/fault"
	"isrl/internal/obs"
)

// TestServerChaosConcurrentAnswers is the regression test for the
// per-session race: many goroutines hammering one session id with answers
// and reads must never trip the race detector or corrupt the protocol.
// Before the per-session mutex this failed under -race (concurrent
// core.Session.Next/Answer from separate handler goroutines).
func TestServerChaosConcurrentAnswers(t *testing.T) {
	srv, _ := testServer(t)
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)

	allowed := map[int]bool{
		http.StatusOK:                 true, // advanced the session
		http.StatusConflict:           true, // lost the race for the pending question
		http.StatusNotFound:           true, // session finished and was reaped
		http.StatusServiceUnavailable: true, // algorithm busy past the deadline
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	bad := map[int]int{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var rec *httptest.ResponseRecorder
				if g%2 == 0 {
					var buf bytes.Buffer
					_ = json.NewEncoder(&buf).Encode(answerPayload{PreferFirst: i%2 == 0})
					req := httptest.NewRequest(http.MethodPost, "/sessions/"+created.ID+"/answer", &buf)
					rec = httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
				} else {
					req := httptest.NewRequest(http.MethodGet, "/sessions/"+created.ID, nil)
					rec = httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
				}
				if !allowed[rec.Code] {
					mu.Lock()
					bad[rec.Code]++
					mu.Unlock()
				}
				if rec.Code == http.StatusNotFound {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("unexpected status codes under concurrency: %v", bad)
	}
}

// TestServerFaultInjectedPanicKeepsServing is the acceptance scenario: a
// panic injected into vertex enumeration mid-session must surface as a JSON
// error on that session, bump server.panics_recovered, and leave the
// process fully able to serve new sessions.
func TestServerFaultInjectedPanicKeepsServing(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	panicsBefore := obs.Default().Counter("server.panics_recovered").Value()

	st := postJSON(t, ts.URL+"/sessions", "", http.StatusCreated)
	if st.Question == nil {
		t.Fatalf("no opening question: %+v", st)
	}

	// Arm after the session is live so its first question came up clean.
	fault.Install(fault.NewPlan(11).Set(fault.PointVertices, fault.Spec{PanicProb: 1}))
	defer fault.Install(nil)

	st = postJSON(t, ts.URL+"/sessions/"+st.ID+"/answer", `{"prefer_first":true}`, http.StatusOK)
	if !st.Done {
		t.Fatalf("session should end after injected panic: %+v", st)
	}
	degradedOK := st.Result != nil && st.Result.Degraded
	if st.Error == "" && !degradedOK {
		t.Fatalf("expected error or degraded payload, got %+v", st)
	}
	if got := obs.Default().Counter("server.panics_recovered").Value(); got <= panicsBefore {
		t.Errorf("server.panics_recovered not incremented: %d -> %d", panicsBefore, got)
	}

	// The process is still healthy and can run a whole new session.
	fault.Install(nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v %v", resp, err)
	}
	resp.Body.Close()
	st = postJSON(t, ts.URL+"/sessions", "", http.StatusCreated)
	if st.Question == nil && !st.Done {
		t.Fatalf("new session unusable after panic: %+v", st)
	}
	postJSON(t, ts.URL+"/sessions/"+st.ID+"/answer", `{"prefer_first":true}`, http.StatusOK)
}

// TestServerFaultDegradedResult: injected vertex-enumeration errors (not
// panics) flow through the baselines' degradation path and out as a
// Degraded result payload plus a sessions.degraded increment.
func TestServerFaultDegradedResult(t *testing.T) {
	srv, _ := testServer(t)
	degradedBefore := obs.Default().Counter("sessions.degraded").Value()

	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	fault.Install(fault.NewPlan(12).Set(fault.PointVertices, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)

	rec, st := doJSON(t, srv, http.MethodPost, "/sessions/"+created.ID+"/answer", answerPayload{PreferFirst: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
	}
	if !st.Done || st.Result == nil {
		t.Fatalf("expected a done+result payload, got %+v", st)
	}
	if !st.Result.Degraded || st.Result.DegradedReason == "" {
		t.Fatalf("expected degraded result, got %+v", st.Result)
	}
	if len(st.Result.Point) == 0 {
		t.Fatal("degraded result still needs a best-effort tuple")
	}
	if got := obs.Default().Counter("sessions.degraded").Value(); got <= degradedBefore {
		t.Errorf("sessions.degraded not incremented: %d -> %d", degradedBefore, got)
	}
}

// TestServerFaultAnswerTooLarge: bodies past maxAnswerBytes get 413, and the
// session is unharmed.
func TestServerFaultAnswerTooLarge(t *testing.T) {
	srv, _ := testServer(t)
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)

	huge := fmt.Sprintf(`{"prefer_first":true,"pad":%q}`, strings.Repeat("a", maxAnswerBytes+256))
	req := httptest.NewRequest(http.MethodPost, "/sessions/"+created.ID+"/answer", strings.NewReader(huge))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", rec.Code)
	}

	rec2, st := doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
	if rec2.Code != http.StatusOK || (st.Question == nil && !st.Done) {
		t.Fatalf("session damaged by rejected body: %d %+v", rec2.Code, st)
	}
}

// TestServerFaultContentType: explicit non-JSON content types get 415;
// JSON (with parameters) and header-less requests pass.
func TestServerFaultContentType(t *testing.T) {
	srv, _ := testServer(t)
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	path := "/sessions/" + created.ID + "/answer"

	cases := []struct {
		ct   string
		want int
	}{
		{"text/plain", http.StatusUnsupportedMediaType},
		{"application/x-www-form-urlencoded", http.StatusUnsupportedMediaType},
		{"multipart/form-data; boundary=x", http.StatusUnsupportedMediaType},
		{"garbage;;;", http.StatusUnsupportedMediaType},
		{"application/json; charset=utf-8", http.StatusOK},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(`{"prefer_first":true}`))
		req.Header.Set("Content-Type", c.ct)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		// The JSON case may also legitimately return 200-done or 409 if the
		// session finished; only the status class for rejects is fixed.
		if c.want == http.StatusUnsupportedMediaType && rec.Code != c.want {
			t.Errorf("content type %q: status %d, want %d", c.ct, rec.Code, c.want)
		}
		if c.want == http.StatusOK && rec.Code == http.StatusUnsupportedMediaType {
			t.Errorf("content type %q wrongly rejected", c.ct)
		}
	}
}

// TestServerFaultAnswerDeadline: when the algorithm goroutine is stalled
// (injected latency) past the configured deadline, the server answers 503
// with Retry-After instead of hanging the connection, and the session
// recovers once the stall clears.
func TestServerFaultAnswerDeadline(t *testing.T) {
	srv, _ := testServerWith(t, WithAnswerDeadline(50*time.Millisecond))
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)

	fault.Install(fault.NewPlan(13).Set(fault.PointVertices, fault.Spec{Latency: 400 * time.Millisecond}))
	defer fault.Install(nil)

	rec, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+created.ID+"/answer", answerPayload{PreferFirst: true})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stalled answer status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}

	// Stall clears: the client polls and the session comes back.
	fault.Install(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, st := doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
		if rec.Code == http.StatusOK && (st.Question != nil || st.Done) {
			break
		}
		if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusOK {
			t.Fatalf("unexpected status while recovering: %d", rec.Code)
		}
		if time.Now().After(deadline) {
			t.Fatal("session never recovered after stall cleared")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// testServerWith mirrors testServer but forwards extra options.
func testServerWith(t *testing.T, opts ...Option) (*Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(1)), 500, 3).Skyline()
	srv := New(ds, 0.1, func(int64) core.Algorithm {
		return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(2)))
	}, opts...)
	return srv, ds
}

// postJSON does one POST against a live httptest server and decodes the
// statePayload, asserting the status code.
func postJSON(t *testing.T, url, body string, want int) statePayload {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, want, raw)
	}
	var st statePayload
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("POST %s: bad JSON: %s", url, raw)
	}
	return st
}
