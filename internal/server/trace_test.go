package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/obs"
	"isrl/internal/trace"
)

// traceServer builds a server with tracing enabled over an EA factory, so
// session rounds run the instrumented geometry/LP/worker-pool hot paths.
func traceServer(t *testing.T, rate float64) (*Server, *trace.Tracer) {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(1)), 200, 3).Skyline()
	reg := obs.NewRegistry()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	tracer := trace.New(trace.Options{SampleRate: rate, Logger: quiet, Registry: reg})
	srv := New(ds, 0.15, func(seed int64) core.Algorithm {
		return ea.New(ds, 0.15, ea.Config{}, rand.New(rand.NewSource(seed)))
	}, WithRegistry(reg), WithLogger(quiet), WithTracer(tracer))
	return srv, tracer
}

// driveSession runs one session to completion without t.Fatal, so it is
// callable from concurrent goroutines. It returns the trace ID echoed on the
// create response ("" when untraced).
func driveSession(srv *Server, header string) (string, error) {
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	post := func(path string, body any) (*httptest.ResponseRecorder, statePayload, error) {
		var buf strings.Builder
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return nil, statePayload{}, err
			}
		}
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(buf.String()))
		if header != "" && path == "/sessions" {
			req.Header.Set("traceparent", header)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var out statePayload
		if rec.Code < 300 {
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				return nil, statePayload{}, fmt.Errorf("bad JSON (%d): %s", rec.Code, rec.Body.String())
			}
		}
		return rec, out, nil
	}
	rec, state, err := post("/sessions", nil)
	if err != nil {
		return "", err
	}
	if rec.Code != http.StatusCreated {
		return "", fmt.Errorf("create status %d: %s", rec.Code, rec.Body.String())
	}
	traceID := ""
	if tp := rec.Header().Get("traceparent"); tp != "" {
		tid, _, sampled, ok := trace.ParseTraceparent(tp)
		if !ok || !sampled {
			return "", fmt.Errorf("create echoed malformed traceparent %q", tp)
		}
		traceID = tid.String()
	}
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 200 {
			return "", fmt.Errorf("session %s did not finish", state.ID)
		}
		if state.Question == nil {
			return "", fmt.Errorf("no question and not done: %+v", state)
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		rec, state, err = post("/sessions/"+state.ID+"/answer", answerPayload{PreferFirst: prefer})
		if err != nil {
			return "", err
		}
		if rec.Code != http.StatusOK {
			return "", fmt.Errorf("answer status %d: %s", rec.Code, rec.Body.String())
		}
	}
	return traceID, nil
}

// tracePayload mirrors the /debug/traces/{id} JSON shape.
type tracePayload struct {
	Trace struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Spans int    `json:"spans"`
	} `json:"trace"`
	Spans []*traceNode `json:"spans"`
}

type traceNode struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
	Children []*traceNode      `json:"children"`
}

func collectNames(nodes []*traceNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		collectNames(n.Children, into)
	}
}

func fetchTrace(t *testing.T, srv *Server, id string) tracePayload {
	t.Helper()
	rec := get(t, srv, "/debug/traces/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %s", id, rec.Code, rec.Body.String())
	}
	var tp tracePayload
	if err := json.Unmarshal(rec.Body.Bytes(), &tp); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	return tp
}

// TestTraceEndToEnd is the acceptance flow: a created session adopts the
// inbound traceparent, the full answer loop runs under it, and the finished
// trace is retrievable with the session root, per-round spans, and the
// instrumented hot-path leaves.
func TestTraceEndToEnd(t *testing.T) {
	srv, _ := traceServer(t, 1)
	inbound := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	traceID, err := driveSession(srv, inbound)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID %s, want the inbound traceparent's ID adopted", traceID)
	}

	tp := fetchTrace(t, srv, traceID)
	if tp.Trace.ID != traceID || len(tp.Spans) != 1 {
		t.Fatalf("trace = %+v, want one root", tp.Trace)
	}
	root := tp.Spans[0]
	if root.Name != "session" {
		t.Fatalf("root span %q, want session", root.Name)
	}
	if root.Attrs["session.id"] == "" || root.Attrs["algo"] == "" {
		t.Fatalf("root attrs = %v, want session.id and algo", root.Attrs)
	}
	if root.Attrs["reason"] != "finished" {
		t.Fatalf("root reason = %q, want finished", root.Attrs["reason"])
	}
	if root.Attrs["rounds"] == "" || root.Attrs["rounds"] == "0" {
		t.Fatalf("root rounds attr = %q, want positive", root.Attrs["rounds"])
	}

	names := map[string]int{}
	collectNames(tp.Spans, names)
	if names["session.round"] == 0 {
		t.Fatalf("no session.round spans in %v", names)
	}
	if names["http.answer"] == 0 {
		t.Fatalf("no http.answer spans in %v", names)
	}
	hot := 0
	for _, n := range []string{"lp.solve", "geom.vertices", "geom.sample", "geom.inner_ball", "geom.outer_rect", "par.do", "rl.best", "oracle.wait"} {
		if names[n] > 0 {
			hot++
		}
	}
	if hot < 3 {
		t.Fatalf("only %d distinct hot-path span kinds in %v, want >= 3", hot, names)
	}

	// The list view and the text rendering both cover the finished trace.
	rec := get(t, srv, "/debug/traces")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), traceID) {
		t.Fatalf("list does not include %s: %d %s", traceID, rec.Code, rec.Body.String())
	}
	rec = get(t, srv, "/debug/traces/"+traceID+"?format=text")
	if !strings.Contains(rec.Body.String(), "session.round") {
		t.Fatalf("text view missing round spans:\n%s", rec.Body.String())
	}
}

func TestTraceparentControlsSampling(t *testing.T) {
	// At rate 0 nothing is traced organically...
	srv, _ := traceServer(t, 0)
	if id, err := driveSession(srv, ""); err != nil || id != "" {
		t.Fatalf("rate 0 session traced (id %q, err %v)", id, err)
	}
	// ...but a sampled inbound traceparent forces the trace.
	id, err := driveSession(srv, "00-1af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil || id != "1af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("inbound traceparent not honored at rate 0 (id %q, err %v)", id, err)
	}
	// At rate 1 an explicitly unsampled traceparent suppresses tracing.
	srv2, _ := traceServer(t, 1)
	if id, err := driveSession(srv2, "00-2af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); err != nil || id != "" {
		t.Fatalf("unsampled traceparent still traced (id %q, err %v)", id, err)
	}
}

func TestDebugTracesRequiresTracer(t *testing.T) {
	srv, _, _ := obsServer(t) // no WithTracer
	rec := get(t, srv, "/debug/traces")
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Fatalf("tracerless /debug/traces = %d %s", rec.Code, rec.Body.String())
	}
	srv2, _ := traceServer(t, 1)
	rec = httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET" {
		t.Fatalf("POST /debug/traces = %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestConcurrentSessionsDisjointTraces drives several sessions in parallel
// (under -race) and checks each lands in its own well-formed span tree.
func TestConcurrentSessionsDisjointTraces(t *testing.T) {
	srv, _ := traceServer(t, 1)
	const n = 6
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = driveSession(srv, "")
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if ids[i] == "" || seen[ids[i]] {
			t.Fatalf("session %d trace id %q empty or duplicated", i, ids[i])
		}
		seen[ids[i]] = true
	}
	sessions := map[string]bool{}
	for _, id := range ids {
		tp := fetchTrace(t, srv, id)
		if len(tp.Spans) != 1 || tp.Spans[0].Name != "session" {
			t.Fatalf("trace %s has %d roots, want one session root", id, len(tp.Spans))
		}
		sid := tp.Spans[0].Attrs["session.id"]
		if sid == "" || sessions[sid] {
			t.Fatalf("trace %s session.id %q empty or shared", id, sid)
		}
		sessions[sid] = true
		names := map[string]int{}
		collectNames(tp.Spans, names)
		if names["session.round"] == 0 || names["lp.solve"] == 0 {
			t.Fatalf("trace %s missing round/hot-path spans: %v", id, names)
		}
	}
}
