package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"isrl/internal/core"
	"isrl/internal/wal"
)

// A duplicate of the just-applied round must not re-feed the preference: the
// server re-delivers the stored next question, byte-identical to the
// response the lost first attempt carried.
func TestAnswerDuplicateRoundReplays(t *testing.T) {
	srv, _ := testServer(t)
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	if state.Round != 1 {
		t.Fatalf("fresh session advertises round %d, want 1", state.Round)
	}
	first, next := doJSON(t, srv, http.MethodPost, "/sessions/"+state.ID+"/answer",
		answerPayload{PreferFirst: true, Round: 1})
	if first.Code != http.StatusOK {
		t.Fatalf("answer status %d: %s", first.Code, first.Body.String())
	}
	if next.Round != 2 {
		t.Fatalf("after one answer the session advertises round %d, want 2", next.Round)
	}
	before := srv.dupRounds.Value()
	dup, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+state.ID+"/answer",
		answerPayload{PreferFirst: true, Round: 1})
	if dup.Code != http.StatusOK {
		t.Fatalf("duplicate answer status %d: %s", dup.Code, dup.Body.String())
	}
	if !bytes.Equal(dup.Body.Bytes(), first.Body.Bytes()) {
		t.Errorf("duplicate-round response differs from original:\n%s\nvs\n%s", dup.Body.String(), first.Body.String())
	}
	if srv.dupRounds.Value() != before+1 {
		t.Errorf("sessions.duplicate_rounds did not count the replay")
	}
}

// A stale or future round is refused with 409 and the expected round in the
// body, so the client can resynchronize instead of corrupting the polytope.
func TestAnswerWrongRoundConflicts(t *testing.T) {
	srv, _ := testServer(t)
	_, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	req := httptest.NewRequest(http.MethodPost, "/sessions/"+state.ID+"/answer",
		strings.NewReader(`{"prefer_first":true,"round":7}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("future-round status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	var cp conflictPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatalf("409 body not a conflict payload: %s", rec.Body.String())
	}
	if cp.Round != 1 {
		t.Errorf("conflict advertises expected round %d, want 1", cp.Round)
	}
	if srv.roundConf.Value() == 0 {
		t.Errorf("sessions.round_conflicts did not count")
	}

	// Negative rounds are malformed, not conflicting.
	rec2, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+state.ID+"/answer",
		answerPayload{PreferFirst: true, Round: -1})
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("negative round status %d, want 400", rec2.Code)
	}
}

// The nastiest retry: the final answer's response is lost, the session is
// already gone from the live table, and the client re-sends. The completed
// cache replays the stored final state byte-for-byte — while plain GETs keep
// 404ing, preserving the existing "finished sessions are gone" contract.
func TestAnswerFinalRoundRetryAfterFinish(t *testing.T) {
	srv, _ := testServer(t)
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	id := state.ID
	var finalBody []byte
	var finalRound int
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 300 {
			t.Fatal("session did not finish")
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		finalRound = state.Round
		rec, state = doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer",
			answerPayload{PreferFirst: prefer, Round: finalRound})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
		}
		finalBody = append([]byte(nil), rec.Body.Bytes()...)
	}

	retry, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer",
		answerPayload{PreferFirst: true, Round: finalRound})
	if retry.Code != http.StatusOK {
		t.Fatalf("final-answer retry status %d, want 200: %s", retry.Code, retry.Body.String())
	}
	if !bytes.Equal(retry.Body.Bytes(), finalBody) {
		t.Errorf("final-answer retry not byte-identical:\n%s\nvs\n%s", retry.Body.String(), string(finalBody))
	}

	// A wrong round against the finished session still conflicts.
	conf, _ := doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer",
		answerPayload{PreferFirst: true, Round: finalRound + 5})
	if conf.Code != http.StatusConflict {
		t.Errorf("wrong-round against finished session: status %d, want 409", conf.Code)
	}

	// GET keeps the legacy contract: the session is gone.
	get, _ := doJSON(t, srv, http.MethodGet, "/sessions/"+id, nil)
	if get.Code != http.StatusNotFound {
		t.Errorf("GET after finish: status %d, want 404", get.Code)
	}
}

// A retried POST /sessions with the same Idempotency-Key lands on the
// existing session instead of leaking a duplicate.
func TestCreateIdempotencyKeyReplays(t *testing.T) {
	srv, _ := testServer(t)
	post := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/sessions", nil)
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	// The counter lives in the process-global default registry, so assert
	// the delta this test produces rather than an absolute value.
	baseReplays := srv.idemReplay.Value()
	first := post("k1")
	if first.Code != http.StatusCreated {
		t.Fatalf("create status %d", first.Code)
	}
	var st1 statePayload
	if err := json.Unmarshal(first.Body.Bytes(), &st1); err != nil {
		t.Fatal(err)
	}
	replay := post("k1")
	if replay.Code != http.StatusOK {
		t.Fatalf("replayed create status %d, want 200: %s", replay.Code, replay.Body.String())
	}
	if replay.Header().Get("Idempotency-Replayed") != "true" {
		t.Errorf("replayed create missing Idempotency-Replayed header")
	}
	var st2 statePayload
	if err := json.Unmarshal(replay.Body.Bytes(), &st2); err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Errorf("replayed create returned session %q, want %q", st2.ID, st1.ID)
	}
	if got := srv.idemReplay.Value() - baseReplays; got != 1 {
		t.Errorf("sessions.idem_replays grew by %d, want 1", got)
	}
	if other := post("k2"); other.Code != http.StatusCreated {
		t.Errorf("distinct key status %d, want 201", other.Code)
	}
	if long := post(strings.Repeat("x", maxIdemKeyBytes+1)); long.Code != http.StatusBadRequest {
		t.Errorf("oversized key status %d, want 400", long.Code)
	}
}

// The idempotency mapping is journaled with the create, so a client retrying
// its POST /sessions across a server crash still lands on the recovered
// session instead of forking a second one.
func TestIdempotencyKeySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ds := journalDataset()
	j1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(ds, 0.1, seededFactory(), WithJournal(j1), WithSessionSeed(77))
	req := httptest.NewRequest(http.MethodPost, "/sessions", nil)
	req.Header.Set("Idempotency-Key", "retry-me")
	rec := httptest.NewRecorder()
	srv1.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	var st statePayload
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	j1.Close() // crash

	j2, states, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	srv2 := New(ds, 0.1, seededFactory(), WithJournal(j2), WithSessionSeed(77))
	if n := srv2.Recover(states); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	req2 := httptest.NewRequest(http.MethodPost, "/sessions", nil)
	req2.Header.Set("Idempotency-Key", "retry-me")
	rec2 := httptest.NewRecorder()
	srv2.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-restart replay status %d, want 200: %s", rec2.Code, rec2.Body.String())
	}
	var st2 statePayload
	if err := json.Unmarshal(rec2.Body.Bytes(), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Errorf("post-restart replay returned %q, want recovered session %q", st2.ID, st.ID)
	}
}

// Drain sheds new creates with 503 + Retry-After while an in-flight session
// keeps answering to completion — the graceful-shutdown regression test.
func TestDrainShedsCreatesAndLetsInflightFinish(t *testing.T) {
	srv, _ := testServer(t)
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	id := state.ID

	drained := make(chan int, 1)
	go func() { drained <- srv.Drain(10 * time.Second) }()
	// Wait for the draining flag to take effect.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, probe := doJSON(t, srv, http.MethodPost, "/sessions", nil)
		if rec.Code == http.StatusCreated {
			// Raced ahead of the draining flag; drop the probe session so it
			// doesn't hold the drain open.
			doJSON(t, srv, http.MethodDelete, "/sessions/"+probe.ID, nil)
		}
		if rec.Code == http.StatusServiceUnavailable {
			if rec.Header().Get("Retry-After") == "" {
				t.Errorf("draining 503 missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("create never shed during drain (last status %d)", rec.Code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight session still answers all the way to its result.
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 300 {
			t.Fatal("session did not finish")
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		rec, state = doJSON(t, srv, http.MethodPost, "/sessions/"+id+"/answer",
			answerPayload{PreferFirst: prefer, Round: state.Round})
		if rec.Code != http.StatusOK {
			t.Fatalf("in-flight answer during drain: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if state.Result == nil {
		t.Fatalf("in-flight session finished without result")
	}
	select {
	case n := <-drained:
		if n != 0 {
			t.Errorf("drain force-expired %d sessions, want 0 (all finished in grace)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after sessions finished")
	}
}

// When the grace expires, surviving sessions are closed with journaled
// expiry tombstones — durable, so a restart does not resurrect them.
func TestDrainGraceExpiryTombstones(t *testing.T) {
	dir := t.TempDir()
	ds := journalDataset()
	j, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds, 0.1, seededFactory(), WithJournal(j), WithSessionSeed(9))
	baseKills := srv.drainKill.Value() // global default registry; assert the delta
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	if n := srv.Drain(30 * time.Millisecond); n != 1 {
		t.Fatalf("Drain force-expired %d sessions, want 1", n)
	}
	if got := srv.drainKill.Value() - baseKills; got != 1 {
		t.Errorf("sessions.drain_expired grew by %d, want 1", got)
	}
	j.Close()

	recs, err := wal.Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawExpired := false
	for _, r := range recs {
		if r.Kind == wal.KindFinish && r.ID == state.ID && r.Reason == wal.ReasonExpired {
			sawExpired = true
		}
	}
	if !sawExpired {
		t.Errorf("no expiry tombstone journaled for %s; records: %+v", state.ID, recs)
	}
}
