package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/obs"
)

// obsServer builds a server with an isolated registry, a quiet logger and
// an adjustable fake clock.
func obsServer(t *testing.T, opts ...Option) (*Server, *obs.Registry, *time.Time) {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(1)), 500, 3).Skyline()
	reg := obs.NewRegistry()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := New(ds, 0.1, func(int64) core.Algorithm {
		return baselines.NewUHSimplex(baselines.UHConfig{}, rand.New(rand.NewSource(2)))
	}, append([]Option{WithRegistry(reg), WithLogger(quiet)}, opts...)...)
	clock := time.Now()
	srv.now = func() time.Time { return clock }
	return srv, reg, &clock
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	srv, _, _ := obsServer(t)
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz status field = %v", body["status"])
	}
	if body["dataset_tuples"].(float64) <= 0 {
		t.Errorf("healthz dataset_tuples = %v", body["dataset_tuples"])
	}
	// Probes must never be served from a cache between checks.
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("healthz Cache-Control = %q, want no-store", cc)
	}
}

// drive runs one full session through the HTTP API and returns its id.
func drive(t *testing.T, srv *Server) string {
	t.Helper()
	truth := core.SimulatedUser{Utility: []float64{0.2, 0.5, 0.3}}
	rec, state := doJSON(t, srv, http.MethodPost, "/sessions", nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d", rec.Code)
	}
	for rounds := 0; !state.Done; rounds++ {
		if rounds > 200 {
			t.Fatal("session did not finish")
		}
		prefer := truth.Prefer(state.Question.First, state.Question.Second)
		_, state = doJSON(t, srv, http.MethodPost, "/sessions/"+state.ID+"/answer", answerPayload{PreferFirst: prefer})
	}
	return state.ID
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := obsServer(t)
	drive(t, srv)
	get(t, srv, "/nope") // one 404 for the status-class counter

	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("metrics content type %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("metrics Cache-Control = %q, want no-store", cc)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, k := range []string{
		"http.requests.create_session",
		"http.requests.answer",
		"http.responses.other.4xx",
		"http.latency_ms.create_session",
		"http.in_flight",
		"sessions.active",
		"sessions.created",
		"sessions.finished",
		"sessions.rounds",
		"server.uptime_s",
	} {
		if _, ok := snap[k]; !ok {
			t.Errorf("metrics missing %q", k)
		}
	}
	var created int64
	if err := json.Unmarshal(snap["sessions.created"], &created); err != nil || created != 1 {
		t.Errorf("sessions.created = %s, want 1", snap["sessions.created"])
	}
	var hist obs.HistogramSnapshot
	if err := json.Unmarshal(snap["sessions.rounds"], &hist); err != nil {
		t.Fatalf("rounds histogram: %v", err)
	}
	if hist.Count != 1 || hist.Sum < 1 {
		t.Errorf("rounds histogram count=%d sum=%v, want one finished session", hist.Count, hist.Sum)
	}
	var lat obs.HistogramSnapshot
	if err := json.Unmarshal(snap["http.latency_ms.create_session"], &lat); err != nil {
		t.Fatalf("latency histogram: %v", err)
	}
	if lat.Count != 1 {
		t.Errorf("create_session latency count = %d, want 1", lat.Count)
	}
}

func TestMetricsTextFormat(t *testing.T) {
	srv, _, _ := obsServer(t)
	get(t, srv, "/healthz")
	rec := get(t, srv, "/metrics?format=text")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics text status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text content type %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "http.requests.healthz 1") {
		t.Errorf("text export missing healthz counter:\n%s", body)
	}
}

// The Prometheus exposition is reachable both by explicit ?format=prom and
// by the Accept header a scraper sends.
func TestMetricsPromFormat(t *testing.T) {
	srv, _, _ := obsServer(t)
	get(t, srv, "/healthz")

	check := func(rec *httptest.ResponseRecorder, via string) {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", via, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
			t.Errorf("%s: content type %q", via, ct)
		}
		body := rec.Body.String()
		for _, want := range []string{
			"# TYPE http_requests_healthz counter",
			"http_requests_healthz 1",
			"# TYPE runtime_goroutines gauge",
			"# TYPE http_latency_ms_healthz histogram",
			`http_latency_ms_healthz_bucket{le="+Inf"} 1`,
			"http_latency_ms_healthz_count 1",
		} {
			if !strings.Contains(body, want+"\n") {
				t.Errorf("%s: missing %q\n%s", via, want, body)
			}
		}
	}
	check(get(t, srv, "/metrics?format=prom"), "?format=prom")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	check(rec, "Accept: text/plain")
}

// Middleware must attribute statuses to the right class counters even for
// error responses.
func TestMiddlewareRecordsStatusClasses(t *testing.T) {
	srv, reg, _ := obsServer(t)
	get(t, srv, "/sessions/ghost") // 404 on get_session
	get(t, srv, "/healthz")        // 200
	if got := reg.Counter("http.responses.get_session.4xx").Value(); got != 1 {
		t.Errorf("get_session 4xx = %d, want 1", got)
	}
	if got := reg.Counter("http.responses.healthz.2xx").Value(); got != 1 {
		t.Errorf("healthz 2xx = %d, want 1", got)
	}
	if got := reg.Histogram("http.latency_ms.get_session", nil).Count(); got != 1 {
		t.Errorf("get_session latency observations = %d, want 1", got)
	}
}

func Test405CarriesAllowHeader(t *testing.T) {
	srv, _, _ := obsServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPut, "/sessions/x", "GET, DELETE"},
		{http.MethodGet, "/sessions", "POST"},
		{http.MethodDelete, "/sessions/x/answer", "POST"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/metrics", "GET"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(c.method, c.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestSessionTTLEviction(t *testing.T) {
	srv, reg, clock := obsServer(t, WithSessionTTL(time.Minute))
	_, created := doJSON(t, srv, http.MethodPost, "/sessions", nil)

	// Still fresh: nothing to evict.
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("fresh session swept: %d", n)
	}

	// Touching a session must reset its TTL clock.
	*clock = clock.Add(50 * time.Second)
	doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
	*clock = clock.Add(50 * time.Second) // 100s since create, 50s since touch
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("recently touched session swept: %d", n)
	}

	*clock = clock.Add(2 * time.Minute)
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}
	if got := reg.Counter("sessions.evicted").Value(); got != 1 {
		t.Errorf("sessions.evicted = %d, want 1", got)
	}
	if got := reg.Gauge("sessions.active").Value(); got != 0 {
		t.Errorf("sessions.active = %d, want 0", got)
	}
	rec, _ := doJSON(t, srv, http.MethodGet, "/sessions/"+created.ID, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("evicted session still routable: %d", rec.Code)
	}
}

// The lazy sweep must fire from the request path without anyone calling
// Sweep explicitly.
func TestLazySweepOnRequests(t *testing.T) {
	srv, reg, clock := obsServer(t, WithSessionTTL(time.Minute))
	doJSON(t, srv, http.MethodPost, "/sessions", nil)
	*clock = clock.Add(5 * time.Minute)
	get(t, srv, "/healthz") // any request past ttl/4 triggers the sweep
	if got := reg.Counter("sessions.evicted").Value(); got != 1 {
		t.Errorf("lazy sweep evicted %d, want 1", got)
	}
}
