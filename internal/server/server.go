// Package server exposes interactive regret-query sessions over a small
// JSON/HTTP API, the deployment shape the paper's motivating scenario
// implies: a database-backed web service asking its users pairwise
// questions. Built entirely on net/http and the core.Session pull API.
//
// Endpoints:
//
//	POST /sessions                 → {"id", "question"|null, "done"}
//	GET  /sessions/{id}            → current question or result
//	POST /sessions/{id}/answer     body {"prefer_first": bool}
//	DELETE /sessions/{id}          → abort
//
// A question is {"first": [...], "second": [...], "attrs": [...]}; when the
// search finishes the payload carries {"done": true, "result": {...}}.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"isrl/internal/core"
	"isrl/internal/dataset"
)

// AlgorithmFactory builds a fresh algorithm per session. Sessions must not
// share algorithm instances: the DQN agents keep per-call scratch state.
type AlgorithmFactory func() core.Algorithm

// Server is the HTTP handler. Create with New and mount it anywhere (it
// implements http.Handler).
type Server struct {
	ds      *dataset.Dataset
	eps     float64
	factory AlgorithmFactory

	mu       sync.Mutex
	sessions map[string]*core.Session
	nextID   int
}

// New builds a server for the given (already skyline-preprocessed) dataset
// and regret threshold.
func New(ds *dataset.Dataset, eps float64, factory AlgorithmFactory) *Server {
	return &Server{
		ds:       ds,
		eps:      eps,
		factory:  factory,
		sessions: make(map[string]*core.Session),
	}
}

// questionPayload is the JSON shape of one pairwise question.
type questionPayload struct {
	First  []float64 `json:"first"`
	Second []float64 `json:"second"`
	Attrs  []string  `json:"attrs,omitempty"`
}

// statePayload is the JSON shape of a session snapshot.
type statePayload struct {
	ID       string           `json:"id"`
	Done     bool             `json:"done"`
	Question *questionPayload `json:"question,omitempty"`
	Result   *resultPayload   `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// resultPayload is the JSON shape of a finished search.
type resultPayload struct {
	PointIndex int       `json:"point_index"`
	Point      []float64 `json:"point"`
	Rounds     int       `json:"rounds"`
}

// answerPayload is the request body of POST /sessions/{id}/answer.
type answerPayload struct {
	PreferFirst bool `json:"prefer_first"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.Trim(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case len(parts) == 1 && parts[0] == "sessions" && r.Method == http.MethodPost:
		s.create(w)
	case len(parts) == 2 && parts[0] == "sessions":
		switch r.Method {
		case http.MethodGet:
			s.state(w, parts[1])
		case http.MethodDelete:
			s.abort(w, parts[1])
		default:
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		}
	case len(parts) == 3 && parts[0] == "sessions" && parts[2] == "answer" && r.Method == http.MethodPost:
		s.answer(w, r, parts[1])
	default:
		httpError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
	}
}

func (s *Server) create(w http.ResponseWriter) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	sess := core.NewSession(s.factory(), s.ds, s.eps)
	s.sessions[id] = sess
	s.mu.Unlock()
	s.respondState(w, id, sess, http.StatusCreated)
}

func (s *Server) lookup(id string) (*core.Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

func (s *Server) state(w http.ResponseWriter, id string) {
	sess, ok := s.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	s.respondState(w, id, sess, http.StatusOK)
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request, id string) {
	sess, ok := s.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	var body answerPayload
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad answer body: %v", err)
		return
	}
	// Ensure a question is pending (Next is idempotent for pending ones).
	if _, _, done := sess.Next(); done {
		httpError(w, http.StatusConflict, "session already finished")
		return
	}
	if err := sess.Answer(body.PreferFirst); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.respondState(w, id, sess, http.StatusOK)
}

func (s *Server) abort(w http.ResponseWriter, id string) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

// respondState advances to the next question (or result) and serializes it.
func (s *Server) respondState(w http.ResponseWriter, id string, sess *core.Session, status int) {
	pi, pj, done := sess.Next()
	out := statePayload{ID: id, Done: done}
	if done {
		res, err := sess.Result()
		if err != nil {
			out.Error = err.Error()
		} else {
			out.Result = &resultPayload{PointIndex: res.PointIndex, Point: res.Point, Rounds: res.Rounds}
		}
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
	} else {
		out.Question = &questionPayload{First: pi, Second: pj, Attrs: s.ds.Attrs}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Connection-level failure; nothing further to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := fmt.Sprintf(format, args...)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
