// Package server exposes interactive regret-query sessions over a small
// JSON/HTTP API, the deployment shape the paper's motivating scenario
// implies: a database-backed web service asking its users pairwise
// questions. Built entirely on net/http and the core.Session pull API.
//
// Endpoints:
//
//	POST /sessions                 → {"id", "round", "question"|null, "done"}
//	GET  /sessions/{id}            → current question or result
//	POST /sessions/{id}/answer     body {"prefer_first": bool, "round": n}
//	DELETE /sessions/{id}          → abort
//
// The protocol is exactly-once under retries: every answer may carry the
// 1-based round index it targets (the "round" echoed by the previous
// response). A duplicate of the already-applied round re-delivers the stored
// next state with 200 instead of re-applying the preference; a stale or
// future round gets 409 with the expected round in the body. POST /sessions
// honors an Idempotency-Key header (bounded LRU, journaled through the WAL)
// so a retried create returns the existing session instead of leaking a
// duplicate. Answers without a round field keep the legacy apply-blindly
// behaviour.
//
//	GET  /healthz                  → liveness probe
//	GET  /metrics                  → obs registry snapshot (JSON; ?format=text
//	                                 for expvar style, ?format=prom or a
//	                                 text/plain Accept for Prometheus text)
//	GET  /debug/traces             → completed per-session traces (WithTracer)
//	GET  /debug/traces/{id}        → one trace as a span tree (?format=text)
//
// A question is {"first": [...], "second": [...], "attrs": [...]}; when the
// search finishes the payload carries {"done": true, "result": {...}}.
//
// Every request flows through an instrumentation middleware recording
// per-route request counts, status classes and latency histograms into the
// server's obs.Registry; session lifecycle (created / finished / aborted /
// evicted, rounds per finished session) is tracked alongside. Sessions
// untouched for longer than the configured TTL are swept and closed so
// abandoned browsers cannot leak algorithm goroutines. See README.md in
// this directory for the full metric list.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/obs"
	"isrl/internal/trace"
	"isrl/internal/wal"
)

// AlgorithmFactory builds a fresh algorithm per session, seeded with the
// session's journaled random seed. Sessions must not share algorithm
// instances (the DQN agents keep per-call scratch state), and the same seed
// must always yield a behaviorally identical instance: that determinism is
// what lets crash recovery rebuild a session by replaying its answer trace.
type AlgorithmFactory func(seed int64) core.Algorithm

// DefaultSessionTTL is how long an untouched session survives before the
// sweeper closes it.
const DefaultSessionTTL = 30 * time.Minute

// DefaultAnswerDeadline bounds how long a request blocks waiting for the
// algorithm goroutine to produce the next question before answering 503.
const DefaultAnswerDeadline = 30 * time.Second

// DefaultAnswerQueue bounds how many requests may simultaneously drive
// session state (block on the algorithm goroutine). Past the bound the
// server sheds with 503 + Retry-After instead of piling up goroutines
// behind slow geometry.
const DefaultAnswerQueue = 256

// maxAnswerBytes bounds answer request bodies; {"prefer_first": bool} needs
// a few dozen bytes, so anything past this is abuse, not data.
const maxAnswerBytes = 4 << 10

// maxIdemKeyBytes bounds the Idempotency-Key header; a UUID needs 36 bytes,
// so anything past this is abuse, not a key.
const maxIdemKeyBytes = 256

// idemKeyCap bounds the Idempotency-Key → session id LRU. Within the window
// a retried create is exactly-once; past it (thousands of creates later) the
// retry would make a fresh session, which is the bounded-memory trade.
const idemKeyCap = 4096

// completedCap bounds the finished-session response cache that serves
// round-indexed retries of a session's final answer after the session left
// the live table.
const completedCap = 1024

// retryAfterSeconds is the base Retry-After hint on 503/429 responses; the
// emitted value is jittered ±20% (see retryAfter) so synchronized clients
// don't retry in lockstep.
const retryAfterSeconds = 1

// retryAfter returns the jittered Retry-After hint in whole seconds. The
// jitter is applied in milliseconds and ceiled back up, so even a 1-second
// base spreads retries across two buckets instead of one thundering herd.
func retryAfter() int {
	ms := float64(retryAfterSeconds) * 1000 * (0.8 + 0.4*rand.Float64())
	return int(math.Ceil(ms / 1000))
}

// session pairs a live core.Session with its bookkeeping. mu serializes all
// protocol calls (Next/Answer/Result) on the underlying core.Session, which
// is not safe for concurrent use: without it, two simultaneous HTTP requests
// for the same id race the session state (a live -race-detectable bug).
// core.Session.Close is the one call that needs no lock.
type session struct {
	sess      *core.Session
	lastTouch time.Time

	// tr/root are the per-session trace and its root span when the session
	// was sampled (nil otherwise). The algorithm goroutine appends hot-path
	// spans concurrently with request handlers appending HTTP spans — safe,
	// span creation is trace-mutex-protected. The trace is finished (and
	// becomes visible on /debug/traces) when the session leaves the table:
	// finish, abort or TTL expiry.
	tr   *trace.Trace
	root *trace.Span

	mu sync.Mutex
}

// Server is the HTTP handler. Create with New and mount it anywhere (it
// implements http.Handler).
type Server struct {
	ds          *dataset.Dataset
	eps         float64
	factory     AlgorithmFactory
	log         *slog.Logger
	reg         *obs.Registry
	ttl         time.Duration
	deadline    time.Duration
	start       time.Time
	now         func() time.Time // injectable clock for TTL tests
	journal     *wal.Log         // nil: sessions are memory-only
	fingerprint uint64           // dataset fingerprint journaled with each create
	baseSeed    int64            // per-session seeds are baseSeed+id ordinal
	maxSessions int              // admission gate; 0 disables
	work        chan struct{}    // bounded answer-work queue; nil disables
	tracer      *trace.Tracer    // nil: tracing disabled, /debug/traces 404s

	mu        sync.Mutex
	sessions  map[string]*session
	nextID    int
	lastSweep time.Time
	idem      *lruMap // Idempotency-Key → session id; guarded by mu
	draining  bool    // Drain in progress: no new sessions

	// completed caches the final response of recently finished sessions so a
	// round-indexed retry of the last answer can be replayed after the
	// session left the live table. Own lock: it is written on the finish path
	// while other handlers hold mu.
	cmu       sync.Mutex
	completed *lruMap

	// Hot-path instruments, resolved once at construction.
	inFlight   *obs.Gauge
	active     *obs.Gauge
	created    *obs.Counter
	finished   *obs.Counter
	aborted    *obs.Counter
	evicted    *obs.Counter
	rounds     *obs.Histogram
	encodeErr  *obs.Counter
	degraded   *obs.Counter
	panics     *obs.Counter
	recovered  *obs.Counter
	recSkipped *obs.Counter
	journalErr *obs.Counter
	shedFull   *obs.Counter
	shedQueue  *obs.Counter
	shedDrain  *obs.Counter
	idemReplay *obs.Counter
	dupRounds  *obs.Counter
	roundConf  *obs.Counter
	drainKill  *obs.Counter
	staleRej   *obs.Counter
	followRej  *obs.Counter

	repl Replication // nil: standalone node
}

// Replication is the narrow view of a replication node (internal/repl.Node)
// the server needs: it gates session mutations on a deposed or catching-up
// node and feeds the /healthz replication block. The server deliberately
// does not import internal/repl — wiring happens in cmd/isrl-serve.
type Replication interface {
	// Role returns "primary" or "follower" (a promoted follower is "primary").
	Role() string
	// Epoch is the durable failover epoch.
	Epoch() uint64
	// Fenced reports a deposed primary: a higher epoch exists and every
	// journal append fails with a stale-epoch error.
	Fenced() bool
	// Lag is how far the passive side trails, in records and bytes.
	Lag() (records, bytes int64)
}

// Option configures a Server.
type Option func(*Server)

// WithLogger sets the structured logger. Per-request lines are emitted at
// Debug level; failures (JSON-encode errors, evictions) at Warn.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithRegistry sets the metrics registry exported at /metrics. The default
// is obs.Default(), so library-level counters (geom LP solves, published
// DQN stats) appear alongside the HTTP metrics.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) {
		if r != nil {
			s.reg = r
		}
	}
}

// WithSessionTTL sets how long an untouched session survives before the
// sweeper evicts it. Zero or negative disables eviction.
func WithSessionTTL(d time.Duration) Option {
	return func(s *Server) { s.ttl = d }
}

// WithAnswerDeadline bounds how long a request may block waiting for the
// algorithm goroutine before the server answers 503 + Retry-After instead of
// tying up the connection. Zero or negative waits forever (the pre-deadline
// behaviour).
func WithAnswerDeadline(d time.Duration) Option {
	return func(s *Server) { s.deadline = d }
}

// WithJournal attaches a write-ahead journal: session creates, committed
// answers and finish/abort/expiry tombstones are logged (fsync-on-commit)
// so a restarted server can re-materialize in-flight sessions with
// Recover. Journal failures degrade durability, never availability — the
// session keeps serving and the fault surfaces on /healthz and in
// sessions.journal_errors.
func WithJournal(j *wal.Log) Option {
	return func(s *Server) { s.journal = j }
}

// WithSessionSeed sets the base of the per-session random-seed sequence
// (session N runs its algorithm with seed base+N). The seed is journaled at
// creation, so recovery rebuilds the identical algorithm instance.
func WithSessionSeed(base int64) Option {
	return func(s *Server) { s.baseSeed = base }
}

// WithMaxSessions caps concurrently live sessions. At capacity,
// POST /sessions sheds with 429 + Retry-After while existing sessions keep
// answering. Zero or negative disables the gate.
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithAnswerQueue bounds how many requests may simultaneously drive session
// state; excess requests shed with 503 + Retry-After instead of stacking
// goroutines behind slow geometry. Zero or negative disables the bound
// (default DefaultAnswerQueue).
func WithAnswerQueue(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.work = make(chan struct{}, n)
		} else {
			s.work = nil
		}
	}
}

// WithTracer attaches a span tracer: sampled sessions get a per-session
// trace rooted at creation, threaded through the algorithm goroutine's hot
// paths, and exposed at /debug/traces once the session ends. A request
// carrying a sampled W3C traceparent header is always traced and adopts the
// inbound trace id. Nil (the default) disables tracing entirely.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithReplication attaches the replication node's status view: session
// routes answer 503 + Retry-After while this node is a follower still
// catching up, or permanently once it is fenced as a deposed primary, and
// /healthz reports role/epoch/lag. Nil (the default) means a standalone
// node ("solo" in /healthz).
func WithReplication(r Replication) Option {
	return func(s *Server) { s.repl = r }
}

// New builds a server for the given (already skyline-preprocessed) dataset
// and regret threshold.
func New(ds *dataset.Dataset, eps float64, factory AlgorithmFactory, opts ...Option) *Server {
	s := &Server{
		ds:          ds,
		eps:         eps,
		factory:     factory,
		log:         slog.Default(),
		reg:         obs.Default(),
		ttl:         DefaultSessionTTL,
		deadline:    DefaultAnswerDeadline,
		now:         time.Now,
		sessions:    make(map[string]*session),
		fingerprint: ds.Fingerprint(),
		baseSeed:    1,
		work:        make(chan struct{}, DefaultAnswerQueue),
		idem:        newLRUMap(idemKeyCap),
		completed:   newLRUMap(completedCap),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.start = s.now()
	s.lastSweep = s.start
	s.inFlight = s.reg.Gauge("http.in_flight")
	s.active = s.reg.Gauge("sessions.active")
	s.created = s.reg.Counter("sessions.created")
	s.finished = s.reg.Counter("sessions.finished")
	s.aborted = s.reg.Counter("sessions.aborted")
	s.evicted = s.reg.Counter("sessions.evicted")
	s.rounds = s.reg.Histogram("sessions.rounds", obs.LinearBuckets(1, 1, 40))
	s.encodeErr = s.reg.Counter("http.encode_errors")
	s.degraded = s.reg.Counter("sessions.degraded")
	s.panics = s.reg.Counter("server.panics_recovered")
	s.recovered = s.reg.Counter("sessions.recovered")
	s.recSkipped = s.reg.Counter("sessions.recovery_skipped")
	s.journalErr = s.reg.Counter("sessions.journal_errors")
	s.shedFull = s.reg.Counter("server.shed.max_sessions")
	s.shedQueue = s.reg.Counter("server.shed.queue_full")
	s.shedDrain = s.reg.Counter("server.shed.draining")
	s.idemReplay = s.reg.Counter("sessions.idem_replays")
	s.dupRounds = s.reg.Counter("sessions.duplicate_rounds")
	s.roundConf = s.reg.Counter("sessions.round_conflicts")
	s.drainKill = s.reg.Counter("sessions.drain_expired")
	s.staleRej = s.reg.Counter("server.stale_epoch_rejected")
	s.followRej = s.reg.Counter("server.follower_rejected")
	return s
}

// Recover re-materializes unfinished journaled sessions: each one gets a
// fresh algorithm instance built from its journaled seed, and the committed
// answer prefix is replayed through the oracle before the session goes
// live — valid because the algorithms are deterministic given seed + trace.
// Tombstoned sessions are refused outright, as are sessions journaled
// against a different dataset fingerprint, threshold or algorithm (the
// operator changed flags between runs; replaying would silently produce a
// different search). Returns how many sessions came back.
func (s *Server) Recover(states []wal.SessionState) int {
	n := 0
	maxID := 0
	for _, st := range states {
		var ord int
		if _, err := fmt.Sscanf(st.ID, "s%d", &ord); err == nil && ord > maxID {
			maxID = ord
		}
		if st.Finished {
			continue // tombstoned: finished, aborted or expired — stay dead
		}
		if st.Fingerprint != s.fingerprint {
			s.recSkipped.Inc()
			s.log.Warn("recovery skipped: dataset fingerprint mismatch", "id", st.ID)
			continue
		}
		if st.Eps != s.eps {
			s.recSkipped.Inc()
			s.log.Warn("recovery skipped: eps mismatch", "id", st.ID, "journaled", st.Eps, "serving", s.eps)
			continue
		}
		alg := s.factory(st.Seed)
		if alg.Name() != st.Algo {
			s.recSkipped.Inc()
			s.log.Warn("recovery skipped: algorithm mismatch", "id", st.ID, "journaled", st.Algo, "serving", alg.Name())
			continue
		}
		e := &session{
			sess:      core.NewReplaySession(alg, s.ds, s.eps, st.Answers),
			lastTouch: s.now(),
		}
		s.mu.Lock()
		s.sessions[st.ID] = e
		if st.IdemKey != "" {
			// Restore the create's idempotency mapping so a client retrying
			// its POST /sessions across the crash still lands on this session.
			s.idem.put(st.IdemKey, st.ID)
		}
		s.active.Set(int64(len(s.sessions)))
		s.mu.Unlock()
		s.recovered.Inc()
		n++
		s.log.Info("session recovered", "id", st.ID, "answers", len(st.Answers))
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID // never reuse a journaled id
	}
	s.mu.Unlock()
	return n
}

// journalCreate/journalAnswer/journalFinish wrap the journal hooks with the
// degrade-don't-fail policy: a disk fault is logged and counted, and
// surfaces on /healthz via the journal's sticky error, but never turns into
// a client-visible failure.
func (s *Server) journalCreate(ctx context.Context, id, algo string, seed int64, idemKey string) {
	if s.journal == nil {
		return
	}
	err := s.journal.AppendCreateCtx(ctx, wal.SessionState{
		ID: id, Algo: algo, Eps: s.eps, Seed: seed, Fingerprint: s.fingerprint, IdemKey: idemKey,
	})
	if err != nil {
		s.journalErr.Inc()
		s.log.Warn("journal create failed", "id", id, "err", err)
	}
}

func (s *Server) journalAnswer(ctx context.Context, id string, prefer bool) {
	if s.journal == nil {
		return
	}
	if err := s.journal.AppendAnswerCtx(ctx, id, prefer); err != nil {
		s.journalErr.Inc()
		s.log.Warn("journal answer failed", "id", id, "err", err)
	}
}

func (s *Server) journalFinish(id, reason string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.AppendFinish(id, reason); err != nil {
		s.journalErr.Inc()
		s.log.Warn("journal finish failed", "id", id, "reason", reason, "err", err)
	}
}

// questionPayload is the JSON shape of one pairwise question.
type questionPayload struct {
	First  []float64 `json:"first"`
	Second []float64 `json:"second"`
	Attrs  []string  `json:"attrs,omitempty"`
}

// statePayload is the JSON shape of a session snapshot. Round is the
// 1-based index the next answer must carry; it is absent once the session
// is done.
type statePayload struct {
	ID       string           `json:"id"`
	Done     bool             `json:"done"`
	Round    int              `json:"round,omitempty"`
	Question *questionPayload `json:"question,omitempty"`
	Result   *resultPayload   `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// resultPayload is the JSON shape of a finished search. Degraded marks a
// best-effort answer returned after the utility range emptied or a contained
// panic — still a valid tuple, but without the ε-regret certificate.
type resultPayload struct {
	PointIndex     int       `json:"point_index"`
	Point          []float64 `json:"point"`
	Rounds         int       `json:"rounds"`
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedReason string    `json:"degraded_reason,omitempty"`
}

// answerPayload is the request body of POST /sessions/{id}/answer. Round,
// when positive, is the 1-based index of the question being answered — the
// exactly-once handle; zero (or absent) selects the legacy apply-blindly
// behaviour.
type answerPayload struct {
	PreferFirst bool `json:"prefer_first"`
	Round       int  `json:"round,omitempty"`
}

// conflictPayload is the 409 body for out-of-sync rounds: Round tells the
// client which round the server expects next, so it can resynchronize with
// one GET instead of guessing.
type conflictPayload struct {
	Error string `json:"error"`
	Round int    `json:"round"`
}

// completedEntry is the cached final response of a finished session.
type completedEntry struct {
	round int    // round index of the session's last applied answer
	body  []byte // exact bytes of the final response
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler: the instrumentation middleware wrapped
// around the router.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	s.maybeSweep(start)
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	route := s.route(sw, r)
	elapsedMS := float64(s.now().Sub(start)) / float64(time.Millisecond)
	s.reg.Counter("http.requests." + route).Inc()
	s.reg.Counter(fmt.Sprintf("http.responses.%s.%dxx", route, sw.status/100)).Inc()
	s.reg.Histogram("http.latency_ms."+route, obs.LatencyBuckets()).Observe(elapsedMS)
	s.log.Debug("http request",
		"method", r.Method, "path", r.URL.Path, "route", route,
		"status", sw.status, "ms", elapsedMS)
}

// route dispatches one request and returns the route label used for
// metrics, so cardinality stays bounded no matter what paths clients send.
func (s *Server) route(w http.ResponseWriter, r *http.Request) string {
	path := strings.Trim(r.URL.Path, "/")
	parts := strings.Split(path, "/")
	switch {
	case len(parts) == 1 && parts[0] == "healthz":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, r, http.MethodGet)
			return "healthz"
		}
		s.healthz(w)
		return "healthz"
	case len(parts) == 1 && parts[0] == "metrics":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, r, http.MethodGet)
			return "metrics"
		}
		s.metrics(w, r)
		return "metrics"
	case (len(parts) == 2 || len(parts) == 3) && parts[0] == "debug" && parts[1] == "traces":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, r, http.MethodGet)
			return "debug_traces"
		}
		if s.tracer == nil {
			s.httpError(w, http.StatusNotFound, "tracing disabled; start with a tracer (isrl-serve -trace-sample)")
			return "debug_traces"
		}
		id := ""
		if len(parts) == 3 {
			id = parts[2]
		}
		s.tracer.HandleTraces(w, r, id)
		return "debug_traces"
	case len(parts) == 1 && parts[0] == "sessions":
		if r.Method != http.MethodPost {
			s.methodNotAllowed(w, r, http.MethodPost)
			return "create_session"
		}
		if !s.replGate(w) {
			return "create_session"
		}
		if !s.acquireWork(w) {
			return "create_session"
		}
		s.create(w, r)
		s.releaseWork()
		return "create_session"
	case len(parts) == 2 && parts[0] == "sessions":
		switch r.Method {
		case http.MethodGet:
			if !s.replGate(w) {
				return "get_session"
			}
			if !s.acquireWork(w) {
				return "get_session"
			}
			s.state(w, parts[1])
			s.releaseWork()
			return "get_session"
		case http.MethodDelete:
			if !s.replGate(w) {
				return "delete_session"
			}
			s.abort(w, parts[1])
			return "delete_session"
		default:
			s.methodNotAllowed(w, r, http.MethodGet, http.MethodDelete)
			return "get_session"
		}
	case len(parts) == 3 && parts[0] == "sessions" && parts[2] == "answer":
		if r.Method != http.MethodPost {
			s.methodNotAllowed(w, r, http.MethodPost)
			return "answer"
		}
		if !s.replGate(w) {
			return "answer"
		}
		if !s.acquireWork(w) {
			return "answer"
		}
		s.answer(w, r, parts[1])
		s.releaseWork()
		return "answer"
	default:
		s.httpError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
		return "other"
	}
}

// replGate rejects session traffic this node must not serve: a fenced
// (deposed) primary would split-brain on any mutation, and a follower has
// no live sessions yet — even GETs answer 503 so a failover-aware client
// rotates to the other endpoint instead of treating a 404 as definitive.
// Health and metrics routes bypass the gate.
func (s *Server) replGate(w http.ResponseWriter) bool {
	if s.repl == nil {
		return true
	}
	if s.repl.Fenced() {
		s.staleRej.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
		s.httpError(w, http.StatusServiceUnavailable,
			"stale epoch: this node was deposed (epoch %d); retry against the new primary", s.repl.Epoch())
		return false
	}
	if s.repl.Role() == "follower" {
		records, _ := s.repl.Lag()
		s.followRej.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
		s.httpError(w, http.StatusServiceUnavailable,
			"follower catching up (lag %d records); retry against the primary", records)
		return false
	}
	return true
}

// methodNotAllowed writes a 405 with the RFC 9110-required Allow header.
func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	s.httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
}

// healthz is the liveness probe: the process is up and the dataset loaded.
// With a journal attached it doubles as the durability probe: a sticky
// write/fsync error flips status to "degraded" — the server still answers,
// but commits are no longer guaranteed on disk.
func (s *Server) healthz(w http.ResponseWriter) {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	payload := map[string]any{
		"status":          "ok",
		"uptime_s":        s.now().Sub(s.start).Seconds(),
		"dataset_tuples":  s.ds.Len(),
		"dataset_dim":     s.ds.Dim(),
		"active_sessions": active,
	}
	if s.journal != nil {
		j := map[string]any{
			"enabled":      true,
			"dir":          s.journal.Dir(),
			"fsync_errors": s.journal.FsyncErrors(),
		}
		if err := s.journal.Err(); err != nil {
			j["error"] = err.Error()
			payload["status"] = "degraded"
		}
		// Self-healing state: quarantined sealed segments degrade durability
		// of *history*, not of the live tail — commits still land, the scrub
		// counters tell the operator what anti-entropy is working on — so
		// integrity alone never flips status.
		j["integrity"] = s.journal.Integrity()
		payload["journal"] = j
	}
	if s.repl == nil {
		payload["replication"] = map[string]any{"role": "solo"}
	} else {
		records, bytes := s.repl.Lag()
		rep := map[string]any{
			"role":        s.repl.Role(),
			"epoch":       s.repl.Epoch(),
			"fenced":      s.repl.Fenced(),
			"lag_records": records,
			"lag_bytes":   bytes,
		}
		if s.repl.Fenced() {
			// A deposed primary still answers probes but cannot commit; that
			// is a degraded node an operator must re-seed.
			payload["status"] = "degraded"
		}
		payload["replication"] = rep
	}
	// Probes and scrapers must always see fresh state, never a cached copy.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	s.encode(w, payload)
}

// metrics exports the registry: JSON by default, expvar-style text with
// ?format=text, Prometheus text exposition with ?format=prom or a
// text/plain Accept header (what a Prometheus scraper sends).
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	s.reg.FloatGauge("server.uptime_s").Set(s.now().Sub(s.start).Seconds())
	obs.CollectRuntime(s.reg)
	w.Header().Set("Cache-Control", "no-store")
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prom"
	}
	var err error
	switch format {
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		err = s.reg.WriteProm(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = s.reg.WriteText(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		err = s.reg.WriteJSON(w)
	}
	if err != nil {
		s.encodeErr.Inc()
		s.log.Warn("metrics export failed", "err", err)
	}
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxIdemKeyBytes {
		s.httpError(w, http.StatusBadRequest, "Idempotency-Key exceeds %d bytes", maxIdemKeyBytes)
		return
	}
	now := s.now()
	s.mu.Lock()
	if key != "" {
		// The key lookup and the create below share one critical section, so
		// two concurrent retries of the same create cannot both miss and
		// leak a duplicate session.
		if v, ok := s.idem.get(key); ok {
			id := v.(string)
			e := s.sessions[id]
			if e != nil {
				e.lastTouch = now
			}
			s.mu.Unlock()
			s.idemReplay.Inc()
			w.Header().Set("Idempotency-Replayed", "true")
			if e != nil {
				s.echoTraceparent(w, e)
				s.respondState(w, id, e, http.StatusOK)
				return
			}
			if ent, ok := s.lookupCompleted(id); ok {
				s.writeStored(w, http.StatusOK, ent.body)
				return
			}
			s.httpError(w, http.StatusConflict,
				"Idempotency-Key %q refers to session %q, which is gone", key, id)
			return
		}
	}
	if s.draining {
		s.mu.Unlock()
		s.shedDrain.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
		s.httpError(w, http.StatusServiceUnavailable,
			"server draining; not accepting new sessions")
		return
	}
	if s.maxSessions > 0 && len(s.sessions) >= s.maxSessions {
		n := len(s.sessions)
		s.mu.Unlock()
		s.shedFull.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
		s.httpError(w, http.StatusTooManyRequests,
			"session capacity reached (%d live); retry later", n)
		return
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	seed := s.baseSeed + int64(s.nextID)
	alg := s.factory(seed)
	tr, root := s.startSessionTrace(r, id, alg.Name(), seed)
	ctx := context.Background()
	if root != nil {
		ctx = trace.ContextWithSpan(ctx, root)
	}
	e := &session{sess: core.NewSessionCtx(ctx, alg, s.ds, s.eps), lastTouch: now, tr: tr, root: root}
	s.sessions[id] = e
	if key != "" {
		s.idem.put(key, id)
	}
	s.active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	// Journal before the id is revealed to the client: no answer for this
	// session can be journaled (or even sent) until the create is durable.
	s.journalCreate(ctx, id, alg.Name(), seed, key)
	s.created.Inc()
	s.echoTraceparent(w, e)
	s.respondState(w, id, e, http.StatusCreated)
}

// startSessionTrace decides whether this session is traced and opens its
// trace. An inbound sampled W3C traceparent always wins (the trace id is
// adopted, so the caller's distributed trace connects through); otherwise the
// deterministic per-seed sampler decides. Returns (nil, nil) when untraced.
func (s *Server) startSessionTrace(r *http.Request, id, algo string, seed int64) (*trace.Trace, *trace.Span) {
	if s.tracer == nil {
		return nil, nil
	}
	var tid trace.TraceID
	if pid, _, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		if !sampled {
			return nil, nil // explicit upstream "don't trace" decision
		}
		tid = pid
	} else if !s.tracer.Sampled(seed) {
		return nil, nil
	}
	tr, root := s.tracer.StartTrace("session", tid, seed)
	if root != nil {
		root.SetAttr("session.id", id)
		root.SetAttr("algo", algo)
	}
	return tr, root
}

// echoTraceparent advertises the session's trace on the response so clients
// can correlate (and later fetch /debug/traces/{trace-id}).
func (s *Server) echoTraceparent(w http.ResponseWriter, e *session) {
	if e.tr != nil && e.root != nil {
		w.Header().Set("traceparent", trace.FormatTraceparent(e.tr.ID(), e.root.ID(), true))
	}
}

// finishSessionTrace closes a session's trace with its final disposition,
// making it visible on /debug/traces. Safe on untraced sessions.
func (s *Server) finishSessionTrace(e *session, reason string, rounds int, degraded bool) {
	if e == nil || e.tr == nil {
		return
	}
	if e.root != nil {
		e.root.SetAttr("reason", reason)
		if rounds >= 0 {
			e.root.SetInt("rounds", int64(rounds))
		}
		e.root.SetBool("degraded", degraded)
		e.root.End()
	}
	e.tr.Finish()
}

// lookup fetches a session and refreshes its TTL clock.
func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	if ok {
		e.lastTouch = s.now()
	}
	return e, ok
}

func (s *Server) state(w http.ResponseWriter, id string) {
	e, ok := s.lookup(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sp := e.root.StartChild("http.get_session")
	defer sp.End()
	s.echoTraceparent(w, e)
	s.respondState(w, id, e, http.StatusOK)
}

// jsonContentType accepts application/json, any +json structured suffix, or
// an absent header (plenty of curl-style clients omit it). Everything else —
// form posts, multipart uploads, text/plain — is an explicit mismatch worth
// rejecting before the body is even read.
func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request, id string) {
	if ct := r.Header.Get("Content-Type"); !jsonContentType(ct) {
		s.httpError(w, http.StatusUnsupportedMediaType, "content type %q not supported; send application/json", ct)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAnswerBytes)
	var body answerPayload
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "answer body exceeds %d bytes", maxAnswerBytes)
			return
		}
		s.httpError(w, http.StatusBadRequest, "bad answer body: %v", err)
		return
	}
	if body.Round < 0 {
		s.httpError(w, http.StatusBadRequest, "negative round %d", body.Round)
		return
	}
	e, ok := s.lookup(id)
	if !ok {
		// The session may have just finished: a round-indexed retry of the
		// final answer (whose response was lost on the wire) replays the
		// stored final state instead of 404ing the client out of its result.
		if body.Round > 0 {
			if ent, ok := s.lookupCompleted(id); ok {
				if body.Round == ent.round {
					s.dupRounds.Inc()
					s.writeStored(w, http.StatusOK, ent.body)
					return
				}
				s.roundConf.Inc()
				s.conflict(w, ent.round,
					"round %d does not match finished session %q (last applied %d)", body.Round, id, ent.round)
				return
			}
		}
		s.httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sp := e.root.StartChild("http.answer")
	defer sp.End()
	s.echoTraceparent(w, e)
	e.mu.Lock()
	if body.Round > 0 {
		applied := e.sess.Applied()
		switch {
		case body.Round == applied:
			// Duplicate of the round just applied — the retry of a POST whose
			// response was lost. The first attempt's effect stands; re-deliver
			// the stored next question instead of corrupting the polytope by
			// applying the preference twice.
			e.mu.Unlock()
			s.dupRounds.Inc()
			s.respondState(w, id, e, http.StatusOK)
			return
		case body.Round != applied+1:
			e.mu.Unlock()
			s.roundConf.Inc()
			s.conflict(w, applied+1,
				"round %d out of sync with session %q (expected %d)", body.Round, id, applied+1)
			return
		}
	}
	// Ensure a question is pending (Next is idempotent for pending ones).
	_, _, done, ready := e.sess.NextTimeout(s.deadline)
	if !ready {
		e.mu.Unlock()
		s.notReady(w, id)
		return
	}
	if done {
		e.mu.Unlock()
		s.httpError(w, http.StatusConflict, "session already finished")
		return
	}
	err := e.sess.Answer(body.PreferFirst)
	if err == nil {
		// Commit the answer to the journal before releasing the session
		// lock, so journaled round order always matches session order. A
		// crash after Answer but before the append loses at most this one
		// answer: recovery then re-delivers the same question.
		s.journalAnswer(trace.ContextWithSpan(context.Background(), sp), id, body.PreferFirst)
	}
	e.mu.Unlock()
	if err != nil {
		s.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.respondState(w, id, e, http.StatusOK)
}

// notReady reports 503 with Retry-After: the algorithm goroutine did not
// produce the next state within the configured deadline. The session stays
// alive; the client should simply retry.
func (s *Server) notReady(w http.ResponseWriter, id string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
	s.httpError(w, http.StatusServiceUnavailable,
		"session %q not ready within %s; retry", id, s.deadline)
}

// acquireWork reserves a slot on the bounded answer-work queue, shedding
// with 503 + Retry-After when the server is already driving as many
// sessions as configured. Pair with releaseWork.
func (s *Server) acquireWork(w http.ResponseWriter) bool {
	if s.work == nil {
		return true
	}
	select {
	case s.work <- struct{}{}:
		return true
	default:
		s.shedQueue.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter()))
		s.httpError(w, http.StatusServiceUnavailable,
			"answer-work queue full (%d slots); retry", cap(s.work))
		return false
	}
}

func (s *Server) releaseWork() {
	if s.work != nil {
		<-s.work
	}
}

func (s *Server) abort(w http.ResponseWriter, id string) {
	s.mu.Lock()
	e, ok := s.sessions[id]
	delete(s.sessions, id)
	s.active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	e.sess.Close()
	s.journalFinish(id, wal.ReasonAborted)
	s.finishSessionTrace(e, wal.ReasonAborted, -1, false)
	s.aborted.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// respondState advances to the next question (or result) and serializes it.
// It takes e.mu itself, so callers must not hold it. When the session
// finishes, the exact response bytes are parked in the completed cache so a
// round-indexed retry of the final answer can be replayed verbatim.
func (s *Server) respondState(w http.ResponseWriter, id string, e *session, status int) {
	e.mu.Lock()
	pi, pj, done, ready := e.sess.NextTimeout(s.deadline)
	if !ready {
		e.mu.Unlock()
		s.notReady(w, id)
		return
	}
	applied := e.sess.Applied()
	out := statePayload{ID: id, Done: done}
	present := false
	if done {
		res, err := e.sess.Result()
		e.mu.Unlock()
		var pe *core.PanicError
		if err != nil {
			out.Error = err.Error()
			if errors.As(err, &pe) {
				// Algorithm goroutine panicked outside any Guard boundary;
				// the session died but the process (and every other
				// session) keeps running.
				s.panics.Inc()
				s.log.Warn("session ended by recovered panic", "id", id, "err", err)
			}
		} else {
			out.Result = &resultPayload{
				PointIndex:     res.PointIndex,
				Point:          res.Point,
				Rounds:         res.Rounds,
				Degraded:       res.Degraded,
				DegradedReason: res.DegradedReason,
			}
			if res.PanicsRecovered > 0 {
				s.panics.Add(int64(res.PanicsRecovered))
			}
			if res.Degraded {
				s.degraded.Inc()
				s.log.Warn("session degraded", "id", id, "reason", res.DegradedReason)
			}
		}
		s.mu.Lock()
		_, present = s.sessions[id]
		delete(s.sessions, id)
		s.active.Set(int64(len(s.sessions)))
		s.mu.Unlock()
		if present {
			s.journalFinish(id, wal.ReasonFinished)
			s.finished.Inc()
			if err == nil {
				s.rounds.Observe(float64(res.Rounds))
				s.finishSessionTrace(e, wal.ReasonFinished, res.Rounds, res.Degraded)
			} else {
				s.finishSessionTrace(e, wal.ReasonFinished, -1, false)
			}
		}
	} else {
		e.mu.Unlock()
		out.Round = applied + 1
		out.Question = &questionPayload{First: pi, Second: pj, Attrs: s.ds.Attrs}
	}
	data, err := json.Marshal(out)
	if err != nil {
		s.encodeErr.Inc()
		s.log.Warn("response encode failed", "err", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		return
	}
	data = append(data, '\n')
	if done && present {
		s.storeCompleted(id, applied, data)
	}
	s.writeStored(w, status, data)
}

// conflict reports 409 with the round the server expects next, so an
// out-of-sync client can resynchronize deterministically instead of
// guessing (or worse, re-sending a stale preference blindly).
func (s *Server) conflict(w http.ResponseWriter, round int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	s.encode(w, conflictPayload{Error: fmt.Sprintf(format, args...), Round: round})
}

// writeStored writes pre-marshaled JSON response bytes.
func (s *Server) writeStored(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.encodeErr.Inc()
		s.log.Warn("response write failed", "err", err)
	}
}

func (s *Server) storeCompleted(id string, round int, body []byte) {
	s.cmu.Lock()
	s.completed.put(id, completedEntry{round: round, body: body})
	s.cmu.Unlock()
}

func (s *Server) lookupCompleted(id string) (completedEntry, bool) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	v, ok := s.completed.get(id)
	if !ok {
		return completedEntry{}, false
	}
	return v.(completedEntry), true
}

// Drain puts the server into shutdown mode: new session creates are refused
// with 503 + Retry-After (existing sessions keep answering), and in-flight
// sessions get up to grace to finish on their own. Sessions still alive when
// the grace expires are closed with a journaled expiry tombstone — durable,
// so a later restart recovers them instead of losing their answer prefix
// silently. Returns how many sessions were force-expired.
func (s *Server) Drain(grace time.Duration) int {
	s.mu.Lock()
	s.draining = true
	live := len(s.sessions)
	s.mu.Unlock()
	s.log.Info("drain started", "live_sessions", live, "grace", grace)

	deadline := s.now().Add(grace)
	for {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			return 0
		}
		if grace <= 0 || !s.now().Before(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	s.mu.Lock()
	var victims []*session
	var victimIDs []string
	for id, e := range s.sessions {
		delete(s.sessions, id)
		victims = append(victims, e)
		victimIDs = append(victimIDs, id)
	}
	s.active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	for i, e := range victims {
		e.sess.Close()
		s.journalFinish(victimIDs[i], wal.ReasonExpired)
		s.finishSessionTrace(e, wal.ReasonExpired, -1, false)
	}
	if len(victims) > 0 {
		s.drainKill.Add(int64(len(victims)))
		s.log.Warn("drain grace expired; sessions tombstoned", "count", len(victims))
	}
	return len(victims)
}

// encode serializes v to w, logging (rather than dropping) encode errors —
// they mean a client went away mid-response or a payload is unencodable,
// both worth seeing in logs and metrics.
func (s *Server) encode(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErr.Inc()
		s.log.Warn("response encode failed", "err", err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.encode(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Sweep evicts sessions idle past the TTL and returns how many were
// closed. It is called lazily from the request path and may also be driven
// by a periodic ticker (cmd/isrl-serve does) so idle servers still reclaim
// goroutines.
func (s *Server) Sweep() int { return s.sweepExpired(s.now()) }

// maybeSweep runs an eviction pass at most every ttl/4.
func (s *Server) maybeSweep(now time.Time) {
	if s.ttl <= 0 {
		return
	}
	s.mu.Lock()
	due := now.Sub(s.lastSweep) >= s.ttl/4
	if due {
		s.lastSweep = now
	}
	s.mu.Unlock()
	if due {
		s.sweepExpired(now)
	}
}

func (s *Server) sweepExpired(now time.Time) int {
	if s.ttl <= 0 {
		return 0
	}
	s.mu.Lock()
	var victims []*session
	var victimIDs []string
	for id, e := range s.sessions {
		if now.Sub(e.lastTouch) > s.ttl {
			delete(s.sessions, id)
			victims = append(victims, e)
			victimIDs = append(victimIDs, id)
		}
	}
	s.active.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	for i, e := range victims {
		e.sess.Close()
		// Journal the expiry tombstone: eviction must be as durable as
		// creation, or a restart would resurrect sessions the TTL already
		// killed (and leak their goroutines all over again).
		s.journalFinish(victimIDs[i], wal.ReasonExpired)
		s.finishSessionTrace(e, wal.ReasonExpired, -1, false)
	}
	if len(victims) > 0 {
		s.evicted.Add(int64(len(victims)))
		s.log.Warn("evicted idle sessions", "count", len(victims), "ttl", s.ttl)
	}
	return len(victims)
}
