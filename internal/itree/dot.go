package itree

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the optimal interaction tree in Graphviz DOT format —
// the paper's Figure 1 materialized for a real dataset. Internal nodes are
// labelled with the utility-parameter interval and the breakpoint the
// optimal policy asks about; leaves carry the certified tuple index.
//
// maxDepth bounds the rendering (the tree itself may be deeper); ≤ 0 means
// unbounded.
func (t *Tree) WriteDOT(w io.Writer, maxDepth int) error {
	var b strings.Builder
	b.WriteString("digraph itree {\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	id := 0
	var emit func(l, r, depth int) (int, error)
	emit = func(l, r, depth int) (int, error) {
		me := id
		id++
		lo, hi := t.bound(l), t.bound(r)
		if t.terminal(l, r) {
			pi := t.coverPoint(l, r)
			fmt.Fprintf(&b, "  n%d [shape=box, style=filled, fillcolor=lightgreen, label=\"t∈[%.3f,%.3f]\\nreturn tuple #%d\"];\n", me, lo, hi, pi)
			return me, nil
		}
		if maxDepth > 0 && depth >= maxDepth {
			fmt.Fprintf(&b, "  n%d [shape=box, style=dashed, label=\"t∈[%.3f,%.3f]\\n… %d more rounds\"];\n", me, lo, hi, t.solve(l, r))
			return me, nil
		}
		cut := t.bestCut(l, r)
		if cut < 0 {
			fmt.Fprintf(&b, "  n%d [shape=box, label=\"t∈[%.3f,%.3f]\\nunresolvable\"];\n", me, lo, hi)
			return me, nil
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"t∈[%.3f,%.3f]\\nask t ≤ %.3f ?\"];\n", me, lo, hi, t.cuts[cut-1])
		left, err := emit(l, cut, depth+1)
		if err != nil {
			return 0, err
		}
		right, err := emit(cut, r, depth+1)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"yes\"];\n", me, left)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"no\"];\n", me, right)
		return me, nil
	}
	if _, err := emit(0, len(t.cuts)+1, 0); err != nil {
		return err
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// coverPoint returns the index of a tuple that ε-covers the interval
// between boundaries l and r (the interval must be terminal).
func (t *Tree) coverPoint(l, r int) int {
	params := []float64{t.bound(l), t.bound(r)}
	for b := l; b < r; b++ {
		if b >= 1 {
			params = append(params, t.cuts[b-1])
		}
	}
	best := make([]float64, len(params))
	for i, tv := range params {
		m := -1.0
		for _, p := range t.ds.Points {
			if s := scoreAt(p, tv); s > m {
				m = s
			}
		}
		best[i] = m
	}
	for pi, p := range t.ds.Points {
		ok := true
		for i, tv := range params {
			if scoreAt(p, tv) < (1-t.eps)*best[i]-1e-12 {
				ok = false
				break
			}
		}
		if ok {
			return pi
		}
	}
	return -1
}
