package itree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
)

func two(points ...[2]float64) *dataset.Dataset {
	pts := make([][]float64, len(points))
	for i, p := range points {
		pts[i] = []float64{p[0], p[1]}
	}
	return &dataset.Dataset{Name: "test2d", Points: pts}
}

func TestRejectsWrongDimension(t *testing.T) {
	ds := &dataset.Dataset{Points: [][]float64{{0.1, 0.2, 0.3}}}
	if _, err := New(ds, 0.1); err == nil {
		t.Error("d=3 must be rejected")
	}
	if _, err := New(&dataset.Dataset{}, 0.1); err == nil {
		t.Error("empty dataset must be rejected")
	}
}

func TestSinglePointZeroRounds(t *testing.T) {
	tr, err := New(two([2]float64{0.5, 0.5}), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.OptimalRounds(); got != 0 {
		t.Errorf("single tuple needs %d rounds, want 0", got)
	}
}

func TestTwoPointsOneQuestion(t *testing.T) {
	// Two tuples crossing at t = 0.5; with tiny ε, one question suffices
	// (it pins the winner on either side).
	tr, err := New(two([2]float64{1, 1e-9}, [2]float64{1e-9, 1}), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBreakpoints() != 1 {
		t.Fatalf("breakpoints = %d want 1", tr.NumBreakpoints())
	}
	if got := tr.OptimalRounds(); got != 1 {
		t.Errorf("optimal rounds = %d want 1", got)
	}
}

func TestLargeEpsZeroRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := dataset.Anticorrelated(rng, 100, 2).Skyline()
	tr, err := New(ds, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.OptimalRounds(); got != 0 {
		t.Errorf("eps≈1 should need 0 rounds, got %d", got)
	}
}

// The optimum behaves like balanced binary search: it grows roughly
// logarithmically with the number of breakpoints.
func TestOptimalIsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := dataset.Anticorrelated(rng, 400, 2).Skyline()
	tr, err := New(ds, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	k := tr.NumBreakpoints()
	if k < 8 {
		t.Skipf("too few breakpoints (%d) for the bound to bite", k)
	}
	opt := tr.OptimalRounds()
	upper := int(math.Ceil(math.Log2(float64(k+1)))) + 1
	if opt > upper {
		t.Errorf("optimal %d rounds exceeds log bound %d (K=%d)", opt, upper, k)
	}
	if opt < 1 {
		t.Errorf("optimal = %d; non-trivial instance must need questions", opt)
	}
}

// Per-user optimal rounds never exceed the worst case, and monotonically
// weakly decrease as ε grows.
func TestPerUserAndMonotoneEps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := dataset.Anticorrelated(rng, 200, 2).Skyline()
	trTight, err := New(ds, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	trLoose, err := New(ds, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if trLoose.OptimalRounds() > trTight.OptimalRounds() {
		t.Errorf("looser eps needs more rounds: %d > %d",
			trLoose.OptimalRounds(), trTight.OptimalRounds())
	}
	worst := trTight.OptimalRounds()
	for i := 0; i < 20; i++ {
		tstar := rng.Float64()
		if got := trTight.OptimalRoundsFor(tstar); got > worst {
			t.Errorf("user t*=%v needs %d rounds > worst case %d", tstar, got, worst)
		}
	}
}

// Ground-truth check: EA (exact, trained or not) can never beat the optimal
// worst case on every user — and must achieve ≤ optimal + slack on average,
// since the optimum is a legal policy.
func TestEAAgainstOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := dataset.Anticorrelated(rng, 150, 2).Skyline()
	const eps = 0.1
	tr, err := New(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	opt := tr.OptimalRounds()
	e := ea.New(ds, eps, ea.Config{NumSamples: 24, MaxRounds: 50}, rng)
	maxRounds := 0
	for trial := 0; trial < 10; trial++ {
		u := geom.SampleSimplex(rng, 2)
		res, err := e.Run(ds, core.SimulatedUser{Utility: u}, eps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > maxRounds {
			maxRounds = res.Rounds
		}
	}
	if maxRounds < opt {
		// 10 sampled users might all be easy; only flag the impossible
		// case of EA strictly beating the optimum on a worst-case user set
		// larger than the optimum bound itself.
		t.Logf("EA max rounds %d below optimal worst case %d (sampled users easier than worst case)", maxRounds, opt)
	}
	if maxRounds > 6*opt+8 {
		t.Errorf("EA max rounds %d far above optimal %d", maxRounds, opt)
	}
}

func TestWriteDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := dataset.Anticorrelated(rng, 300, 2).Skyline()
	tr, err := New(ds, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteDOT(&b, 4); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph itree {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT document:\n%s", out[:min(200, len(out))])
	}
	if !strings.Contains(out, "ask t ≤") && !strings.Contains(out, "return tuple") {
		t.Error("tree has neither questions nor leaves")
	}
	// Edges must reference defined nodes.
	if strings.Count(out, "->") == 0 && tr.OptimalRounds() > 0 {
		t.Error("non-trivial tree rendered no edges")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
