// Package itree materializes the paper's interaction tree (§IV-A, Figure 1)
// for two-dimensional datasets, where the utility space collapses to a line
// segment and the optimal questioning policy can be computed *exactly*.
//
// With d = 2 a utility vector is u = (t, 1−t), t ∈ [0,1]. Every pair of
// tuples ⟨pᵢ,pⱼ⟩ whose hyperplane crosses the segment induces a breakpoint
// t*: asking the pair reveals whether the user's t lies left or right of t*.
// An interaction policy is therefore a binary search tree over breakpoints,
// and the minimum worst-case number of questions is the minimum depth of a
// tree whose leaves are ε-terminal intervals — computable by interval
// dynamic programming, exactly the structure Figure 1 sketches.
//
// The resulting OptimalRounds is a ground-truth lower bound used by the
// ext-opt experiment to measure how far EA, AA and the baselines are from
// the best possible interaction.
package itree

import (
	"fmt"
	"math"
	"sort"

	"isrl/internal/dataset"
)

// Tree is the solved interaction problem for one dataset and threshold.
type Tree struct {
	ds   *dataset.Dataset
	eps  float64
	cuts []float64 // sorted breakpoints in (0,1)

	// memo[l*(K+2)+r] caches optimal rounds for the interval spanning
	// atoms l..r (boundaries cuts[l-1] and cuts[r], with sentinels 0 and 1);
	// -1 = unknown.
	memo []int
	term []int8 // 1 terminal, 0 not, -1 unknown
}

// scoreAt returns tuple p's utility at parameter t (u = (t, 1−t)).
func scoreAt(p []float64, t float64) float64 {
	return t*p[0] + (1-t)*p[1]
}

// New builds the solver. The dataset must be 2-dimensional (and should be a
// skyline for meaningful sizes). eps is the regret-ratio threshold.
func New(ds *dataset.Dataset, eps float64) (*Tree, error) {
	if ds.Dim() != 2 {
		return nil, fmt.Errorf("itree: need d=2, got d=%d", ds.Dim())
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("itree: empty dataset")
	}
	t := &Tree{ds: ds, eps: eps}
	t.cuts = breakpoints(ds)
	k := len(t.cuts)
	t.memo = make([]int, (k+2)*(k+2))
	t.term = make([]int8, (k+2)*(k+2))
	for i := range t.memo {
		t.memo[i] = -1
		t.term[i] = -1
	}
	return t, nil
}

// breakpoints collects the distinct pairwise crossing parameters in (0,1).
func breakpoints(ds *dataset.Dataset) []float64 {
	var ts []float64
	n := ds.Len()
	for i := 0; i < n; i++ {
		pi := ds.Points[i]
		ai := pi[0] - pi[1]
		for j := i + 1; j < n; j++ {
			pj := ds.Points[j]
			aj := pj[0] - pj[1]
			den := ai - aj
			if math.Abs(den) < 1e-15 {
				continue // parallel score lines: never cross
			}
			t := (pj[1] - pi[1]) / den
			if t > 1e-12 && t < 1-1e-12 {
				ts = append(ts, t)
			}
		}
	}
	sort.Float64s(ts)
	// Deduplicate within tolerance.
	out := ts[:0]
	for _, v := range ts {
		if len(out) == 0 || v-out[len(out)-1] > 1e-12 {
			out = append(out, v)
		}
	}
	return out
}

// NumBreakpoints reports the number of distinct askable thresholds.
func (t *Tree) NumBreakpoints() int { return len(t.cuts) }

// bound returns the parameter value of boundary index b ∈ [0, K+1]:
// 0 → 0.0, K+1 → 1.0, otherwise cuts[b-1].
func (t *Tree) bound(b int) float64 {
	if b == 0 {
		return 0
	}
	if b == len(t.cuts)+1 {
		return 1
	}
	return t.cuts[b-1]
}

// terminal reports whether the interval between boundaries l and r is
// ε-terminal: some tuple's regret ratio is ≤ ε for every t in the interval.
// Because the upper envelope max_q s_q(t) only changes slope at breakpoints,
// it suffices to check each candidate tuple at every boundary and breakpoint
// inside the interval.
func (t *Tree) terminal(l, r int) bool {
	k := len(t.cuts) + 2
	if v := t.term[l*k+r]; v >= 0 {
		return v == 1
	}
	// Sample parameters: the interval's endpoints plus interior breakpoints.
	params := []float64{t.bound(l), t.bound(r)}
	for b := l; b < r; b++ {
		if b >= 1 {
			params = append(params, t.cuts[b-1])
		}
	}
	ok := t.hasCover(params)
	if ok {
		t.term[l*k+r] = 1
	} else {
		t.term[l*k+r] = 0
	}
	return ok
}

// hasCover reports whether one tuple ε-covers all sampled parameters.
func (t *Tree) hasCover(params []float64) bool {
	// Upper envelope values at the sampled parameters.
	best := make([]float64, len(params))
	for i, tv := range params {
		m := math.Inf(-1)
		for _, p := range t.ds.Points {
			if s := scoreAt(p, tv); s > m {
				m = s
			}
		}
		best[i] = m
	}
	for _, p := range t.ds.Points {
		ok := true
		for i, tv := range params {
			if scoreAt(p, tv) < (1-t.eps)*best[i]-1e-12 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// OptimalRounds returns the minimum worst-case number of questions needed
// to reach an ε-terminal interval from the full utility space, over all
// adaptive policies that ask real tuple pairs — the depth of the best
// possible interaction tree.
func (t *Tree) OptimalRounds() int {
	return t.solve(0, len(t.cuts)+1)
}

// OptimalRoundsFor returns the number of questions the optimal policy asks
// for a specific user parameter t*, following the tree from the root. It is
// ≤ OptimalRounds (the worst case over users).
func (t *Tree) OptimalRoundsFor(tstar float64) int {
	l, r := 0, len(t.cuts)+1
	rounds := 0
	for !t.terminal(l, r) {
		cut := t.bestCut(l, r)
		if cut < 0 {
			break
		}
		rounds++
		if tstar <= t.cuts[cut-1] {
			r = cut
		} else {
			l = cut
		}
	}
	return rounds
}

// solve computes the DP value for the interval between boundaries l and r.
func (t *Tree) solve(l, r int) int {
	k := len(t.cuts) + 2
	if v := t.memo[l*k+r]; v >= 0 {
		return v
	}
	var out int
	if t.terminal(l, r) {
		out = 0
	} else {
		best := math.MaxInt32
		for cut := l + 1; cut < r; cut++ {
			left := t.solve(l, cut)
			right := t.solve(cut, r)
			worst := left
			if right > worst {
				worst = right
			}
			if worst+1 < best {
				best = worst + 1
			}
			if best == 1 {
				break // cannot do better than one question
			}
		}
		if best == math.MaxInt32 {
			// No cut available but not terminal: a degenerate instance
			// (e.g. ε = 0 with co-linear scores). Report the interval as
			// unresolvable with 0 further useful questions.
			best = 0
		}
		out = best
	}
	t.memo[l*k+r] = out
	return out
}

// bestCut returns the boundary index of the cut minimizing worst-case depth
// for the interval (used to follow the optimal policy), or −1 when none.
func (t *Tree) bestCut(l, r int) int {
	bestCut, best := -1, math.MaxInt32
	for cut := l + 1; cut < r; cut++ {
		left := t.solve(l, cut)
		right := t.solve(cut, r)
		worst := left
		if right > worst {
			worst = right
		}
		if worst < best {
			best, bestCut = worst, cut
		}
	}
	return bestCut
}
