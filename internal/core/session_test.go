package core

import (
	"errors"
	"testing"

	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/vec"
)

// fixedAlgorithm asks a scripted sequence of questions through the User and
// returns the index of the tuple the user preferred most recently.
type fixedAlgorithm struct {
	pairs [][2]int
}

func (f fixedAlgorithm) Name() string { return "fixed" }

func (f fixedAlgorithm) Run(ds *dataset.Dataset, user User, eps float64, obs Observer) (Result, error) {
	last := 0
	var trace []QA
	for i, pr := range f.pairs {
		prefI := user.Prefer(ds.Points[pr[0]], ds.Points[pr[1]])
		if prefI {
			last = pr[0]
		} else {
			last = pr[1]
		}
		trace = append(trace, QA{I: pr[0], J: pr[1], PreferredI: prefI})
		if obs != nil {
			obs.Round(i+1, nil)
		}
	}
	return Result{PointIndex: last, Point: ds.Points[last], Rounds: len(f.pairs), Trace: trace}, nil
}

func sessionData() *dataset.Dataset {
	return &dataset.Dataset{Points: [][]float64{
		{0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5},
	}}
}

func TestSessionFullExchange(t *testing.T) {
	ds := sessionData()
	s := NewSession(fixedAlgorithm{pairs: [][2]int{{0, 1}, {2, 0}}}, ds, 0.1)

	// Question 1.
	pi, pj, done := s.Next()
	if done {
		t.Fatal("finished before any question")
	}
	if !vec.Equal(pi, ds.Points[0], 0) || !vec.Equal(pj, ds.Points[1], 0) {
		t.Fatalf("q1 = %v vs %v", pi, pj)
	}
	// Next without answering re-delivers the same question.
	pi2, _, _ := s.Next()
	if &pi2[0] != &pi[0] {
		t.Error("pending question must be re-delivered")
	}
	if err := s.Answer(true); err != nil {
		t.Fatal(err)
	}
	// Question 2: answer "second" (tuple 0).
	if _, _, done := s.Next(); done {
		t.Fatal("finished early")
	}
	if err := s.Answer(false); err != nil {
		t.Fatal(err)
	}
	if _, _, done := s.Next(); !done {
		t.Fatal("expected completion")
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.PointIndex != 0 || res.Rounds != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestSessionAnswerWithoutQuestion(t *testing.T) {
	s := NewSession(fixedAlgorithm{pairs: [][2]int{{0, 1}}}, sessionData(), 0.1)
	defer s.Close()
	if err := s.Answer(true); err == nil {
		t.Error("Answer before Next must error")
	}
}

func TestSessionResultWithPendingQuestion(t *testing.T) {
	s := NewSession(fixedAlgorithm{pairs: [][2]int{{0, 1}}}, sessionData(), 0.1)
	defer s.Close()
	if _, _, done := s.Next(); done {
		t.Fatal("expected a question")
	}
	if _, err := s.Result(); err == nil {
		t.Error("Result with a pending question must error")
	}
}

func TestSessionClose(t *testing.T) {
	s := NewSession(fixedAlgorithm{pairs: [][2]int{{0, 1}, {1, 2}}}, sessionData(), 0.1)
	if _, _, done := s.Next(); done {
		t.Fatal("expected a question")
	}
	if err := s.Answer(true); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Result(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("err = %v, want ErrSessionClosed", err)
	}
	// Idempotent close.
	s.Close()
}

func TestSessionZeroQuestionAlgorithm(t *testing.T) {
	s := NewSession(fixedAlgorithm{}, sessionData(), 0.1)
	if _, _, done := s.Next(); !done {
		t.Fatal("no-question algorithm must finish immediately")
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

// Session must work with a real algorithm end to end; a simulated answerer
// drives it from the application side.
func TestSessionWithRealAlgorithmShape(t *testing.T) {
	ds := &dataset.Dataset{Points: geom.SimplexVertices(3)}
	// Simple scripted algorithm standing in for EA (core cannot import ea —
	// the cross-package integration lives in the root api tests).
	s := NewSession(fixedAlgorithm{pairs: [][2]int{{0, 1}, {1, 2}, {0, 2}}}, ds, 0.1)
	truth := SimulatedUser{Utility: []float64{0.2, 0.3, 0.5}}
	for {
		pi, pj, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(truth.Prefer(pi, pj)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

// Replay recovery: a session rebuilt from a recorded answer prefix must
// re-deliver exactly the question the interrupted run had pending, and its
// final Result must be identical to an uninterrupted run fed the same
// answers — the determinism invariant the crash-recovery journal rests on.
func TestReplaySessionRecoversMidSession(t *testing.T) {
	ds := sessionData()
	pairs := [][2]int{{0, 1}, {2, 0}, {1, 2}}
	answers := []bool{true, false, true}

	// Uninterrupted baseline.
	base := NewSession(fixedAlgorithm{pairs: pairs}, ds, 0.1)
	for _, a := range answers {
		if _, _, done := base.Next(); done {
			t.Fatal("baseline finished early")
		}
		if err := base.Answer(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, done := base.Next(); !done {
		t.Fatal("baseline not done")
	}
	want, err := base.Result()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash" after two committed answers; replay the prefix.
	s := NewReplaySession(fixedAlgorithm{pairs: pairs}, ds, 0.1, answers[:2])
	pi, pj, done := s.Next()
	if done {
		t.Fatal("replayed session finished before the pending question")
	}
	wi, wj := ds.Points[pairs[2][0]], ds.Points[pairs[2][1]]
	if !vec.Equal(pi, wi, 0) || !vec.Equal(pj, wj, 0) {
		t.Fatalf("replayed session re-delivered %v vs %v, want %v vs %v", pi, pj, wi, wj)
	}
	if err := s.Answer(answers[2]); err != nil {
		t.Fatal(err)
	}
	if _, _, done := s.Next(); !done {
		t.Fatal("replayed session not done")
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got.PointIndex != want.PointIndex || got.Rounds != want.Rounds {
		t.Errorf("replayed result %+v != baseline %+v", got, want)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace length %d != %d", len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Errorf("trace[%d] = %+v != %+v", i, got.Trace[i], want.Trace[i])
		}
	}
}

// A replay prefix longer than the algorithm needs (the crash lost the
// finish tombstone, not answers) finishes immediately instead of hanging.
func TestReplaySessionOverlongPrefixFinishes(t *testing.T) {
	s := NewReplaySession(fixedAlgorithm{pairs: [][2]int{{0, 1}}}, sessionData(), 0.1, []bool{true, false, true})
	if _, _, done := s.Next(); !done {
		t.Fatal("overlong prefix should complete the session")
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
}
