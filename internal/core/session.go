package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"isrl/internal/dataset"
	"isrl/internal/fault"
)

// Session inverts control of an interactive search: instead of the
// algorithm calling back into a blocking User, the application pulls the
// next question with Next, shows it to its real user (web form, chat,
// survey...), and pushes the answer back with Answer. The algorithm runs in
// a background goroutine bridged by channels.
//
// The protocol is strictly alternating: Next, Answer, Next, Answer, ...
// until Next reports done, after which Result returns the outcome. Close
// aborts an unfinished session and releases the goroutine. A Session is not
// safe for concurrent use by multiple goroutines.
type Session struct {
	questions chan [2][]float64
	answers   chan bool
	finished  chan struct{}

	result    Result
	err       error
	lastQ     [2][]float64 // question delivered by Next, awaiting Answer
	pending   bool         // a question was delivered and awaits Answer
	applied   int          // answers accepted so far (replay prefix included)
	done      bool
	closed    chan struct{}
	closeOnce sync.Once

	// replay is the recorded answer prefix consumed by the algorithm
	// goroutine before the session goes live. Only that goroutine touches it
	// (construction happens-before the go statement).
	replay []bool
}

// ErrSessionClosed is returned by Result when the session was aborted.
var ErrSessionClosed = errors.New("core: session closed before completion")

// errSessionAborted signals the algorithm goroutine to unwind.
var errSessionAborted = errors.New("core: session aborted")

// NewSession starts alg on ds with threshold eps, returning the handle the
// application drives. The algorithm runs in its own goroutine and blocks
// whenever it needs an answer.
func NewSession(alg Algorithm, ds *dataset.Dataset, eps float64) *Session {
	return NewReplaySessionCtx(context.Background(), alg, ds, eps, nil)
}

// NewSessionCtx is NewSession with a context handed to the algorithm
// goroutine. When alg implements ContextAlgorithm its RunContext method
// receives ctx — the hook per-session tracing rides on; otherwise ctx is
// ignored and plain Run is called. The context carries values only: the
// session lifecycle is still governed by Close, not ctx cancellation.
func NewSessionCtx(ctx context.Context, alg Algorithm, ds *dataset.Dataset, eps float64) *Session {
	return NewReplaySessionCtx(ctx, alg, ds, eps, nil)
}

// NewReplaySession is NewSession with a recorded answer prefix: the first
// len(replay) oracle questions are answered from the trace inside the
// algorithm goroutine — no channel round-trips, no fault injection — and
// only then does the session go live and surface questions through Next.
//
// This is the crash-recovery primitive: every algorithm here is
// deterministic given its seed and answer trace (the invariant the
// determinism suites pin down), so feeding a journaled prefix back through
// the oracle reconstructs the exact utility range, question sequence and
// eventual Result of the interrupted run. If the algorithm finishes before
// exhausting the prefix (the crash lost a finish tombstone, not answers),
// the leftovers are ignored and Next reports done immediately.
func NewReplaySession(alg Algorithm, ds *dataset.Dataset, eps float64, replay []bool) *Session {
	return NewReplaySessionCtx(context.Background(), alg, ds, eps, replay)
}

// NewReplaySessionCtx is NewReplaySession with a context for the algorithm
// goroutine (see NewSessionCtx).
func NewReplaySessionCtx(ctx context.Context, alg Algorithm, ds *dataset.Dataset, eps float64, replay []bool) *Session {
	s := &Session{
		questions: make(chan [2][]float64),
		answers:   make(chan bool),
		finished:  make(chan struct{}),
		closed:    make(chan struct{}),
		replay:    append([]bool(nil), replay...),
		// The replayed prefix counts as applied rounds: a recovered session
		// resumes at round len(replay)+1, so round-indexed retries from
		// before the crash keep their exactly-once semantics.
		applied: len(replay),
	}
	go func() {
		defer close(s.finished)
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, errSessionAborted) {
					s.err = ErrSessionClosed
					return
				}
				// A panic that escaped the algorithm (degenerate geometry,
				// injected fault, plain bug). Killing the process over one
				// session is the wrong trade in a server with thousands of
				// them: contain it as the session's error, stack attached
				// for diagnosis, and count it.
				panicsRecovered.Inc()
				s.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		var (
			res Result
			err error
		)
		if ca, ok := alg.(ContextAlgorithm); ok {
			res, err = ca.RunContext(ctx, ds, sessionUser{s}, eps, nil)
		} else {
			res, err = alg.Run(ds, sessionUser{s}, eps, nil)
		}
		s.result, s.err = res, err
	}()
	return s
}

// sessionUser bridges the algorithm's blocking Prefer calls onto the
// session channels.
type sessionUser struct{ s *Session }

// Prefer implements User. It blocks until the application answers, and
// unwinds the algorithm goroutine when the session is closed.
func (u sessionUser) Prefer(pi, pj []float64) bool {
	// Replay prefix: answers already committed before a restart are fed
	// straight back, bypassing both the channels and the chaos hook —
	// reconstruction is internal bookkeeping, not a user interaction, and
	// must not consume fault-injection randomness.
	if len(u.s.replay) > 0 {
		ans := u.s.replay[0]
		u.s.replay = u.s.replay[1:]
		return ans
	}
	// Chaos hook: injected latency models a slow user, an injected error or
	// panic a broken one. Prefer has no error channel, so injected errors
	// escalate to a panic contained at the session boundary.
	if err := fault.Hit(fault.PointOracle); err != nil {
		panic(err)
	}
	select {
	case u.s.questions <- [2][]float64{pi, pj}:
	case <-u.s.closed:
		panic(errSessionAborted)
	}
	select {
	case ans := <-u.s.answers:
		return ans
	case <-u.s.closed:
		panic(errSessionAborted)
	}
}

// Next returns the next question to show the user, or done=true when the
// search has finished (call Result). Calling Next twice without answering
// returns the same pending question.
func (s *Session) Next() (pi, pj []float64, done bool) {
	if s.done {
		return nil, nil, true
	}
	if s.pending {
		return s.lastQ[0], s.lastQ[1], false
	}
	select {
	case q := <-s.questions:
		s.lastQ = q
		s.pending = true
		return q[0], q[1], false
	case <-s.finished:
		s.done = true
		return nil, nil, true
	}
}

// NextTimeout is Next with a deadline: ok reports whether a definitive state
// (a question, or completion) was reached within d. On ok=false the session
// is unchanged — the algorithm is still computing (a degenerate LP, an
// injected stall) — and the caller may retry or give up without corrupting
// the protocol. d <= 0 means no deadline (identical to Next).
func (s *Session) NextTimeout(d time.Duration) (pi, pj []float64, done, ok bool) {
	if d <= 0 {
		pi, pj, done = s.Next()
		return pi, pj, done, true
	}
	if s.done {
		return nil, nil, true, true
	}
	if s.pending {
		return s.lastQ[0], s.lastQ[1], false, true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case q := <-s.questions:
		s.lastQ = q
		s.pending = true
		return q[0], q[1], false, true
	case <-s.finished:
		s.done = true
		return nil, nil, true, true
	case <-timer.C:
		return nil, nil, false, false
	}
}

// Answer submits the user's choice for the pending question: preferFirst is
// true when the first tuple of Next's pair was chosen. It errors when no
// question is pending.
func (s *Session) Answer(preferFirst bool) error {
	if !s.pending {
		return fmt.Errorf("core: Answer without a pending question")
	}
	s.pending = false
	s.applied++
	select {
	case s.answers <- preferFirst:
		return nil
	case <-s.finished:
		// The algorithm finished while the answer was in flight (it only
		// happens if Run aborted); surface at Result.
		s.done = true
		return nil
	}
}

// Applied returns how many answers the session has accepted, counting any
// replayed recovery prefix. The next answer targets round Applied()+1 —
// the index the server's exactly-once protocol checks duplicate and stale
// retries against. Like the rest of the protocol API it must be called from
// the goroutine driving the session.
func (s *Session) Applied() int { return s.applied }

// Result blocks until the search completes and returns its outcome. It
// errors if questions remain unanswered (the session would deadlock) or the
// session was closed.
func (s *Session) Result() (Result, error) {
	if s.pending {
		return Result{}, fmt.Errorf("core: Result with an unanswered question pending")
	}
	<-s.finished
	s.done = true
	return s.result, s.err
}

// Close aborts the session; subsequent Result calls return
// ErrSessionClosed. Closing a finished session is a no-op. Unlike the rest
// of the Session API, Close touches no protocol state and is safe to call
// from any goroutine at any time (the server's TTL sweeper closes sessions
// that a request handler may still be driving).
func (s *Session) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.finished
}
