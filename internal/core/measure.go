package core

import (
	"math/rand"
	"time"

	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/obs"
)

// maxRegretMS times MaxRegretEstimate, the dominant cost of progress
// tracing (one inner-ball LP plus up to 10,000 hit-and-run samples per
// call). The histogram gives perf PRs a before/after baseline.
var maxRegretMS = obs.Default().Histogram("core.max_regret_ms", obs.LatencyBuckets())

// MaxRegretEstimate reproduces the paper's per-round measurement protocol
// for Figures 7–8: from the halfspaces learned so far, build the utility
// range R, take the inner-sphere center, pick the dataset point p with the
// highest utility at the center, sample utility vectors inside R, and report
// the worst regret ratio of p over the samples — the current worst-case
// performance if interaction stopped now.
//
// numSamples ≤ 0 selects the paper's 10,000; the center itself is always
// included so the estimate is defined even when sampling fails (degenerate
// R).
func MaxRegretEstimate(ds *dataset.Dataset, halfspaces []geom.Halfspace, rng *rand.Rand, numSamples int) float64 {
	start := time.Now()
	defer func() { maxRegretMS.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	if numSamples <= 0 {
		numSamples = 10000
	}
	d := ds.Dim()
	poly := geom.NewPolytope(d)
	for _, h := range halfspaces {
		poly.Add(h)
	}
	ball, ballErr := poly.InnerBall()
	if ballErr != nil {
		// Empty range (possible with noisy users): fall back to the simplex
		// centroid so the metric stays defined.
		ball = geom.Ball{Center: geom.SimplexCentroid(d)}
	}
	p := ds.Points[ds.TopPoint(ball.Center)]
	worst := ds.RegretRatio(p, ball.Center)
	// Reuse the ball center as the sampling start: it is exactly the point
	// Sample would recompute with its own inner-ball LP, so passing it skips
	// that duplicate solve without changing a single drawn coordinate. Only
	// a strictly interior center qualifies — a degenerate ball must keep the
	// empty-interior error path.
	opts := geom.SampleOptions{}
	if ballErr == nil && ball.Radius > 0 {
		opts.Start = ball.Center
	}
	samples, err := poly.Sample(rng, numSamples, opts)
	if err != nil {
		return worst
	}
	for _, u := range samples {
		if rr := ds.RegretRatio(p, u); rr > worst {
			worst = rr
		}
	}
	return worst
}
