package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"isrl/internal/obs"
)

// panicsRecovered counts every panic converted into an error by a session
// boundary or a Guard call — the library-level twin of the server's
// server.panics_recovered. A nonzero value in /metrics means the numeric
// substrate hit a degenerate case that would previously have killed the
// process.
var panicsRecovered = obs.Default().Counter("core.panics_recovered")

// PanicError is a panic converted into an error at a containment boundary
// (the session goroutine, or an algorithm's per-round Guard). Value is the
// original panic payload and Stack the goroutine stack captured at recovery,
// so the defect stays diagnosable even though the process survived.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error. The stack is deliberately excluded — it belongs in
// logs, not in one-line error chains or HTTP payloads.
func (e *PanicError) Error() string { return fmt.Sprintf("core: recovered panic: %v", e.Value) }

// Guard runs fn, converting a panic into a *PanicError so one degenerate
// geometry round cannot kill the process. Session-abort panics (the
// controlled unwind used by Close) are passed through untouched — they are
// flow control, not failures.
func Guard(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok && errors.Is(e, errSessionAborted) {
			panic(r) // keep unwinding to the session boundary
		}
		panicsRecovered.Inc()
		err = &PanicError{Value: r, Stack: debug.Stack()}
	}()
	fn()
	return nil
}
