package core

import (
	"math"
	"math/rand"
	"testing"

	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/vec"
)

// tableIII is the running example of the paper (§III, u = (0.3, 0.7)),
// shifted off exact zeros to stay inside the (0,1] domain.
func tableIII() *dataset.Dataset {
	return &dataset.Dataset{Name: "tableIII", Points: [][]float64{
		{1e-9, 1.0}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1.0, 1e-9},
	}}
}

func TestSimulatedUser(t *testing.T) {
	u := SimulatedUser{Utility: []float64{0.3, 0.7}}
	d := tableIII()
	// Example 1: p3 is the favorite (utility 0.71); the user prefers p3 to
	// everything else.
	for i, p := range d.Points {
		if i == 2 {
			continue
		}
		if !u.Prefer(d.Points[2], p) {
			t.Errorf("user should prefer p3 to p%d", i+1)
		}
	}
	// Ties resolve toward the first argument.
	if !u.Prefer(d.Points[0], d.Points[0]) {
		t.Error("tie must prefer the first point")
	}
}

func TestNoisyUserFlipRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truthU := SimulatedUser{Utility: []float64{0.5, 0.5}}
	noisy := NoisyUser{Utility: truthU.Utility, FlipProb: 0.3, Rng: rng}
	a, b := []float64{0.9, 0.1}, []float64{0.1, 0.5}
	flips := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if noisy.Prefer(a, b) != truthU.Prefer(a, b) {
			flips++
		}
	}
	rate := float64(flips) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("flip rate %v, want ≈0.3", rate)
	}
	exact := NoisyUser{Utility: truthU.Utility, FlipProb: 0, Rng: rng}
	for i := 0; i < 100; i++ {
		if exact.Prefer(a, b) != truthU.Prefer(a, b) {
			t.Fatal("FlipProb 0 must never flip")
		}
	}
}

func TestStoppablePointFullSimplex(t *testing.T) {
	d := tableIII()
	E := geom.SimplexVertices(2)
	// With ε = 0 over the whole simplex no single point works (different
	// corners have different winners).
	if got := StoppablePoint(d, E, 0); got != -1 {
		t.Errorf("eps=0 full simplex: got %d want -1", got)
	}
	// With ε = 1 any point qualifies (regret ≤ 1 always).
	if got := StoppablePoint(d, E, 1); got < 0 {
		t.Error("eps=1 must stop immediately")
	}
}

func TestStoppablePointAfterNarrowing(t *testing.T) {
	d := tableIII()
	// Narrow to vertices around u=(0.3,0.7): p3 wins at both with margin.
	E := [][]float64{{0.25, 0.75}, {0.35, 0.65}}
	got := StoppablePoint(d, E, 0.05)
	if got != 2 {
		t.Errorf("StoppablePoint = %d want 2 (p3)", got)
	}
	// Certificate: the returned point's regret at both vertices ≤ ε.
	if rr := MaxRegretOverVertices(d, E, d.Points[got]); rr > 0.05 {
		t.Errorf("certificate violated: %v", rr)
	}
}

// Property (Lemma 4 by convexity): if StoppablePoint returns p for vertex
// set E, then p's regret at any convex combination of E is ≤ ε.
func TestStoppablePointConvexityGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.Anticorrelated(rng, 300, 3).Skyline()
	for trial := 0; trial < 40; trial++ {
		// Random small vertex cloud.
		base := geom.SampleSimplex(rng, 3)
		E := make([][]float64, 3)
		for k := range E {
			e := vec.Clone(base)
			e[k] += 0.05
			clampNorm(e)
			E[k] = e
		}
		eps := 0.05 + rng.Float64()*0.2
		pi := StoppablePoint(d, E, eps)
		if pi < 0 {
			continue
		}
		// Random convex combinations.
		for s := 0; s < 20; s++ {
			w := geom.SampleSimplex(rng, len(E))
			u := make([]float64, 3)
			for k, e := range E {
				vec.AddScaled(u, u, w[k], e)
			}
			if rr := d.RegretRatio(d.Points[pi], u); rr > eps+1e-9 {
				t.Fatalf("trial %d: regret %v > eps %v inside conv(E)", trial, rr, eps)
			}
		}
	}
}

func clampNorm(u []float64) {
	var s float64
	for i := range u {
		if u[i] < 0 {
			u[i] = 0
		}
		s += u[i]
	}
	for i := range u {
		u[i] /= s
	}
}

func TestStoppablePointEmptyVertices(t *testing.T) {
	if got := StoppablePoint(tableIII(), nil, 0.5); got != -1 {
		t.Errorf("empty E: got %d want -1", got)
	}
}

func TestRectStop(t *testing.T) {
	// d=4: threshold is 2·2·ε = 4ε.
	emin := []float64{0.2, 0.2, 0.2, 0.2}
	emax := []float64{0.3, 0.3, 0.3, 0.3} // dist = 0.2
	if !RectStop(emin, emax, 0.06) {      // 4·0.06 = 0.24 ≥ 0.2
		t.Error("should stop")
	}
	if RectStop(emin, emax, 0.04) { // 0.16 < 0.2
		t.Error("should not stop")
	}
}

func TestObserverFunc(t *testing.T) {
	var got int
	var obs Observer = ObserverFunc(func(r int, hs []geom.Halfspace) { got = r })
	obs.Round(7, nil)
	if got != 7 {
		t.Errorf("observer round = %d", got)
	}
}

func TestMaxRegretEstimateShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.Anticorrelated(rng, 400, 3).Skyline()
	// No information: worst-case regret over the whole simplex is large.
	before := MaxRegretEstimate(d, nil, rng, 300)
	// Strong information: a small cone around u*=(0.1,0.3,0.6).
	u := []float64{0.1, 0.3, 0.6}
	top := d.Points[d.TopPoint(u)]
	var hs []geom.Halfspace
	for _, p := range d.Points {
		if &p[0] == &top[0] {
			continue
		}
		hs = append(hs, geom.NewHalfspace(top, p))
	}
	after := MaxRegretEstimate(d, hs, rng, 300)
	if after >= before {
		t.Errorf("estimate did not shrink: before=%v after=%v", before, after)
	}
	if after > 1e-6 {
		t.Errorf("after pinning the winner, estimate should be ≈0, got %v", after)
	}
}

func TestMaxRegretEstimateEmptyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := tableIII()
	// Contradictory halfspaces make R empty; the estimate must still return
	// a finite value (centroid fallback).
	hs := []geom.Halfspace{
		{Normal: []float64{1, -1}},
		{Normal: []float64{-1, 1}},
		{Normal: []float64{-1, -1}},
	}
	got := MaxRegretEstimate(d, hs, rng, 100)
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("estimate = %v, want a value in [0,1]", got)
	}
}

func TestRecordingUser(t *testing.T) {
	inner := SimulatedUser{Utility: []float64{0.3, 0.7}}
	rec := &RecordingUser{Inner: inner}
	a, b := []float64{0.5, 0.8}, []float64{0.7, 0.4}
	if !rec.Prefer(a, b) {
		t.Error("recording wrapper changed the answer")
	}
	rec.Prefer(b, a)
	if len(rec.Record) != 2 {
		t.Fatalf("recorded %d comparisons, want 2", len(rec.Record))
	}
	if !rec.Record[0].PreferredI || rec.Record[1].PreferredI {
		t.Error("recorded answers wrong")
	}
	// The record must own its tuples.
	a[0] = 99
	if rec.Record[0].Pi[0] == 99 {
		t.Error("record shares storage with caller")
	}
}

func TestMajorityUser(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := []float64{0.3, 0.7}
	a, b := []float64{0.5, 0.8}, []float64{0.7, 0.4} // a truly preferred
	noisy := NoisyUser{Utility: u, FlipProb: 0.3, Rng: rng}
	plainWrong, majWrong := 0, 0
	const n = 4000
	maj := MajorityUser{Inner: noisy, K: 5}
	for i := 0; i < n; i++ {
		if !noisy.Prefer(a, b) {
			plainWrong++
		}
		if !maj.Prefer(a, b) {
			majWrong++
		}
	}
	if majWrong >= plainWrong {
		t.Errorf("majority-of-5 wrong %d ≥ plain wrong %d", majWrong, plainWrong)
	}
	// Error rate of majority-of-5 at p=0.3 is ≈ 0.163; allow slack.
	if rate := float64(majWrong) / n; rate > 0.22 {
		t.Errorf("majority error rate %v too high", rate)
	}
	// K ≤ 0 falls back to a single ask.
	one := MajorityUser{Inner: SimulatedUser{Utility: u}, K: 0}
	if !one.Prefer(a, b) {
		t.Error("K=0 must behave like a single truthful ask")
	}
}
