// Package core defines the interactive regret query shared by every
// algorithm in this repository: user oracles, the question/answer protocol,
// the Algorithm interface, and the geometric stopping predicates derived
// from the paper's Lemmas 1, 4 and 6.
//
// Problem (ISRL, §III): given a dataset D ⊂ (0,1]^d and a threshold ε,
// interact with a user holding a hidden linear utility vector u by pairwise
// questions until a point q ∈ D with regret ratio below ε w.r.t. u can be
// returned, asking as few questions as possible.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/obs"
	"isrl/internal/vec"
)

// User answers pairwise comparison questions. Prefer reports whether the
// user prefers pi over pj (ties resolve to pi, matching Algorithm 1 line 9).
type User interface {
	Prefer(pi, pj []float64) bool
}

// SimulatedUser is the oracle the paper's experiments use: answers are
// derived from a hidden utility vector.
type SimulatedUser struct {
	Utility []float64
}

// Prefer implements User.
func (u SimulatedUser) Prefer(pi, pj []float64) bool {
	return vec.Dot(u.Utility, pi) >= vec.Dot(u.Utility, pj)
}

// NoisyUser answers like SimulatedUser but flips each answer independently
// with probability FlipProb — the paper's future-work setting ("users make
// mistakes when answering questions").
type NoisyUser struct {
	Utility  []float64
	FlipProb float64
	Rng      *rand.Rand
}

// Prefer implements User.
func (u NoisyUser) Prefer(pi, pj []float64) bool {
	truth := vec.Dot(u.Utility, pi) >= vec.Dot(u.Utility, pj)
	if u.Rng.Float64() < u.FlipProb {
		return !truth
	}
	return truth
}

// UserFunc adapts a plain comparison function to the User interface.
type UserFunc func(pi, pj []float64) bool

// Prefer implements User.
func (f UserFunc) Prefer(pi, pj []float64) bool { return f(pi, pj) }

// MajorityUser wraps a (possibly unreliable) User and answers each
// comparison by asking it K times and taking the majority — the simplest
// noise-robust protocol for the paper's future-work setting. K should be
// odd; even values break ties toward the first tuple. The cost is K real
// questions per algorithmic round, which the ext-noise experiment accounts
// for.
type MajorityUser struct {
	Inner User
	K     int
}

// Prefer implements User.
func (m MajorityUser) Prefer(pi, pj []float64) bool {
	k := m.K
	if k < 1 {
		k = 1
	}
	votes := 0
	for i := 0; i < k; i++ {
		if m.Inner.Prefer(pi, pj) {
			votes++
		}
	}
	return 2*votes >= k
}

// RecordingUser wraps another User and keeps a transcript of every
// comparison it was asked, in order. Useful for auditing interactive
// sessions with real users, where the algorithm's own Trace only covers the
// questions it counts as rounds.
type RecordingUser struct {
	Inner User

	// Record holds one entry per Prefer call: the two tuples (cloned) and
	// the answer.
	Record []RecordedQA
}

// RecordedQA is one observed comparison.
type RecordedQA struct {
	Pi, Pj     []float64
	PreferredI bool
}

// Prefer implements User.
func (r *RecordingUser) Prefer(pi, pj []float64) bool {
	ans := r.Inner.Prefer(pi, pj)
	r.Record = append(r.Record, RecordedQA{
		Pi:         vec.Clone(pi),
		Pj:         vec.Clone(pj),
		PreferredI: ans,
	})
	return ans
}

// QA records one interactive round: the pair asked and the answer.
type QA struct {
	I, J       int  // indices into the dataset
	PreferredI bool // true when the user chose point I
}

// Result is an algorithm's outcome.
//
// Degraded results are the graceful-degradation contract shared by every
// algorithm: when contradictory (noisy) answers empty the utility range, or
// a numeric fault aborts a round, the algorithm still returns its best
// available tuple — scored against the last non-empty utility range it saw —
// with Degraded set instead of failing the whole session. Callers that need
// the ε-guarantee must check Degraded; callers that just need an answer (a
// web session with a real, fallible user) can use the point as-is.
type Result struct {
	PointIndex int       // index of the returned tuple
	Point      []float64 // the returned tuple
	Rounds     int       // number of questions asked
	Trace      []QA      // the full question/answer transcript

	Degraded        bool   // best-effort result; the ε-certificate does not hold
	DegradedReason  string // why the session degraded (empty range, numeric fault, ...)
	PanicsRecovered int    // panics contained by per-round Guard boundaries during the run
}

// Observer receives a snapshot after every interactive round: the round
// number (1-based) and the halfspaces learned so far. The experiment harness
// uses it to chart per-round progress (the paper's Figures 7–8). Observers
// must not retain the slice.
type Observer interface {
	Round(round int, halfspaces []geom.Halfspace)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(round int, halfspaces []geom.Halfspace)

// Round implements Observer.
func (f ObserverFunc) Round(round int, halfspaces []geom.Halfspace) { f(round, halfspaces) }

// Algorithm is an interactive regret-query algorithm. Run interacts with
// user over ds until it can return a point whose regret ratio (w.r.t. the
// user's hidden utility vector) is below eps. obs may be nil.
//
// Implementations assume ds is skyline-preprocessed (the experimental
// protocol shared by the paper and all prior work).
type Algorithm interface {
	Name() string
	Run(ds *dataset.Dataset, user User, eps float64, obs Observer) (Result, error)
}

// ContextAlgorithm is an Algorithm whose run accepts a context. The context
// carries values only — per-session tracing in particular — never
// cancellation: lifecycle still belongs to the session. NewSessionCtx
// type-asserts for this interface and prefers RunContext when present, so
// existing Algorithm implementations keep working unchanged.
type ContextAlgorithm interface {
	Algorithm
	RunContext(ctx context.Context, ds *dataset.Dataset, user User, eps float64, obs Observer) (Result, error)
}

// ErrDatasetMismatch is returned when a trained algorithm is run against a
// dataset other than the one it was trained on.
var ErrDatasetMismatch = fmt.Errorf("core: dataset differs from the training dataset")

// degradedSessions counts best-effort terminations across every algorithm.
var degradedSessions = obs.Default().Counter("core.sessions_degraded")

// BestEffortResult implements the shared degradation contract: score the
// dataset at center — the last utility estimate that was still backed by a
// non-empty range — and return its top point as a Degraded result. A nil
// center falls back to the simplex centroid, the zero-information prior.
func BestEffortResult(ds *dataset.Dataset, center []float64, rounds int, trace []QA, reason string) Result {
	if center == nil {
		center = geom.SimplexCentroid(ds.Dim())
	}
	degradedSessions.Inc()
	idx := ds.TopPoint(center)
	return Result{
		PointIndex:     idx,
		Point:          ds.Points[idx],
		Rounds:         rounds,
		Trace:          trace,
		Degraded:       true,
		DegradedReason: reason,
	}
}

// StoppablePoint implements the paper's terminal test (Lemma 4 + Lemma 6 via
// convexity): given the extreme utility vectors E of the current utility
// range R, it returns the index of a point p ∈ D with
//
//	e·p ≥ (1−ε)·max_q e·q   for every e ∈ E,
//
// which certifies regratio(p,u) ≤ ε for every u ∈ R (any u is a convex
// combination of E, and both sides are linear in u). Returns −1 when no
// point qualifies, i.e. R is not yet a terminal polyhedron.
func StoppablePoint(ds *dataset.Dataset, E [][]float64, eps float64) int {
	if len(E) == 0 {
		return -1
	}
	// Per-vertex thresholds and candidate tops (checked first: the top-1
	// point of a vertex is the most likely certificate).
	thr := make([]float64, len(E))
	tops := make([]int, 0, len(E))
	seen := map[int]bool{}
	for k, e := range E {
		ti := ds.TopPoint(e)
		thr[k] = (1 - eps) * vec.Dot(e, ds.Points[ti])
		if !seen[ti] {
			seen[ti] = true
			tops = append(tops, ti)
		}
	}
	ok := func(pi int) bool {
		p := ds.Points[pi]
		for k, e := range E {
			if vec.Dot(e, p)+1e-12 < thr[k] {
				return false
			}
		}
		return true
	}
	for _, ti := range tops {
		if ok(ti) {
			return ti
		}
	}
	for pi := range ds.Points {
		if seen[pi] {
			continue
		}
		if ok(pi) {
			return pi
		}
	}
	return -1
}

// MaxRegretOverVertices returns max over e ∈ E of regratio(p, e) — the
// certificate bound on p's regret anywhere in conv(E).
func MaxRegretOverVertices(ds *dataset.Dataset, E [][]float64, p []float64) float64 {
	var worst float64
	for _, e := range E {
		if rr := ds.RegretRatio(p, e); rr > worst {
			worst = rr
		}
	}
	return worst
}

// RectStop is the paper's AA stopping predicate (Lemma 9): interaction may
// stop once ‖e_min − e_max‖ ≤ 2√d·ε, returning the top point w.r.t. the
// rectangle midpoint, whose regret ratio is then at most d²ε.
func RectStop(emin, emax []float64, eps float64) bool {
	d := float64(len(emin))
	return vec.Dist(emin, emax) <= 2*math.Sqrt(d)*eps
}
