package rl

import (
	"math/rand"
	"testing"
)

func benchBatch(rng *rand.Rand, stateDim, actionDim, n int) []Transition {
	randVec := func(k int) []float64 {
		v := make([]float64, k)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	batch := make([]Transition, n)
	for i := range batch {
		tr := Transition{
			State:  randVec(stateDim),
			Action: randVec(actionDim),
			Reward: 0,
			Next:   randVec(stateDim),
		}
		for a := 0; a < 5; a++ { // the paper's m_h = 5 candidate actions
			tr.NextActions = append(tr.NextActions, randVec(actionDim))
		}
		if i%7 == 0 {
			tr.Terminal = true
			tr.Reward = 1
		}
		batch[i] = tr
	}
	return batch
}

func BenchmarkTrainBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(21, 8, Config{}, rng) // EA shape at d=4
	batch := benchBatch(rng, 21, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TrainBatch(batch)
	}
}

func BenchmarkBestOf5(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(21, 8, Config{}, rng)
	state := make([]float64, 21)
	actions := make([][]float64, 5)
	for i := range actions {
		actions[i] = make([]float64, 8)
		for j := range actions[i] {
			actions[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Best(state, actions)
	}
}

func BenchmarkPrioritizedSample(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := NewPrioritizedReplay(5000, 0.6)
	for i := 0; i < 5000; i++ {
		p.Add(Transition{Reward: rng.Float64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(rng, 64)
	}
}
