package rl

import (
	"math"
	"math/rand"
	"testing"
)

func benchBatch(rng *rand.Rand, stateDim, actionDim, n int) []Transition {
	randVec := func(k int) []float64 {
		v := make([]float64, k)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	batch := make([]Transition, n)
	for i := range batch {
		tr := Transition{
			State:  randVec(stateDim),
			Action: randVec(actionDim),
			Reward: 0,
			Next:   randVec(stateDim),
		}
		for a := 0; a < 5; a++ { // the paper's m_h = 5 candidate actions
			tr.NextActions = append(tr.NextActions, randVec(actionDim))
		}
		if i%7 == 0 {
			tr.Terminal = true
			tr.Reward = 1
		}
		batch[i] = tr
	}
	return batch
}

func BenchmarkTrainBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(21, 8, Config{}, rng) // EA shape at d=4
	batch := benchBatch(rng, 21, 8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TrainBatch(batch)
	}
}

func BenchmarkBestOf5(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(21, 8, Config{}, rng)
	state := make([]float64, 21)
	actions := make([][]float64, 5)
	for i := range actions {
		actions[i] = make([]float64, 8)
		for j := range actions[i] {
			actions[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Best(state, actions)
	}
}

func BenchmarkPrioritizedSample(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := NewPrioritizedReplay(5000, 0.6)
	for i := 0; i < 5000; i++ {
		p.Add(Transition{Reward: rng.Float64()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(rng, 64)
	}
}

// benchActions builds a candidate set of k action-feature vectors.
func benchActions(rng *rand.Rand, k, dim int) [][]float64 {
	actions := make([][]float64, k)
	for i := range actions {
		actions[i] = make([]float64, dim)
		for j := range actions[i] {
			actions[i][j] = rng.Float64()
		}
	}
	return actions
}

// Serial-vs-batched candidate scoring at the EA d=4 shape (state 21, action
// 8): the pre-batching path scored each candidate with one full forward.
func BenchmarkScoreCandidatesSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(21, 8, Config{}, rng)
	state := make([]float64, 21)
	actions := benchActions(rng, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, bq := 0, math.Inf(-1)
		for k, act := range actions {
			if q := a.Q(state, act); q > bq {
				best, bq = k, q
			}
		}
		_ = best
	}
}

func BenchmarkScoreCandidatesBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(21, 8, Config{}, rng)
	state := make([]float64, 21)
	actions := benchActions(rng, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Best(state, actions)
	}
}
