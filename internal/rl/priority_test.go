package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestPrioritizedReplayBasics(t *testing.T) {
	p := NewPrioritizedReplay(4, 1)
	if p.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	rng := rand.New(rand.NewSource(1))
	if got, _ := p.Sample(rng, 3); got != nil {
		t.Fatal("sampling empty buffer must return nil")
	}
	for i := 0; i < 6; i++ {
		p.Add(Transition{Reward: float64(i)})
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d want 4 (capacity)", p.Len())
	}
	// Entries 0 and 1 evicted.
	batch, idx := p.Sample(rng, 200)
	if len(batch) != 200 || len(idx) != 200 {
		t.Fatalf("sample sizes %d/%d", len(batch), len(idx))
	}
	for _, tr := range batch {
		if tr.Reward < 2 {
			t.Fatalf("evicted transition %v sampled", tr.Reward)
		}
	}
}

func TestPrioritizedReplaySkew(t *testing.T) {
	p := NewPrioritizedReplay(2, 1)
	p.Add(Transition{Reward: 0})
	p.Add(Transition{Reward: 1})
	// Give entry 1 a priority 9× entry 0's.
	p.Update([]int{0, 1}, []float64{0.1, 0.9})
	rng := rand.New(rand.NewSource(2))
	count1 := 0
	const n = 20000
	batch, _ := p.Sample(rng, n)
	for _, tr := range batch {
		if tr.Reward == 1 {
			count1++
		}
	}
	frac := float64(count1) / n
	// With alpha=1 and floor 1e-3: p1/(p0+p1) ≈ 0.901/1.002 ≈ 0.899.
	if math.Abs(frac-0.9) > 0.03 {
		t.Errorf("high-priority fraction %v, want ≈0.9", frac)
	}
}

func TestPrioritizedReplayUpdateBounds(t *testing.T) {
	p := NewPrioritizedReplay(3, 0) // alpha defaults to 0.6
	p.Add(Transition{})
	// Out-of-range indices are ignored, not panics.
	p.Update([]int{-1, 99, 0}, []float64{1, 1, 2})
	rng := rand.New(rand.NewSource(3))
	if batch, _ := p.Sample(rng, 5); len(batch) != 5 {
		t.Error("sampling after odd updates failed")
	}
}

func TestPrioritizedReplayCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewPrioritizedReplay(0, 0.6)
}

// Double DQN must still learn the bandit, and its next-state value must use
// the main network's argmax.
func TestDoubleDQNLearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(1, 1, Config{Hidden: 16, LR: 0.05, RewardC: 1}, rng)
	state := []float64{1}
	good, bad := []float64{1}, []float64{-1}
	rep := NewReplay(256)
	for i := 0; i < 200; i++ {
		rep.Add(Transition{State: state, Action: good, Reward: 1, Terminal: true})
		rep.Add(Transition{State: state, Action: bad, Reward: 0, Terminal: true})
	}
	for step := 0; step < 400; step++ {
		a.TrainBatch(rep.Sample(rng, 32))
	}
	if qg, qb := a.Q(state, good), a.Q(state, bad); qg <= qb {
		t.Errorf("Q(good)=%v ≤ Q(bad)=%v after Double-DQN training", qg, qb)
	}
}

func TestTrainBatchTDErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAgent(1, 1, Config{Hidden: 8, RewardC: 1}, rng)
	batch := []Transition{
		{State: []float64{0}, Action: []float64{1}, Reward: 5, Terminal: true},
	}
	_, td := a.TrainBatchTD(batch, make([]float64, 1))
	if len(td) != 1 {
		t.Fatalf("td errors len %d", len(td))
	}
	// Fresh network predicts ≈0, target is 5 → TD error ≈ −5.
	if td[0] > -2 {
		t.Errorf("td error %v, want strongly negative", td[0])
	}
}

// Prioritized replay + agent integration: high-error transitions get
// resampled and the loss falls.
func TestPrioritizedTrainingLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewAgent(1, 1, Config{Hidden: 16, LR: 0.05, RewardC: 1}, rng)
	p := NewPrioritizedReplay(128, 0.6)
	state := []float64{1}
	for i := 0; i < 50; i++ {
		p.Add(Transition{State: state, Action: []float64{1}, Reward: 1, Terminal: true})
		p.Add(Transition{State: state, Action: []float64{-1}, Reward: 0, Terminal: true})
	}
	var first, last float64
	td := make([]float64, 32)
	for step := 0; step < 300; step++ {
		batch, idx := p.Sample(rng, 32)
		var loss float64
		loss, td = a.TrainBatchTD(batch, td)
		p.Update(idx, td)
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Errorf("prioritized loop did not reduce loss: %v → %v", first, last)
	}
}
