package rl

import (
	"math"
	"math/rand"
	"testing"

	"isrl/internal/nn"
)

// QBatch and Best must agree bit-for-bit with scoring each action through
// the single-vector Q path — the contract that makes batched candidate
// scoring a pure optimization.
func TestQBatchBitIdenticalToSerialQ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(21, 8, Config{}, rng)
	state := make([]float64, 21)
	for i := range state {
		state[i] = rng.NormFloat64()
	}
	actions := make([][]float64, 17)
	for i := range actions {
		actions[i] = make([]float64, 8)
		for j := range actions[i] {
			actions[i][j] = rng.NormFloat64()
		}
	}
	qs := a.QBatch(state, actions, nil)
	bi, bq := 0, math.Inf(-1)
	for i, act := range actions {
		q := a.Q(state, act)
		if qs[i] != q {
			t.Fatalf("QBatch[%d] = %v, Q = %v", i, qs[i], q)
		}
		if q > bq {
			bi, bq = i, q
		}
	}
	if got := a.Best(state, actions); got != bi {
		t.Fatalf("Best = %d, serial argmax = %d", got, bi)
	}
}

// serialTrainBatchTD replicates the pre-batching TrainBatchTD loop verbatim
// (per-transition forward/backward, one action forward at a time) so the
// batched implementation can be checked for exact equivalence.
func (a *Agent) serialTrainBatchTD(batch []Transition, tdErrs []float64) float64 {
	nextValue := func(state []float64, actions [][]float64) float64 {
		if len(actions) == 0 {
			return 0
		}
		if !a.cfg.VanillaDQN {
			bi, bq := 0, math.Inf(-1)
			for i, act := range actions {
				if q := a.forward(a.Main, state, act); q > bq {
					bi, bq = i, q
				}
			}
			return a.forward(a.Target, state, actions[bi])
		}
		best := math.Inf(-1)
		for _, act := range actions {
			if q := a.forward(a.Target, state, act); q > best {
				best = q
			}
		}
		return best
	}
	a.Main.ZeroGrad()
	var total float64
	var gin []float64
	inv := 1 / float64(len(batch))
	pred, tgt := []float64{0}, []float64{0}
	for bi, tr := range batch {
		y := tr.Reward
		if !tr.Terminal {
			y += a.cfg.Gamma * nextValue(tr.Next, tr.NextActions)
		}
		q := a.forward(a.Main, tr.State, tr.Action)
		pred[0], tgt[0] = q, y
		var loss float64
		var grad []float64
		if a.cfg.MSE {
			loss, grad = nn.MSE(pred, tgt, gin)
		} else {
			loss, grad = nn.Huber(pred, tgt, gin, a.cfg.HuberDelta)
		}
		gin = grad
		grad[0] *= inv
		total += loss * inv
		if tdErrs != nil {
			tdErrs[bi] = q - y
		}
		a.Main.Backward(grad)
	}
	nn.ClipGrads(a.Main.Params(), a.cfg.GradClip)
	a.opt.Step(a.Main.Params())
	a.updates++
	if a.updates%a.cfg.SyncEvery == 0 {
		a.Target.CopyWeightsFrom(a.Main)
	}
	return total
}

// The batched gradient step must reproduce the serial one exactly: same
// loss, same TD errors, and bit-identical weights after several updates
// (including across a target-network sync).
func TestTrainBatchBitIdenticalToSerial(t *testing.T) {
	for _, cfg := range []Config{
		{SyncEvery: 3}, // stabilized recipe (Adam, Huber, Double)
		{SyncEvery: 3, UseSGD: true, MSE: true, VanillaDQN: true}, // the paper's recipe
	} {
		batched := NewAgent(11, 4, cfg, rand.New(rand.NewSource(7)))
		serial := NewAgent(11, 4, cfg, rand.New(rand.NewSource(7)))
		rng := rand.New(rand.NewSource(8))
		for step := 0; step < 7; step++ {
			batch := benchBatch(rng, 11, 4, 32)
			tdB := make([]float64, len(batch))
			tdS := make([]float64, len(batch))
			lossB, _ := batched.TrainBatchTD(batch, tdB)
			lossS := serial.serialTrainBatchTD(batch, tdS)
			if lossB != lossS {
				t.Fatalf("step %d: batched loss %v, serial %v", step, lossB, lossS)
			}
			for i := range tdB {
				if tdB[i] != tdS[i] {
					t.Fatalf("step %d: tdErr[%d] batched %v, serial %v", step, i, tdB[i], tdS[i])
				}
			}
		}
		bp, sp := batched.Main.Params(), serial.Main.Params()
		for i := range bp {
			for j := range bp[i].W {
				if bp[i].W[j] != sp[i].W[j] {
					t.Fatalf("param %d w[%d]: batched %v, serial %v", i, j, bp[i].W[j], sp[i].W[j])
				}
			}
		}
	}
}
