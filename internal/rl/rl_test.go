package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestReplayRing(t *testing.T) {
	r := NewReplay(3)
	if r.Len() != 0 {
		t.Fatal("fresh replay not empty")
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d want 3", r.Len())
	}
	// The oldest two (0,1) must have been evicted.
	rng := rand.New(rand.NewSource(1))
	for _, tr := range r.Sample(rng, 100) {
		if tr.Reward < 2 {
			t.Fatalf("evicted transition %v still sampled", tr.Reward)
		}
	}
}

func TestReplaySampleEmpty(t *testing.T) {
	r := NewReplay(4)
	if got := r.Sample(rand.New(rand.NewSource(1)), 5); got != nil {
		t.Errorf("sampling empty buffer: %v", got)
	}
}

func TestReplayCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewReplay(0)
}

func TestEpsilonSchedule(t *testing.T) {
	e := EpsilonSchedule{Start: 0.9, End: 0.1, DecaySteps: 8}
	if e.At(0) != 0.9 {
		t.Errorf("At(0) = %v", e.At(0))
	}
	if got := e.At(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(4) = %v want 0.5", got)
	}
	if e.At(8) != 0.1 || e.At(100) != 0.1 {
		t.Error("schedule must clamp at End")
	}
	c := EpsilonSchedule{Start: 0.3}
	if c.At(0) != 0.3 || c.At(1000) != 0.3 {
		t.Error("zero DecaySteps must hold Start forever")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	// Structural hyperparameters follow the paper's §V values...
	if c.Hidden != 64 || c.Gamma != 0.8 || c.BatchSize != 64 ||
		c.ReplayCap != 5000 || c.SyncEvery != 20 {
		t.Errorf("structural defaults do not match the paper: %+v", c)
	}
	// ...while the optimizer recipe defaults to the stabilized variant.
	if c.UseSGD || c.MSE || c.VanillaDQN || c.RewardC != 1 || c.LR != 0.001 {
		t.Errorf("stabilized recipe not selected by default: %+v", c)
	}
	// The paper's exact setup is preserved behind PaperConfig.
	p := PaperConfig().Defaults()
	if !p.UseSGD || !p.MSE || !p.VanillaDQN || p.RewardC != 100 || p.LR != 0.003 {
		t.Errorf("PaperConfig does not match §V: %+v", p)
	}
	// Explicit values survive.
	c2 := Config{Hidden: 8, Gamma: 0.5}.Defaults()
	if c2.Hidden != 8 || c2.Gamma != 0.5 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestAgentBestAndEpsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(2, 2, Config{Hidden: 8}, rng)
	state := []float64{0.5, 0.5}
	actions := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	best := a.Best(state, actions)
	if best < 0 || best >= len(actions) {
		t.Fatalf("best index %d out of range", best)
	}
	// eps=0 must equal greedy.
	if got := a.SelectEpsGreedy(rng, state, actions, 0); got != best {
		t.Errorf("greedy select %d != best %d", got, best)
	}
	// eps=1 must eventually hit all indices.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[a.SelectEpsGreedy(rng, state, actions, 1)] = true
	}
	if len(seen) != len(actions) {
		t.Errorf("pure exploration visited %d of %d actions", len(seen), len(actions))
	}
}

func TestTargetSyncCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAgent(1, 1, Config{Hidden: 4, SyncEvery: 3, BatchSize: 2}, rng)
	batch := []Transition{
		{State: []float64{0.1}, Action: []float64{0.2}, Reward: 1, Terminal: true},
		{State: []float64{0.9}, Action: []float64{0.4}, Reward: 0, Terminal: true},
	}
	x := []float64{0.3}
	act := []float64{0.7}
	// After two updates the target must still be the original weights.
	before := a.forward(a.Target, x, act)
	a.TrainBatch(batch)
	a.TrainBatch(batch)
	if got := a.forward(a.Target, x, act); got != before {
		t.Error("target changed before SyncEvery updates")
	}
	a.TrainBatch(batch) // third update triggers sync
	if got := a.forward(a.Target, x, act); got == before {
		t.Error("target not synced at SyncEvery")
	}
	if a.Updates() != 3 {
		t.Errorf("updates = %d want 3", a.Updates())
	}
}

// A one-state, two-action bandit: the agent must learn that action 1 pays
// the terminal reward.
func TestDQNLearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(1, 1, Config{Hidden: 16, LR: 0.05, RewardC: 1}, rng)
	state := []float64{1}
	good, bad := []float64{1}, []float64{-1}
	rep := NewReplay(256)
	for i := 0; i < 200; i++ {
		rep.Add(Transition{State: state, Action: good, Reward: 1, Terminal: true})
		rep.Add(Transition{State: state, Action: bad, Reward: 0, Terminal: true})
	}
	for step := 0; step < 300; step++ {
		a.TrainBatch(rep.Sample(rng, 32))
	}
	if qg, qb := a.Q(state, good), a.Q(state, bad); qg <= qb {
		t.Errorf("Q(good)=%v ≤ Q(bad)=%v after training", qg, qb)
	}
	if got := a.Best(state, [][]float64{bad, good}); got != 1 {
		t.Errorf("Best = %d want 1", got)
	}
}

// A two-step chain: s0 → (any action) → s1 → terminal reward. Q(s0)
// must approach γ·c, verifying bootstrap through the target network.
func TestDQNBootstrapsThroughNextState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Config{Hidden: 16, LR: 0.05, Gamma: 0.5, RewardC: 1, SyncEvery: 5}
	a := NewAgent(1, 1, cfg, rng)
	s0, s1 := []float64{0}, []float64{1}
	act := []float64{1}
	rep := NewReplay(256)
	for i := 0; i < 100; i++ {
		rep.Add(Transition{State: s0, Action: act, Reward: 0, Next: s1, NextActions: [][]float64{act}})
		rep.Add(Transition{State: s1, Action: act, Reward: 1, Terminal: true})
	}
	for step := 0; step < 600; step++ {
		a.TrainBatch(rep.Sample(rng, 32))
	}
	if q1 := a.Q(s1, act); math.Abs(q1-1) > 0.15 {
		t.Errorf("Q(s1) = %v want ≈1", q1)
	}
	if q0 := a.Q(s0, act); math.Abs(q0-0.5) > 0.15 {
		t.Errorf("Q(s0) = %v want ≈γ·1 = 0.5", q0)
	}
}

func TestTrainBatchEmpty(t *testing.T) {
	a := NewAgent(1, 1, Config{Hidden: 4}, rand.New(rand.NewSource(6)))
	if loss := a.TrainBatch(nil); loss != 0 {
		t.Errorf("empty batch loss = %v", loss)
	}
}

func TestAgentSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAgent(3, 2, Config{Hidden: 8}, rng)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAgent(blob, Config{Hidden: 8})
	if err != nil {
		t.Fatal(err)
	}
	if back.StateDim != 3 || back.ActionDim != 2 {
		t.Errorf("dims = (%d,%d)", back.StateDim, back.ActionDim)
	}
	s, act := []float64{0.1, 0.2, 0.3}, []float64{0.4, 0.5}
	if qa, qb := a.Q(s, act), back.Q(s, act); qa != qb {
		t.Errorf("round trip changed Q: %v vs %v", qa, qb)
	}
}

func TestUnmarshalAgentGarbage(t *testing.T) {
	if _, err := UnmarshalAgent([]byte("nope"), Config{}); err == nil {
		t.Error("garbage blob must fail")
	}
	if _, err := UnmarshalAgent([]byte("dqn:2:2:junk"), Config{}); err == nil {
		t.Error("bad payload must fail")
	}
}
