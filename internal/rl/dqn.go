package rl

import (
	"fmt"
	"math"
	"math/rand"

	"isrl/internal/nn"
	"isrl/internal/vec"
)

// Config collects the DQN hyperparameters. Zero values select, via
// Defaults, the paper's §V structural settings combined with the stabilized
// optimizer recipe; PaperConfig gives §V verbatim.
type Config struct {
	Hidden     int // hidden-layer width (paper: one layer of 64)
	Activation nn.Activation
	LR         float64 // learning rate (paper: 0.003)
	Gamma      float64 // discount factor (paper: 0.8)
	BatchSize  int     // minibatch size (paper: 64)
	ReplayCap  int     // replay memory size (paper: 5,000)
	SyncEvery  int     // target sync interval in updates (paper: 20)
	RewardC    float64 // terminal reward constant c (paper: 100)
	Epsilon    EpsilonSchedule
	GradClip   float64 // global-norm clip; ≤0 disables

	// The zero value selects the stabilized DQN recipe (Adam, Huber loss,
	// Double DQN, unit terminal reward), which is what measurably learns in
	// this substrate — see DESIGN.md §2 and the abl-dqn experiment. The
	// paper's §V settings (plain SGD, MSE, c = 100) are available through
	// PaperConfig and these switches.
	UseSGD     bool    // plain SGD instead of Adam (the paper's optimizer)
	MSE        bool    // squared loss instead of Huber (the paper's loss)
	VanillaDQN bool    // classic max-over-target instead of Double DQN
	HuberDelta float64 // Huber transition point; 0 selects 1
}

// Defaults fills unset fields. Structural hyperparameters (width, γ, batch,
// replay, sync cadence) take the paper's §V values; the optimizer recipe
// defaults to the stabilized variant (see Config).
func (c Config) Defaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.LR == 0 {
		if c.UseSGD {
			c.LR = 0.003 // the paper's SGD learning rate
		} else {
			c.LR = 0.001
		}
	}
	if c.Gamma == 0 {
		c.Gamma = 0.8
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 5000
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = 20
	}
	if c.RewardC == 0 {
		c.RewardC = 1
	}
	if c.Epsilon == (EpsilonSchedule{}) {
		// Paper sets ε = 0.9; we decay it to a small floor so late episodes
		// refine rather than thrash. DecaySteps is per-episode.
		c.Epsilon = EpsilonSchedule{Start: 0.9, End: 0.05, DecaySteps: 2000}
	}
	if c.GradClip == 0 {
		c.GradClip = 10
	}
	return c
}

// PaperConfig returns the exact §V training setup of the paper: plain
// gradient descent with learning rate 0.003, MSE loss, vanilla DQN targets
// and terminal reward c = 100. Used by the abl-dqn experiment.
func PaperConfig() Config {
	return Config{
		LR:         0.003,
		RewardC:    100,
		UseSGD:     true,
		MSE:        true,
		VanillaDQN: true,
	}
}

// Agent is a DQN over (state, action)-feature pairs: Q(s,a;Θ) is an MLP fed
// the concatenation s ⊕ a with a scalar head. Target network Q̂(·;Θ′) is
// synchronized from the main network every SyncEvery updates.
type Agent struct {
	StateDim, ActionDim int

	Main, Target *nn.Network
	cfg          Config
	opt          nn.Optimizer
	updates      int
	syncs        int     // target-network synchronizations
	lastLoss     float64 // loss of the most recent batch
	lossEMA      float64 // exponential moving average of the batch loss

	in []float64 // scratch forward input

	// Batched-scoring and training scratch, preallocated so the per-round
	// and per-update hot paths allocate nothing.
	actMat *vec.Mat  // candidate-action rows for QBatch
	qs     []float64 // candidate scores
	xMat   *vec.Mat  // training-batch (s ⊕ a) rows
	gMat   *vec.Mat  // training-batch dL/dQ rows
	tgtMat *vec.Mat  // (next ⊕ argmax-action) rows for the target network
	ys     []float64 // bootstrap targets
	tgtRow []int     // batch index → tgtMat row (-1 when terminal/no actions)
}

// emaDecay smooths the training-loss EMA over roughly the last ~200
// batches — long enough to be stable, short enough to track divergence.
const emaDecay = 0.995

// NewAgent builds an agent for the given feature dimensions.
func NewAgent(stateDim, actionDim int, cfg Config, rng *rand.Rand) *Agent {
	cfg = cfg.Defaults()
	inDim := stateDim + actionDim
	main := nn.NewMLP([]int{inDim, cfg.Hidden, 1}, cfg.Activation, rng)
	var opt nn.Optimizer
	if cfg.UseSGD {
		opt = nn.NewSGD(cfg.LR, 0)
	} else {
		opt = nn.NewAdam(cfg.LR)
	}
	return &Agent{
		StateDim:  stateDim,
		ActionDim: actionDim,
		Main:      main,
		Target:    main.Clone(),
		cfg:       cfg,
		opt:       opt,
		in:        make([]float64, inDim),
	}
}

// Config returns the resolved hyperparameters.
func (a *Agent) Config() Config { return a.cfg }

// Q evaluates the main network's value for (state, action).
func (a *Agent) Q(state, action []float64) float64 {
	return a.forward(a.Main, state, action)
}

func (a *Agent) forward(net *nn.Network, state, action []float64) float64 {
	if len(state) != a.StateDim || len(action) != a.ActionDim {
		panic(fmt.Sprintf("rl: Q feature dims (%d,%d), want (%d,%d)",
			len(state), len(action), a.StateDim, a.ActionDim))
	}
	copy(a.in, state)
	copy(a.in[a.StateDim:], action)
	return net.Forward1(a.in)
}

// QBatch evaluates the main network's value for state against every action
// with one shared-prefix batched forward, storing the scores into dst (grown
// when nil or mis-sized). dst[i] is bit-identical to Q(state, actions[i]);
// the batch is a pure optimization.
func (a *Agent) QBatch(state []float64, actions [][]float64, dst []float64) []float64 {
	qs := a.qBatch(a.Main, state, actions)
	if len(dst) != len(qs) {
		dst = make([]float64, len(qs))
	}
	copy(dst, qs)
	return dst
}

// qBatch scores state against actions on net, returning a scratch slice
// valid until the next qBatch call.
func (a *Agent) qBatch(net *nn.Network, state []float64, actions [][]float64) []float64 {
	if len(state) != a.StateDim {
		panic(fmt.Sprintf("rl: QBatch state dim %d, want %d", len(state), a.StateDim))
	}
	a.actMat = vec.EnsureMat(a.actMat, len(actions), a.ActionDim)
	for i, act := range actions {
		if len(act) != a.ActionDim {
			panic(fmt.Sprintf("rl: QBatch action %d dim %d, want %d", i, len(act), a.ActionDim))
		}
		copy(a.actMat.Row(i), act)
	}
	out := net.ForwardBatchShared(state, a.actMat)
	if cap(a.qs) < len(actions) {
		a.qs = make([]float64, len(actions))
	}
	a.qs = a.qs[:len(actions)]
	for i := range a.qs {
		a.qs[i] = out.At(i, 0)
	}
	return a.qs
}

// Best returns the index of the action with the largest main-network
// Q-value, scored in one batched forward. It panics on an empty action set.
func (a *Agent) Best(state []float64, actions [][]float64) int {
	if len(actions) == 0 {
		panic("rl: Best with no actions")
	}
	return argmaxFirst(a.qBatch(a.Main, state, actions))
}

// argmaxFirst returns the index of the largest value, breaking ties toward
// the smallest index — the serial loop's `q > best` rule.
func argmaxFirst(qs []float64) int {
	bi, bq := 0, math.Inf(-1)
	for i, q := range qs {
		if q > bq {
			bi, bq = i, q
		}
	}
	return bi
}

// SelectEpsGreedy picks a random action with probability eps, otherwise the
// greedy one.
func (a *Agent) SelectEpsGreedy(rng *rand.Rand, state []float64, actions [][]float64, eps float64) int {
	if len(actions) == 0 {
		panic("rl: SelectEpsGreedy with no actions")
	}
	if rng.Float64() < eps {
		return rng.Intn(len(actions))
	}
	return a.Best(state, actions)
}

// computeTargets fills a.ys with the bootstrap target r + γ·V(s′) of every
// transition, using batched forwards throughout. Vanilla DQN takes max over
// the target network; Double DQN selects the argmax with the main network
// and evaluates it with the target network (one batched target pass over all
// selected rows), which removes the maximization bias. The resulting targets
// are bit-identical to scoring each (state, action) pair serially.
func (a *Agent) computeTargets(batch []Transition) {
	if cap(a.ys) < len(batch) {
		a.ys = make([]float64, len(batch))
		a.tgtRow = make([]int, len(batch))
	}
	a.ys = a.ys[:len(batch)]
	a.tgtRow = a.tgtRow[:len(batch)]

	if a.cfg.VanillaDQN {
		for bi, tr := range batch {
			y := tr.Reward
			if !tr.Terminal && len(tr.NextActions) > 0 {
				qs := a.qBatch(a.Target, tr.Next, tr.NextActions)
				y += a.cfg.Gamma * qs[argmaxFirst(qs)]
			}
			a.ys[bi] = y
		}
		return
	}
	// Double DQN: batched main-network argmax per transition, then one
	// batched target pass over all the selected (next ⊕ action) rows.
	inDim := a.StateDim + a.ActionDim
	rows := 0
	for bi, tr := range batch {
		a.tgtRow[bi] = -1
		if !tr.Terminal && len(tr.NextActions) > 0 {
			rows++
		}
	}
	a.tgtMat = vec.EnsureMat(a.tgtMat, rows, inDim)
	row := 0
	for bi, tr := range batch {
		a.ys[bi] = tr.Reward
		if tr.Terminal || len(tr.NextActions) == 0 {
			continue
		}
		best := argmaxFirst(a.qBatch(a.Main, tr.Next, tr.NextActions))
		r := a.tgtMat.Row(row)
		copy(r, tr.Next)
		copy(r[a.StateDim:], tr.NextActions[best])
		a.tgtRow[bi] = row
		row++
	}
	if rows == 0 {
		return
	}
	out := a.Target.ForwardBatch(a.tgtMat)
	for bi := range batch {
		if r := a.tgtRow[bi]; r >= 0 {
			a.ys[bi] += a.cfg.Gamma * out.At(r, 0)
		}
	}
}

// TrainBatch performs one gradient step on the sampled batch, minimizing the
// DQN loss between Q(s,a) and r + γ·V(s′), and returns the mean loss. The
// target network is synced every cfg.SyncEvery calls.
func (a *Agent) TrainBatch(batch []Transition) float64 {
	loss, _ := a.TrainBatchTD(batch, nil)
	return loss
}

// TrainBatchTD is TrainBatch plus per-transition TD errors, written into
// tdErrs when non-nil (sized to the batch) — the feedback a prioritized
// replay buffer needs.
func (a *Agent) TrainBatchTD(batch []Transition, tdErrs []float64) (float64, []float64) {
	if len(batch) == 0 {
		return 0, tdErrs
	}
	if tdErrs != nil && len(tdErrs) != len(batch) {
		tdErrs = make([]float64, len(batch))
	}
	a.Main.ZeroGrad()
	a.computeTargets(batch)

	// One batched forward over every (s, a) row, then per-row loss and one
	// batched backward. Row order matches the old per-transition loop, so
	// gradients, loss and TD errors are bit-identical to the serial path.
	inDim := a.StateDim + a.ActionDim
	a.xMat = vec.EnsureMat(a.xMat, len(batch), inDim)
	for bi, tr := range batch {
		if len(tr.State) != a.StateDim || len(tr.Action) != a.ActionDim {
			panic(fmt.Sprintf("rl: transition %d feature dims (%d,%d), want (%d,%d)",
				bi, len(tr.State), len(tr.Action), a.StateDim, a.ActionDim))
		}
		row := a.xMat.Row(bi)
		copy(row, tr.State)
		copy(row[a.StateDim:], tr.Action)
	}
	out := a.Main.ForwardBatch(a.xMat) // caches batch activations

	var total float64
	inv := 1 / float64(len(batch))
	delta := a.cfg.HuberDelta
	if delta <= 0 {
		delta = 1
	}
	a.gMat = vec.EnsureMat(a.gMat, len(batch), 1)
	for bi := range batch {
		q, y := out.At(bi, 0), a.ys[bi]
		d := q - y
		var loss, grad float64
		switch {
		case a.cfg.MSE:
			loss, grad = 0.5*d*d, d
		case math.Abs(d) <= delta:
			loss, grad = 0.5*d*d, d
		default:
			loss = delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad = delta
			} else {
				grad = -delta
			}
		}
		// Scale so the batch gradient is the mean.
		a.gMat.Set(bi, 0, grad*inv)
		total += loss * inv
		if tdErrs != nil {
			tdErrs[bi] = d
		}
	}
	a.Main.BackwardBatch(a.gMat)
	nn.ClipGrads(a.Main.Params(), a.cfg.GradClip)
	a.opt.Step(a.Main.Params())
	a.updates++
	a.lastLoss = total
	if a.updates == 1 {
		a.lossEMA = total
	} else {
		a.lossEMA = emaDecay*a.lossEMA + (1-emaDecay)*total
	}
	if a.updates%a.cfg.SyncEvery == 0 {
		a.Target.CopyWeightsFrom(a.Main)
		a.syncs++
	}
	return total, tdErrs
}

// Updates returns the number of gradient steps taken so far.
func (a *Agent) Updates() int { return a.updates }

// SyncTarget forces an immediate target-network synchronization.
func (a *Agent) SyncTarget() {
	a.Target.CopyWeightsFrom(a.Main)
	a.syncs++
}

// TrainStats is a point-in-time snapshot of DQN training progress — the
// telemetry surfaced at /metrics when an RL algorithm backs the server.
// Updates/TargetSyncs/loss fields come from the agent itself (Stats);
// Epsilon and the replay fields are filled in by the training loop, which
// owns the schedule and the buffer.
type TrainStats struct {
	Updates     int     `json:"updates"`      // gradient steps taken
	TargetSyncs int     `json:"target_syncs"` // target-network synchronizations
	LastLoss    float64 `json:"last_loss"`    // most recent batch loss
	LossEMA     float64 `json:"loss_ema"`     // smoothed batch loss (decay 0.995)
	Epsilon     float64 `json:"epsilon"`      // exploration rate at the last episode
	ReplaySize  int     `json:"replay_size"`  // transitions currently buffered
	ReplayCap   int     `json:"replay_cap"`   // replay buffer capacity
}

// Stats snapshots the agent-owned training telemetry.
func (a *Agent) Stats() TrainStats {
	return TrainStats{
		Updates:     a.updates,
		TargetSyncs: a.syncs,
		LastLoss:    a.lastLoss,
		LossEMA:     a.lossEMA,
		ReplayCap:   a.cfg.ReplayCap,
	}
}

// MarshalBinary serializes the main network together with the feature
// dimensions; Target is reconstructed on load.
func (a *Agent) MarshalBinary() ([]byte, error) {
	net, err := a.Main.MarshalBinary()
	if err != nil {
		return nil, err
	}
	hdr := fmt.Sprintf("dqn:%d:%d:", a.StateDim, a.ActionDim)
	return append([]byte(hdr), net...), nil
}

// UnmarshalBinary restores an agent saved with MarshalBinary. cfg supplies
// the hyperparameters (they are not serialized).
func UnmarshalAgent(data []byte, cfg Config) (*Agent, error) {
	// Header is "dqn:<stateDim>:<actionDim>:" followed by the gob payload.
	colons := 0
	idx := -1
	for i, b := range data {
		if b == ':' {
			colons++
			if colons == 3 {
				idx = i + 1
				break
			}
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("rl: truncated agent blob")
	}
	var sd, ad int
	if _, err := fmt.Sscanf(string(data[:idx]), "dqn:%d:%d:", &sd, &ad); err != nil {
		return nil, fmt.Errorf("rl: bad agent header: %w", err)
	}
	var net nn.Network
	if err := net.UnmarshalBinary(data[idx:]); err != nil {
		return nil, err
	}
	cfg = cfg.Defaults()
	a := &Agent{
		StateDim:  sd,
		ActionDim: ad,
		Main:      &net,
		Target:    net.Clone(),
		cfg:       cfg,
		in:        make([]float64, sd+ad),
	}
	if cfg.UseSGD {
		a.opt = nn.NewSGD(cfg.LR, 0)
	} else {
		a.opt = nn.NewAdam(cfg.LR)
	}
	return a, nil
}
