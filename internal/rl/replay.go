// Package rl implements the deep Q-learning machinery of the paper's
// interactive agents: an experience-replay buffer, ε-greedy exploration
// schedules, and a DQN agent whose Q-network scores (state, action) feature
// pairs — the parameterization needed because the interactive regret query
// rebuilds its candidate action pool every round.
package rl

import (
	"fmt"
	"math/rand"
)

// Transition is one step of the interaction MDP. Action holds the feature
// encoding of the chosen question; NextActions holds the feature encodings
// of the candidate questions available at the next state, which the learner
// needs to evaluate max_{a'} Q̂(s′,a′). For terminal transitions Next and
// NextActions are ignored.
type Transition struct {
	State       []float64
	Action      []float64
	Reward      float64
	Next        []float64
	NextActions [][]float64
	Terminal    bool
}

// Replay is a fixed-capacity ring buffer of transitions with uniform
// sampling — the paper's "replay memory" (capacity 5,000 in §V).
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns an empty buffer with the given capacity.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity %d", capacity))
	}
	return &Replay{buf: make([]Transition, capacity)}
}

// Add stores t, evicting the oldest transition when full.
func (r *Replay) Add(t Transition) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Sample draws n transitions uniformly with replacement. It returns fewer
// only when the buffer is empty.
func (r *Replay) Sample(rng *rand.Rand, n int) []Transition {
	ln := r.Len()
	if ln == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(ln)]
	}
	return out
}

// EpsilonSchedule interpolates exploration probability linearly from Start
// to End over DecaySteps episodes, holding End afterwards. A zero DecaySteps
// keeps ε constant at Start.
type EpsilonSchedule struct {
	Start, End float64
	DecaySteps int
}

// At returns ε for the given episode index.
func (e EpsilonSchedule) At(step int) float64 {
	if e.DecaySteps <= 0 || step >= e.DecaySteps {
		if e.DecaySteps <= 0 {
			return e.Start
		}
		return e.End
	}
	f := float64(step) / float64(e.DecaySteps)
	return e.Start + f*(e.End-e.Start)
}
