package rl

import (
	"math"
	"math/rand"
)

// PrioritizedReplay is a proportional prioritized experience-replay buffer
// (Schaul et al.): transitions are sampled with probability proportional to
// priorityᵅ, where the priority is the last observed absolute TD error.
// New transitions enter with the current maximum priority so everything is
// replayed at least once. It is offered as an extension beyond the paper's
// uniform replay (§V) and exercised by the ablation benches.
//
// A sum-tree gives O(log n) sampling and updates.
type PrioritizedReplay struct {
	capacity int
	alpha    float64

	tree   []float64 // sum-tree over capacity leaves
	data   []Transition
	next   int
	size   int
	maxPri float64
}

// NewPrioritizedReplay returns an empty buffer. alpha ∈ [0,1] controls how
// strongly priorities skew sampling (0 = uniform); 0 selects 0.6.
func NewPrioritizedReplay(capacity int, alpha float64) *PrioritizedReplay {
	if capacity <= 0 {
		panic("rl: prioritized replay capacity must be positive")
	}
	if alpha == 0 {
		alpha = 0.6
	}
	// Round capacity up to a power of two for a clean tree layout.
	leaves := 1
	for leaves < capacity {
		leaves *= 2
	}
	return &PrioritizedReplay{
		capacity: capacity,
		alpha:    alpha,
		tree:     make([]float64, 2*leaves),
		data:     make([]Transition, capacity),
		maxPri:   1,
	}
}

// Len returns the number of stored transitions.
func (p *PrioritizedReplay) Len() int { return p.size }

func (p *PrioritizedReplay) leaves() int { return len(p.tree) / 2 }

func (p *PrioritizedReplay) setPriority(idx int, pri float64) {
	pos := p.leaves() + idx
	delta := pri - p.tree[pos]
	for pos >= 1 {
		p.tree[pos] += delta
		pos /= 2
	}
}

// Add stores t with the current maximum priority, evicting the oldest entry
// when full.
func (p *PrioritizedReplay) Add(t Transition) {
	p.data[p.next] = t
	p.setPriority(p.next, math.Pow(p.maxPri, p.alpha))
	p.next = (p.next + 1) % p.capacity
	if p.size < p.capacity {
		p.size++
	}
}

// Sample draws n transitions proportional to priority, returning them with
// their buffer indices (for Update). It returns nil when empty.
func (p *PrioritizedReplay) Sample(rng *rand.Rand, n int) ([]Transition, []int) {
	if p.size == 0 {
		return nil, nil
	}
	out := make([]Transition, n)
	idx := make([]int, n)
	total := p.tree[1]
	for i := 0; i < n; i++ {
		var j int
		if total <= 0 {
			j = rng.Intn(p.size)
		} else {
			j = p.find(rng.Float64() * total)
			if j >= p.size { // padding leaves have zero mass, but guard anyway
				j = rng.Intn(p.size)
			}
		}
		out[i] = p.data[j]
		idx[i] = j
	}
	return out, idx
}

// find descends the sum-tree to the leaf owning mass offset v.
func (p *PrioritizedReplay) find(v float64) int {
	pos := 1
	for pos < p.leaves() {
		left := 2 * pos
		if v < p.tree[left] {
			pos = left
		} else {
			v -= p.tree[left]
			pos = left + 1
		}
	}
	return pos - p.leaves()
}

// Update records the new absolute TD errors of previously sampled
// transitions (parallel slices from Sample).
func (p *PrioritizedReplay) Update(indices []int, tdErrs []float64) {
	const floor = 1e-3 // keep every transition sampleable
	for k, idx := range indices {
		if idx < 0 || idx >= p.capacity {
			continue
		}
		pri := math.Abs(tdErrs[k]) + floor
		if pri > p.maxPri {
			p.maxPri = pri
		}
		p.setPriority(idx, math.Pow(pri, p.alpha))
	}
}
