package rl

import "isrl/internal/obs"

// Publish writes the snapshot into reg under the dqn.* namespace, making
// training telemetry visible on a server's /metrics endpoint. Gauges are
// overwritten, so repeated publishes (e.g. after periodic retraining)
// always reflect the latest run.
func (s TrainStats) Publish(reg *obs.Registry) {
	reg.Gauge("dqn.updates").Set(int64(s.Updates))
	reg.Gauge("dqn.target_syncs").Set(int64(s.TargetSyncs))
	reg.FloatGauge("dqn.last_loss").Set(s.LastLoss)
	reg.FloatGauge("dqn.loss_ema").Set(s.LossEMA)
	reg.FloatGauge("dqn.epsilon").Set(s.Epsilon)
	reg.Gauge("dqn.replay_size").Set(int64(s.ReplaySize))
	reg.Gauge("dqn.replay_cap").Set(int64(s.ReplayCap))
}
