package rl

import (
	"context"

	"isrl/internal/trace"
)

// BestCtx is Best with a tracing leaf span: the batched greedy scoring is
// timed as "rl.best" with the candidate count attached when ctx carries an
// active trace.
func (a *Agent) BestCtx(ctx context.Context, state []float64, actions [][]float64) int {
	sp := trace.StartLeaf(ctx, "rl.best")
	if sp == nil {
		return a.Best(state, actions)
	}
	sp.SetInt("candidates", int64(len(actions)))
	defer sp.End()
	return a.Best(state, actions)
}

// TrainBatchCtx is TrainBatch with a tracing leaf span ("rl.train_step",
// batch size attached).
func (a *Agent) TrainBatchCtx(ctx context.Context, batch []Transition) float64 {
	sp := trace.StartLeaf(ctx, "rl.train_step")
	if sp == nil {
		return a.TrainBatch(batch)
	}
	sp.SetInt("batch", int64(len(batch)))
	defer sp.End()
	return a.TrainBatch(batch)
}
