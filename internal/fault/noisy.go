package fault

import (
	"math/rand"
	"sync"
)

// User mirrors core.User structurally so the harness can wrap any oracle
// without importing core (core threads fault hooks, so the dependency must
// point this way).
type User interface {
	Prefer(pi, pj []float64) bool
}

// NoisyUser wraps any oracle and flips each answer independently with
// probability FlipProb, drawing from its own seeded source — the adversarial
// counterpart of core.NoisyUser (which needs the hidden utility vector).
// Wrapping a live session oracle with it simulates the paper's future-work
// setting where real users err in pairwise choices. Safe for concurrent use.
type NoisyUser struct {
	Inner    User
	FlipProb float64

	mu    sync.Mutex
	rng   *rand.Rand
	flips int
	asks  int
}

// NewNoisyUser wraps inner, flipping answers with probability flipProb under
// the given seed.
func NewNoisyUser(inner User, flipProb float64, seed int64) *NoisyUser {
	return &NoisyUser{Inner: inner, FlipProb: flipProb, rng: rand.New(rand.NewSource(seed))}
}

// Prefer implements the oracle: the inner answer, possibly inverted.
func (u *NoisyUser) Prefer(pi, pj []float64) bool {
	ans := u.Inner.Prefer(pi, pj)
	u.mu.Lock()
	u.asks++
	flip := u.rng.Float64() < u.FlipProb
	if flip {
		u.flips++
	}
	u.mu.Unlock()
	if flip {
		return !ans
	}
	return ans
}

// Flips returns how many answers were inverted so far.
func (u *NoisyUser) Flips() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.flips
}

// Asks returns how many questions were answered so far.
func (u *NoisyUser) Asks() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.asks
}
