package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHitNoPlanInstalled(t *testing.T) {
	Install(nil)
	for i := 0; i < 1000; i++ {
		if err := Hit(PointLPSolve); err != nil {
			t.Fatalf("uninstalled Hit returned %v", err)
		}
	}
}

func TestFaultErrorInjectionRate(t *testing.T) {
	p := NewPlan(7).Set("x", Spec{ErrProb: 0.3})
	errs := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if err := p.hit("x"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			errs++
		}
	}
	if rate := float64(errs) / n; rate < 0.25 || rate > 0.35 {
		t.Errorf("injection rate %.3f far from 0.3", rate)
	}
	if p.Hits("x") != n {
		t.Errorf("hits = %d, want %d", p.Hits("x"), n)
	}
	if p.Injections("x") != errs {
		t.Errorf("injections = %d, want %d", p.Injections("x"), errs)
	}
}

// Same seed, same sequence — the property chaos tests rely on.
func TestFaultDeterministicReplay(t *testing.T) {
	run := func() []bool {
		p := NewPlan(42).Set("x", Spec{ErrProb: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.hit("x") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i)
		}
	}
}

func TestFaultPanicInjection(t *testing.T) {
	p := NewPlan(1).Set("x", Spec{PanicProb: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected injected panic")
		}
		if !strings.Contains(r.(string), `injected panic at "x"`) {
			t.Errorf("panic value %v", r)
		}
	}()
	_ = p.hit("x")
}

func TestFaultAfterArming(t *testing.T) {
	p := NewPlan(1).Set("x", Spec{ErrProb: 1, After: 3})
	for i := 0; i < 3; i++ {
		if err := p.hit("x"); err != nil {
			t.Fatalf("hit %d injected before arming", i)
		}
	}
	if err := p.hit("x"); err == nil {
		t.Fatal("armed hit must inject with ErrProb 1")
	}
}

func TestFaultLatency(t *testing.T) {
	p := NewPlan(1).Set("x", Spec{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := p.hit("x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency injection slept only %v", d)
	}
}

func TestFaultCustomErrorPayload(t *testing.T) {
	custom := errors.New("disk on fire")
	p := NewPlan(1).Set("x", Spec{ErrProb: 1, Err: custom})
	if err := p.hit("x"); !errors.Is(err, custom) {
		t.Errorf("err = %v, want custom payload", err)
	}
}

func TestFaultUnconfiguredPointFree(t *testing.T) {
	p := NewPlan(3).Set("x", Spec{ErrProb: 0.5})
	// Hammering an unconfigured point must not consume randomness: the
	// configured point's sequence stays identical to a plan without the noise.
	q := NewPlan(3).Set("x", Spec{ErrProb: 0.5})
	for i := 0; i < 100; i++ {
		_ = p.hit("unrelated")
		a, b := p.hit("x") != nil, q.hit("x") != nil
		if a != b {
			t.Fatalf("unconfigured point perturbed the sequence at hit %d", i)
		}
	}
}

func TestInstallHitRoundTrip(t *testing.T) {
	p := NewPlan(5).Set(PointVertices, Spec{ErrProb: 1})
	Install(p)
	defer Install(nil)
	if err := Hit(PointVertices); !errors.Is(err, ErrInjected) {
		t.Errorf("installed plan did not inject: %v", err)
	}
	if Installed() != p {
		t.Error("Installed() did not return the active plan")
	}
	Install(nil)
	if err := Hit(PointVertices); err != nil {
		t.Errorf("Hit after uninstall injected: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("lp.solve:err=0.25,after=2; geom.vertices:panic=0.5,lat=10ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"lp.solve{err=0.25", "after=2", "geom.vertices{", "panic=0.5", "lat=10ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan %q missing %q", s, want)
		}
	}
	for _, bad := range []string{"noval", "p:frob=1", "p:err=x", ":err=1"} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

type constUser bool

func (c constUser) Prefer(pi, pj []float64) bool { return bool(c) }

func TestNoisyUserFlipRate(t *testing.T) {
	u := NewNoisyUser(constUser(true), 0.2, 11)
	flipped := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if !u.Prefer(nil, nil) {
			flipped++
		}
	}
	if rate := float64(flipped) / n; rate < 0.15 || rate > 0.25 {
		t.Errorf("flip rate %.3f far from 0.2", rate)
	}
	if u.Flips() != flipped {
		t.Errorf("Flips() = %d, observed %d", u.Flips(), flipped)
	}
	if u.Asks() != n {
		t.Errorf("Asks() = %d, want %d", u.Asks(), n)
	}
}

func TestNoisyUserDeterministic(t *testing.T) {
	a, b := NewNoisyUser(constUser(true), 0.5, 3), NewNoisyUser(constUser(true), 0.5, 3)
	for i := 0; i < 200; i++ {
		if a.Prefer(nil, nil) != b.Prefer(nil, nil) {
			t.Fatalf("noisy sequences diverged at ask %d", i)
		}
	}
}
