// Package fault is a seeded, deterministic fault-injection harness for the
// numeric and serving layers. Production code threads named injection points
// (lp solves, vertex enumeration, hit-and-run sampling, the session oracle)
// through Hit; without an installed Plan each hook is a single atomic load,
// so the instrumentation is free in normal operation.
//
// A Plan maps point names to a Spec: with what probability the point returns
// an injected error or panics, how much latency it adds, and how many hits
// it ignores before arming. All randomness comes from one seeded source, so
// a single-threaded run with a given seed replays the exact same fault
// sequence — the property chaos tests rely on to be regressions rather than
// flakes. Injection volumes are counted into the process-wide obs registry
// (fault.hits / fault.errors / fault.panics / fault.delays) so a chaos run
// is auditable from /metrics.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"isrl/internal/obs"
)

// Well-known injection point names. Production hooks use these constants;
// plans may also name points of their own for application-level hooks.
const (
	PointLPSolve   = "lp.solve"       // internal/lp: one simplex solve
	PointVertices  = "geom.vertices"  // internal/geom: one vertex enumeration
	PointSample    = "geom.sample"    // internal/geom: one hit-and-run sampling run
	PointOracle    = "core.oracle"    // internal/core: one session oracle question
	PointWALWrite  = "wal.write"      // internal/wal: one journal record write
	PointWALSync   = "wal.sync"       // internal/wal: one journal fsync
	PointWALRename = "wal.rename"     // internal/wal: one segment rename (rotation/compaction)
	PointClientReq = "client.request" // client: one HTTP attempt leaving the SDK
	PointLPWarm    = "lp.warm"        // internal/lp: one warm-start repair (push or re-optimize)
	PointIncClip   = "geom.inc.clip"  // internal/geom: one incremental halfspace clip

	PointReplSend      = "repl.send"      // internal/repl: one batch/snapshot frame leaving the primary
	PointReplApply     = "repl.apply"     // internal/repl: one batch/snapshot applied on the follower
	PointReplHeartbeat = "repl.heartbeat" // internal/repl: one heartbeat leaving the primary

	PointScrubRead = "wal.scrub.read" // internal/wal: one rate-limited scrubber read of a sealed segment
)

// ErrInjected is the sentinel wrapped by every injected error; callers test
// provenance with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected error")

// ErrTornWrite is the sentinel for a torn-write fault: the injection point
// should persist only a prefix of the data it was about to write (modeling a
// power cut mid-write) and then fail. It wraps ErrInjected, so generic
// provenance checks keep working.
var ErrTornWrite = fmt.Errorf("%w: torn write", ErrInjected)

// Spec configures one injection point.
//
// TornProb shares ErrProb's random draw so arming it never perturbs the
// fault sequence of other points under a fixed seed: a single roll r injects
// a torn write when r < TornProb and a plain error when
// TornProb ≤ r < TornProb+ErrProb.
type Spec struct {
	ErrProb   float64       // probability of returning an injected error per hit
	PanicProb float64       // probability of panicking per hit
	TornProb  float64       // probability of returning ErrTornWrite per hit (disk points)
	Latency   time.Duration // delay added to every armed hit
	After     int           // number of initial hits to pass through unarmed
	Err       error         // error payload; nil selects a default wrapping ErrInjected
}

// Plan is a set of armed injection points sharing one seeded random source.
// Hit, Set and Counts are safe for concurrent use; determinism is guaranteed
// for single-goroutine hit sequences (concurrent hits still inject at the
// configured rates, but interleaving reorders the random draws).
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	specs map[string]Spec
	hits  map[string]int
	inj   map[string]int
}

// Injection metrics, shared by all plans.
var (
	mHits   = obs.Default().Counter("fault.hits")
	mErrors = obs.Default().Counter("fault.errors")
	mPanics = obs.Default().Counter("fault.panics")
	mDelays = obs.Default().Counter("fault.delays")
)

// NewPlan returns an empty plan drawing randomness from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		rng:   rand.New(rand.NewSource(seed)),
		specs: make(map[string]Spec),
		hits:  make(map[string]int),
		inj:   make(map[string]int),
	}
}

// Set arms (or re-arms) the injection point named point.
func (p *Plan) Set(point string, s Spec) *Plan {
	p.mu.Lock()
	p.specs[point] = s
	p.mu.Unlock()
	return p
}

// Hits returns how many times the named point was evaluated (armed or not).
func (p *Plan) Hits(point string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[point]
}

// Injections returns how many faults (errors + panics) the named point
// actually injected.
func (p *Plan) Injections(point string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inj[point]
}

// hit evaluates one pass through the injection point. It sleeps the
// configured latency, then panics or returns an injected error according to
// the rolled probabilities. Unconfigured points are free apart from the map
// lookup and consume no randomness.
func (p *Plan) hit(point string) error {
	p.mu.Lock()
	spec, ok := p.specs[point]
	if !ok {
		p.mu.Unlock()
		return nil
	}
	p.hits[point]++
	n := p.hits[point]
	armed := n > spec.After
	var panicRoll, errRoll float64
	if armed {
		panicRoll, errRoll = p.rng.Float64(), p.rng.Float64()
	}
	if armed && (panicRoll < spec.PanicProb || errRoll < spec.TornProb+spec.ErrProb) {
		p.inj[point]++
	}
	p.mu.Unlock()
	mHits.Inc()
	if !armed {
		return nil
	}
	if spec.Latency > 0 {
		mDelays.Inc()
		time.Sleep(spec.Latency)
	}
	if panicRoll < spec.PanicProb {
		mPanics.Inc()
		panic(fmt.Sprintf("fault: injected panic at %q (hit %d)", point, n))
	}
	if errRoll < spec.TornProb {
		mErrors.Inc()
		return fmt.Errorf("%w at %q (hit %d)", ErrTornWrite, point, n)
	}
	if errRoll < spec.TornProb+spec.ErrProb {
		mErrors.Inc()
		if spec.Err != nil {
			return spec.Err
		}
		return fmt.Errorf("%w at %q (hit %d)", ErrInjected, point, n)
	}
	return nil
}

// active is the process-wide installed plan; nil means every Hit is a no-op.
var active atomic.Pointer[Plan]

// Install makes p the process-wide plan evaluated by Hit. Install(nil)
// disarms all injection. Tests installing a plan must uninstall it (defer
// fault.Install(nil)) so suites stay independent.
func Install(p *Plan) { active.Store(p) }

// Installed returns the currently installed plan, or nil.
func Installed() *Plan { return active.Load() }

// Hit evaluates the named injection point against the installed plan. With
// no plan installed it costs one atomic load. It may sleep, panic, or return
// an injected error, per the plan's Spec for the point.
func Hit(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(point)
}

// ParsePlan builds a plan from a compact spec string, the format of
// isrl-serve's -fault flag:
//
//	point:key=value,key=value[;point:...]
//
// Keys: err (error probability), panic (panic probability), torn (torn-write
// probability, disk points), lat (latency, Go duration), after (hits ignored
// before arming). Example:
//
//	lp.solve:err=0.01;geom.vertices:panic=0.005,after=10;core.oracle:lat=50ms
func ParsePlan(spec string, seed int64) (*Plan, error) {
	p := NewPlan(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, kvs, ok := strings.Cut(entry, ":")
		if !ok || point == "" {
			return nil, fmt.Errorf("fault: bad spec entry %q (want point:key=value,...)", entry)
		}
		var s Spec
		for _, kv := range strings.Split(kvs, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: bad spec pair %q in %q", kv, entry)
			}
			var err error
			switch key {
			case "err":
				s.ErrProb, err = strconv.ParseFloat(val, 64)
			case "panic":
				s.PanicProb, err = strconv.ParseFloat(val, 64)
			case "torn":
				s.TornProb, err = strconv.ParseFloat(val, 64)
			case "lat":
				s.Latency, err = time.ParseDuration(val)
			case "after":
				s.After, err = strconv.Atoi(val)
			default:
				return nil, fmt.Errorf("fault: unknown spec key %q in %q", key, entry)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad value for %q in %q: %v", key, entry, err)
			}
		}
		p.Set(point, s)
	}
	return p, nil
}

// String renders the armed points for logging.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.specs))
	for name := range p.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		s := p.specs[name]
		parts = append(parts, fmt.Sprintf("%s{err=%g panic=%g torn=%g lat=%s after=%d}",
			name, s.ErrProb, s.PanicProb, s.TornProb, s.Latency, s.After))
	}
	return strings.Join(parts, " ")
}
