// Package ea implements the paper's exact algorithm EA (§IV-B): an
// RL-driven interactive regret query that maintains the utility range R as
// an exact polytope, encodes each interaction state from R's extreme utility
// vectors and outer sphere, restricts the action space to pairs of
// terminal-polyhedron representatives, and trains a DQN to pick the question
// with the best long-term effect on the number of rounds.
package ea

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/rl"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// Config collects EA's hyperparameters. Zero values select the paper's §V
// settings via Defaults.
type Config struct {
	Me         int     // selected extreme utility vectors mₑ in the state
	Mh         int     // action-space size m_h (paper: 5)
	DEps       float64 // neighborhood radius d_ε of the greedy cover
	NumSamples int     // sampled utility vectors for terminal-polyhedron construction (Lemma 5)
	MaxRounds  int     // safety cap on interactive rounds
	RL         rl.Config

	// Resilient enables the error-tolerant mode of the paper's future work
	// (§VI): when contradictory answers empty the utility range, the least
	// consistent halfspaces are dropped (geom.RepairFeasibility) and the
	// interaction continues instead of terminating with a fallback point.
	Resilient bool

	// ScratchGeometry disables the round-incremental geometry engine and
	// recomputes the vertex set from scratch every round (the pre-engine
	// behavior). The engine is deterministic and bit-identical to scratch —
	// this switch exists for benchmarking and as an escape hatch.
	ScratchGeometry bool

	// Ablation switches (see DESIGN.md §5). All default off.
	NoExtremeState bool // zero out the selected-extreme-vectors state part
	NoSphereState  bool // zero out the outer-sphere state part
	RandomCover    bool // replace greedy max-coverage with random selection
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Me == 0 {
		c.Me = 5
	}
	if c.Mh == 0 {
		c.Mh = 5
	}
	if c.DEps == 0 {
		c.DEps = 0.1
	}
	if c.NumSamples == 0 {
		c.NumSamples = 64
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 200
	}
	c.RL = c.RL.Defaults()
	return c
}

// EA is the exact RL interactive algorithm, bound to the dataset and regret
// threshold it was trained for.
type EA struct {
	cfg   Config
	ds    *dataset.Dataset
	eps   float64
	agent *rl.Agent
	rng   *rand.Rand
}

// New creates an untrained EA for ds and threshold eps. rng drives
// exploration, sampling and network initialization. It panics on an empty
// dataset, dimensionality < 2, or a threshold outside (0,1) — construction
// errors a caller cannot meaningfully handle at run time.
func New(ds *dataset.Dataset, eps float64, cfg Config, rng *rand.Rand) *EA {
	validate("ea", ds, eps)
	cfg = cfg.Defaults()
	d := ds.Dim()
	stateDim := cfg.Me*d + d + 1 // mₑ vertices ⊕ sphere center ⊕ radius
	actionDim := 2 * d           // pᵢ ⊕ pⱼ
	return &EA{
		cfg:   cfg,
		ds:    ds,
		eps:   eps,
		agent: rl.NewAgent(stateDim, actionDim, cfg.RL, rng),
		rng:   rng,
	}
}

// validate panics with a clear message on unusable construction inputs.
func validate(pkg string, ds *dataset.Dataset, eps float64) {
	if ds == nil || ds.Len() == 0 {
		panic(fmt.Sprintf("%s: empty dataset", pkg))
	}
	if ds.Dim() < 2 {
		panic(fmt.Sprintf("%s: dimensionality %d < 2", pkg, ds.Dim()))
	}
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("%s: regret threshold %v outside (0,1)", pkg, eps))
	}
}

// Load restores an EA whose agent was serialized with Agent().MarshalBinary.
// ds, eps and cfg must match the values used at training time.
func Load(ds *dataset.Dataset, eps float64, cfg Config, blob []byte, rng *rand.Rand) (*EA, error) {
	cfg = cfg.Defaults()
	agent, err := rl.UnmarshalAgent(blob, cfg.RL)
	if err != nil {
		return nil, fmt.Errorf("ea: load: %w", err)
	}
	d := ds.Dim()
	if agent.StateDim != cfg.Me*d+d+1 || agent.ActionDim != 2*d {
		return nil, fmt.Errorf("ea: load: model dims (%d,%d) do not match dataset/config (%d,%d)",
			agent.StateDim, agent.ActionDim, cfg.Me*d+d+1, 2*d)
	}
	return &EA{cfg: cfg, ds: ds, eps: eps, agent: agent, rng: rng}, nil
}

// Name implements core.Algorithm.
func (e *EA) Name() string { return "EA" }

// Agent exposes the underlying DQN (for serialization and ablations).
func (e *EA) Agent() *rl.Agent { return e.agent }

// Config returns the resolved configuration.
func (e *EA) Config() Config { return e.cfg }

// action is a candidate question: a pair of dataset indices plus its feature
// encoding for the Q-network.
type action struct {
	I, J int
	Feat []float64
}

// round captures everything EA derives from the current utility range.
type round struct {
	poly     *geom.Polytope
	verts    [][]float64
	state    []float64
	actions  []action
	terminal bool
	stopIdx  int    // certified point when terminal (or best-effort fallback)
	degraded bool   // terminal without an ε-certificate (range collapsed)
	reason   string // why, when degraded
}

// newGeo returns the round-incremental engine over poly, or nil when the
// scratch path was requested. A nil handle makes every helper below fall
// through to the plain Polytope methods.
func (e *EA) newGeo(poly *geom.Polytope) *geom.Incremental {
	if e.cfg.ScratchGeometry {
		return nil
	}
	return geom.NewIncremental(poly)
}

// vertices reads the current vertex set through the engine when one is
// active. The engine serves its maintained list (bit-identical to scratch
// enumeration) and rebuilds from scratch whenever it cannot vouch for it.
func vertices(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental) ([][]float64, error) {
	if geo != nil {
		return geo.VerticesCtx(ctx)
	}
	return poly.VerticesCtx(ctx)
}

// applyCut intersects the range with the learned halfspace and prunes
// redundant constraints, through the engine when one is active. Both paths
// make identical keep/remove decisions; the engine additionally folds the
// cut into its maintained vertex set and warm solvers.
func applyCut(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, h geom.Halfspace) {
	if geo != nil {
		geo.AddCtx(ctx, h)
		geo.Reduce()
		return
	}
	poly.Add(h)
	poly.ReduceRedundant()
}

// computeRound derives the MDP view of the current utility range: the
// Lemma-6 terminal test, the two-part state vector, and the restricted
// action pool from terminal-polyhedron representatives.
func (e *EA) computeRound(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, eps float64) (*round, error) {
	r := &round{poly: poly, stopIdx: -1}
	verts, err := vertices(ctx, poly, geo)
	if err != nil {
		return nil, fmt.Errorf("ea: %w", err)
	}
	if len(verts) == 0 && e.cfg.Resilient && len(poly.Halfspaces) > 0 {
		// Contradictory answers emptied R: drop the least consistent
		// constraints and continue (§VI future work). The repair mutates the
		// polytope directly; the engine notices via the mutation generation
		// and resynchronizes on the re-read.
		poly.RepairFeasibility(0)
		if verts, err = vertices(ctx, poly, geo); err != nil {
			return nil, fmt.Errorf("ea: %w", err)
		}
	}
	r.verts = verts
	if len(verts) == 0 {
		// Degenerate range (numerically empty — possible under noisy
		// answers). Terminate with the best point at the inner center.
		r.terminal = true
		r.degraded = true
		r.reason = "utility range empty (contradictory answers)"
		r.stopIdx = e.fallbackPoint(poly)
		r.state = e.encodeState(nil, geom.Ball{Center: make([]float64, poly.Dim)})
		return r, nil
	}
	if idx := core.StoppablePoint(e.ds, verts, eps); idx >= 0 {
		r.terminal = true
		r.stopIdx = idx
		r.state = e.encodeState(verts, geom.EnclosingBall(verts, geom.EnclosingBallOptions{}))
		return r, nil
	}
	// State: greedy-covered extreme vectors + outer sphere (§IV-B state).
	ball := geom.EnclosingBall(verts, geom.EnclosingBallOptions{})
	r.state = e.encodeState(verts, ball)

	// Action pool: representatives p_T of terminal polyhedra constructed
	// from V = samples ∪ vertices. A utility vector's terminal polyhedron is
	// determined by its top-1 point, so distinct top indices enumerate the
	// constructed polyhedra (§IV-B action space).
	tops := map[int]bool{}
	for _, t := range e.ds.TopPoints(verts, nil) {
		tops[t] = true
	}
	if samples, err := poly.SampleCtx(ctx, e.rng, e.cfg.NumSamples, geom.SampleOptions{}); err == nil {
		for _, t := range e.ds.TopPoints(samples, nil) {
			tops[t] = true
		}
	}
	reps := make([]int, 0, len(tops))
	for i := range tops {
		reps = append(reps, i)
	}
	sort.Ints(reps) // map order is random; keep runs reproducible
	if len(reps) < 2 {
		// All of E shares one top-1 point ⇒ that point is optimal over all
		// of R (convexity) ⇒ the range is terminal for any ε ≥ 0.
		r.terminal = true
		r.stopIdx = reps[0]
		return r, nil
	}
	r.actions = e.samplePairs(reps, verts)
	if len(r.actions) == 0 {
		// No candidate hyperplane cuts R strictly: the representatives tie
		// across the whole range; asking more questions cannot narrow it.
		// Return the representative with the best worst-case certificate.
		r.terminal = true
		r.stopIdx = e.bestRep(reps, verts)
	}
	return r, nil
}

// bestRep picks the representative with the smallest worst-case regret over
// the vertex set.
func (e *EA) bestRep(reps []int, verts [][]float64) int {
	best, bi := 2.0, reps[0]
	for _, ri := range reps {
		if rr := core.MaxRegretOverVertices(e.ds, verts, e.ds.Points[ri]); rr < best {
			best, bi = rr, ri
		}
	}
	return bi
}

// samplePairs draws up to m_h distinct index pairs from reps whose
// hyperplane strictly cuts the current range (both sides hold vertices with
// margin — Lemma 7's strict-narrowing requirement, enforced numerically).
func (e *EA) samplePairs(reps []int, verts [][]float64) []action {
	type pair struct{ i, j int }
	seen := map[pair]bool{}
	var out []action
	maxPairs := len(reps) * (len(reps) - 1) / 2
	want := e.cfg.Mh
	if want > maxPairs {
		want = maxPairs
	}
	for tries := 0; len(out) < want && tries < 50*want; tries++ {
		a, b := reps[e.rng.Intn(len(reps))], reps[e.rng.Intn(len(reps))]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			continue
		}
		seen[pair{a, b}] = true
		pi, pj := e.ds.Points[a], e.ds.Points[b]
		if vec.Dist(pi, pj) < 1e-12 {
			continue // identical tuples induce no hyperplane
		}
		if !cutsVertices(pi, pj, verts) {
			continue
		}
		feat := make([]float64, 0, 2*len(pi))
		feat = append(feat, pi...)
		feat = append(feat, pj...)
		out = append(out, action{I: a, J: b, Feat: feat})
	}
	return out
}

// encodeState builds the fixed-length state vector of §IV-B: the mₑ
// greedy-cover representatives of the extreme utility vectors, zero-padded,
// concatenated with the outer sphere's center and radius.
func (e *EA) encodeState(verts [][]float64, ball geom.Ball) []float64 {
	d := e.ds.Dim()
	state := make([]float64, e.cfg.Me*d+d+1)
	if len(verts) > 0 && !e.cfg.NoExtremeState {
		var chosen []int
		if e.cfg.RandomCover {
			chosen = e.rng.Perm(len(verts))
			if len(chosen) > e.cfg.Me {
				chosen = chosen[:e.cfg.Me]
			}
		} else {
			chosen = geom.GreedyCover(verts, e.cfg.Me, e.cfg.DEps)
		}
		for k, vi := range chosen {
			copy(state[k*d:], verts[vi])
		}
	}
	if !e.cfg.NoSphereState {
		copy(state[e.cfg.Me*d:], ball.Center)
		state[e.cfg.Me*d+d] = ball.Radius
	}
	return state
}

// fallbackPoint picks the best point available when the range degenerates:
// the top point w.r.t. the inner-ball center (or the simplex centroid).
func (e *EA) fallbackPoint(poly *geom.Polytope) int {
	center := geom.SimplexCentroid(poly.Dim)
	if ball, err := poly.InnerBall(); err == nil {
		center = ball.Center
	}
	return e.ds.TopPoint(center)
}

// safeRound is computeRound behind a panic-containment boundary: a panic in
// the LP/vertex machinery (degenerate polytope, injected fault) surfaces as
// an error the serving path can degrade on instead of a dead process.
func (e *EA) safeRound(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, eps float64) (r *round, err error) {
	if perr := core.Guard(func() { r, err = e.computeRound(ctx, poly, geo, eps) }); perr != nil {
		return nil, perr
	}
	return r, err
}

// vertexCentroid is the mean of the extreme vectors — a cheap interior
// estimate of R recorded every healthy round so a degraded termination can
// still score the dataset against the last non-empty range.
func vertexCentroid(verts [][]float64) []float64 {
	c := make([]float64, len(verts[0]))
	for _, v := range verts {
		vec.Add(c, c, v)
	}
	vec.Scale(c, 1/float64(len(verts)), c)
	return c
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Episodes   int
	TotalSteps int
	AvgRounds  float64 // mean episode length over the last window
	FinalLoss  float64
	RL         rl.TrainStats // DQN-level telemetry (loss EMA, syncs, replay)
}

// Train runs Algorithm 1 over the given training utility vectors (one
// episode each), learning the Q-function. It may be called with vectors
// sampled uniformly from the utility space (the paper trains on 10,000).
func (e *EA) Train(users [][]float64) (TrainStats, error) {
	replay := rl.NewReplay(e.cfg.RL.ReplayCap)
	stats := TrainStats{Episodes: len(users)}
	var windowRounds, windowCount float64
	var epsilon float64
	for ep, u := range users {
		user := core.SimulatedUser{Utility: u}
		epsilon = e.agent.Config().Epsilon.At(ep)
		rounds, err := e.episode(user, epsilon, replay, nil)
		if err != nil {
			return stats, fmt.Errorf("ea: training episode %d: %w", ep, err)
		}
		stats.TotalSteps += rounds
		windowRounds += float64(rounds)
		windowCount++
		// One gradient step per environment step (standard DQN cadence;
		// the paper's Algorithm 1 batches once per episode, which learns
		// the same policy more slowly).
		if replay.Len() >= e.agent.Config().BatchSize {
			for k := 0; k < rounds; k++ {
				stats.FinalLoss = e.agent.TrainBatch(replay.Sample(e.rng, e.agent.Config().BatchSize))
			}
		}
	}
	if windowCount > 0 {
		stats.AvgRounds = windowRounds / windowCount
	}
	stats.RL = e.agent.Stats()
	stats.RL.Epsilon = epsilon
	stats.RL.ReplaySize = replay.Len()
	return stats, nil
}

// episode runs one full interaction. With a non-nil replay it records
// transitions (training); with epsilon 0 and nil replay it is pure greedy
// inference. It returns the number of rounds and feeds obs if non-nil.
func (e *EA) episode(user core.User, epsilon float64, replay *rl.Replay, obs core.Observer) (int, error) {
	ctx := context.Background()
	poly := geom.NewPolytope(e.ds.Dim())
	geo := e.newGeo(poly)
	cur, err := e.computeRound(ctx, poly, geo, e.eps)
	if err != nil {
		return 0, err
	}
	rounds := 0
	for !cur.terminal && rounds < e.cfg.MaxRounds {
		if len(cur.actions) == 0 {
			break // defensive: nothing to ask
		}
		var ai int
		if replay != nil {
			ai = e.agent.SelectEpsGreedy(e.rng, cur.state, feats(cur.actions), epsilon)
		} else {
			ai = e.agent.Best(cur.state, feats(cur.actions))
		}
		act := cur.actions[ai]
		pi, pj := e.ds.Points[act.I], e.ds.Points[act.J]
		var h geom.Halfspace
		if user.Prefer(pi, pj) {
			h = geom.NewHalfspace(pi, pj)
		} else {
			h = geom.NewHalfspace(pj, pi)
		}
		applyCut(ctx, poly, geo, h)
		rounds++
		if obs != nil {
			obs.Round(rounds, poly.Halfspaces)
		}
		next, err := e.computeRound(ctx, poly, geo, e.eps)
		if err != nil {
			return rounds, err
		}
		if replay != nil {
			tr := rl.Transition{
				State:    cur.state,
				Action:   act.Feat,
				Next:     next.state,
				Terminal: next.terminal,
			}
			if next.terminal {
				tr.Reward = e.agent.Config().RewardC
			} else {
				tr.NextActions = feats(next.actions)
			}
			replay.Add(tr)
		}
		cur = next
	}
	return rounds, nil
}

// cutsVertices reports whether the hyperplane of the pair ⟨pi,pj⟩ has
// vertices strictly on both sides, so either answer shrinks R.
func cutsVertices(pi, pj []float64, verts [][]float64) bool {
	const tol = 1e-9
	w := vec.Sub(nil, pi, pj)
	pos, neg := false, false
	for _, v := range verts {
		s := vec.Dot(w, v)
		if s > tol {
			pos = true
		} else if s < -tol {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

func feats(actions []action) [][]float64 {
	fs := make([][]float64, len(actions))
	for i, a := range actions {
		fs[i] = a.Feat
	}
	return fs
}

// Run implements core.Algorithm (Algorithm 2: inference). The dataset must
// be the one the agent was trained on.
//
// Serving is fault-tolerant: a panic or error inside the per-round geometry
// (degenerate polytope, exhausted vertex budget, injected fault) and a
// utility range emptied by contradictory answers both end the session with a
// best-effort Degraded result — scored against the last non-empty range —
// instead of an error or a dead process. Only a dataset mismatch, which is a
// caller bug, still fails outright.
func (e *EA) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	return e.RunContext(context.Background(), ds, user, eps, obs)
}

// RunContext implements core.ContextAlgorithm: Run with per-round tracing.
// When ctx carries an active trace every interactive round is recorded as a
// "session.round" span — candidate count and degradation flags attached —
// with the geometry, scoring and oracle wait as children. With a plain
// context it is exactly Run.
func (e *EA) RunContext(ctx context.Context, ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	if ds != e.ds && (ds.Len() != e.ds.Len() || ds.Dim() != e.ds.Dim()) {
		return core.Result{}, core.ErrDatasetMismatch
	}
	savedEps := e.eps
	e.eps = eps
	defer func() { e.eps = savedEps }()

	poly := geom.NewPolytope(e.ds.Dim())
	geo := e.newGeo(poly)
	var lastCenter []float64
	var qas []core.QA
	rounds, recovered := 0, 0
	degrade := func(reason string) (core.Result, error) {
		res := core.BestEffortResult(e.ds, lastCenter, rounds, qas, reason)
		res.PanicsRecovered = recovered
		return res, nil
	}
	fail := func(err error) (core.Result, error) {
		var pe *core.PanicError
		if errors.As(err, &pe) {
			recovered++
		}
		return degrade(err.Error())
	}
	cur, err := e.safeRound(ctx, poly, geo, eps)
	if err != nil {
		return fail(err)
	}
	for !cur.terminal && rounds < e.cfg.MaxRounds {
		if len(cur.verts) > 0 {
			lastCenter = vertexCentroid(cur.verts)
		}
		if len(cur.actions) == 0 {
			break
		}
		rctx, rsp := trace.Start(ctx, "session.round")
		if rsp != nil {
			rsp.SetInt("round", int64(rounds+1))
			rsp.SetInt("candidates", int64(len(cur.actions)))
		}
		ai := e.agent.BestCtx(rctx, cur.state, feats(cur.actions))
		act := cur.actions[ai]
		pi, pj := e.ds.Points[act.I], e.ds.Points[act.J]
		osp := trace.StartLeaf(rctx, "oracle.wait")
		prefI := user.Prefer(pi, pj)
		osp.End()
		if prefI {
			applyCut(rctx, poly, geo, geom.NewHalfspace(pi, pj))
		} else {
			applyCut(rctx, poly, geo, geom.NewHalfspace(pj, pi))
		}
		rounds++
		qas = append(qas, core.QA{I: act.I, J: act.J, PreferredI: prefI})
		if obs != nil {
			obs.Round(rounds, poly.Halfspaces)
		}
		cur, err = e.safeRound(rctx, poly, geo, eps)
		if rsp != nil {
			rsp.SetBool("error", err != nil)
			rsp.End()
		}
		if err != nil {
			return fail(err)
		}
	}
	if cur.degraded {
		return degrade(cur.reason)
	}
	if !cur.terminal && rounds >= e.cfg.MaxRounds {
		return degrade("round cap reached without ε-certificate")
	}
	idx := cur.stopIdx
	if idx < 0 {
		idx = e.fallbackPoint(poly)
	}
	return core.Result{
		PointIndex:      idx,
		Point:           e.ds.Points[idx],
		Rounds:          rounds,
		Trace:           qas,
		PanicsRecovered: recovered,
	}, nil
}
