package ea

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
)

func testData(t *testing.T, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(seed)), n, d).Skyline()
	if ds.Len() < 5 {
		t.Fatalf("test dataset too small: %d", ds.Len())
	}
	return ds
}

func smallCfg() Config {
	return Config{
		Me: 3, Mh: 4, NumSamples: 24, MaxRounds: 60,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Me != 5 || c.Mh != 5 || c.DEps != 0.1 || c.NumSamples != 64 || c.MaxRounds != 200 {
		t.Errorf("defaults = %+v", c)
	}
	if c.RL.Hidden != 64 {
		t.Error("RL defaults must be filled")
	}
}

// The exactness guarantee: EA returns a point with regret ratio ≤ ε w.r.t.
// the user's hidden vector even when the agent is untrained (certificates do
// the work; RL only shortens the path).
func TestUntrainedEAIsExact(t *testing.T) {
	ds := testData(t, 300, 3, 1)
	rng := rand.New(rand.NewSource(2))
	e := New(ds, 0.1, smallCfg(), rng)
	for trial := 0; trial < 8; trial++ {
		u := geom.SampleSimplex(rng, 3)
		res, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
			t.Errorf("trial %d: regret %v > eps (rounds=%d)", trial, rr, res.Rounds)
		}
		if res.Rounds >= smallCfg().MaxRounds {
			t.Errorf("trial %d: hit round cap", trial)
		}
		if len(res.Trace) != res.Rounds {
			t.Errorf("trace length %d != rounds %d", len(res.Trace), res.Rounds)
		}
	}
}

func TestTrainRunsAndImprovesOrMatches(t *testing.T) {
	ds := testData(t, 300, 3, 3)
	rng := rand.New(rand.NewSource(4))
	e := New(ds, 0.1, smallCfg(), rng)
	users := make([][]float64, 60)
	for i := range users {
		users[i] = geom.SampleSimplex(rng, 3)
	}
	stats, err := e.Train(users)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 60 || stats.TotalSteps <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.AvgRounds <= 0 || stats.AvgRounds >= float64(smallCfg().MaxRounds) {
		t.Errorf("avg rounds = %v", stats.AvgRounds)
	}
	// Trained agent still exact.
	u := geom.SampleSimplex(rng, 3)
	res, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
		t.Errorf("trained regret %v > eps", rr)
	}
}

func TestLargerEpsFewerRounds(t *testing.T) {
	ds := testData(t, 300, 3, 5)
	rng := rand.New(rand.NewSource(6))
	e := New(ds, 0.05, smallCfg(), rng)
	totalTight, totalLoose := 0, 0
	for trial := 0; trial < 6; trial++ {
		u := geom.SampleSimplex(rng, 3)
		rTight, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.02, nil)
		if err != nil {
			t.Fatal(err)
		}
		rLoose, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.3, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalTight += rTight.Rounds
		totalLoose += rLoose.Rounds
	}
	if totalLoose > totalTight {
		t.Errorf("loose eps took more rounds (%d) than tight (%d)", totalLoose, totalTight)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	ds := testData(t, 200, 3, 7)
	rng := rand.New(rand.NewSource(8))
	e := New(ds, 0.1, smallCfg(), rng)
	var calls []int
	obs := core.ObserverFunc(func(r int, hs []geom.Halfspace) {
		calls = append(calls, r)
		if len(hs) == 0 {
			t.Error("observer got empty halfspace set")
		}
	})
	res, err := e.Run(ds, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 3)}, 0.1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.Rounds {
		t.Errorf("observer calls %d != rounds %d", len(calls), res.Rounds)
	}
	for i, r := range calls {
		if r != i+1 {
			t.Errorf("round numbering %v", calls)
			break
		}
	}
}

func TestDatasetMismatch(t *testing.T) {
	ds := testData(t, 200, 3, 9)
	other := testData(t, 300, 4, 10)
	rng := rand.New(rand.NewSource(11))
	e := New(ds, 0.1, smallCfg(), rng)
	if _, err := e.Run(other, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 4)}, 0.1, nil); err != core.ErrDatasetMismatch {
		t.Errorf("err = %v, want ErrDatasetMismatch", err)
	}
}

// Noisy users may collapse the range to empty; EA must terminate gracefully
// and return some dataset point.
func TestNoisyUserTerminates(t *testing.T) {
	ds := testData(t, 200, 3, 12)
	rng := rand.New(rand.NewSource(13))
	e := New(ds, 0.1, smallCfg(), rng)
	u := geom.SampleSimplex(rng, 3)
	res, err := e.Run(ds, core.NoisyUser{Utility: u, FlipProb: 0.3, Rng: rng}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
		t.Errorf("point index %d out of range", res.PointIndex)
	}
}

func TestRoundsBoundedByTheoremOne(t *testing.T) {
	// Theorem 1: O(n) rounds. With a tiny dataset the bound is tight enough
	// to assert: rounds ≤ number of points.
	ds := testData(t, 60, 3, 14)
	rng := rand.New(rand.NewSource(15))
	e := New(ds, 0.05, smallCfg(), rng)
	for trial := 0; trial < 5; trial++ {
		u := geom.SampleSimplex(rng, 3)
		res, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.05, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > ds.Len() {
			t.Errorf("rounds %d exceed n=%d", res.Rounds, ds.Len())
		}
	}
}

func TestStateEncodingShape(t *testing.T) {
	ds := testData(t, 200, 3, 20)
	rng := rand.New(rand.NewSource(21))
	cfg := smallCfg()
	e := New(ds, 0.1, cfg, rng)
	// The agent's declared state dimension must match the encoder output:
	// mₑ·d + d + 1.
	wantDim := e.cfg.Me*3 + 3 + 1
	if e.agent.StateDim != wantDim {
		t.Fatalf("state dim %d want %d", e.agent.StateDim, wantDim)
	}
	verts := geom.SimplexVertices(3)
	ball := geom.EnclosingBall(verts, geom.EnclosingBallOptions{})
	s := e.encodeState(verts, ball)
	if len(s) != wantDim {
		t.Fatalf("encoded length %d want %d", len(s), wantDim)
	}
	// Sphere tail: center then radius.
	if s[len(s)-1] != ball.Radius {
		t.Errorf("radius slot = %v want %v", s[len(s)-1], ball.Radius)
	}
	// Ablations zero their parts.
	e.cfg.NoSphereState = true
	s2 := e.encodeState(verts, ball)
	if s2[len(s2)-1] != 0 {
		t.Error("NoSphereState must zero the sphere part")
	}
	e.cfg.NoSphereState = false
	e.cfg.NoExtremeState = true
	s3 := e.encodeState(verts, ball)
	for i := 0; i < e.cfg.Me*3; i++ {
		if s3[i] != 0 {
			t.Error("NoExtremeState must zero the vertex part")
			break
		}
	}
}

// Resilient mode keeps interacting through contradictory answers and should
// end with lower regret than hard-stopping on an empty range.
func TestResilientModeUnderNoise(t *testing.T) {
	ds := testData(t, 300, 3, 22)
	cfg := smallCfg()
	cfg.Resilient = true
	var plainRegret, resilientRegret float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		u := geom.SampleSimplex(rand.New(rand.NewSource(int64(100+trial))), 3)
		plain := New(ds, 0.1, smallCfg(), rand.New(rand.NewSource(7)))
		res, err := plain.Run(ds, core.NoisyUser{Utility: u, FlipProb: 0.25, Rng: rand.New(rand.NewSource(int64(trial)))}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		plainRegret += ds.RegretRatio(res.Point, u)
		resilient := New(ds, 0.1, cfg, rand.New(rand.NewSource(7)))
		res, err = resilient.Run(ds, core.NoisyUser{Utility: u, FlipProb: 0.25, Rng: rand.New(rand.NewSource(int64(trial)))}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		resilientRegret += ds.RegretRatio(res.Point, u)
	}
	t.Logf("plain regret %.4f, resilient regret %.4f (avg over %d)", plainRegret/trials, resilientRegret/trials, trials)
	if resilientRegret > plainRegret*1.5+0.05*trials {
		t.Errorf("resilient mode much worse than plain: %v vs %v", resilientRegret, plainRegret)
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		f    func()
	}{
		{"empty dataset", func() { New(&dataset.Dataset{}, 0.1, Config{}, rng) }},
		{"eps zero", func() { New(testDataRaw(), 0, Config{}, rng) }},
		{"eps one", func() { New(testDataRaw(), 1, Config{}, rng) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func testDataRaw() *dataset.Dataset {
	return &dataset.Dataset{Points: [][]float64{{0.5, 0.5}, {0.9, 0.1}}}
}
