package ea

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/par"
)

// A seeded EA session must produce the identical Result — same point, same
// rounds, same question trace — whether the pool runs 1 worker or many:
// every parallel path (vertex enumeration, chained sampling, candidate
// scoring) merges in a fixed order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) core.Result {
		defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
		ds := testData(t, 200, 3, 41)
		e := New(ds, 0.1, smallCfg(), rand.New(rand.NewSource(42)))
		res, err := e.Run(ds, core.SimulatedUser{Utility: []float64{0.55, 0.3, 0.15}}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	many := run(8)
	if one.PointIndex != many.PointIndex || one.Rounds != many.Rounds {
		t.Fatalf("workers=1 got point %d in %d rounds; workers=8 got point %d in %d rounds",
			one.PointIndex, one.Rounds, many.PointIndex, many.Rounds)
	}
	if len(one.Trace) != len(many.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(one.Trace), len(many.Trace))
	}
	for i := range one.Trace {
		if one.Trace[i] != many.Trace[i] {
			t.Fatalf("trace entry %d differs: %+v vs %+v", i, one.Trace[i], many.Trace[i])
		}
	}
}
