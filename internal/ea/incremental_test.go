package ea

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/fault"
	"isrl/internal/geom"
)

// runSeeded executes one seeded EA session and returns its result. Each call
// builds a fresh EA so the RNG stream starts from the same state.
func runSeeded(t *testing.T, scratch bool, dataSeed, rngSeed int64, u []float64) core.Result {
	t.Helper()
	ds := testData(t, 250, len(u), dataSeed)
	cfg := smallCfg()
	cfg.ScratchGeometry = scratch
	e := New(ds, 0.1, cfg, rand.New(rand.NewSource(rngSeed)))
	res, err := e.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(t *testing.T, label string, a, b core.Result) {
	t.Helper()
	if a.PointIndex != b.PointIndex || a.Rounds != b.Rounds || a.Degraded != b.Degraded {
		t.Fatalf("%s: results diverge: point %d/%d rounds %d/%d degraded %v/%v",
			label, a.PointIndex, b.PointIndex, a.Rounds, b.Rounds, a.Degraded, b.Degraded)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace entry %d differs: %+v vs %+v", label, i, a.Trace[i], b.Trace[i])
		}
	}
}

// The incremental engine's contract for EA is bit-identity, not mere
// closeness: vertex maintenance reproduces the scratch enumeration float for
// float and the sampling path is untouched, so a seeded session must ask the
// exact same questions and return the exact same tuple with the engine on or
// off.
func TestEngineBitIdenticalToScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		d := 3 + trial%2
		u := geom.SampleSimplex(rng, d)
		inc := runSeeded(t, false, 100+int64(trial), 200+int64(trial), u)
		scr := runSeeded(t, true, 100+int64(trial), 200+int64(trial), u)
		sameResult(t, "engine vs scratch", inc, scr)
	}
}

// Forcing every halfspace clip to fail must leave the session bit-identical
// to the scratch run: the engine falls back to full re-enumeration, which is
// the same code the scratch path runs.
func TestChaosIncClipFaultFallsBackBitIdentical(t *testing.T) {
	u := []float64{0.5, 0.2, 0.2, 0.1}
	scr := runSeeded(t, true, 300, 301, u)

	plan := fault.NewPlan(17).Set(fault.PointIncClip, fault.Spec{ErrProb: 1})
	fault.Install(plan)
	defer fault.Install(nil)
	inc := runSeeded(t, false, 300, 301, u)
	if plan.Injections(fault.PointIncClip) == 0 {
		t.Fatal("clip fault was never exercised")
	}
	sameResult(t, "clip-fault engine vs scratch", inc, scr)
}

// Crash-recovery with the engine enabled: journal a prefix of answers, kill
// the session, replay the prefix into a fresh engine-backed EA, and finish
// live. The recovered run must land on the same tuple with the same trace as
// the uninterrupted one — the engine holds no state the replay cannot
// reconstruct.
func TestEAReplayRecoverIncremental(t *testing.T) {
	ds := testData(t, 250, 3, 400)
	u := []float64{0.25, 0.45, 0.3}
	user := core.SimulatedUser{Utility: u}
	newEA := func() *EA {
		return New(ds, 0.1, smallCfg(), rand.New(rand.NewSource(401)))
	}
	drive := func(s *core.Session, stopAfter int) ([]bool, core.Result, bool) {
		var answers []bool
		for {
			pi, pj, done := s.Next()
			if done {
				res, err := s.Result()
				if err != nil {
					t.Fatal(err)
				}
				return answers, res, true
			}
			if stopAfter >= 0 && len(answers) >= stopAfter {
				s.Close()
				return answers, core.Result{}, false
			}
			ans := user.Prefer(pi, pj)
			answers = append(answers, ans)
			if err := s.Answer(ans); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: uninterrupted run.
	_, want, finished := drive(core.NewSession(newEA(), ds, 0.1), -1)
	if !finished {
		t.Fatal("reference session did not finish")
	}
	if want.Rounds < 4 {
		t.Skipf("session too short (%d rounds) to crash mid-way", want.Rounds)
	}

	// Crash after 3 answers, then recover by replaying the journal.
	prefix, _, finished := drive(core.NewSession(newEA(), ds, 0.1), 3)
	if finished {
		t.Fatal("session finished before the simulated crash")
	}
	_, got, finished := drive(core.NewReplaySession(newEA(), ds, 0.1, prefix), -1)
	if !finished {
		t.Fatal("recovered session did not finish")
	}
	sameResult(t, "recovered vs uninterrupted", got, want)
}
