package obs

import (
	"runtime"
	"sort"
)

// CollectRuntime refreshes the runtime.* gauges in r from the Go runtime:
// goroutine count, heap and GC accounting, and GC pause quantiles computed
// over the runtime's ring of recent pauses (up to the last 256 GCs). It is
// designed to be called on each /metrics scrape — ReadMemStats briefly
// stops the world, which is the standard, accepted cost of a scrape, not
// of the request path.
func CollectRuntime(r *Registry) {
	r.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("runtime.heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("runtime.stack_sys_bytes").Set(int64(ms.StackSys))
	r.Gauge("runtime.next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("runtime.gc_runs").Set(int64(ms.NumGC))
	r.FloatGauge("runtime.gc_cpu_fraction").Set(ms.GCCPUFraction)
	r.FloatGauge("runtime.gc_pause_total_ms").Set(float64(ms.PauseTotalNs) / 1e6)

	// PauseNs is a ring of the most recent pauses; order is irrelevant for
	// quantiles, so sort whatever portion is populated.
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n == 0 {
		return
	}
	pauses := make([]float64, n)
	for i := 0; i < n; i++ {
		pauses[i] = float64(ms.PauseNs[i]) / 1e6
	}
	sort.Float64s(pauses)
	q := func(p float64) float64 {
		idx := int(p*float64(n-1) + 0.5)
		return pauses[idx]
	}
	r.FloatGauge("runtime.gc_pause_ms.p50").Set(q(0.50))
	r.FloatGauge("runtime.gc_pause_ms.p99").Set(q(0.99))
	r.FloatGauge("runtime.gc_pause_ms.max").Set(pauses[n-1])
}
