package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a concurrency-safe named collection of metrics. Accessors are
// get-or-create: the first call with a name creates the instrument, later
// calls return the same one. Mixing kinds under one name panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any
	helps   map[string]string // optional HELP strings for WriteProm
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that library instrumentation
// (geom LP counters, core measurement timers, published DQN training stats)
// registers into and that servers export at /metrics.
func Default() *Registry { return defaultRegistry }

// lookup returns the metric under name, a cached read first.
func (r *Registry) lookup(name string) (any, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	return m, ok
}

// register stores the metric built by mk under name unless another
// goroutine won the race, in which case the winner is returned.
func (r *Registry) register(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	m, ok := r.lookup(name)
	if !ok {
		m = r.register(name, func() any { return &Counter{} })
	}
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Counter", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m, ok := r.lookup(name)
	if !ok {
		m = r.register(name, func() any { return &Gauge{} })
	}
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Gauge", name, m))
	}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it if
// needed.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	m, ok := r.lookup(name)
	if !ok {
		m = r.register(name, func() any { return &FloatGauge{} })
	}
	g, ok := m.(*FloatGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not FloatGauge", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if needed. Later calls ignore bounds and return
// the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m, ok := r.lookup(name)
	if !ok {
		m = r.register(name, func() any { return NewHistogram(bounds) })
	}
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Histogram", name, m))
	}
	return h
}

// Snapshot returns a JSON-ready view of every registered metric: counters
// and gauges as integers, float gauges as floats, histograms as
// HistogramSnapshot values.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	metrics := make([]any, 0, len(r.metrics))
	for name, m := range r.metrics {
		names = append(names, name)
		metrics = append(metrics, m)
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *FloatGauge:
			out[name] = m.Value()
		case *Histogram:
			out[name] = m.Snapshot()
		}
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot as sorted expvar-style "name value" lines.
// Histograms expand into .count/.sum/.mean/.p50/.p95/.p99 lines.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	lines := make([]string, 0, len(snap))
	for name, v := range snap {
		switch v := v.(type) {
		case int64:
			lines = append(lines, fmt.Sprintf("%s %d", name, v))
		case float64:
			lines = append(lines, fmt.Sprintf("%s %g", name, v))
		case HistogramSnapshot:
			lines = append(lines,
				fmt.Sprintf("%s.count %d", name, v.Count),
				fmt.Sprintf("%s.sum %g", name, v.Sum),
				fmt.Sprintf("%s.mean %g", name, v.Mean),
				fmt.Sprintf("%s.p50 %g", name, v.P50),
				fmt.Sprintf("%s.p95 %g", name, v.P95),
				fmt.Sprintf("%s.p99 %g", name, v.P99),
			)
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
