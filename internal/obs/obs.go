// Package obs is a dependency-free observability toolkit: atomic counters,
// gauges, fixed-bucket histograms with quantile estimates, and a
// concurrency-safe named registry with JSON and expvar-style text export.
//
// It exists so the hot paths of the interactive-search stack (HTTP serving,
// DQN training, LP solving, polytope sampling) can be instrumented without
// pulling in any external metrics dependency: everything here is stdlib
// only, and a metric update is one or two atomic operations.
//
// The package-level Default registry is the process-wide sink; libraries
// register their instruments there at init time and servers export it at
// GET /metrics. Isolated registries (NewRegistry) serve tests and embedders
// that want separate namespaces.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative n is ignored: counters only go
// up (use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic integer gauge: a value that can move both ways, such
// as an in-flight request count. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 gauge, for quantities like a loss EMA or
// an exploration rate. The zero value is ready to use and reads as 0.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicAddFloat accumulates delta into the float64 stored in bits via a
// CAS loop.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// atomicMinFloat lowers the float64 stored in bits to v if v is smaller.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the float64 stored in bits to v if v is larger.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
