package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SetHelp attaches a HELP string to a metric name, emitted by WriteProm.
// Metrics without one get a generated line naming the kind. Safe to call
// before or after the metric is registered.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	if r.helps == nil {
		r.helps = make(map[string]string)
	}
	r.helps[name] = help
	r.mu.Unlock()
}

// promName maps the registry's dotted lowercase names onto the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* by replacing dots with underscores. The
// hygiene test in hygiene_test.go pins every registered name to
// ^[a-z0-9_.]+$, so this replacement is the whole sanitization.
func promName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// promLe renders a histogram bucket bound the way Prometheus expects.
func promLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// promHelp escapes a HELP string (backslash and newline, per the text
// exposition format).
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteProm writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines per family,
// counters and gauges as single samples, histograms as cumulative
// _bucket{le="..."} series closed by +Inf plus _sum and _count. Names are
// sanitized with promName; output is sorted by name so scrapes diff
// cleanly.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	metrics := make(map[string]any, len(r.metrics))
	helps := make(map[string]string, len(r.helps))
	for name, m := range r.metrics {
		names = append(names, name)
		metrics[name] = m
	}
	for name, h := range r.helps {
		helps[name] = h
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		pn := promName(name)
		help, kind := helps[name], ""
		switch m := metrics[name].(type) {
		case *Counter:
			kind = "counter"
			writePromHeader(&b, pn, name, kind, help)
			fmt.Fprintf(&b, "%s %d\n", pn, m.Value())
		case *Gauge:
			kind = "gauge"
			writePromHeader(&b, pn, name, kind, help)
			fmt.Fprintf(&b, "%s %d\n", pn, m.Value())
		case *FloatGauge:
			kind = "gauge"
			writePromHeader(&b, pn, name, kind, help)
			fmt.Fprintf(&b, "%s %s\n", pn, strconv.FormatFloat(m.Value(), 'g', -1, 64))
		case *Histogram:
			kind = "histogram"
			writePromHeader(&b, pn, name, kind, help)
			s := m.Snapshot()
			// The snapshot's per-bucket counts become the cumulative series
			// Prometheus requires; the bound semantics already match (an
			// observation lands in the first bucket with v ≤ bound).
			var cum int64
			for i, bound := range s.bounds {
				cum += s.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promLe(bound), cum)
			}
			cum += s.counts[len(s.counts)-1]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", pn, strconv.FormatFloat(s.Sum, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", pn, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHeader(b *strings.Builder, pn, name, kind, help string) {
	if help == "" {
		help = kind + " " + name
	}
	fmt.Fprintf(b, "# HELP %s %s\n", pn, promHelp(help))
	fmt.Fprintf(b, "# TYPE %s %s\n", pn, kind)
}
