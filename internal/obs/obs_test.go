package obs

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	var f FloatGauge
	if f.Value() != 0 {
		t.Errorf("zero FloatGauge = %v, want 0", f.Value())
	}
	f.Set(0.25)
	if f.Value() != 0.25 {
		t.Errorf("float gauge = %v, want 0.25", f.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10,20,...,100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := 5050.0; h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.Min, s.Max)
	}
	// With 10 observations per bucket the interpolated quantiles should be
	// within one bucket width of the exact order statistics.
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Errorf("q%v = %v, want within 10 of %v", tc.q, got, tc.want)
		}
	}
	if s.P50 != s.Quantile(0.5) {
		t.Errorf("P50 %v != Quantile(0.5) %v", s.P50, s.Quantile(0.5))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	// Everything is in the overflow bucket; quantiles are capped at max.
	if got := s.Quantile(0.99); got > 200 || got < 100 {
		t.Errorf("overflow q99 = %v, want in [100,200]", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering gauge over counter")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("active").Set(2)
	r.FloatGauge("loss").Set(0.5)
	r.Histogram("lat", LatencyBuckets()).Observe(1.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, k := range []string{"reqs", "active", "loss", "lat"} {
		if _, ok := decoded[k]; !ok {
			t.Errorf("JSON export missing %q", k)
		}
	}
	hist, ok := decoded["lat"].(map[string]any)
	if !ok {
		t.Fatalf("lat is %T, want object", decoded["lat"])
	}
	for _, k := range []string{"count", "p50", "p95", "p99"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram export missing %q", k)
		}
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Histogram("h", []float64{1, 2}).Observe(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines: %q", sb.String())
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("lines not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Errorf("first line %q, want counter a", lines[0])
	}
}

// TestRegistryConcurrent hammers one registry from 32 goroutines mixing
// get-or-create, updates and exports; run with -race it doubles as the
// concurrency-hygiene gate for the whole package.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 32
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Set(int64(i))
				r.FloatGauge("shared.float").Set(float64(i))
				r.Histogram("shared.hist", LinearBuckets(100, 100, 10)).Observe(float64(i))
				if i%100 == g%100 {
					_ = r.Snapshot()
					_ = r.WriteJSON(io.Discard)
					_ = r.WriteText(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	s := r.Histogram("shared.hist", nil).Snapshot()
	if s.Min != 0 || s.Max != iters-1 {
		t.Errorf("hist min/max = %v/%v, want 0/%d", s.Min, s.Max, iters-1)
	}
}
