package obs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricNameHygiene audits every metric registration in the repo's
// non-test sources: each name literal must match ^[a-z0-9_.]+$ (so promName's
// dot→underscore rewrite is the entire Prometheus sanitization) and no name
// may be registered under two different kinds (which panics at runtime, but
// only on the first request that reaches both call sites).
func TestMetricNameHygiene(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	callRe := regexp.MustCompile(`\.(Counter|Gauge|FloatGauge|Histogram)\(\s*([^)\n]*)`)
	litRe := regexp.MustCompile(`^"([^"]*)"`)
	sprintfRe := regexp.MustCompile(`^fmt\.Sprintf\(\s*"([^"]*)"`)
	verbRe := regexp.MustCompile(`%[-+ #0]*[0-9.*]*[a-zA-Z]`)
	nameRe := regexp.MustCompile(`^[a-z0-9_.]+$`)

	kinds := make(map[string]map[string]bool)  // name -> set of kinds
	origin := make(map[string]map[string]bool) // name -> call sites (for messages)
	files := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files++
		for _, m := range callRe.FindAllStringSubmatch(string(src), -1) {
			kind, arg := m[1], strings.TrimSpace(m[2])
			var name string
			switch {
			case litRe.MatchString(arg):
				lit := litRe.FindStringSubmatch(arg)[1]
				rest := strings.TrimSpace(arg[len(lit)+2:])
				name = lit
				if strings.HasPrefix(rest, "+") {
					// "prefix." + route: the dynamic part is a lowercase
					// route identifier; stand in a placeholder segment.
					name = lit + "x"
				}
			case sprintfRe.MatchString(arg):
				// fmt.Sprintf("http.responses.%s.%dxx", ...): normalize
				// every verb to a literal placeholder before validating.
				name = verbRe.ReplaceAllString(sprintfRe.FindStringSubmatch(arg)[1], "x")
			default:
				// Non-literal name (variable, field): nothing to audit
				// statically; the literal at its definition site is covered.
				continue
			}
			if !nameRe.MatchString(name) {
				t.Errorf("%s: metric name %q violates ^[a-z0-9_.]+$", path, name)
			}
			if kinds[name] == nil {
				kinds[name] = make(map[string]bool)
				origin[name] = make(map[string]bool)
			}
			kinds[name][kind] = true
			origin[name][fmt.Sprintf("%s (%s)", strings.TrimPrefix(path, root+"/"), kind)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files < 10 || len(kinds) < 30 {
		t.Fatalf("audit scanned %d files and found %d metric names; the source scan looks broken", files, len(kinds))
	}
	// The resilience layers must stay instrumented: the client SDK, the
	// netfault proxy and the replication link each register at least one
	// metric the scan can see, the incremental geometry engine and warm
	// LP solver keep their fallback/hit-rate counters observable, and the
	// journal scrubber keeps its corruption/repair audit trail.
	for _, prefix := range []string{"client.", "netfault.", "geom.inc.", "lp.warm.", "repl.", "wal.scrub."} {
		found := false
		for name := range kinds {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q-prefixed metric registrations found; the resilience instrumentation went missing", prefix)
		}
	}
	for name, ks := range kinds {
		if len(ks) > 1 {
			sites := make([]string, 0, len(origin[name]))
			for s := range origin[name] {
				sites = append(sites, s)
			}
			sort.Strings(sites)
			t.Errorf("metric %q registered under multiple kinds: %s", name, strings.Join(sites, ", "))
		}
	}
}
