package obs

import (
	"math"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// promLineRe pins the Prometheus text exposition grammar this package
// emits: comment lines or `name{labels}? value` samples.
var promLineRe = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE+.\-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="\+Inf"\})? [0-9eE+.\-]+)$`)

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.requests.total").Add(3)
	r.Gauge("sessions.active").Set(2)
	r.FloatGauge("runtime.gc_cpu_fraction").Set(0.25)
	r.SetHelp("http.requests.total", "Total HTTP requests.")
	h := r.Histogram("lp.solve_ms", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Errorf("line %d violates the exposition format: %q", i+1, line)
		}
	}

	for _, want := range []string{
		"# HELP http_requests_total Total HTTP requests.",
		"# TYPE http_requests_total counter",
		"http_requests_total 3",
		"# TYPE sessions_active gauge",
		"sessions_active 2",
		"# TYPE runtime_gc_cpu_fraction gauge",
		"runtime_gc_cpu_fraction 0.25",
		"# TYPE lp_solve_ms histogram",
		`lp_solve_ms_bucket{le="0.1"} 1`,
		`lp_solve_ms_bucket{le="1"} 3`,
		`lp_solve_ms_bucket{le="10"} 4`,
		`lp_solve_ms_bucket{le="+Inf"} 5`,
		"lp_solve_ms_sum 56.05",
		"lp_solve_ms_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing line %q\nfull output:\n%s", want, out)
		}
	}

	// Bucket counts must be cumulative and the +Inf bucket must equal _count.
	if strings.Count(out, "_bucket{") != 4 {
		t.Fatalf("want exactly 4 bucket lines, got:\n%s", out)
	}
}

func TestWritePromSortedAndSanitized(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last")
	r.Counter("a.first")
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		name := strings.Fields(line)[0]
		if strings.HasPrefix(line, "# ") {
			name = strings.Fields(line)[2]
		}
		if strings.Contains(name, ".") {
			t.Fatalf("metric name %q not sanitized:\n%s", name, out)
		}
	}
	if strings.Index(out, "a_first") > strings.Index(out, "z_last") {
		t.Fatalf("families must be sorted by name:\n%s", out)
	}
}

func TestMicroAndLatencyBuckets(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"LatencyBuckets": LatencyBuckets(),
		"MicroBuckets":   MicroBuckets(),
	} {
		if len(bounds) == 0 {
			t.Fatalf("%s is empty", name)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s not strictly ascending at %d: %v", name, i, bounds)
			}
		}
	}
	if f := MicroBuckets()[0]; f != 0.001 {
		t.Fatalf("MicroBuckets floor = %gms, want 0.001 (1µs)", f)
	}
	if f := LatencyBuckets()[0]; f != 0.01 {
		t.Fatalf("LatencyBuckets floor = %gms, want 0.01 (10µs)", f)
	}
	if top := MicroBuckets()[len(MicroBuckets())-1]; top < 1000 {
		t.Fatalf("MicroBuckets top bound = %gms, want ≥1s so slow outliers stay bucketed", top)
	}
}

func TestCollectRuntime(t *testing.T) {
	r := NewRegistry()
	CollectRuntime(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime.goroutines", "runtime.heap_alloc_bytes", "runtime.heap_sys_bytes",
		"runtime.heap_objects", "runtime.stack_sys_bytes", "runtime.next_gc_bytes",
		"runtime.gc_runs",
	} {
		v, ok := snap[name].(int64)
		if !ok {
			t.Fatalf("%s missing from snapshot (%T)", name, snap[name])
		}
		if name != "runtime.gc_runs" && v <= 0 {
			t.Fatalf("%s = %d, want positive", name, v)
		}
	}
	if f, ok := snap["runtime.gc_cpu_fraction"].(float64); !ok || math.IsNaN(f) {
		t.Fatalf("runtime.gc_cpu_fraction = %v", snap["runtime.gc_cpu_fraction"])
	}
	// Pause quantiles appear only after at least one GC; force one and
	// re-collect so the branch is exercised deterministically.
	runtime.GC()
	CollectRuntime(r)
	snap = r.Snapshot()
	for _, name := range []string{"runtime.gc_pause_ms.p50", "runtime.gc_pause_ms.p99", "runtime.gc_pause_ms.max"} {
		if _, ok := snap[name].(float64); !ok {
			t.Fatalf("%s missing after forced GC (%T)", name, snap[name])
		}
	}
}
