package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram accumulates observations into fixed buckets and estimates
// quantiles by linear interpolation within the containing bucket. All
// updates are lock-free atomics; snapshots taken under concurrent writes
// are approximate (buckets are read one by one), which is the usual and
// acceptable trade-off for monitoring data.
//
// Buckets are defined by ascending upper bounds; an observation v lands in
// the first bucket with v ≤ bound, or in the implicit overflow bucket past
// the last bound. Observations are assumed non-negative (latencies, sizes,
// round counts); the first bucket's lower edge is 0.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow

	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on an empty or unsorted bound slice.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default bound set for millisecond latencies:
// 0.01ms (10µs) up to ~21s in ×2 steps. The sub-millisecond floor matters
// because the traced hot paths (LP solves, geometry probes) routinely run
// in tens of microseconds — the former 0.05ms floor flattened them into
// one bucket.
func LatencyBuckets() []float64 { return ExpBuckets(0.01, 2, 22) }

// MicroBuckets is the bound set for microsecond-scale observations still
// recorded in milliseconds: 1µs up to ~1s in ×2 steps, with the implicit
// overflow bucket catching anything slower. Use it for kernel-level
// histograms (single LP solve, one sampling pass) where LatencyBuckets'
// floor is still too coarse.
func MicroBuckets() []float64 { return ExpBuckets(0.001, 2, 21) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by interpolating inside
// the containing bucket. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Bucket is one exported histogram bucket: the count of observations with
// value ≤ Le (upper bound of this bucket, exclusive of earlier buckets).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time JSON-ready view of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`

	bounds []float64
	counts []int64
}

// Snapshot captures the histogram's current state with precomputed
// p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.Sum(),
		bounds: h.bounds,
		counts: make([]int64, len(h.counts)),
	}
	var inBuckets int64
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		inBuckets += s.counts[i]
	}
	// Concurrent Observe may have bumped count before its bucket (or vice
	// versa); quantiles rank against what the buckets actually hold.
	s.Count = inBuckets
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.Buckets = make([]Bucket, 0, len(h.bounds))
	for i, b := range h.bounds {
		if s.counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: b, Count: s.counts[i]})
		}
	}
	if over := s.counts[len(s.counts)-1]; over > 0 {
		s.Buckets = append(s.Buckets, Bucket{Le: math.Inf(1), Count: over})
	}
	s.P50 = s.Quantile(0.5)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile from the snapshot's buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower := 0.0
			if i > 0 {
				lower = s.bounds[i-1]
			}
			upper := s.Max
			if i < len(s.bounds) && s.bounds[i] < upper {
				upper = s.bounds[i]
			}
			if lower < s.Min {
				lower = s.Min
			}
			if upper < lower {
				upper = lower
			}
			frac := (target - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
	}
	return s.Max
}
