package nn

import (
	"math/rand"
	"testing"
)

// The paper's network shape: (state ⊕ action) → 64 SELU → 1.
func paperNet(in int) *Network {
	return NewMLP([]int{in, 64, 1}, SELU, rand.New(rand.NewSource(1)))
}

func BenchmarkForwardPaperShape(b *testing.B) {
	net := paperNet(29) // EA at d=4: state 21 ⊕ action 8
	x := make([]float64, 29)
	for i := range x {
		x[i] = 0.1 * float64(i%7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward1(x)
	}
}

func BenchmarkTrainStepPaperShape(b *testing.B) {
	net := paperNet(29)
	opt := NewSGD(0.003, 0)
	x := make([]float64, 29)
	for i := range x {
		x[i] = 0.05 * float64(i%11)
	}
	target := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		_, grad := MSE(net.Forward(x), target, nil)
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func BenchmarkAdamStep(b *testing.B) {
	net := paperNet(61) // AA at d=20
	opt := NewAdam(0.001)
	x := make([]float64, 61)
	target := []float64{0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		_, grad := Huber(net.Forward(x), target, nil, 1)
		net.Backward(grad)
		opt.Step(net.Params())
	}
}
