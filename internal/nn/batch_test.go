package nn

import (
	"math/rand"
	"testing"

	"isrl/internal/vec"
)

func randBatch(rng *rand.Rand, n, dim int) *vec.Mat {
	x := vec.NewMat(n, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// ForwardBatch must be bit-identical to per-row Forward: batched scoring in
// the DQN is only valid as an optimization if the scores cannot drift.
func TestForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []Activation{SELU, ReLU, Tanh} {
		net := NewMLP([]int{13, 32, 32, 4}, act, rng)
		x := randBatch(rng, 9, 13)
		got := net.ForwardBatch(x).Clone()
		for r := 0; r < x.Rows; r++ {
			want := net.Forward(x.Row(r))
			for j, wj := range want {
				if got.At(r, j) != wj {
					t.Fatalf("%v: ForwardBatch[%d,%d] = %v, Forward = %v", act, r, j, got.At(r, j), wj)
				}
			}
		}
	}
}

// BackwardBatch must accumulate the same parameter gradients as running the
// serial Backward once per row, in row order.
func TestBackwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	batch := NewMLP([]int{7, 16, 2}, SELU, rng)
	serial := batch.Clone()
	x := randBatch(rng, 5, 7)
	g := randBatch(rng, 5, 2)

	batch.ZeroGrad()
	batch.ForwardBatch(x)
	batch.BackwardBatch(g)

	serial.ZeroGrad()
	for r := 0; r < x.Rows; r++ {
		serial.Forward(x.Row(r))
		serial.Backward(g.Row(r))
	}

	bp, sp := batch.Params(), serial.Params()
	for i := range bp {
		for j := range bp[i].Grad {
			if bp[i].Grad[j] != sp[i].Grad[j] {
				t.Fatalf("param %d grad[%d]: batch %v, serial %v", i, j, bp[i].Grad[j], sp[i].Grad[j])
			}
		}
	}
}

// A cloned network must not share batch scratch with its source.
func TestCloneBatchIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMLP([]int{4, 8, 1}, SELU, rng)
	x := randBatch(rng, 3, 4)
	a.ForwardBatch(x)
	b := a.Clone()
	outA := a.ForwardBatch(x).Clone()
	b.ForwardBatch(randBatch(rng, 6, 4))
	outA2 := a.ForwardBatch(x)
	for i := range outA.Data {
		if outA.Data[i] != outA2.Data[i] {
			t.Fatal("clone's batch pass perturbed the source network")
		}
	}
}

func BenchmarkForwardBatch64(b *testing.B) {
	net := NewMLP([]int{29, 64, 1}, SELU, rand.New(rand.NewSource(4)))
	x := randBatch(rand.New(rand.NewSource(5)), 64, 29)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(x)
	}
}

func BenchmarkForward64Serial(b *testing.B) {
	net := NewMLP([]int{29, 64, 1}, SELU, rand.New(rand.NewSource(4)))
	x := randBatch(rand.New(rand.NewSource(5)), 64, 29)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < x.Rows; r++ {
			net.Forward1(x.Row(r))
		}
	}
}

// ForwardBatchShared must be bit-identical to full per-row forwards on the
// concatenated input.
func TestForwardBatchSharedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP([]int{29, 64, 1}, SELU, rng)
	state := make([]float64, 21)
	for i := range state {
		state[i] = rng.NormFloat64()
	}
	acts := randBatch(rng, 7, 8)
	got := net.ForwardBatchShared(state, acts).Clone()
	full := make([]float64, 29)
	copy(full, state)
	for r := 0; r < acts.Rows; r++ {
		copy(full[21:], acts.Row(r))
		want := net.Forward1(full)
		if got.At(r, 0) != want {
			t.Fatalf("ForwardBatchShared[%d] = %v, Forward1 = %v", r, got.At(r, 0), want)
		}
	}
}
