package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(1)))
	copy(d.Weight.W, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(d.Bias.W, []float64{0.5, -0.5})
	out := d.Forward([]float64{1, 1})
	if math.Abs(out[0]-3.5) > 1e-12 || math.Abs(out[1]-6.5) > 1e-12 {
		t.Errorf("out = %v", out)
	}
}

func TestDenseShapePanics(t *testing.T) {
	d := NewDense(2, 1, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad input size")
		}
	}()
	d.Forward([]float64{1, 2, 3})
}

// Numerical gradient check for the whole network: dL/dW from backprop must
// match finite differences.
func TestGradCheck(t *testing.T) {
	for _, act := range []Activation{SELU, ReLU, Tanh} {
		rng := rand.New(rand.NewSource(7))
		net := NewMLP([]int{3, 5, 1}, act, rng)
		x := []float64{0.3, -0.7, 1.1}
		target := []float64{0.42}

		lossAt := func() float64 {
			out := net.Forward(x)
			l, _ := MSE(out, target, nil)
			return l
		}

		net.ZeroGrad()
		out := net.Forward(x)
		_, grad := MSE(out, target, nil)
		net.Backward(grad)

		const h = 1e-6
		for pi, p := range net.Params() {
			for j := range p.W {
				orig := p.W[j]
				p.W[j] = orig + h
				lp := lossAt()
				p.W[j] = orig - h
				lm := lossAt()
				p.W[j] = orig
				num := (lp - lm) / (2 * h)
				ana := p.Grad[j]
				// ReLU kinks can make individual entries disagree exactly at
				// zero; tolerance is loose but catches sign/scale bugs.
				if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
					t.Errorf("act=%v param %d[%d]: analytic %v vs numeric %v", act, pi, j, ana, num)
				}
			}
		}
	}
}

func TestSELUProperties(t *testing.T) {
	a := NewActivate(SELU)
	out := a.Forward([]float64{0})
	if out[0] != 0 {
		t.Errorf("SELU(0) = %v", out[0])
	}
	out = a.Forward([]float64{1})
	if math.Abs(out[0]-seluLambda) > 1e-12 {
		t.Errorf("SELU(1) = %v want λ", out[0])
	}
	out = a.Forward([]float64{-100})
	if math.Abs(out[0]-(-seluLambda*seluAlpha)) > 1e-6 {
		t.Errorf("SELU(-inf) → %v want −λα", out[0])
	}
}

// Training sanity: a small MLP must fit a linear function.
func TestFitLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP([]int{2, 16, 1}, SELU, rng)
	opt := NewAdam(0.01)
	f := func(x []float64) float64 { return 0.3*x[0] - 0.7*x[1] + 0.1 }
	var finalLoss float64
	for epoch := 0; epoch < 600; epoch++ {
		net.ZeroGrad()
		var loss float64
		for b := 0; b < 16; b++ {
			x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			out := net.Forward(x)
			l, g := MSE(out, []float64{f(x)}, nil)
			loss += l
			net.Backward(g)
		}
		opt.Step(net.Params())
		finalLoss = loss / 16
	}
	if finalLoss > 1e-3 {
		t.Errorf("final loss %v, want < 1e-3", finalLoss)
	}
}

// SGD must also reduce loss (paper's optimizer).
func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP([]int{1, 8, 1}, SELU, rng)
	opt := NewSGD(0.01, 0.9)
	sample := func() ([]float64, []float64) {
		x := rng.Float64()
		return []float64{x}, []float64{2 * x}
	}
	lossOnce := func() float64 {
		x, y := sample()
		l, _ := MSE(net.Forward(x), y, nil)
		return l
	}
	before := 0.0
	for i := 0; i < 50; i++ {
		before += lossOnce()
	}
	for epoch := 0; epoch < 400; epoch++ {
		net.ZeroGrad()
		x, y := sample()
		_, g := MSE(net.Forward(x), y, nil)
		net.Backward(g)
		opt.Step(net.Params())
	}
	after := 0.0
	for i := 0; i < 50; i++ {
		after += lossOnce()
	}
	if after >= before {
		t.Errorf("SGD did not reduce loss: before=%v after=%v", before, after)
	}
}

func TestCloneIndependentAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP([]int{3, 4, 1}, SELU, rng)
	clone := net.Clone()
	x := []float64{0.1, 0.2, 0.3}
	if a, b := net.Forward1(x), clone.Forward1(x); a != b {
		t.Errorf("clone output %v != original %v", b, a)
	}
	clone.Params()[0].W[0] += 1
	if a, b := net.Forward1(x), clone.Forward1(x); a == b {
		t.Error("clone shares weight storage")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	main := NewMLP([]int{2, 4, 1}, SELU, rng)
	target := NewMLP([]int{2, 4, 1}, SELU, rng)
	x := []float64{0.5, -0.5}
	if main.Forward1(x) == target.Forward1(x) {
		t.Fatal("distinct inits should differ")
	}
	target.CopyWeightsFrom(main)
	if a, b := main.Forward1(x), target.Forward1(x); a != b {
		t.Errorf("after sync: %v != %v", a, b)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewMLP([]int{4, 7, 3, 1}, SELU, rng)
	data, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.9, -0.3, 0.4}
	if a, b := net.Forward1(x), back.Forward1(x); math.Abs(a-b) > 0 {
		t.Errorf("round trip changed output: %v vs %v", a, b)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var n Network
	if err := n.UnmarshalBinary([]byte("not gob")); err == nil {
		t.Error("garbage must fail to decode")
	}
}

func TestMSE(t *testing.T) {
	loss, grad := MSE([]float64{1, 2}, []float64{0, 4}, nil)
	// ½·((1)² + (−2)²)/2 = 1.25
	if math.Abs(loss-1.25) > 1e-12 {
		t.Errorf("loss = %v", loss)
	}
	if math.Abs(grad[0]-0.5) > 1e-12 || math.Abs(grad[1]-(-1)) > 1e-12 {
		t.Errorf("grad = %v", grad)
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{W: []float64{0}, Grad: []float64{3}}
	q := &Param{W: []float64{0}, Grad: []float64{4}}
	norm := ClipGrads([]*Param{p, q}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm %v want 5", norm)
	}
	after := math.Hypot(p.Grad[0], q.Grad[0])
	if math.Abs(after-1) > 1e-12 {
		t.Errorf("post-clip norm %v want 1", after)
	}
	// No-op cases.
	p.Grad[0] = 0.1
	q.Grad[0] = 0
	if ClipGrads([]*Param{p, q}, 1); p.Grad[0] != 0.1 {
		t.Error("clip below threshold must not modify grads")
	}
}

func TestNewMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for single-size MLP")
		}
	}()
	NewMLP([]int{3}, SELU, rand.New(rand.NewSource(1)))
}

func TestHuberLoss(t *testing.T) {
	// Inside delta: behaves like MSE.
	loss, grad := Huber([]float64{0.5}, []float64{0}, nil, 1)
	if math.Abs(loss-0.125) > 1e-12 || math.Abs(grad[0]-0.5) > 1e-12 {
		t.Errorf("quadratic region: loss=%v grad=%v", loss, grad[0])
	}
	// Outside delta: linear with clipped gradient.
	loss, grad = Huber([]float64{3}, []float64{0}, nil, 1)
	if math.Abs(loss-2.5) > 1e-12 || math.Abs(grad[0]-1) > 1e-12 {
		t.Errorf("linear region: loss=%v grad=%v", loss, grad[0])
	}
	// Negative side symmetric.
	_, grad = Huber([]float64{-3}, []float64{0}, nil, 1)
	if math.Abs(grad[0]+1) > 1e-12 {
		t.Errorf("negative linear grad=%v", grad[0])
	}
	// delta ≤ 0 defaults to 1.
	l2, _ := Huber([]float64{3}, []float64{0}, nil, 0)
	if math.Abs(l2-2.5) > 1e-12 {
		t.Errorf("default delta: loss=%v", l2)
	}
}

// Numerical gradient check for Huber through a full network.
func TestHuberGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewMLP([]int{2, 6, 1}, SELU, rng)
	x := []float64{0.4, -0.9}
	target := []float64{3.0} // far from init → linear Huber region exercised

	lossAt := func() float64 {
		l, _ := Huber(net.Forward(x), target, nil, 1)
		return l
	}
	net.ZeroGrad()
	_, grad := Huber(net.Forward(x), target, nil, 1)
	net.Backward(grad)
	const h = 1e-6
	for pi, p := range net.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + h
			lp := lossAt()
			p.W[j] = orig - h
			lm := lossAt()
			p.W[j] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad[j]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("param %d[%d]: analytic %v vs numeric %v", pi, j, p.Grad[j], num)
			}
		}
	}
}
