package nn

import (
	"fmt"
	"math"

	"isrl/internal/vec"
)

// Batched forward/backward passes: a minibatch (or a candidate-action set)
// is one row-major matrix, and each layer processes all rows with one GEMM
// call instead of N single-vector passes. The vec kernels accumulate every
// output element in the same index order as the serial path, so row i of a
// batched result is bit-identical to Forward on row i alone — the property
// the DQN relies on to make batched scoring a pure optimization.
//
// Like the single-vector path, batch passes cache activations on the layer,
// so a network remains single-goroutine; concurrent users must Clone.

// weightMat views a Dense layer's row-major weight vector as an Out×In
// matrix without copying.
func (d *Dense) weightMat() *vec.Mat {
	return &vec.Mat{Rows: d.Out, Cols: d.In, Data: d.Weight.W}
}

// ForwardBatch implements the batched Layer pass for Dense: Y = X·Wᵀ + b.
func (d *Dense) ForwardBatch(x *vec.Mat) *vec.Mat {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense batch input width %d, want %d", x.Cols, d.In))
	}
	d.xb = x
	d.outB = vec.MatMulNT(d.outB, x, d.weightMat(), d.Bias.W)
	return d.outB
}

// BackwardBatch implements the batched gradient pass for Dense, accumulating
// parameter gradients over the batch rows in row order.
func (d *Dense) BackwardBatch(gradOut *vec.Mat) *vec.Mat {
	if gradOut.Cols != d.Out || gradOut.Rows != d.xb.Rows {
		panic(fmt.Sprintf("nn: Dense batch gradOut %dx%d, want %dx%d",
			gradOut.Rows, gradOut.Cols, d.xb.Rows, d.Out))
	}
	// Bias gradient: per-output sum over the batch, rows in order.
	for o := 0; o < d.Out; o++ {
		s := d.Bias.Grad[o]
		for r := 0; r < gradOut.Rows; r++ {
			s += gradOut.At(r, o)
		}
		d.Bias.Grad[o] = s
	}
	// Weight gradient: Gᵀ·X accumulated into the existing gradient.
	gw := &vec.Mat{Rows: d.Out, Cols: d.In, Data: d.Weight.Grad}
	vec.MatMulTNAcc(gw, gradOut, d.xb)
	// Input gradient: G·W.
	d.ginB = vec.MatMul(d.ginB, gradOut, d.weightMat())
	return d.ginB
}

// ForwardBatch implements the batched Layer pass for Activate.
func (a *Activate) ForwardBatch(x *vec.Mat) *vec.Mat {
	a.xb = x
	a.outB = vec.EnsureMat(a.outB, x.Rows, x.Cols)
	out, in := a.outB.Data, x.Data
	switch a.Kind {
	case SELU:
		for i, xi := range in {
			if xi > 0 {
				out[i] = seluLambda * xi
			} else {
				out[i] = seluLambda * seluAlpha * (math.Exp(xi) - 1)
			}
		}
	case ReLU:
		for i, xi := range in {
			if xi > 0 {
				out[i] = xi
			} else {
				out[i] = 0
			}
		}
	case Tanh:
		for i, xi := range in {
			out[i] = math.Tanh(xi)
		}
	}
	return a.outB
}

// BackwardBatch implements the batched gradient pass for Activate.
func (a *Activate) BackwardBatch(gradOut *vec.Mat) *vec.Mat {
	a.ginB = vec.EnsureMat(a.ginB, gradOut.Rows, gradOut.Cols)
	gin, g, in := a.ginB.Data, gradOut.Data, a.xb.Data
	switch a.Kind {
	case SELU:
		for i, xi := range in {
			if xi > 0 {
				gin[i] = g[i] * seluLambda
			} else {
				gin[i] = g[i] * seluLambda * seluAlpha * math.Exp(xi)
			}
		}
	case ReLU:
		for i, xi := range in {
			if xi > 0 {
				gin[i] = g[i]
			} else {
				gin[i] = 0
			}
		}
	case Tanh:
		for i := range in {
			t := a.outB.Data[i]
			gin[i] = g[i] * (1 - t*t)
		}
	}
	return a.ginB
}

// ForwardBatch runs every row of x through the network in one set of GEMM
// calls and returns the batch output (owned by the last layer until the next
// batch call). Row i of the result is bit-identical to Forward(x.Row(i)).
func (n *Network) ForwardBatch(x *vec.Mat) *vec.Mat {
	for _, l := range n.Layers {
		x = l.ForwardBatch(x)
	}
	return x
}

// BackwardBatch back-propagates a batch of dL/d(output) rows, accumulating
// parameter gradients over the rows in row order. It must follow the
// matching ForwardBatch call.
func (n *Network) BackwardBatch(grad *vec.Mat) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].BackwardBatch(grad)
	}
}

// ForwardBatchShared scores a batch of inputs that all share the same
// leading len(shared) coordinates and differ only in the trailing rest.Cols
// coordinates — the DQN's candidate-scoring shape, where every row is
// state ⊕ actionᵢ. The first layer's pre-activation is computed once for the
// shared prefix and continued per row over the suffix; because the dense
// accumulation walks inputs in index order, splitting the sum at the prefix
// boundary performs the exact same addition sequence, so row i remains
// bit-identical to Forward(shared ⊕ rest.Row(i)) while skipping the repeated
// prefix work. The first layer must be Dense with In == len(shared)+rest.Cols.
func (n *Network) ForwardBatchShared(shared []float64, rest *vec.Mat) *vec.Mat {
	if len(n.Layers) == 0 {
		panic("nn: ForwardBatchShared on empty network")
	}
	d, ok := n.Layers[0].(*Dense)
	if !ok {
		panic(fmt.Sprintf("nn: ForwardBatchShared needs a Dense first layer, got %T", n.Layers[0]))
	}
	k := len(shared)
	if k+rest.Cols != d.In {
		panic(fmt.Sprintf("nn: ForwardBatchShared input %d+%d, want %d", k, rest.Cols, d.In))
	}
	// Shared prefix pre-activation: h[o] = b[o] + Σ_{i<k} W[o,i]·shared[i].
	if len(d.sharedH) != d.Out {
		d.sharedH = make([]float64, d.Out)
	}
	for o := 0; o < d.Out; o++ {
		row := d.Weight.W[o*d.In : o*d.In+k]
		s := d.Bias.W[o]
		for i, xi := range shared {
			s += row[i] * xi
		}
		d.sharedH[o] = s
	}
	// Suffix continuation: out[r,o] = h[o] + Σ_p W[o,k+p]·rest[r,p], with
	// four independent output accumulators per row.
	d.outB = vec.EnsureMat(d.outB, rest.Rows, d.Out)
	sc := rest.Cols
	for r := 0; r < rest.Rows; r++ {
		x := rest.Row(r)
		drow := d.outB.Row(r)
		o := 0
		for ; o+4 <= d.Out; o += 4 {
			s0, s1, s2, s3 := d.sharedH[o], d.sharedH[o+1], d.sharedH[o+2], d.sharedH[o+3]
			w0 := d.Weight.W[o*d.In+k : o*d.In+k+sc]
			w1 := d.Weight.W[(o+1)*d.In+k : (o+1)*d.In+k+sc]
			w2 := d.Weight.W[(o+2)*d.In+k : (o+2)*d.In+k+sc]
			w3 := d.Weight.W[(o+3)*d.In+k : (o+3)*d.In+k+sc]
			for p, xp := range x {
				s0 += w0[p] * xp
				s1 += w1[p] * xp
				s2 += w2[p] * xp
				s3 += w3[p] * xp
			}
			drow[o], drow[o+1], drow[o+2], drow[o+3] = s0, s1, s2, s3
		}
		for ; o < d.Out; o++ {
			s := d.sharedH[o]
			w := d.Weight.W[o*d.In+k : o*d.In+k+sc]
			for p, xp := range x {
				s += w[p] * xp
			}
			drow[o] = s
		}
	}
	out := d.outB
	for _, l := range n.Layers[1:] {
		out = l.ForwardBatch(out)
	}
	return out
}
