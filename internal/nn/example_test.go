package nn_test

import (
	"fmt"
	"math/rand"

	"isrl/internal/nn"
)

// ExampleNetwork trains the paper's Q-network shape (one hidden SELU layer)
// to fit a simple function and reports whether the loss collapsed.
func ExampleNetwork() {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP([]int{2, 64, 1}, nn.SELU, rng)
	opt := nn.NewAdam(0.01)

	target := func(x []float64) float64 { return 0.7*x[0] - 0.2*x[1] }
	var loss float64
	for step := 0; step < 500; step++ {
		x := []float64{rng.Float64(), rng.Float64()}
		net.ZeroGrad()
		var grad []float64
		loss, grad = nn.MSE(net.Forward(x), []float64{target(x)}, nil)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	fmt.Println(loss < 1e-3)
	// Output: true
}
