package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves the gradients untouched; callers
	// ZeroGrad afterwards.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum — the plain
// "gradient descent step" the paper trains with (learning rate 0.003).
type SGD struct {
	LR       float64
	Momentum float64

	vel [][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.vel == nil && s.Momentum != 0 {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, len(p.W))
		}
	}
	for i, p := range params {
		if s.Momentum == 0 {
			for j := range p.W {
				p.W[j] -= s.LR * p.Grad[j]
			}
			continue
		}
		v := s.vel[i]
		for j := range p.W {
			v[j] = s.Momentum*v[j] + p.Grad[j]
			p.W[j] -= s.LR * v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba). It is offered alongside SGD for
// the ablation benches; the paper's reported settings use plain gradient
// descent.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	m, v [][]float64
	t    int
}

// NewAdam returns an Adam optimizer with the usual defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.W))
			a.v[i] = make([]float64, len(p.W))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.W[j] -= a.LR * (m[j] / c1) / (math.Sqrt(v[j]/c2) + a.Eps)
		}
	}
}

// MSE returns ½·mean squared error between pred and target plus the gradient
// dL/dpred (written into grad, which is allocated when nil or mis-sized).
func MSE(pred, target, grad []float64) (float64, []float64) {
	if len(pred) != len(target) {
		panic("nn: MSE length mismatch")
	}
	if len(grad) != len(pred) {
		grad = make([]float64, len(pred))
	}
	var loss float64
	inv := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d * inv
		grad[i] = d * inv
	}
	return loss, grad
}

// Huber returns the mean Huber (smooth-L1) loss between pred and target
// with transition point delta, plus the gradient dL/dpred. It behaves like
// MSE near zero error and like L1 beyond delta, which keeps Q-learning
// stable when bootstrapped targets are occasionally far off — the standard
// DQN loss choice.
func Huber(pred, target, grad []float64, delta float64) (float64, []float64) {
	if len(pred) != len(target) {
		panic("nn: Huber length mismatch")
	}
	if delta <= 0 {
		delta = 1
	}
	if len(grad) != len(pred) {
		grad = make([]float64, len(pred))
	}
	var loss float64
	inv := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		a := math.Abs(d)
		if a <= delta {
			loss += 0.5 * d * d * inv
			grad[i] = d * inv
		} else {
			loss += delta * (a - 0.5*delta) * inv
			if d > 0 {
				grad[i] = delta * inv
			} else {
				grad[i] = -delta * inv
			}
		}
	}
	return loss, grad
}

// ClipGrads scales all gradients down so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm. A non-positive maxNorm is a no-op.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for j := range p.Grad {
			p.Grad[j] *= scale
		}
	}
	return norm
}
