// Package nn is a small feed-forward neural-network library built for the
// DQN agents of this repository. It provides dense layers, the activations
// used in the paper (SELU) plus common alternatives, MSE loss, SGD and Adam
// optimizers, and gob serialization — all on plain float64 slices with no
// external dependencies.
//
// Layers cache their last input, so a network instance is not safe for
// concurrent use; training and inference in this codebase are sequential,
// and separate goroutines should Clone the network.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"isrl/internal/vec"
)

// Param is a learnable tensor with its gradient accumulator.
type Param struct {
	W    []float64
	Grad []float64
}

// Layer is one stage of a feed-forward network.
type Layer interface {
	// Forward computes the layer output for x and caches what Backward
	// needs. The returned slice is owned by the layer until the next call.
	Forward(x []float64) []float64
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients.
	Backward(gradOut []float64) []float64
	// ForwardBatch is Forward over every row of x at once (see batch.go);
	// row i of the output is bit-identical to Forward(x.Row(i)).
	ForwardBatch(x *vec.Mat) *vec.Mat
	// BackwardBatch is Backward over a batch of gradient rows, accumulating
	// parameter gradients in row order.
	BackwardBatch(gradOut *vec.Mat) *vec.Mat
	// Params returns the learnable parameters, or nil.
	Params() []*Param
	// CloneLayer returns a deep copy.
	CloneLayer() Layer
}

// Dense is a fully connected layer: y = W·x + b, with W stored row-major
// (Out×In).
type Dense struct {
	In, Out int
	Weight  *Param // len In*Out
	Bias    *Param // len Out

	x   []float64 // cached input
	out []float64
	gin []float64

	xb         *vec.Mat  // cached batch input
	outB, ginB *vec.Mat  // batch scratch, grown on demand
	sharedH    []float64 // shared-prefix pre-activation scratch
}

// NewDense returns a Dense layer initialized with LeCun-normal weights
// (std = 1/√In), the initialization recommended for SELU networks.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		Weight: &Param{W: make([]float64, in*out), Grad: make([]float64, in*out)},
		Bias:   &Param{W: make([]float64, out), Grad: make([]float64, out)},
		out:    make([]float64, out),
		gin:    make([]float64, in),
	}
	std := 1 / math.Sqrt(float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense input %d, want %d", len(x), d.In))
	}
	d.x = x
	for o := 0; o < d.Out; o++ {
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		s := d.Bias.W[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		d.out[o] = s
	}
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut []float64) []float64 {
	if len(gradOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense gradOut %d, want %d", len(gradOut), d.Out))
	}
	for i := range d.gin {
		d.gin[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := gradOut[o]
		if g == 0 {
			continue
		}
		d.Bias.Grad[o] += g
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		grow := d.Weight.Grad[o*d.In : (o+1)*d.In]
		for i, xi := range d.x {
			grow[i] += g * xi
			d.gin[i] += g * row[i]
		}
	}
	return d.gin
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// CloneLayer implements Layer.
func (d *Dense) CloneLayer() Layer {
	c := &Dense{
		In: d.In, Out: d.Out,
		Weight: &Param{W: append([]float64(nil), d.Weight.W...), Grad: make([]float64, len(d.Weight.Grad))},
		Bias:   &Param{W: append([]float64(nil), d.Bias.W...), Grad: make([]float64, len(d.Bias.Grad))},
		out:    make([]float64, d.Out),
		gin:    make([]float64, d.In),
	}
	return c
}

// Activation names an element-wise nonlinearity.
type Activation int8

// Supported activations.
const (
	SELU Activation = iota // the paper's choice (Klambauer et al.)
	ReLU
	Tanh
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case SELU:
		return "selu"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("Activation(%d)", int8(a))
}

// SELU constants from Klambauer et al., "Self-Normalizing Neural Networks".
const (
	seluAlpha  = 1.6732632423543772
	seluLambda = 1.0507009873554805
)

// Activate is an activation layer.
type Activate struct {
	Kind Activation

	x   []float64
	out []float64
	gin []float64

	xb         *vec.Mat
	outB, ginB *vec.Mat
}

// NewActivate returns an activation layer of the given kind.
func NewActivate(kind Activation) *Activate { return &Activate{Kind: kind} }

// Forward implements Layer.
func (a *Activate) Forward(x []float64) []float64 {
	if len(a.out) != len(x) {
		a.out = make([]float64, len(x))
		a.gin = make([]float64, len(x))
	}
	a.x = x
	switch a.Kind {
	case SELU:
		for i, xi := range x {
			if xi > 0 {
				a.out[i] = seluLambda * xi
			} else {
				a.out[i] = seluLambda * seluAlpha * (math.Exp(xi) - 1)
			}
		}
	case ReLU:
		for i, xi := range x {
			if xi > 0 {
				a.out[i] = xi
			} else {
				a.out[i] = 0
			}
		}
	case Tanh:
		for i, xi := range x {
			a.out[i] = math.Tanh(xi)
		}
	}
	return a.out
}

// Backward implements Layer.
func (a *Activate) Backward(gradOut []float64) []float64 {
	switch a.Kind {
	case SELU:
		for i, xi := range a.x {
			if xi > 0 {
				a.gin[i] = gradOut[i] * seluLambda
			} else {
				a.gin[i] = gradOut[i] * seluLambda * seluAlpha * math.Exp(xi)
			}
		}
	case ReLU:
		for i, xi := range a.x {
			if xi > 0 {
				a.gin[i] = gradOut[i]
			} else {
				a.gin[i] = 0
			}
		}
	case Tanh:
		for i := range a.x {
			t := a.out[i]
			a.gin[i] = gradOut[i] * (1 - t*t)
		}
	}
	return a.gin
}

// Params implements Layer.
func (a *Activate) Params() []*Param { return nil }

// CloneLayer implements Layer.
func (a *Activate) CloneLayer() Layer { return NewActivate(a.Kind) }
