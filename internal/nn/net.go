package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// Network is a feed-forward stack of layers.
type Network struct {
	Layers []Layer
}

// NewMLP builds a multi-layer perceptron with the given layer sizes,
// applying the activation after every layer except the last (linear head —
// the standard shape for a Q-value regressor). sizes must have ≥ 2 entries.
func NewMLP(sizes []int, act Activation, rng *rand.Rand) *Network {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs ≥2 sizes, got %v", sizes))
	}
	n := &Network{}
	for i := 0; i+1 < len(sizes); i++ {
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			n.Layers = append(n.Layers, NewActivate(act))
		}
	}
	return n
}

// Forward runs x through the network and returns the output (owned by the
// last layer until the next call).
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Forward1 runs x through a scalar-output network and returns the value.
func (n *Network) Forward1(x []float64) float64 {
	out := n.Forward(x)
	if len(out) != 1 {
		panic(fmt.Sprintf("nn: Forward1 on network with output size %d", len(out)))
	}
	return out[0]
}

// Backward back-propagates dL/d(output) through the network, accumulating
// parameter gradients. It must follow the matching Forward call.
func (n *Network) Backward(grad []float64) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns all learnable parameters in a stable order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all gradient accumulators.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// Clone returns an independent deep copy — the way a DQN target network is
// born.
func (n *Network) Clone() *Network {
	c := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = l.CloneLayer()
	}
	return c
}

// CopyWeightsFrom overwrites this network's parameters with src's — the
// periodic target-network synchronization of DQN. The architectures must
// match.
func (n *Network) CopyWeightsFrom(src *Network) {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		panic(fmt.Sprintf("nn: CopyWeightsFrom mismatched param counts %d vs %d", len(dst), len(s)))
	}
	for i := range dst {
		if len(dst[i].W) != len(s[i].W) {
			panic(fmt.Sprintf("nn: CopyWeightsFrom param %d size %d vs %d", i, len(dst[i].W), len(s[i].W)))
		}
		copy(dst[i].W, s[i].W)
	}
}

// netBlob is the gob wire format: the architecture plus flat weights.
type netBlob struct {
	Kinds   []string // "dense:in:out" or "act:kind"
	Weights [][]float64
}

// MarshalBinary serializes the network (architecture and weights).
func (n *Network) MarshalBinary() ([]byte, error) {
	blob := netBlob{}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			blob.Kinds = append(blob.Kinds, fmt.Sprintf("dense:%d:%d", t.In, t.Out))
			blob.Weights = append(blob.Weights, append([]float64(nil), t.Weight.W...))
			blob.Weights = append(blob.Weights, append([]float64(nil), t.Bias.W...))
		case *Activate:
			blob.Kinds = append(blob.Kinds, fmt.Sprintf("act:%d", int(t.Kind)))
		default:
			return nil, fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a network serialized by MarshalBinary.
func (n *Network) UnmarshalBinary(data []byte) error {
	var blob netBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	var layers []Layer
	wi := 0
	for _, k := range blob.Kinds {
		var a, b int
		if _, err := fmt.Sscanf(k, "dense:%d:%d", &a, &b); err == nil {
			if wi+1 >= len(blob.Weights)+1 && wi+1 > len(blob.Weights) {
				return fmt.Errorf("nn: truncated weights")
			}
			d := &Dense{
				In: a, Out: b,
				Weight: &Param{W: blob.Weights[wi], Grad: make([]float64, a*b)},
				Bias:   &Param{W: blob.Weights[wi+1], Grad: make([]float64, b)},
				out:    make([]float64, b),
				gin:    make([]float64, a),
			}
			if len(d.Weight.W) != a*b || len(d.Bias.W) != b {
				return fmt.Errorf("nn: weight shape mismatch for %q", k)
			}
			wi += 2
			layers = append(layers, d)
			continue
		}
		if _, err := fmt.Sscanf(k, "act:%d", &a); err == nil {
			layers = append(layers, NewActivate(Activation(a)))
			continue
		}
		return fmt.Errorf("nn: unknown layer kind %q", k)
	}
	n.Layers = layers
	return nil
}
