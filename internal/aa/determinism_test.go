package aa

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/par"
)

// A seeded AA session must produce the identical Result for any worker
// count: the speculative LP probes only memoize a pure predicate, and the
// serial accept loop keeps budget and ordering unchanged.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) core.Result {
		defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
		ds := testData(t, 300, 3, 51)
		a := New(ds, 0.1, smallCfg(), rand.New(rand.NewSource(52)))
		res, err := a.Run(ds, core.SimulatedUser{Utility: []float64{0.2, 0.45, 0.35}}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	many := run(8)
	if one.PointIndex != many.PointIndex || one.Rounds != many.Rounds {
		t.Fatalf("workers=1 got point %d in %d rounds; workers=8 got point %d in %d rounds",
			one.PointIndex, one.Rounds, many.PointIndex, many.Rounds)
	}
	for i := range one.Trace {
		if one.Trace[i] != many.Trace[i] {
			t.Fatalf("trace entry %d differs: %+v vs %+v", i, one.Trace[i], many.Trace[i])
		}
	}
}
