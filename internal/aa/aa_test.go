package aa

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
)

func testData(t *testing.T, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(seed)), n, d).Skyline()
	if ds.Len() < 5 {
		t.Fatalf("test dataset too small: %d", ds.Len())
	}
	return ds
}

func smallCfg() Config {
	return Config{Mh: 4, TopK: 10, RandPairs: 40, MaxLPChecks: 30, MaxRounds: 120}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Mh != 5 || c.TopK != 20 || c.RandPairs != 100 || c.MaxLPChecks != 60 || c.MaxRounds != 400 {
		t.Errorf("defaults = %+v", c)
	}
}

// Lemma 9's guarantee: regret ≤ d²ε always; empirically the actual regret
// stays below ε (the paper's observation), checked here on average.
func TestUntrainedAARegretBound(t *testing.T) {
	ds := testData(t, 400, 3, 1)
	rng := rand.New(rand.NewSource(2))
	a := New(ds, 0.1, smallCfg(), rng)
	d := float64(ds.Dim())
	var sum float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		u := geom.SampleSimplex(rng, 3)
		res, err := a.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr := ds.RegretRatio(res.Point, u)
		if rr > d*d*0.1+1e-9 {
			t.Errorf("trial %d: regret %v violates d²ε bound", trial, rr)
		}
		sum += rr
		if res.Rounds >= smallCfg().MaxRounds {
			t.Errorf("trial %d: hit round cap", trial)
		}
		if len(res.Trace) != res.Rounds {
			t.Errorf("trace %d != rounds %d", len(res.Trace), res.Rounds)
		}
	}
	if avg := sum / trials; avg > 0.1 {
		t.Errorf("average regret %v above eps", avg)
	}
}

func TestAAHighDimensional(t *testing.T) {
	// AA's raison d'être: d=20 runs that EA cannot attempt.
	rng := rand.New(rand.NewSource(3))
	ds := dataset.Independent(rng, 400, 20)
	ds = &dataset.Dataset{Name: ds.Name, Points: ds.Points[:200]} // keep LPs small in tests
	a := New(ds, 0.15, smallCfg(), rng)
	u := geom.SampleSimplex(rng, 20)
	res, err := a.Run(ds, core.SimulatedUser{Utility: u}, 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.Rounds >= smallCfg().MaxRounds {
		t.Errorf("rounds = %d", res.Rounds)
	}
	if rr := ds.RegretRatio(res.Point, u); rr > 0.5 {
		t.Errorf("regret %v implausibly high for d=20", rr)
	}
}

func TestTrainImprovesOrRuns(t *testing.T) {
	ds := testData(t, 300, 3, 4)
	rng := rand.New(rand.NewSource(5))
	a := New(ds, 0.1, smallCfg(), rng)
	users := make([][]float64, 50)
	for i := range users {
		users[i] = geom.SampleSimplex(rng, 3)
	}
	stats, err := a.Train(users)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 50 || stats.TotalSteps <= 0 || stats.AvgRounds <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	res, err := a.Run(ds, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 3)}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
		t.Errorf("bad point index %d", res.PointIndex)
	}
}

func TestLargerEpsFewerRounds(t *testing.T) {
	ds := testData(t, 300, 3, 6)
	rng := rand.New(rand.NewSource(7))
	a := New(ds, 0.05, smallCfg(), rng)
	tight, loose := 0, 0
	for trial := 0; trial < 5; trial++ {
		u := geom.SampleSimplex(rng, 3)
		rt, err := a.Run(ds, core.SimulatedUser{Utility: u}, 0.03, nil)
		if err != nil {
			t.Fatal(err)
		}
		rl2, err := a.Run(ds, core.SimulatedUser{Utility: u}, 0.3, nil)
		if err != nil {
			t.Fatal(err)
		}
		tight += rt.Rounds
		loose += rl2.Rounds
	}
	if loose > tight {
		t.Errorf("loose eps rounds %d > tight %d", loose, tight)
	}
}

func TestObserverAndMismatch(t *testing.T) {
	ds := testData(t, 200, 3, 8)
	rng := rand.New(rand.NewSource(9))
	a := New(ds, 0.1, smallCfg(), rng)
	var rounds int
	obs := core.ObserverFunc(func(r int, hs []geom.Halfspace) { rounds = r })
	res, err := a.Run(ds, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 3)}, 0.1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds {
		t.Errorf("observer saw %d rounds, result says %d", rounds, res.Rounds)
	}
	other := testData(t, 300, 4, 10)
	if _, err := a.Run(other, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 4)}, 0.1, nil); err != core.ErrDatasetMismatch {
		t.Errorf("err = %v", err)
	}
}

func TestNoisyUserTerminates(t *testing.T) {
	ds := testData(t, 200, 3, 11)
	rng := rand.New(rand.NewSource(12))
	a := New(ds, 0.1, smallCfg(), rng)
	u := geom.SampleSimplex(rng, 3)
	res, err := a.Run(ds, core.NoisyUser{Utility: u, FlipProb: 0.3, Rng: rng}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
		t.Errorf("point index %d", res.PointIndex)
	}
}

// The action pool should carry diverse cut directions: a pool of nearly
// parallel hyperplanes cannot shrink the outer rectangle in all dimensions.
func TestActionDirectionDiversity(t *testing.T) {
	ds := testData(t, 500, 4, 20)
	rng := rand.New(rand.NewSource(21))
	a := New(ds, 0.1, Config{Mh: 5, TopK: 15, RandPairs: 80, MaxLPChecks: 40, MaxRounds: 50}, rng)
	poly := geom.NewPolytope(4)
	ball, err := poly.InnerBall()
	if err != nil {
		t.Fatal(err)
	}
	acts := a.selectActions(context.Background(), poly, a.newGeo(poly), ball.Center)
	if len(acts) < 2 {
		t.Skipf("only %d actions available", len(acts))
	}
	// At least one pair of chosen normals must be clearly non-parallel.
	normals := make([][]float64, len(acts))
	for i, act := range acts {
		n := make([]float64, 4)
		for k := 0; k < 4; k++ {
			n[k] = act.Feat[k] - act.Feat[4+k]
		}
		norm := 0.0
		for _, v := range n {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for k := range n {
			n[k] /= norm
		}
		normals[i] = n
	}
	diverse := false
	for i := 0; i < len(normals) && !diverse; i++ {
		for j := i + 1; j < len(normals); j++ {
			cos := 0.0
			for k := 0; k < 4; k++ {
				cos += normals[i][k] * normals[j][k]
			}
			if math.Abs(cos) < 0.9 {
				diverse = true
				break
			}
		}
	}
	if !diverse {
		t.Error("all selected cut directions are nearly parallel")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for eps outside (0,1)")
		}
	}()
	New(&dataset.Dataset{Points: [][]float64{{0.5, 0.5}}}, 2, Config{}, rng)
}
