package aa

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/fault"
)

// runSeeded executes one seeded AA session and returns its result. Each call
// builds a fresh AA so the RNG stream starts from the same state.
func runSeeded(t *testing.T, scratch bool, dataSeed, rngSeed int64, u []float64) core.Result {
	t.Helper()
	ds := testData(t, 300, len(u), dataSeed)
	cfg := smallCfg()
	cfg.ScratchGeometry = scratch
	a := New(ds, 0.1, cfg, rand.New(rand.NewSource(rngSeed)))
	res, err := a.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(t *testing.T, label string, a, b core.Result) {
	t.Helper()
	if a.PointIndex != b.PointIndex || a.Rounds != b.Rounds || a.Degraded != b.Degraded {
		t.Fatalf("%s: results diverge: point %d/%d rounds %d/%d degraded %v/%v",
			label, a.PointIndex, b.PointIndex, a.Rounds, b.Rounds, a.Degraded, b.Degraded)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace entry %d differs: %+v vs %+v", label, i, a.Trace[i], b.Trace[i])
		}
	}
}

// AA's engine contract is weaker than EA's (warm LP re-solves agree with
// scratch only to solver tolerance, so a knife-edge tie could in principle
// flip), but on these fixed seeds the sessions are validated to track
// exactly: same questions, same rounds, same tuple.
func TestEngineMatchesScratchFixedSeeds(t *testing.T) {
	users := [][]float64{
		{0.55, 0.3, 0.15},
		{0.2, 0.5, 0.3},
		{0.4, 0.1, 0.3, 0.2},
	}
	for trial, u := range users {
		inc := runSeeded(t, false, 500+int64(trial), 600+int64(trial), u)
		scr := runSeeded(t, true, 500+int64(trial), 600+int64(trial), u)
		sameResult(t, "engine vs scratch", inc, scr)
	}
}

// Failing every warm re-solve demotes the engine's solvers to cold solves of
// the exact problems the scratch path builds, so the session must be
// bit-identical to a scratch run — the chaos-mode proof that the warm path
// is an optimization, not a dependency.
func TestChaosLPWarmFaultMatchesScratch(t *testing.T) {
	u := []float64{0.35, 0.25, 0.4}
	scr := runSeeded(t, true, 700, 701, u)

	plan := fault.NewPlan(23).Set(fault.PointLPWarm, fault.Spec{ErrProb: 1})
	fault.Install(plan)
	defer fault.Install(nil)
	inc := runSeeded(t, false, 700, 701, u)
	if plan.Injections(fault.PointLPWarm) == 0 {
		t.Fatal("warm-LP fault was never exercised")
	}
	if inc.Degraded {
		t.Fatalf("warm-LP faults must degrade to cold solves, not the session: %+v", inc)
	}
	sameResult(t, "warm-fault engine vs scratch", inc, scr)
}
