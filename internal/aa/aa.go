// Package aa implements the paper's approximate algorithm AA (§IV-C): an
// RL-driven interactive regret query that never materializes the utility
// range exactly. It keeps only the set H of learned halfspaces, encodes each
// state with the LP-computed inner sphere and outer rectangle of R, selects
// candidate questions whose hyperplanes pass near the inner-sphere center,
// and stops once ‖e_min − e_max‖ ≤ 2√d·ε (Lemma 9: regret ≤ d²ε, and in
// practice below ε). This design scales to the high dimensionalities where
// polyhedron-maintaining algorithms are infeasible.
package aa

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/par"
	"isrl/internal/rl"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// Config collects AA's hyperparameters. Zero values select defaults matching
// the paper's §V settings via Defaults.
type Config struct {
	Mh          int // action-space size m_h (paper: 5)
	TopK        int // top points by center utility forming the main pair pool
	RandPairs   int // extra uniformly sampled pairs per round
	MaxLPChecks int // budget of two-sided feasibility probes per round
	MaxRounds   int // safety cap on interactive rounds
	RL          rl.Config

	// Resilient enables the error-tolerant mode of the paper's future work
	// (§VI): when contradictory answers empty the utility range, the least
	// consistent halfspaces are dropped (geom.RepairFeasibility) and the
	// interaction continues instead of stopping at the centroid.
	Resilient bool

	// ScratchGeometry disables the round-incremental geometry engine: every
	// inner-sphere/outer-rectangle LP is built and solved from scratch and
	// cut probes run uncached (the pre-engine behavior, with the parallel
	// speculative probe window). The engine replaces those with warm-started
	// re-solves and a cross-round probe cache; optima agree within LP
	// tolerance but floating-point drift can reorder near-tie decisions.
	ScratchGeometry bool

	// RandomActions is an ablation switch (DESIGN.md §5): candidate pairs
	// are taken in random order instead of nearest-to-center order.
	RandomActions bool
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Mh == 0 {
		c.Mh = 5
	}
	if c.TopK == 0 {
		c.TopK = 20
	}
	if c.RandPairs == 0 {
		c.RandPairs = 100
	}
	if c.MaxLPChecks == 0 {
		c.MaxLPChecks = 60
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 400
	}
	c.RL = c.RL.Defaults()
	return c
}

// AA is the approximate RL interactive algorithm, bound to the dataset and
// threshold it was trained for.
type AA struct {
	cfg   Config
	ds    *dataset.Dataset
	eps   float64
	agent *rl.Agent
	rng   *rand.Rand
}

// New creates an untrained AA for ds and threshold eps. It panics on an
// empty dataset, dimensionality < 2, or a threshold outside (0,1).
func New(ds *dataset.Dataset, eps float64, cfg Config, rng *rand.Rand) *AA {
	validate(ds, eps)
	cfg = cfg.Defaults()
	d := ds.Dim()
	stateDim := 3*d + 1 // inner center ⊕ radius ⊕ e_min ⊕ e_max
	actionDim := 2 * d
	return &AA{
		cfg:   cfg,
		ds:    ds,
		eps:   eps,
		agent: rl.NewAgent(stateDim, actionDim, cfg.RL, rng),
		rng:   rng,
	}
}

// validate panics with a clear message on unusable construction inputs.
func validate(ds *dataset.Dataset, eps float64) {
	if ds == nil || ds.Len() == 0 {
		panic("aa: empty dataset")
	}
	if ds.Dim() < 2 {
		panic(fmt.Sprintf("aa: dimensionality %d < 2", ds.Dim()))
	}
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("aa: regret threshold %v outside (0,1)", eps))
	}
}

// Load restores an AA whose agent was serialized with Agent().MarshalBinary.
// ds, eps and cfg must match the values used at training time.
func Load(ds *dataset.Dataset, eps float64, cfg Config, blob []byte, rng *rand.Rand) (*AA, error) {
	cfg = cfg.Defaults()
	agent, err := rl.UnmarshalAgent(blob, cfg.RL)
	if err != nil {
		return nil, fmt.Errorf("aa: load: %w", err)
	}
	d := ds.Dim()
	if agent.StateDim != 3*d+1 || agent.ActionDim != 2*d {
		return nil, fmt.Errorf("aa: load: model dims (%d,%d) do not match dataset (%d,%d)",
			agent.StateDim, agent.ActionDim, 3*d+1, 2*d)
	}
	return &AA{cfg: cfg, ds: ds, eps: eps, agent: agent, rng: rng}, nil
}

// Name implements core.Algorithm.
func (a *AA) Name() string { return "AA" }

// Agent exposes the underlying DQN.
func (a *AA) Agent() *rl.Agent { return a.agent }

// Config returns the resolved configuration.
func (a *AA) Config() Config { return a.cfg }

type action struct {
	I, J int
	Feat []float64
}

type round struct {
	state    []float64
	center   []float64
	mid      []float64 // outer-rectangle midpoint (the return vector)
	actions  []action
	terminal bool
	degraded bool   // terminal without the Lemma-9 stop (range collapsed)
	reason   string // why, when degraded
}

// newGeo returns the round-incremental engine over poly, or nil when the
// scratch path was requested.
func (a *AA) newGeo(poly *geom.Polytope) *geom.Incremental {
	if a.cfg.ScratchGeometry {
		return nil
	}
	return geom.NewIncremental(poly)
}

func innerBall(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental) (geom.Ball, error) {
	if geo != nil {
		return geo.InnerBallCtx(ctx)
	}
	return poly.InnerBallCtx(ctx)
}

func outerRect(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental) (emin, emax []float64, err error) {
	if geo != nil {
		return geo.OuterRectCtx(ctx)
	}
	return poly.OuterRectCtx(ctx)
}

// computeRound derives AA's MDP view from the halfspace set: the inner
// sphere and outer rectangle (state + stopping test) and the
// nearest-to-center candidate questions (action space).
func (a *AA) computeRound(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, eps float64) (*round, error) {
	d := a.ds.Dim()
	ball, err := innerBall(ctx, poly, geo)
	if err != nil && a.cfg.Resilient && len(poly.Halfspaces) > 0 {
		// Contradictory answers emptied R: drop the least consistent
		// constraints and continue (§VI future work). The repair mutates the
		// polytope directly; the engine resynchronizes on the re-read.
		poly.RepairFeasibility(0)
		ball, err = innerBall(ctx, poly, geo)
	}
	if err != nil {
		// Empty range (noisy users): stop at the centroid.
		c := geom.SimplexCentroid(d)
		return &round{
			terminal: true, center: c, mid: c,
			degraded: true, reason: "utility range empty (contradictory answers)",
		}, nil
	}
	emin, emax, err := outerRect(ctx, poly, geo)
	if err != nil {
		return nil, fmt.Errorf("aa: %w", err)
	}
	r := &round{center: ball.Center, mid: vec.Mid(nil, emin, emax)}
	r.state = make([]float64, 0, 3*d+1)
	r.state = append(r.state, ball.Center...)
	r.state = append(r.state, ball.Radius)
	r.state = append(r.state, emin...)
	r.state = append(r.state, emax...)
	if core.RectStop(emin, emax, eps) {
		r.terminal = true
		return r, nil
	}
	r.actions = a.selectActions(ctx, poly, geo, ball.Center)
	if len(r.actions) == 0 {
		// No hyperplane can strictly narrow R further; more questions are
		// pointless, so stop with the midpoint estimate.
		r.terminal = true
	}
	return r, nil
}

// selectActions implements §IV-C's restricted action space: among a
// candidate pool (all pairs of the top-K points by center utility plus
// random pairs), keep the m_h pairs whose hyperplane is nearest the
// inner-sphere center and properly splits R (both sides non-empty, checked
// by LP — Lemma 8).
func (a *AA) selectActions(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, center []float64) []action {
	ctx, sp := trace.Start(ctx, "aa.select_actions")
	type cand struct {
		i, j int
		dist float64
	}
	n := a.ds.Len()
	// Top-K points by utility at the center.
	k := a.cfg.TopK
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	scores := a.ds.Scores(center, nil)
	sort.Slice(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	top := idx[:k]

	var cands []cand
	seen := map[[2]int]bool{}
	add := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		key := [2]int{i, j}
		if seen[key] {
			return
		}
		seen[key] = true
		pi, pj := a.ds.Points[i], a.ds.Points[j]
		h := geom.NewHalfspace(pi, pj)
		if vec.Norm(h.Normal) < 1e-12 {
			return
		}
		cands = append(cands, cand{i: i, j: j, dist: h.Dist(center)})
	}
	for x := 0; x < len(top); x++ {
		for y := x + 1; y < len(top); y++ {
			add(top[x], top[y])
		}
	}
	for t := 0; t < a.cfg.RandPairs; t++ {
		add(a.rng.Intn(n), a.rng.Intn(n))
	}
	if a.cfg.RandomActions {
		a.rng.Shuffle(len(cands), func(x, y int) { cands[x], cands[y] = cands[y], cands[x] })
	} else {
		sort.Slice(cands, func(x, y int) bool { return cands[x].dist < cands[y].dist })
	}

	// LP feasibility probes dominate this loop. CutsBothSides is a pure
	// function of the (fixed-for-this-round) polytope and the candidate
	// pair, so results for a speculative window of upcoming candidates are
	// computed by the worker pool and consumed by the serial accept loop —
	// budget accounting, the diversity filter, and accept order are
	// untouched, so the selected actions are identical for any worker count.
	//
	// With the incremental engine the probes run serially instead: the warm
	// LP solver is single-threaded state, and its cross-round negative cache
	// (a no-cut verdict stays no-cut as R shrinks) eliminates most probes
	// outright, which is worth more than the speculative window.
	cuts := make([]int8, len(cands)) // 0 = unprobed, 1 = cuts both sides, 2 = no
	probe := func(ci int) bool {
		if cuts[ci] == 0 {
			if geo != nil {
				c := cands[ci]
				h := geom.NewHalfspace(a.ds.Points[c.i], a.ds.Points[c.j])
				if geo.CutsBothSides(uint64(c.i)<<32|uint64(c.j), h, 1e-9) {
					cuts[ci] = 1
				} else {
					cuts[ci] = 2
				}
				return cuts[ci] == 1
			}
			window := 1
			if w := par.Workers(); w > 1 {
				window = 2 * w
			}
			hi := ci + window
			if hi > len(cands) {
				hi = len(cands)
			}
			par.DoCtx(ctx, hi-ci, func(k int) {
				if cuts[ci+k] != 0 {
					return
				}
				c := cands[ci+k]
				h := geom.NewHalfspace(a.ds.Points[c.i], a.ds.Points[c.j])
				if poly.CutsBothSides(h, 1e-9) {
					cuts[ci+k] = 1
				} else {
					cuts[ci+k] = 2
				}
			})
		}
		return cuts[ci] == 1
	}

	// Greedy fill with an angular-diversity filter: a pool of nearly
	// parallel hyperplanes would keep slicing the same direction and leave
	// the outer rectangle wide elsewhere, so candidates too parallel to an
	// already accepted cut are deferred to a second pass.
	var out []action
	var normals [][]float64
	checks := 0
	accept := func(ci int, requireDiverse bool) bool {
		if len(out) >= a.cfg.Mh || checks >= a.cfg.MaxLPChecks {
			return false
		}
		c := cands[ci]
		pi, pj := a.ds.Points[c.i], a.ds.Points[c.j]
		h := geom.NewHalfspace(pi, pj)
		n := vec.Clone(h.Normal)
		vec.Normalize(n)
		if requireDiverse {
			for _, prev := range normals {
				cos := vec.Dot(n, prev)
				if cos > 0.9 || cos < -0.9 {
					return true // skip, but keep scanning
				}
			}
		}
		checks++
		if !probe(ci) {
			return true
		}
		feat := make([]float64, 0, 2*len(pi))
		feat = append(feat, pi...)
		feat = append(feat, pj...)
		out = append(out, action{I: c.i, J: c.j, Feat: feat})
		normals = append(normals, n)
		return true
	}
	for ci := range cands {
		if !accept(ci, true) {
			break
		}
	}
	if len(out) < a.cfg.Mh { // second pass without the diversity filter
		seenPair := map[[2]int]bool{}
		for _, ac := range out {
			seenPair[[2]int{ac.I, ac.J}] = true
		}
		for ci, c := range cands {
			if seenPair[[2]int{c.i, c.j}] {
				continue
			}
			if !accept(ci, false) {
				break
			}
		}
	}
	if sp != nil {
		sp.SetInt("candidates", int64(len(cands)))
		sp.SetInt("lp_checks", int64(checks))
		sp.SetInt("selected", int64(len(out)))
		sp.End()
	}
	return out
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Episodes   int
	TotalSteps int
	AvgRounds  float64
	FinalLoss  float64
	RL         rl.TrainStats // DQN-level telemetry (loss EMA, syncs, replay)
}

// Train runs Algorithm 3 over the training utility vectors.
func (a *AA) Train(users [][]float64) (TrainStats, error) {
	replay := rl.NewReplay(a.cfg.RL.ReplayCap)
	stats := TrainStats{Episodes: len(users)}
	var rounds float64
	var epsilon float64
	for ep, u := range users {
		user := core.SimulatedUser{Utility: u}
		epsilon = a.agent.Config().Epsilon.At(ep)
		n, err := a.episode(user, epsilon, replay)
		if err != nil {
			return stats, fmt.Errorf("aa: training episode %d: %w", ep, err)
		}
		stats.TotalSteps += n
		rounds += float64(n)
		// One gradient step per environment step (see the matching comment
		// in package ea).
		if replay.Len() >= a.agent.Config().BatchSize {
			for k := 0; k < n; k++ {
				stats.FinalLoss = a.agent.TrainBatch(replay.Sample(a.rng, a.agent.Config().BatchSize))
			}
		}
	}
	if len(users) > 0 {
		stats.AvgRounds = rounds / float64(len(users))
	}
	stats.RL = a.agent.Stats()
	stats.RL.Epsilon = epsilon
	stats.RL.ReplaySize = replay.Len()
	return stats, nil
}

func (a *AA) episode(user core.User, epsilon float64, replay *rl.Replay) (int, error) {
	ctx := context.Background()
	poly := geom.NewPolytope(a.ds.Dim())
	geo := a.newGeo(poly)
	cur, err := a.computeRound(ctx, poly, geo, a.eps)
	if err != nil {
		return 0, err
	}
	rounds := 0
	for !cur.terminal && rounds < a.cfg.MaxRounds {
		ai := a.agent.SelectEpsGreedy(a.rng, cur.state, feats(cur.actions), epsilon)
		act := cur.actions[ai]
		pi, pj := a.ds.Points[act.I], a.ds.Points[act.J]
		if user.Prefer(pi, pj) {
			a.addCut(ctx, poly, geo, geom.NewHalfspace(pi, pj))
		} else {
			a.addCut(ctx, poly, geo, geom.NewHalfspace(pj, pi))
		}
		rounds++
		a.maybeReduce(poly, geo, rounds)
		next, err := a.computeRound(ctx, poly, geo, a.eps)
		if err != nil {
			return rounds, err
		}
		tr := rl.Transition{
			State:    cur.state,
			Action:   act.Feat,
			Next:     next.state,
			Terminal: next.terminal,
		}
		if next.terminal {
			tr.Reward = a.agent.Config().RewardC
		} else {
			tr.NextActions = feats(next.actions)
		}
		replay.Add(tr)
		cur = next
	}
	return rounds, nil
}

// addCut records one answer halfspace, through the incremental engine when
// it is enabled so the maintained vertex set and warm solvers track the cut.
func (a *AA) addCut(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, h geom.Halfspace) {
	if geo != nil {
		geo.AddCtx(ctx, h)
		return
	}
	poly.Add(h)
}

// maybeReduce prunes redundant halfspaces periodically so the per-round LPs
// stay small on long interactions. The set representation is AA's only
// state, and reduction preserves R exactly.
func (a *AA) maybeReduce(poly *geom.Polytope, geo *geom.Incremental, rounds int) {
	if rounds%8 == 0 && len(poly.Halfspaces) > 2*poly.Dim {
		if geo != nil {
			geo.Reduce()
		} else {
			poly.ReduceRedundant()
		}
	}
}

func feats(actions []action) [][]float64 {
	fs := make([][]float64, len(actions))
	for i, act := range actions {
		fs[i] = act.Feat
	}
	return fs
}

// safeRound is computeRound behind a panic-containment boundary: a panic in
// the LP machinery (degenerate tableau, injected fault) surfaces as an error
// the serving path can degrade on instead of a dead process.
func (a *AA) safeRound(ctx context.Context, poly *geom.Polytope, geo *geom.Incremental, eps float64) (r *round, err error) {
	if perr := core.Guard(func() { r, err = a.computeRound(ctx, poly, geo, eps) }); perr != nil {
		return nil, perr
	}
	return r, err
}

// Run implements core.Algorithm (Algorithm 4: inference). It returns the
// point with the highest utility w.r.t. the outer-rectangle midpoint once
// the stopping condition of Lemma 9 holds.
//
// Serving is fault-tolerant, with the same contract as EA: per-round
// geometry failures and ranges emptied by contradictory answers end the
// session with a best-effort Degraded result scored against the last healthy
// inner-sphere center; only a dataset mismatch is still an error.
func (a *AA) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	return a.RunContext(context.Background(), ds, user, eps, obs)
}

// RunContext implements core.ContextAlgorithm: Run with per-round tracing,
// under the same contract as ea.RunContext — every interactive round becomes
// a "session.round" span with the LP geometry, candidate selection, scoring
// and oracle wait as children.
func (a *AA) RunContext(ctx context.Context, ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	if ds != a.ds && (ds.Len() != a.ds.Len() || ds.Dim() != a.ds.Dim()) {
		return core.Result{}, core.ErrDatasetMismatch
	}
	poly := geom.NewPolytope(a.ds.Dim())
	geo := a.newGeo(poly)
	var lastCenter []float64
	var qas []core.QA
	rounds, recovered := 0, 0
	degrade := func(reason string) (core.Result, error) {
		res := core.BestEffortResult(a.ds, lastCenter, rounds, qas, reason)
		res.PanicsRecovered = recovered
		return res, nil
	}
	fail := func(err error) (core.Result, error) {
		var pe *core.PanicError
		if errors.As(err, &pe) {
			recovered++
		}
		return degrade(err.Error())
	}
	cur, err := a.safeRound(ctx, poly, geo, eps)
	if err != nil {
		return fail(err)
	}
	for !cur.terminal && rounds < a.cfg.MaxRounds {
		lastCenter = cur.center
		rctx, rsp := trace.Start(ctx, "session.round")
		if rsp != nil {
			rsp.SetInt("round", int64(rounds+1))
			rsp.SetInt("candidates", int64(len(cur.actions)))
		}
		ai := a.agent.BestCtx(rctx, cur.state, feats(cur.actions))
		act := cur.actions[ai]
		pi, pj := a.ds.Points[act.I], a.ds.Points[act.J]
		osp := trace.StartLeaf(rctx, "oracle.wait")
		prefI := user.Prefer(pi, pj)
		osp.End()
		if prefI {
			a.addCut(rctx, poly, geo, geom.NewHalfspace(pi, pj))
		} else {
			a.addCut(rctx, poly, geo, geom.NewHalfspace(pj, pi))
		}
		rounds++
		a.maybeReduce(poly, geo, rounds)
		qas = append(qas, core.QA{I: act.I, J: act.J, PreferredI: prefI})
		if obs != nil {
			obs.Round(rounds, poly.Halfspaces)
		}
		cur, err = a.safeRound(rctx, poly, geo, eps)
		if rsp != nil {
			rsp.SetBool("error", err != nil)
			rsp.End()
		}
		if err != nil {
			return fail(err)
		}
	}
	if cur.degraded {
		return degrade(cur.reason)
	}
	if !cur.terminal && rounds >= a.cfg.MaxRounds {
		return degrade("round cap reached without the Lemma-9 stop")
	}
	idx := a.ds.TopPoint(cur.mid)
	return core.Result{
		PointIndex:      idx,
		Point:           a.ds.Points[idx],
		Rounds:          rounds,
		Trace:           qas,
		PanicsRecovered: recovered,
	}, nil
}
