package aa

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/fault"
	"isrl/internal/par"
)

// An LP panic injected while the worker pool is probing candidate cuts must
// flow worker → par.Do re-raise → safeRound's core.Guard → Degraded result:
// the process survives, the pool drains, and the session still answers.
func TestChaosInjectedLPPanicDegradesUnderPool(t *testing.T) {
	defer par.SetMaxWorkers(par.SetMaxWorkers(4))
	ds := testData(t, 300, 3, 61)
	// The fanned-out probe window only exists on the scratch path; the
	// incremental engine probes serially through its warm solver.
	cfg := smallCfg()
	cfg.ScratchGeometry = true
	a := New(ds, 0.1, cfg, rand.New(rand.NewSource(62)))
	// After skips the session's first serial LPs (inner ball, outer rect) so
	// the armed panic lands during the fanned-out feasibility probes.
	fault.Install(fault.NewPlan(63).Set(fault.PointLPSolve, fault.Spec{PanicProb: 1, After: 12}))
	defer fault.Install(nil)
	res, err := a.Run(ds, core.SimulatedUser{Utility: []float64{0.3, 0.4, 0.3}}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("expected degraded result, got %+v", res)
	}
	if res.PanicsRecovered == 0 {
		t.Fatal("expected at least one contained panic")
	}
	if res.Point == nil {
		t.Fatal("best-effort result missing a point")
	}
}
