package dataset

import (
	"math/rand"
	"sort"
	"testing"
)

// The parallel path must produce exactly the same skyline set as the
// sequential path.
func TestParallelSkylineMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Anticorrelated(rng, 30000, 3) // above parallelThreshold
	par := d.Skyline()

	seq := skylineBNL(d.Points)
	if len(seq) != par.Len() {
		t.Fatalf("parallel skyline %d points, sequential %d", par.Len(), len(seq))
	}
	key := func(p []float64) [3]float64 { return [3]float64{p[0], p[1], p[2]} }
	seen := map[[3]float64]bool{}
	for _, p := range seq {
		seen[key(p)] = true
	}
	for _, p := range par.Points {
		if !seen[key(p)] {
			t.Fatalf("parallel skyline contains %v not in sequential skyline", p)
		}
	}
}

func TestSkylineLargeNoDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Independent(rng, 25000, 4)
	sky := d.Skyline()
	if sky.Len() == 0 || sky.Len() >= d.Len() {
		t.Fatalf("suspicious skyline size %d of %d", sky.Len(), d.Len())
	}
	// Sample pairs: no skyline point dominates another.
	idx := rng.Perm(sky.Len())
	if len(idx) > 200 {
		idx = idx[:200]
	}
	sort.Ints(idx)
	for _, i := range idx {
		for _, j := range idx {
			if i != j && Dominates(sky.Points[i], sky.Points[j]) {
				t.Fatalf("skyline point %d dominates %d", i, j)
			}
		}
	}
}

func BenchmarkSkyline100k4d(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := Anticorrelated(rng, 100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Skyline()
	}
}
