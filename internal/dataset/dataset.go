// Package dataset provides the data substrate of the reproduction: the
// synthetic generators used by the paper (anti-correlated, correlated, and
// independent distributions in the style of the Börzsönyi skyline-operator
// generator), skyline preprocessing (the paper evaluates on skyline points
// only), (0,1] normalization, CSV I/O, and synthetic stand-ins for the
// paper's two real Kaggle datasets (Car and Player) built to match their
// size, dimensionality and correlation structure — see DESIGN.md §3.
package dataset

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"isrl/internal/par"
	"isrl/internal/vec"
)

// Dataset is a set of tuples, each a point in (0,1]^d where larger values
// are preferred (the paper's normalization).
type Dataset struct {
	Name   string
	Points [][]float64
	Attrs  []string // optional attribute names, len == Dim when present
}

// Dim returns the dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.Points) }

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, Attrs: append([]string(nil), d.Attrs...)}
	c.Points = make([][]float64, len(d.Points))
	for i, p := range d.Points {
		c.Points[i] = vec.Clone(p)
	}
	return c
}

// Fingerprint hashes the exact float bits of every tuple (FNV-1a over
// shape + IEEE-754 words). Two datasets share a fingerprint iff every
// dot-product an algorithm can compute over them is bit-identical — the
// precondition for replaying a journaled answer trace against "the same"
// dataset after a restart.
func (d *Dataset) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(d.Len()))
	mix(uint64(d.Dim()))
	for _, p := range d.Points {
		for _, v := range p {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// Validate checks the dataset invariants: rectangular shape and all values
// in (0,1].
func (d *Dataset) Validate() error {
	dim := d.Dim()
	for i, p := range d.Points {
		if len(p) != dim {
			return fmt.Errorf("dataset %q: point %d has %d attrs, want %d", d.Name, i, len(p), dim)
		}
		for j, v := range p {
			if !(v > 0 && v <= 1) || math.IsNaN(v) {
				return fmt.Errorf("dataset %q: point %d attr %d = %v outside (0,1]", d.Name, i, j, v)
			}
		}
	}
	return nil
}

// Normalize rescales every attribute to (0,1] by dividing by the column
// maximum after shifting the column minimum to a small positive floor. It
// returns the dataset for chaining. Columns with a single value map to 1.
func (d *Dataset) Normalize() *Dataset {
	dim := d.Dim()
	if dim == 0 {
		return d
	}
	const floor = 1e-6
	for j := 0; j < dim; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range d.Points {
			if p[j] < lo {
				lo = p[j]
			}
			if p[j] > hi {
				hi = p[j]
			}
		}
		span := hi - lo
		for _, p := range d.Points {
			if span == 0 {
				p[j] = 1
				continue
			}
			p[j] = floor + (1-floor)*(p[j]-lo)/span
		}
	}
	return d
}

// Dominates reports whether a dominates b: a ≥ b on every attribute and
// a > b on at least one (larger preferred).
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strictly = true
		}
	}
	return strictly
}

// Skyline returns the dataset restricted to its skyline — the points not
// dominated by any other point. These are exactly the tuples that can be
// top-1 under some non-negative utility vector, the preprocessing every
// compared algorithm applies.
//
// The core is block-nested-loop over points presorted by attribute sum, so
// a point can only be dominated by an earlier one. Above parallelThreshold
// points the work is partitioned across CPUs: local skylines are computed
// per chunk concurrently, then merged with a final pass — the standard
// divide-and-conquer trick, which keeps the paper's n = 100k–1M workloads
// tractable.
func (d *Dataset) Skyline() *Dataset {
	pts := d.Points
	if len(pts) > parallelThreshold {
		pts = parallelLocalSkylines(pts)
	}
	sky := skylineBNL(pts)
	return &Dataset{Name: d.Name + "-skyline", Points: sky, Attrs: append([]string(nil), d.Attrs...)}
}

const parallelThreshold = 20000

// skylineBNL is sorted block-nested-loop skyline over the given points.
func skylineBNL(pts [][]float64) [][]float64 {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sums := make([]float64, len(pts))
	for i, p := range pts {
		sums[i] = vec.Sum(p)
	}
	sort.Slice(idx, func(a, b int) bool { return sums[idx[a]] > sums[idx[b]] })

	var sky [][]float64
	for _, i := range idx {
		p := pts[i]
		dominated := false
		for _, s := range sky {
			if Dominates(s, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return sky
}

// parallelLocalSkylines reduces pts to the union of per-chunk skylines
// computed concurrently. Any globally dominated point is dominated within
// its own chunk or survives into the final merge, so correctness is
// preserved.
func parallelLocalSkylines(pts [][]float64) [][]float64 {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		return pts
	}
	chunk := (len(pts) + workers - 1) / workers
	locals := make([][][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pts) {
			break
		}
		hi := lo + chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			locals[w] = skylineBNL(pts[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	var merged [][]float64
	for _, l := range locals {
		merged = append(merged, l...)
	}
	return merged
}

// TopPoint returns the index of the point with the highest utility w.r.t. u.
func (d *Dataset) TopPoint(u []float64) int {
	best, bi := math.Inf(-1), -1
	for i, p := range d.Points {
		if s := vec.Dot(u, p); s > best {
			best, bi = s, i
		}
	}
	return bi
}

// scoreChunk is the number of points one pool task scores in Scores; large
// enough that dispatch overhead is amortized, small enough that datasets of
// a few thousand points still fan out.
const scoreChunk = 512

// Scores writes u·pᵢ for every point into dst (allocated when nil or
// mis-sized) and returns it. Chunks of points are scored by the worker
// pool; each task owns a disjoint index range, so the output is identical
// for any worker count.
func (d *Dataset) Scores(u []float64, dst []float64) []float64 {
	n := len(d.Points)
	if len(dst) != n {
		dst = make([]float64, n)
	}
	chunks := (n + scoreChunk - 1) / scoreChunk
	par.Do(chunks, func(c int) {
		lo, hi := c*scoreChunk, (c+1)*scoreChunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			dst[i] = vec.Dot(u, d.Points[i])
		}
	})
	return dst
}

// TopPoints is TopPoint for a batch of utility vectors, fanned out across
// the worker pool with one task per vector; slot i of the result depends
// only on us[i], so the output is deterministic under any parallelism.
func (d *Dataset) TopPoints(us [][]float64, dst []int) []int {
	if len(dst) != len(us) {
		dst = make([]int, len(us))
	}
	par.Do(len(us), func(i int) {
		dst[i] = d.TopPoint(us[i])
	})
	return dst
}

// MaxUtility returns max over points of u·p.
func (d *Dataset) MaxUtility(u []float64) float64 {
	return vec.Dot(u, d.Points[d.TopPoint(u)])
}

// RegretRatio returns the paper's regret ratio of point q over d w.r.t. u:
// (max_p u·p − u·q) / max_p u·p.
func (d *Dataset) RegretRatio(q, u []float64) float64 {
	m := d.MaxUtility(u)
	if m <= 0 {
		return 0
	}
	return (m - vec.Dot(u, q)) / m
}
