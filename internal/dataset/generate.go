package dataset

import (
	"fmt"
	"math/rand"
)

// Generate builds a named dataset kind: "anti", "indep", "corr", "car", or
// "player". n and d apply only to the synthetic distributions; the car and
// player stand-ins have fixed shapes matching the paper's real datasets.
func Generate(kind string, rng *rand.Rand, n, d int) (*Dataset, error) {
	switch kind {
	case "anti":
		return Anticorrelated(rng, n, d), nil
	case "indep":
		return Independent(rng, n, d), nil
	case "corr":
		return Correlated(rng, n, d), nil
	case "car":
		return SyntheticCar(rng), nil
	case "player":
		return SyntheticPlayer(rng), nil
	}
	return nil, fmt.Errorf("dataset: unknown kind %q (anti, indep, corr, car, player)", kind)
}

// Anticorrelated generates n points in (0,1]^d with anti-correlated
// attributes, after the generator of Börzsönyi et al. used by the paper:
// each point sits near the hyperplane Σxᵢ = d/2, so a point good in one
// attribute tends to be poor in the others. Anti-correlated data maximizes
// skyline size, the stress case for interactive regret algorithms.
func Anticorrelated(rng *rand.Rand, n, d int) *Dataset {
	checkShape(n, d)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		// Sample a plane offset tightly concentrated around 0.5·d, then
		// spread the budget across attributes with pairwise compensation.
		// The tight concentration is what makes the benchmark hard: no
		// point is good in every attribute, so skylines are huge and no
		// tuple has small regret over the whole utility space.
		for {
			total := normClamp(rng, 0.5, 0.03) * float64(d)
			ok := spreadBudget(rng, p, total)
			if ok {
				break
			}
		}
		pts[i] = p
	}
	ds := &Dataset{Name: fmt.Sprintf("anti-%dd", d), Points: pts}
	return ds.Normalize()
}

// spreadBudget distributes total over p within (0,1); reports failure when
// the budget cannot fit.
func spreadBudget(rng *rand.Rand, p []float64, total float64) bool {
	d := len(p)
	if total <= 0 || total >= float64(d) {
		return false
	}
	rem := total
	for i := 0; i < d-1; i++ {
		left := float64(d - i - 1)
		lo := rem - left // remaining attrs can absorb at most `left`
		if lo < 0 {
			lo = 0
		}
		hi := rem
		if hi > 1 {
			hi = 1
		}
		if lo > hi {
			return false
		}
		// Bias toward an even split for the anti-correlated ridge.
		v := lo + (hi-lo)*rng.Float64()
		p[i] = v
		rem -= v
	}
	if rem < 0 || rem > 1 {
		return false
	}
	p[d-1] = rem
	// Shuffle so no attribute is systematically the residual.
	rng.Shuffle(d, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return true
}

// Independent generates n points with i.i.d. uniform attributes.
func Independent(rng *rand.Rand, n, d int) *Dataset {
	checkShape(n, d)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	ds := &Dataset{Name: fmt.Sprintf("indep-%dd", d), Points: pts}
	return ds.Normalize()
}

// Correlated generates n points whose attributes share a latent quality
// factor, yielding small skylines (the easy case).
func Correlated(rng *rand.Rand, n, d int) *Dataset {
	checkShape(n, d)
	pts := make([][]float64, n)
	for i := range pts {
		q := rng.Float64()
		p := make([]float64, d)
		for j := range p {
			p[j] = clamp01(q + rng.NormFloat64()*0.1)
		}
		pts[i] = p
	}
	ds := &Dataset{Name: fmt.Sprintf("corr-%dd", d), Points: pts}
	return ds.Normalize()
}

// SyntheticCar builds the stand-in for the paper's Kaggle used-car dataset:
// 10,668 cars × 3 benefit attributes — affordability (inverse price),
// condition (inverse mileage) and fuel economy (mpg). Affordability and
// condition are anti-correlated through a latent quality factor (newer,
// lower-mileage cars cost more), and fuel economy correlates mildly with
// affordability (cheaper cars are smaller). See DESIGN.md §3.
func SyntheticCar(rng *rand.Rand) *Dataset {
	const (
		n = 10668
		d = 3
	)
	pts := make([][]float64, n)
	for i := range pts {
		// Cars live near a budget surface: for a fixed amount of money you
		// trade affordability, condition (newness/low mileage) and fuel
		// economy against each other. The surface spread keeps the skyline
		// large, matching the preprocessing regime of the paper's
		// experiments. A vehicle-class factor (compact/sedan/truck) scales
		// fuel economy independently of the budget split.
		p := make([]float64, d)
		for {
			total := normClamp(rng, 0.5, 0.05) * float64(d)
			if spreadBudget(rng, p, total) {
				break
			}
		}
		classEconomy := [3]float64{1.0, 0.85, 0.7}[rng.Intn(3)]
		p[2] = clamp01(p[2] * classEconomy)
		pts[i] = p
	}
	ds := &Dataset{
		Name:   "car",
		Points: pts,
		Attrs:  []string{"affordability", "condition", "economy"},
	}
	return ds.Normalize()
}

// SyntheticPlayer builds the stand-in for the paper's Kaggle NBA players
// dataset: 17,386 players × 20 attributes (points, rebounds, assists, ...).
// A latent overall-skill factor drives every stat, with role factors that
// trade scoring off against defense/playmaking so the skyline stays large in
// 20 dimensions, matching the regime in which the paper compares AA with
// SinglePass. See DESIGN.md §3.
func SyntheticPlayer(rng *rand.Rand) *Dataset {
	const (
		n = 17386
		d = 20
	)
	attrs := []string{
		"games", "minutes", "points", "fgm", "fga", "fg3m", "fg3a", "ftm",
		"fta", "oreb", "dreb", "reb", "ast", "stl", "blk", "tov_inv",
		"pf_inv", "plus_minus", "eff", "ws",
	}
	// Loadings: skill plus one of three roles (scorer, big, playmaker).
	roleLoad := [3][20]float64{}
	for j := 0; j < d; j++ {
		roleLoad[0][j] = 0.1
		roleLoad[1][j] = 0.1
		roleLoad[2][j] = 0.1
	}
	for _, j := range []int{2, 3, 4, 5, 6, 7, 8} { // scoring block
		roleLoad[0][j] = 0.8
	}
	for _, j := range []int{9, 10, 11, 14, 16} { // big-man block
		roleLoad[1][j] = 0.8
	}
	for _, j := range []int{12, 13, 15, 17} { // playmaker block
		roleLoad[2][j] = 0.8
	}
	pts := make([][]float64, n)
	for i := range pts {
		skill := rng.Float64()
		role := rng.Intn(3)
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			base := 0.35*skill + 0.45*roleLoad[role][j]*skill
			p[j] = clamp01(base + 0.25*rng.Float64())
		}
		pts[i] = p
	}
	ds := &Dataset{Name: "player", Points: pts, Attrs: attrs}
	return ds.Normalize()
}

func checkShape(n, d int) {
	if n <= 0 || d < 2 {
		panic(fmt.Sprintf("dataset: invalid shape n=%d d=%d", n, d))
	}
}

func clamp01(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

func normClamp(rng *rand.Rand, mean, std float64) float64 {
	v := mean + rng.NormFloat64()*std
	if v < 0.05 {
		v = 0.05
	}
	if v > 0.95 {
		v = 0.95
	}
	return v
}
