package dataset

import (
	"math/rand"
	"testing"
)

// FuzzSkyline checks the two skyline invariants on randomized datasets of
// every supported distribution: no survivor is dominated, and the maximum
// utility is preserved for random utility vectors.
func FuzzSkyline(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(2), uint8(0))
	f.Add(int64(2), uint16(200), uint8(4), uint8(1))
	f.Add(int64(3), uint16(120), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, d8, kind uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(n16)%400
		d := 2 + int(d8)%4
		var ds *Dataset
		switch kind % 3 {
		case 0:
			ds = Anticorrelated(rng, n, d)
		case 1:
			ds = Independent(rng, n, d)
		default:
			ds = Correlated(rng, n, d)
		}
		sky := ds.Skyline()
		if sky.Len() == 0 {
			t.Fatal("empty skyline")
		}
		for i, a := range sky.Points {
			for j, b := range sky.Points {
				if i != j && Dominates(a, b) {
					t.Fatalf("skyline point dominates another")
				}
			}
			if i > 40 {
				break // bound the quadratic check on large skylines
			}
		}
		// Top-1 preservation for a few random utility vectors.
		for k := 0; k < 5; k++ {
			u := make([]float64, d)
			var s float64
			for i := range u {
				u[i] = rng.Float64() + 1e-9
				s += u[i]
			}
			for i := range u {
				u[i] /= s
			}
			if diff := ds.MaxUtility(u) - sky.MaxUtility(u); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("skyline changed max utility by %v", diff)
			}
		}
	})
}
