package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset with a header row of attribute names (or
// generated a1..ad names when Attrs is unset).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dim()
	hdr := d.Attrs
	if len(hdr) != dim {
		hdr = make([]string, dim)
		for j := range hdr {
			hdr[j] = fmt.Sprintf("a%d", j+1)
		}
	}
	if err := cw.Write(hdr); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, dim)
	for _, p := range d.Points {
		for j, v := range p {
			rec[j] = strconv.FormatFloat(v, 'g', 17, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any numeric CSV with a
// header row).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("dataset: csv %q needs a header and at least one row", name)
	}
	attrs := recs[0]
	dim := len(attrs)
	pts := make([][]float64, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != dim {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), dim)
		}
		p := make([]float64, dim)
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d field %d: %w", i+1, j, err)
			}
			p[j] = v
		}
		pts = append(pts, p)
	}
	return &Dataset{Name: name, Points: pts, Attrs: attrs}, nil
}

// SaveFile writes the dataset to path as CSV.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a CSV dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, path)
}
