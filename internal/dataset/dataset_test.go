package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"isrl/internal/geom"
	"isrl/internal/vec"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0.5, 0.5}, true},
		{[]float64{1, 0.5}, []float64{1, 0.5}, false}, // equal: not strict
		{[]float64{1, 0.4}, []float64{0.5, 0.5}, false},
		{[]float64{1, 0.5}, []float64{1, 0.4}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSkylineSmall(t *testing.T) {
	// The paper's Table III: p2 (0.3,0.7) and p4 (0.7,0.4) are dominated
	// by p3 (0.5,0.8)? p2 yes (0.5>0.3, 0.8>0.7); p4 no (0.5<0.7).
	d := &Dataset{Points: [][]float64{
		{1e-6, 1.0}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1.0, 1e-6},
	}}
	sky := d.Skyline()
	if sky.Len() != 4 {
		t.Fatalf("skyline size %d want 4: %v", sky.Len(), sky.Points)
	}
	for _, p := range sky.Points {
		if p[0] == 0.3 && p[1] == 0.7 {
			t.Error("dominated point p2 kept in skyline")
		}
	}
}

// Property: no skyline point dominates another, and every removed point is
// dominated by some skyline point.
func TestSkylineInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := Independent(rng, 300, 2+rng.Intn(3))
		sky := d.Skyline()
		for i, a := range sky.Points {
			for j, b := range sky.Points {
				if i != j && Dominates(a, b) {
					t.Fatalf("skyline point dominates another")
				}
			}
		}
		for _, p := range d.Points {
			inSky := false
			dominated := false
			for _, s := range sky.Points {
				if &s[0] == &p[0] {
					inSky = true
					break
				}
				if Dominates(s, p) {
					dominated = true
				}
			}
			if !inSky && !dominated {
				t.Fatalf("removed point %v not dominated", p)
			}
		}
	}
}

// Property: skyline preserves the top-1 point for any utility vector.
func TestSkylinePreservesTop1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Anticorrelated(rng, 500, 4)
	sky := d.Skyline()
	for trial := 0; trial < 50; trial++ {
		u := geom.SampleSimplex(rng, 4)
		if math.Abs(d.MaxUtility(u)-sky.MaxUtility(u)) > 1e-12 {
			t.Fatalf("max utility changed by skyline: %v vs %v", d.MaxUtility(u), sky.MaxUtility(u))
		}
	}
}

func TestGeneratorsShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []*Dataset{
		Anticorrelated(rng, 200, 4),
		Independent(rng, 200, 3),
		Correlated(rng, 200, 5),
	} {
		if d.Len() != 200 {
			t.Errorf("%s: len %d", d.Name, d.Len())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// Anti-correlated data must have a much larger skyline than correlated data
// of the same shape — the generator's defining property.
func TestAnticorrelatedSkylineLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	anti := Anticorrelated(rng, 2000, 4).Skyline().Len()
	corr := Correlated(rng, 2000, 4).Skyline().Len()
	if anti < 3*corr {
		t.Errorf("skyline sizes anti=%d corr=%d; want anti ≫ corr", anti, corr)
	}
}

// Pairwise correlation sign check for the anti-correlated generator.
func TestAnticorrelatedNegativeCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Anticorrelated(rng, 3000, 2)
	if corr := pearson(d, 0, 1); corr > -0.3 {
		t.Errorf("corr(a1,a2) = %v, want strongly negative", corr)
	}
}

func pearson(d *Dataset, i, j int) float64 {
	n := float64(d.Len())
	var mi, mj float64
	for _, p := range d.Points {
		mi += p[i]
		mj += p[j]
	}
	mi /= n
	mj /= n
	var sij, sii, sjj float64
	for _, p := range d.Points {
		sij += (p[i] - mi) * (p[j] - mj)
		sii += (p[i] - mi) * (p[i] - mi)
		sjj += (p[j] - mj) * (p[j] - mj)
	}
	return sij / math.Sqrt(sii*sjj)
}

func TestSyntheticCar(t *testing.T) {
	d := SyntheticCar(rand.New(rand.NewSource(6)))
	if d.Len() != 10668 || d.Dim() != 3 {
		t.Fatalf("car shape %dx%d", d.Len(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Affordability vs condition must be anti-correlated (price trade-off).
	if corr := pearson(d, 0, 1); corr > -0.3 {
		t.Errorf("corr(affordability,condition) = %v, want negative", corr)
	}
	// A large skyline is the point of the benchmark: the interaction must
	// not be trivial.
	if s := d.Skyline().Len(); s < 100 {
		t.Errorf("car skyline = %d, want ≥ 100", s)
	}
}

func TestSyntheticPlayer(t *testing.T) {
	d := SyntheticPlayer(rand.New(rand.NewSource(7)))
	if d.Len() != 17386 || d.Dim() != 20 {
		t.Fatalf("player shape %dx%d", d.Len(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Attrs) != 20 {
		t.Errorf("attrs %d", len(d.Attrs))
	}
	// Stats share a latent skill: scoring stats positively correlated.
	if corr := pearson(d, 2, 3); corr < 0.2 {
		t.Errorf("corr(points,fgm) = %v, want positive", corr)
	}
	// High-dimensional skyline must be large (the hard regime).
	sub := &Dataset{Points: d.Points[:3000]}
	if s := sub.Skyline().Len(); s < 500 {
		t.Errorf("player skyline of 3000-sample = %d, want large", s)
	}
}

func TestRegretRatioExamples(t *testing.T) {
	// The paper's Example 2: u=(0.3,0.7); regratio(p2) = (0.71−0.58)/0.71.
	d := &Dataset{Points: [][]float64{
		{1e-9, 1.0}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1.0, 1e-9},
	}}
	u := []float64{0.3, 0.7}
	got := d.RegretRatio(d.Points[1], u)
	want := (0.71 - 0.58) / 0.71
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("regret ratio = %v want %v", got, want)
	}
	// Top point has zero regret.
	if rr := d.RegretRatio(d.Points[2], u); rr != 0 {
		t.Errorf("top point regret = %v", rr)
	}
	if d.TopPoint(u) != 2 {
		t.Errorf("TopPoint = %d want 2", d.TopPoint(u))
	}
}

// Property: regret ratio is always in [0, 1] for in-dataset points.
func TestRegretRatioBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := Independent(rng, 100, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := geom.SampleSimplex(r, 3)
		q := d.Points[r.Intn(d.Len())]
		rr := d.RegretRatio(q, u)
		return rr >= 0 && rr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	d := &Dataset{Points: [][]float64{{10, 5}, {20, 5}, {15, 5}}}
	d.Normalize()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Points[1][0] != 1 {
		t.Errorf("max must map to 1, got %v", d.Points[1][0])
	}
	if d.Points[0][1] != 1 {
		t.Errorf("constant column must map to 1, got %v", d.Points[0][1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := Anticorrelated(rng, 50, 3)
	d.Attrs = []string{"x", "y", "z"}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("shape changed: %dx%d", back.Len(), back.Dim())
	}
	for i := range d.Points {
		if !vec.Equal(d.Points[i], back.Points[i], 0) {
			t.Fatalf("row %d changed: %v vs %v", i, d.Points[i], back.Points[i])
		}
	}
	if back.Attrs[2] != "z" {
		t.Errorf("attrs lost: %v", back.Attrs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n"), "empty"); err == nil {
		t.Error("header-only csv must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,notanumber\n"), "bad"); err == nil {
		t.Error("non-numeric field must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1\n"), "ragged"); err == nil {
		t.Error("ragged row must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := &Dataset{Name: "x", Points: [][]float64{{0.5, 0.5}}}
	c := d.Clone()
	c.Points[0][0] = 0.9
	if d.Points[0][0] != 0.5 {
		t.Error("clone shares storage")
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	d := &Dataset{Points: [][]float64{{0.5, 0}}}
	if err := d.Validate(); err == nil {
		t.Error("zero attribute must fail validation (domain is (0,1])")
	}
	d2 := &Dataset{Points: [][]float64{{0.5, 0.5}, {0.5}}}
	if err := d2.Validate(); err == nil {
		t.Error("ragged dataset must fail validation")
	}
}
