package geom

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"isrl/internal/fault"
	"isrl/internal/par"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// SampleSimplex draws one utility vector uniformly from the probability
// simplex using the standard exponential-spacings construction.
func SampleSimplex(rng *rand.Rand, d int) []float64 {
	u := make([]float64, d)
	var s float64
	for i := range u {
		u[i] = rng.ExpFloat64()
		s += u[i]
	}
	for i := range u {
		u[i] /= s
	}
	return u
}

// SampleOptions tunes hit-and-run sampling inside a utility range.
type SampleOptions struct {
	BurnIn int // steps discarded before the first sample (default 5·d)
	Thin   int // steps between retained samples (default d)
	Chains int // independent chains run in parallel (default 4, capped at n)

	// Start, when non-nil and still inside R, seeds every chain from this
	// point and skips the inner-ball LP entirely — the cross-round warm
	// start for callers that already know an interior point (a previously
	// computed Chebyshev center). A nil or no-longer-contained Start falls
	// back to solving for the ball center as before. Note the fallback also
	// restores the empty-interior error; a caller-provided Start bypasses
	// that check.
	Start []float64
}

// defaultChains is the number of independent hit-and-run chains Sample
// decomposes into. It is a fixed constant — NOT the worker count — so a
// seeded run draws the exact same points whether the chains execute on one
// goroutine or many.
const defaultChains = 4

// Sample draws n points approximately uniformly from R with hit-and-run,
// walking inside the affine subspace Σu = 1. The work is split across
// independent chains (SampleOptions.Chains), each starting at the inner
// ball center with its own RNG stream seeded in chain order from rng;
// chain c writes its quota into a fixed slice range, so the output is a
// deterministic function of (rng state, n, opts) regardless of how many
// workers execute the chains. It fails when R is empty or has no interior.
//
// Hit-and-run is the workhorse behind the paper's Lemma-5 sampling step: the
// number of sample vectors falling inside a terminal polyhedron tracks its
// volume fraction.
func (p *Polytope) Sample(rng *rand.Rand, n int, opts SampleOptions) ([][]float64, error) {
	return p.SampleCtx(context.Background(), rng, n, opts)
}

// SampleCtx is Sample with tracing: the whole draw — inner-ball LP plus the
// chain fan-out — is timed as a "geom.sample" span annotated with the point
// and chain counts.
func (p *Polytope) SampleCtx(ctx context.Context, rng *rand.Rand, n int, opts SampleOptions) ([][]float64, error) {
	ctx, sp := trace.Start(ctx, "geom.sample")
	defer sp.End()
	start := time.Now()
	defer func() { sampleMS.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	sampleCalls.Inc()
	samplePoints.Add(int64(n))
	if err := fault.Hit(fault.PointSample); err != nil {
		return nil, fmt.Errorf("geom: sample: %w", err)
	}
	d := p.Dim
	from := opts.Start
	if len(from) != d || !p.Contains(from, 1e-7) {
		ib, err := p.InnerBallCtx(ctx)
		if err != nil {
			return nil, err
		}
		if ib.Radius <= 0 {
			return nil, fmt.Errorf("geom: sample: polytope has empty interior (radius %g)", ib.Radius)
		}
		from = ib.Center
	}
	if opts.BurnIn == 0 {
		opts.BurnIn = 5 * d
	}
	if opts.Thin == 0 {
		opts.Thin = d
	}
	if opts.Chains == 0 {
		opts.Chains = defaultChains
	}
	chains := opts.Chains
	if chains > n {
		chains = n
	}
	if n == 0 {
		return nil, nil
	}
	// Per-chain RNG streams, seeded in chain order from the caller's rng.
	streams := par.SeedStreams(rng, chains)
	// One flat backing array instead of n row allocations; chains fill
	// disjoint pre-cut rows, so sharing it is race-free.
	out := make([][]float64, n)
	flat := make([]float64, n*d)
	for k := range out {
		out[k] = flat[k*d : (k+1)*d : (k+1)*d]
	}
	base, extra := n/chains, n%chains
	offset := make([]int, chains+1)
	for c := 0; c < chains; c++ {
		q := base
		if c < extra {
			q++
		}
		offset[c+1] = offset[c] + q
	}
	if sp != nil {
		sp.SetInt("points", int64(n))
		sp.SetInt("chains", int64(chains))
	}
	par.DoCtx(ctx, chains, func(c int) {
		p.runChain(streams[c], from, opts, out[offset[c]:offset[c+1]])
	})
	return out, nil
}

// runChain walks one hit-and-run chain from start, filling every
// pre-allocated slot of out with a retained sample. It touches only
// read-only polytope state and its own buffers, so chains may run
// concurrently.
func (p *Polytope) runChain(rng *rand.Rand, start []float64, opts SampleOptions, out [][]float64) {
	cur := vec.Clone(start)
	dir := make([]float64, len(start))
	steps := opts.BurnIn + len(out)*opts.Thin
	k := 0
	for s := 0; s < steps; s++ {
		p.randomZeroSumDir(rng, dir)
		lo, hi, ok := p.chord(cur, dir)
		if !ok {
			// Numerical corner: restart from the interior start point.
			copy(cur, start)
			continue
		}
		t := lo + rng.Float64()*(hi-lo)
		vec.AddScaled(cur, cur, t, dir)
		clampSimplex(cur)
		if s >= opts.BurnIn && (s-opts.BurnIn)%opts.Thin == opts.Thin-1 {
			copy(out[k], cur)
			k++
		}
	}
	// The restart branch skips retention slots; backfill any misses with
	// the last position so every slot is a valid interior point.
	for ; k < len(out); k++ {
		copy(out[k], cur)
	}
}

// randomZeroSumDir fills dir with a unit Gaussian direction projected onto
// the zero-sum hyperplane (tangent space of Σu = 1).
func (p *Polytope) randomZeroSumDir(rng *rand.Rand, dir []float64) {
	d := len(dir)
	for {
		var mean float64
		for i := range dir {
			dir[i] = rng.NormFloat64()
			mean += dir[i]
		}
		mean /= float64(d)
		for i := range dir {
			dir[i] -= mean
		}
		if vec.Normalize(dir) > 1e-12 {
			return
		}
	}
}

// chord intersects the line cur + t·dir with R, returning the feasible
// t-interval. ok is false when the interval is empty or degenerate.
func (p *Polytope) chord(cur, dir []float64) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(-1), math.Inf(1)
	clip := func(num, den float64) bool {
		// Constraint: num + t·den ≥ 0.
		const tiny = 1e-14
		if den > tiny {
			if t := -num / den; t > lo {
				lo = t
			}
		} else if den < -tiny {
			if t := -num / den; t < hi {
				hi = t
			}
		} else if num < -1e-10 {
			return false
		}
		return true
	}
	for i := 0; i < p.Dim; i++ { // uᵢ ≥ 0
		if !clip(cur[i], dir[i]) {
			return 0, 0, false
		}
	}
	for _, h := range p.Halfspaces {
		if !clip(vec.Dot(h.Normal, cur), vec.Dot(h.Normal, dir)) {
			return 0, 0, false
		}
	}
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, 0, false
	}
	return lo, hi, true
}

// clampSimplex repairs tiny numerical drift: negatives are zeroed and the
// vector is renormalized to sum 1.
func clampSimplex(u []float64) {
	var s float64
	for i := range u {
		if u[i] < 0 {
			u[i] = 0
		}
		s += u[i]
	}
	if s > 0 {
		for i := range u {
			u[i] /= s
		}
	}
}
