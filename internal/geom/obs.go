package geom

import (
	"isrl/internal/lp"
	"isrl/internal/obs"
)

// Hot-path instrumentation. LP solving and hit-and-run sampling dominate
// the cost of every polytope-maintaining algorithm, so their call volumes
// are counted into the process-wide registry: perf PRs get a baseline, and
// a live server exposes them at /metrics. Counters are single atomic adds;
// the overhead is noise next to one simplex pivot.
var (
	lpSolves     = obs.Default().Counter("geom.lp_solves")
	sampleCalls  = obs.Default().Counter("geom.sample_calls")
	samplePoints = obs.Default().Counter("geom.sample_points")
	vertexEnums  = obs.Default().Counter("geom.vertex_enums")
)

// solveLP is lp.Solve with a call counter — every geometry-layer LP goes
// through here.
func solveLP(p *lp.Problem) lp.Result {
	lpSolves.Inc()
	return lp.Solve(p)
}
