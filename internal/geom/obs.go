package geom

import (
	"context"
	"time"

	"isrl/internal/lp"
	"isrl/internal/obs"
)

// Hot-path instrumentation. LP solving and hit-and-run sampling dominate
// the cost of every polytope-maintaining algorithm, so their call volumes
// are counted into the process-wide registry: perf PRs get a baseline, and
// a live server exposes them at /metrics. Counters are single atomic adds;
// the overhead is noise next to one simplex pivot.
var (
	lpSolves     = obs.Default().Counter("geom.lp_solves")
	sampleCalls  = obs.Default().Counter("geom.sample_calls")
	samplePoints = obs.Default().Counter("geom.sample_points")
	vertexEnums  = obs.Default().Counter("geom.vertex_enums")

	// Duration histograms over MicroBuckets: one LP solve or sampling pass
	// runs in microseconds, below the floor of the default latency buckets.
	lpSolveMS  = obs.Default().Histogram("geom.lp_solve_ms", obs.MicroBuckets())
	sampleMS   = obs.Default().Histogram("geom.sample_ms", obs.MicroBuckets())
	verticesMS = obs.Default().Histogram("geom.vertices_ms", obs.MicroBuckets())

	// Round-incremental engine counters: how often a new halfspace was folded
	// into the maintained vertex set by a local clip, how often the engine had
	// to rebuild from scratch, how often it degraded mid-operation (numeric
	// edge or injected fault), and the cache hit volumes that replace repeat
	// enumerations and LP probes.
	incClips     = obs.Default().Counter("geom.inc.clips")
	incRebuilds  = obs.Default().Counter("geom.inc.rebuilds")
	incFallbacks = obs.Default().Counter("geom.inc.fallbacks")
	incVertHits  = obs.Default().Counter("geom.inc.vertex_hits")
	incProbeHits = obs.Default().Counter("geom.inc.probe_cache_hits")
)

// solveLP is lp.Solve with a call counter and duration histogram — every
// geometry-layer LP goes through here or through solveLPCtx.
func solveLP(p *lp.Problem) lp.Result {
	return solveLPCtx(context.Background(), p)
}

// solveLPCtx additionally attaches an lp.solve span when ctx carries an
// active trace, so a slow round's trace shows which LPs ate the time.
func solveLPCtx(ctx context.Context, p *lp.Problem) lp.Result {
	lpSolves.Inc()
	start := time.Now()
	res := lp.SolveCtx(ctx, p)
	lpSolveMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return res
}
