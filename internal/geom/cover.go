package geom

import (
	"isrl/internal/vec"
)

// GreedyCover selects up to m representative vectors from points using the
// paper's DBSCAN-inspired greedy maximum-coverage rule (§IV-B, Lemma 2):
// each point e covers its neighborhood Sₑ = {e' : ‖e'−e‖ ≤ dEps}; the greedy
// pass repeatedly picks the point covering the most still-uncovered points
// until m are chosen or everything is covered. The classic greedy bound
// gives a (1−1/e)-approximation of the NP-hard optimum.
//
// The returned slice holds indices into points, in selection order.
func GreedyCover(points [][]float64, m int, dEps float64) []int {
	n := len(points)
	if n == 0 || m <= 0 {
		return nil
	}
	if m > n {
		m = n
	}
	// Neighborhood sets. O(n²d) — n here is the number of polytope vertices,
	// small by construction.
	nbr := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if vec.Dist(points[i], points[j]) <= dEps {
				nbr[i] = append(nbr[i], j)
			}
		}
	}
	covered := make([]bool, n)
	chosen := make([]int, 0, m)
	picked := make([]bool, n)
	for len(chosen) < m {
		best, bestGain := -1, 0
		for i := 0; i < n; i++ {
			if picked[i] {
				continue
			}
			gain := 0
			for _, j := range nbr[i] {
				if !covered[j] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // everything covered
		}
		picked[best] = true
		chosen = append(chosen, best)
		for _, j := range nbr[best] {
			covered[j] = true
		}
	}
	return chosen
}

// CoverageOf returns how many of points are within dEps of at least one of
// the points indexed by chosen. Used by tests to check greedy quality.
func CoverageOf(points [][]float64, chosen []int, dEps float64) int {
	covered := 0
	for _, p := range points {
		for _, ci := range chosen {
			if vec.Dist(p, points[ci]) <= dEps {
				covered++
				break
			}
		}
	}
	return covered
}
