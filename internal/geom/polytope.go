package geom

import (
	"context"
	"errors"
	"fmt"
	"math"

	"isrl/internal/lp"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// Polytope is a utility range R = U ∩ ⋂ₖ {wₖ·u ≥ 0}: the probability simplex
// intersected with the homogeneous halfspaces accumulated during interaction.
// The zero value is unusable; construct with NewPolytope.
type Polytope struct {
	Dim        int
	Halfspaces []Halfspace

	// vertsDirty marks the cached vertex set stale.
	verts      [][]float64
	vertsDirty bool

	// Mutation generations, read by the round-incremental engine to detect
	// changes made behind its back: gen counts every structural mutation,
	// grow only those that may enlarge R (halfspace drops during feasibility
	// repair) — the ones that invalidate monotone negative-probe caches.
	gen  uint64
	grow uint64
}

// NewPolytope returns the full utility space U in d dimensions.
func NewPolytope(d int) *Polytope {
	if d < 2 {
		panic(fmt.Sprintf("geom: polytope dimension %d < 2", d))
	}
	return &Polytope{Dim: d, vertsDirty: true}
}

// Clone returns a deep copy of p (vertex cache included).
func (p *Polytope) Clone() *Polytope {
	c := &Polytope{Dim: p.Dim, vertsDirty: p.vertsDirty, gen: p.gen, grow: p.grow}
	c.Halfspaces = make([]Halfspace, len(p.Halfspaces))
	for i, h := range p.Halfspaces {
		c.Halfspaces[i] = Halfspace{Normal: vec.Clone(h.Normal)}
	}
	if p.verts != nil {
		c.verts = make([][]float64, len(p.verts))
		for i, v := range p.verts {
			c.verts[i] = vec.Clone(v)
		}
	}
	return c
}

// Add intersects p with h.
func (p *Polytope) Add(h Halfspace) {
	if len(h.Normal) != p.Dim {
		panic(fmt.Sprintf("geom: halfspace dim %d, polytope dim %d", len(h.Normal), p.Dim))
	}
	p.Halfspaces = append(p.Halfspaces, h)
	p.vertsDirty = true
	p.gen++
}

// Contains reports whether u lies in R within tol.
func (p *Polytope) Contains(u []float64, tol float64) bool {
	if len(u) != p.Dim {
		return false
	}
	var s float64
	for _, ui := range u {
		if ui < -tol {
			return false
		}
		s += ui
	}
	if s < 1-1e-6 || s > 1+1e-6 {
		return false
	}
	for _, h := range p.Halfspaces {
		if !h.Contains(u, tol) {
			return false
		}
	}
	return true
}

// baseProblem returns an LP skeleton with u ∈ U and all halfspace rows, plus
// room for extra variables appended after the d utility coordinates.
func (p *Polytope) baseProblem(extraVars int) *lp.Problem {
	d := p.Dim
	prob := &lp.Problem{NumVars: d + extraVars, Maximize: make([]float64, d+extraVars)}
	ones := make([]float64, d+extraVars)
	for i := 0; i < d; i++ {
		ones[i] = 1
	}
	prob.AddEQ(ones, 1)
	for _, h := range p.Halfspaces {
		row := make([]float64, d+extraVars)
		copy(row, h.Normal)
		prob.AddGE(row, 0)
	}
	return prob
}

// IsEmpty reports whether R has no point (within LP tolerance).
func (p *Polytope) IsEmpty() bool {
	prob := p.baseProblem(0)
	return solveLP(prob).Status != lp.Optimal
}

// InteriorSlack maximizes the smallest halfspace slack min_k wₖ·u over u ∈ U
// and returns the optimum with its maximizer. A positive slack certifies a
// full-dimensional intersection with every halfspace strict; a negative one
// means R is empty. This is the paper's "maximize x subject to w·u > x"
// feasibility probe from §IV-C.
func (p *Polytope) InteriorSlack() (slack float64, u []float64, ok bool) {
	d := p.Dim
	prob := &lp.Problem{NumVars: d + 1, Maximize: make([]float64, d+1)}
	prob.Maximize[d] = 1
	prob.Free = make([]bool, d+1)
	prob.Free[d] = true // slack may be negative
	ones := make([]float64, d+1)
	for i := 0; i < d; i++ {
		ones[i] = 1
	}
	prob.AddEQ(ones, 1)
	for _, h := range p.Halfspaces {
		row := make([]float64, d+1)
		copy(row, h.Normal)
		// w·u − x ≥ 0  ⇔  w·u ≥ x
		row[d] = -1
		prob.AddGE(row, 0)
	}
	// Bound x from above so the LP stays bounded when there are no
	// halfspaces: x ≤ 1 (any constant works; slacks on U are ≤ ‖w‖ anyway).
	bound := make([]float64, d+1)
	bound[d] = 1
	prob.AddLE(bound, 1)
	res := solveLP(prob)
	if res.Status != lp.Optimal {
		return 0, nil, false
	}
	return res.Objective, res.X[:d], true
}

// CutsBothSides reports whether the hyperplane of h properly splits R: both
// R∩{w·u ≥ margin} and R∩{−w·u ≥ margin} are non-empty. margin > 0 demands a
// full-dimensional piece on each side (Lemma 8's strict-narrowing condition).
func (p *Polytope) CutsBothSides(h Halfspace, margin float64) bool {
	return p.sideFeasible(h.Normal, margin) && p.sideFeasible(vec.Scale(nil, -1, h.Normal), margin)
}

// Feasible reports whether R contains a point with h.Normal·u > margin,
// i.e. the open side of h intersects R. It is the one-sided version of
// CutsBothSides.
func (p *Polytope) Feasible(h Halfspace, margin float64) bool {
	return p.sideFeasible(h.Normal, margin)
}

func (p *Polytope) sideFeasible(w []float64, margin float64) bool {
	prob := p.baseProblem(0)
	copy(prob.Maximize, w)
	res := solveLP(prob)
	return res.Status == lp.Optimal && res.Objective > margin
}

// OuterRect returns e_min and e_max, the per-dimension extrema of u over R,
// computed with 2d LPs (paper §IV-C). It fails when R is empty.
func (p *Polytope) OuterRect() (emin, emax []float64, err error) {
	return p.OuterRectCtx(context.Background())
}

// OuterRectCtx is OuterRect with tracing: when ctx carries an active trace
// the 2d solves are grouped under a "geom.outer_rect" span with each
// lp.solve as a child.
func (p *Polytope) OuterRectCtx(ctx context.Context) (emin, emax []float64, err error) {
	ctx, sp := trace.Start(ctx, "geom.outer_rect")
	defer sp.End()
	d := p.Dim
	emin = make([]float64, d)
	emax = make([]float64, d)
	prob := p.baseProblem(0)
	for i := 0; i < d; i++ {
		vec.Fill(prob.Maximize, 0)
		prob.Maximize[i] = 1
		res := solveLPCtx(ctx, prob)
		if res.Status != lp.Optimal {
			return nil, nil, fmt.Errorf("geom: outer rect max dim %d: %v", i, res.Status)
		}
		emax[i] = res.Objective
		prob.Maximize[i] = -1
		res = solveLPCtx(ctx, prob)
		if res.Status != lp.Optimal {
			return nil, nil, fmt.Errorf("geom: outer rect min dim %d: %v", i, res.Status)
		}
		emin[i] = -res.Objective
	}
	return emin, emax, nil
}

// Ball is a sphere given by center and radius.
type Ball struct {
	Center []float64
	Radius float64
}

// InnerBall computes the largest sphere centered in R that fits inside every
// learned halfspace and inside the non-negativity facets of U — the paper's
// inner-sphere LP from §IV-C (the Chebyshev center of R restricted to the
// simplex). It fails when R is empty.
func (p *Polytope) InnerBall() (Ball, error) {
	return p.InnerBallCtx(context.Background())
}

// InnerBallCtx is InnerBall with tracing: the Chebyshev LP is wrapped in a
// "geom.inner_ball" span when ctx carries an active trace.
func (p *Polytope) InnerBallCtx(ctx context.Context) (Ball, error) {
	ctx, sp := trace.Start(ctx, "geom.inner_ball")
	defer sp.End()
	res := solveLPCtx(ctx, p.innerBallProblem())
	if res.Status != lp.Optimal {
		return Ball{}, fmt.Errorf("geom: inner ball: %v", res.Status)
	}
	return Ball{Center: res.X[:p.Dim], Radius: res.Objective}, nil
}

// innerBallProblem builds the Chebyshev-center LP over R ∩ U with variables
// (c₀..c_{d−1}, r). Shared by the from-scratch solve and the warm solver so
// both paths assemble bit-identical tableaus.
func (p *Polytope) innerBallProblem() *lp.Problem {
	d := p.Dim
	prob := &lp.Problem{NumVars: d + 1, Maximize: make([]float64, d+1)}
	prob.Maximize[d] = 1 // maximize radius r
	ones := make([]float64, d+1)
	for i := 0; i < d; i++ {
		ones[i] = 1
	}
	prob.AddEQ(ones, 1)
	// Distance from c to facet uᵢ = 0 is cᵢ: cᵢ − r ≥ 0.
	for i := 0; i < d; i++ {
		row := make([]float64, d+1)
		row[i] = 1
		row[d] = -1
		prob.AddGE(row, 0)
	}
	for _, h := range p.Halfspaces {
		if row, ok := innerBallRow(h, d); ok {
			prob.AddGE(row, 0)
		}
	}
	return prob
}

// innerBallRow converts a halfspace into its normalized Chebyshev row
// w·c/‖w‖ − r ≥ 0, or reports ok=false for a zero normal (no constraint).
func innerBallRow(h Halfspace, d int) ([]float64, bool) {
	n := vec.Norm(h.Normal)
	if n == 0 {
		return nil, false
	}
	row := make([]float64, d+1)
	for j, wj := range h.Normal {
		row[j] = wj / n
	}
	row[d] = -1 // w·c/‖w‖ − r ≥ 0
	return row, true
}

// ErrEmpty reports an operation on an empty utility range.
var ErrEmpty = errors.New("geom: empty polytope")

// RepairFeasibility restores a non-empty interior to R by greedily removing
// halfspaces: while the interior slack is non-positive, it drops the
// halfspace whose removal recovers the most slack. This implements the
// error-tolerant interaction of the paper's future work (§VI): when a user's
// answers contradict each other the learned constraints cannot all hold, so
// the least-consistent ones are discarded. Returns the number of halfspaces
// removed (0 when R was already full-dimensional); maxDrops ≤ 0 means
// unlimited.
func (p *Polytope) RepairFeasibility(maxDrops int) int {
	removed := 0
	for {
		slack, _, ok := p.InteriorSlack()
		if ok && slack > 1e-9 {
			return removed
		}
		if len(p.Halfspaces) == 0 || (maxDrops > 0 && removed >= maxDrops) {
			return removed
		}
		bestIdx, bestSlack := -1, math.Inf(-1)
		rest := make([]Halfspace, 0, len(p.Halfspaces)-1)
		for i := range p.Halfspaces {
			rest = append(rest[:0], p.Halfspaces[:i]...)
			rest = append(rest, p.Halfspaces[i+1:]...)
			q := &Polytope{Dim: p.Dim, Halfspaces: rest}
			if s, _, ok := q.InteriorSlack(); ok && s > bestSlack {
				bestSlack, bestIdx = s, i
			}
		}
		if bestIdx < 0 {
			return removed
		}
		p.Halfspaces = append(p.Halfspaces[:bestIdx], p.Halfspaces[bestIdx+1:]...)
		p.vertsDirty = true
		p.gen++
		p.grow++ // dropping a binding constraint may enlarge R
		removed++
	}
}

// ReduceRedundant drops halfspaces that do not change R: h is redundant when
// max −w·u over R\{h} is ≤ 0 (every point of the relaxation already
// satisfies h). Keeping the set small bounds the vertex-enumeration pool.
// Returns the number of halfspaces removed.
func (p *Polytope) ReduceRedundant() int {
	removed := 0
	// One scratch relaxation and one negated-normal buffer serve every
	// probe; the actual removal splices p.Halfspaces in place.
	rest := make([]Halfspace, 0, len(p.Halfspaces))
	neg := make([]float64, p.Dim)
	for i := 0; i < len(p.Halfspaces); {
		h := p.Halfspaces[i]
		rest = append(rest[:0], p.Halfspaces[:i]...)
		rest = append(rest, p.Halfspaces[i+1:]...)
		q := &Polytope{Dim: p.Dim, Halfspaces: rest}
		if q.sideFeasible(vec.Scale(neg, -1, h.Normal), 1e-9) {
			i++ // h actively cuts; keep it
			continue
		}
		p.Halfspaces = append(p.Halfspaces[:i], p.Halfspaces[i+1:]...)
		p.vertsDirty = true
		p.gen++ // R itself is unchanged (h was redundant), so grow stays put
		removed++
	}
	return removed
}
