package geom

import (
	"math"
	"math/rand"
	"testing"

	"isrl/internal/vec"
)

func TestHalfspaceFromPair(t *testing.T) {
	pi := []float64{0.8, 0.2}
	pj := []float64{0.3, 0.9}
	h := NewHalfspace(pi, pj)
	if !vec.Equal(h.Normal, []float64{0.5, -0.7}, 1e-12) {
		t.Errorf("normal = %v", h.Normal)
	}
	// A utility vector preferring pi must be contained.
	u := []float64{0.9, 0.1} // u·pi=0.74 > u·pj=0.36
	if !h.Contains(u, 0) {
		t.Error("u preferring pi should be inside h+")
	}
	if h.Flip().Contains(u, 0) {
		t.Error("flip must exclude u")
	}
}

func TestHalfspaceDist(t *testing.T) {
	h := Halfspace{Normal: []float64{1, -1}}
	got := h.Dist([]float64{0.75, 0.25})
	want := 0.5 / math.Sqrt2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Dist = %v want %v", got, want)
	}
	if z := (Halfspace{Normal: []float64{0, 0}}).Dist([]float64{1, 0}); z != inf {
		t.Errorf("zero normal Dist = %v, want +huge", z)
	}
}

func TestSimplexHelpers(t *testing.T) {
	vs := SimplexVertices(3)
	if len(vs) != 3 || vs[1][1] != 1 || vs[1][0] != 0 {
		t.Errorf("SimplexVertices = %v", vs)
	}
	c := SimplexCentroid(4)
	if math.Abs(vec.Sum(c)-1) > 1e-12 || c[0] != 0.25 {
		t.Errorf("centroid = %v", c)
	}
}

func TestVerticesOfFullSimplex(t *testing.T) {
	for d := 2; d <= 6; d++ {
		p := NewPolytope(d)
		vs, err := p.Vertices()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != d {
			t.Fatalf("d=%d: %d vertices, want %d", d, len(vs), d)
		}
		for _, v := range vs {
			if math.Abs(vec.Sum(v)-1) > 1e-9 || math.Abs(vec.Max(v)-1) > 1e-9 {
				t.Errorf("d=%d: vertex %v is not a basis vector", d, v)
			}
		}
	}
}

func TestVerticesAfterCut(t *testing.T) {
	// 2D simplex is the segment (1,0)-(0,1). Cut with u1 ≥ u2
	// (normal (1,-1)): vertices become (1,0) and (0.5,0.5).
	p := NewPolytope(2)
	p.Add(Halfspace{Normal: []float64{1, -1}})
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("%d vertices, want 2: %v", len(vs), vs)
	}
	want := [][]float64{{0.5, 0.5}, {1, 0}}
	for i := range want {
		if !vec.Equal(vs[i], want[i], 1e-9) {
			t.Errorf("vertex %d = %v want %v", i, vs[i], want[i])
		}
	}
}

func TestVerticesCache(t *testing.T) {
	p := NewPolytope(3)
	v1, _ := p.Vertices()
	v2, _ := p.Vertices()
	if &v1[0][0] != &v2[0][0] {
		t.Error("second call should return the cached set")
	}
	p.Add(Halfspace{Normal: []float64{1, -1, 0}})
	v3, _ := p.Vertices()
	if len(v3) == 0 {
		t.Error("cache must be invalidated by Add")
	}
}

// Property: every enumerated vertex is feasible, and every vertex of the cut
// polytope is inside the parent polytope.
func TestVerticesFeasibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(4)
		p := NewPolytope(d)
		u := SampleSimplex(rng, d) // kept-feasible witness
		for k := 0; k < 1+rng.Intn(6); k++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if vec.Dot(w, u) < 0 {
				vec.Scale(w, -1, w)
			}
			p.Add(Halfspace{Normal: w})
		}
		vs, err := p.Vertices()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			t.Fatalf("trial %d: no vertices though witness %v is feasible", trial, u)
		}
		for _, v := range vs {
			if !p.Contains(v, 1e-6) {
				t.Fatalf("trial %d: vertex %v infeasible", trial, v)
			}
		}
	}
}

func TestIsEmptyAndContains(t *testing.T) {
	p := NewPolytope(2)
	if p.IsEmpty() {
		t.Fatal("full simplex reported empty")
	}
	if !p.Contains([]float64{0.5, 0.5}, 0) || p.Contains([]float64{0.7, 0.7}, 0) {
		t.Error("Contains wrong on simplex membership")
	}
	p.Add(Halfspace{Normal: []float64{1, -1}})  // u1 ≥ u2
	p.Add(Halfspace{Normal: []float64{-1, 1}})  // u2 ≥ u1 → only the midpoint
	p.Add(Halfspace{Normal: []float64{-1, -1}}) // −u1−u2 ≥ 0: impossible on simplex
	if !p.IsEmpty() {
		t.Error("contradictory polytope not reported empty")
	}
}

func TestInteriorSlack(t *testing.T) {
	p := NewPolytope(3)
	p.Add(Halfspace{Normal: []float64{1, -1, 0}})
	slack, u, ok := p.InteriorSlack()
	if !ok || slack <= 0 {
		t.Fatalf("slack=%v ok=%v, want positive", slack, ok)
	}
	if !p.Contains(u, 1e-7) {
		t.Errorf("witness %v infeasible", u)
	}
	// Empty interior on the flip side.
	q := NewPolytope(2)
	q.Add(Halfspace{Normal: []float64{1, -1}})
	q.Add(Halfspace{Normal: []float64{-1, 1}})
	s2, _, ok := q.InteriorSlack()
	if !ok {
		t.Fatal("InteriorSlack failed on a line-degenerate polytope")
	}
	if s2 > 1e-9 {
		t.Errorf("slack=%v, want ~0 for degenerate polytope", s2)
	}
}

func TestCutsBothSides(t *testing.T) {
	p := NewPolytope(2)
	mid := Halfspace{Normal: []float64{1, -1}} // passes through (0.5,0.5)
	if !p.CutsBothSides(mid, 1e-9) {
		t.Error("bisecting hyperplane should cut both sides")
	}
	// A hyperplane entirely outside the simplex: u1+u2 = 0.
	out := Halfspace{Normal: []float64{1, 1}}
	if p.CutsBothSides(out, 1e-9) {
		t.Error("non-crossing hyperplane must not report both sides")
	}
}

func TestOuterRect(t *testing.T) {
	p := NewPolytope(2)
	emin, emax, err := p.OuterRect()
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(emin, []float64{0, 0}, 1e-8) || !vec.Equal(emax, []float64{1, 1}, 1e-8) {
		t.Errorf("rect = %v %v", emin, emax)
	}
	p.Add(Halfspace{Normal: []float64{1, -1}}) // u1 ≥ 1/2 on simplex
	emin, emax, err = p.OuterRect()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(emin[0]-0.5) > 1e-8 || math.Abs(emax[1]-0.5) > 1e-8 {
		t.Errorf("cut rect = %v %v", emin, emax)
	}
}

func TestInnerBall(t *testing.T) {
	p := NewPolytope(2)
	b, err := p.InnerBall()
	if err != nil {
		t.Fatal(err)
	}
	// On the 2-simplex segment, the center maximizing min(c1,c2) is the
	// midpoint with radius 1/2.
	if !vec.Equal(b.Center, []float64{0.5, 0.5}, 1e-8) || math.Abs(b.Radius-0.5) > 1e-8 {
		t.Errorf("inner ball = %+v", b)
	}
	if !p.Contains(b.Center, 1e-9) {
		t.Error("center must be inside R")
	}
}

// Property: inner ball center is always inside R, and every halfspace keeps
// distance ≥ radius.
func TestInnerBallRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(5)
		p := NewPolytope(d)
		u := SampleSimplex(rng, d)
		for k := 0; k < rng.Intn(7); k++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if vec.Dot(w, u) < 0 {
				vec.Scale(w, -1, w)
			}
			p.Add(Halfspace{Normal: w})
		}
		b, err := p.InnerBall()
		if err != nil {
			t.Fatal(err)
		}
		if !p.Contains(b.Center, 1e-6) {
			t.Fatalf("trial %d: center %v outside R", trial, b.Center)
		}
		for _, h := range p.Halfspaces {
			if h.Dist(b.Center) < b.Radius-1e-6 {
				t.Fatalf("trial %d: halfspace closer than radius", trial)
			}
		}
	}
}

func TestReduceRedundant(t *testing.T) {
	p := NewPolytope(3)
	p.Add(Halfspace{Normal: []float64{1, -1, 0}})
	p.Add(Halfspace{Normal: []float64{2, -2, 0}}) // same halfspace scaled
	p.Add(Halfspace{Normal: []float64{1, -0.5, 0}})
	// {u1 ≥ u2} implies {u1 ≥ 0.5·u2}; the last is redundant; one of the
	// first two is redundant with the other.
	removed := p.ReduceRedundant()
	if removed < 2 {
		t.Errorf("removed %d redundant halfspaces, want ≥ 2", removed)
	}
	if len(p.Halfspaces) == 0 {
		t.Error("must keep at least one active halfspace")
	}
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if vec.Dot([]float64{1, -1, 0}, v) < -1e-8 {
			t.Errorf("reduction changed the polytope: %v violates u1≥u2", v)
		}
	}
}

func TestEnclosingBallKnown(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {1, 0}}
	b := EnclosingBall(pts, EnclosingBallOptions{})
	if math.Abs(b.Radius-1) > 1e-3 {
		t.Errorf("radius = %v want ≈1", b.Radius)
	}
	if math.Abs(b.Center[0]-1) > 1e-3 || math.Abs(b.Center[1]) > 1e-3 {
		t.Errorf("center = %v want ≈(1,0)", b.Center)
	}
}

func TestEnclosingBallSinglePoint(t *testing.T) {
	b := EnclosingBall([][]float64{{0.3, 0.7}}, EnclosingBallOptions{})
	if b.Radius != 0 || !vec.Equal(b.Center, []float64{0.3, 0.7}, 0) {
		t.Errorf("ball = %+v", b)
	}
	if got := EnclosingBall(nil, EnclosingBallOptions{}); got.Center != nil {
		t.Errorf("empty input should give zero ball, got %+v", got)
	}
}

// Property (Lemma 3 consequence): the ball always contains all points, and
// is within a small factor of the best ball found from random restarts.
func TestEnclosingBallContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(4)
		n := 2 + rng.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = SampleSimplex(rng, d)
		}
		b := EnclosingBall(pts, EnclosingBallOptions{})
		for _, p := range pts {
			if !b.Contains(p, 1e-6) {
				t.Fatalf("trial %d: point %v outside ball %+v", trial, p, b)
			}
		}
	}
}

func TestSampleInsidePolytope(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPolytope(4)
	p.Add(Halfspace{Normal: []float64{1, -1, 0, 0}})
	p.Add(Halfspace{Normal: []float64{0, 1, -1, 0}})
	samples, err := p.Sample(rng, 200, SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("%d samples, want 200", len(samples))
	}
	for _, s := range samples {
		if !p.Contains(s, 1e-7) {
			t.Fatalf("sample %v escapes R", s)
		}
	}
}

// Property (Lemma 5 flavour): the sample fraction in the u1 ≥ u2 half of
// the 3-simplex should approximate 1/2.
func TestSampleRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	p := NewPolytope(3)
	samples, err := p.Sample(rng, 2000, SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inHalf := 0
	for _, s := range samples {
		if s[0] >= s[1] {
			inHalf++
		}
	}
	frac := float64(inHalf) / float64(len(samples))
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("fraction in u1≥u2 half = %v, want ≈0.5", frac)
	}
}

func TestSampleEmptyPolytopeFails(t *testing.T) {
	p := NewPolytope(2)
	p.Add(Halfspace{Normal: []float64{-1, -1}})
	if _, err := p.Sample(rand.New(rand.NewSource(1)), 5, SampleOptions{}); err == nil {
		t.Error("sampling an empty polytope must fail")
	}
}

func TestGreedyCoverBasic(t *testing.T) {
	// Two clusters; one pick per cluster should cover everything.
	pts := [][]float64{
		{0, 0}, {0.01, 0}, {0, 0.01},
		{1, 1}, {1.01, 1}, {1, 1.01},
	}
	chosen := GreedyCover(pts, 2, 0.05)
	if len(chosen) != 2 {
		t.Fatalf("chose %d, want 2", len(chosen))
	}
	if CoverageOf(pts, chosen, 0.05) != len(pts) {
		t.Errorf("coverage %d of %d", CoverageOf(pts, chosen, 0.05), len(pts))
	}
}

func TestGreedyCoverFirstPickIsDensest(t *testing.T) {
	// Mirrors the paper's Example 5: the vector with the largest
	// neighborhood is selected first.
	pts := [][]float64{
		{0, 0}, {0.02, 0}, {0.04, 0}, // dense cluster around index 1
		{1, 0}, {2, 0},
	}
	chosen := GreedyCover(pts, 1, 0.03)
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Errorf("first pick = %v, want [1] (covers 3 points)", chosen)
	}
}

func TestGreedyCoverEdgeCases(t *testing.T) {
	if got := GreedyCover(nil, 3, 0.1); got != nil {
		t.Errorf("empty input: %v", got)
	}
	pts := [][]float64{{0, 0}, {5, 5}}
	if got := GreedyCover(pts, 10, 0.1); len(got) != 2 {
		t.Errorf("m > n must clamp: %v", got)
	}
	if got := GreedyCover(pts, 0, 0.1); got != nil {
		t.Errorf("m = 0: %v", got)
	}
}

// Property: greedy coverage is monotone in m.
func TestGreedyCoverMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	prev := 0
	for m := 1; m <= 8; m++ {
		c := GreedyCover(pts, m, 0.15)
		cov := CoverageOf(pts, c, 0.15)
		if cov < prev {
			t.Fatalf("coverage decreased: m=%d cov=%d prev=%d", m, cov, prev)
		}
		prev = cov
	}
}

func TestPolytopeClone(t *testing.T) {
	p := NewPolytope(3)
	p.Add(Halfspace{Normal: []float64{1, -1, 0}})
	c := p.Clone()
	c.Add(Halfspace{Normal: []float64{0, 1, -1}})
	if len(p.Halfspaces) != 1 {
		t.Error("clone shares halfspace slice with parent")
	}
	c.Halfspaces[0].Normal[0] = 99
	if p.Halfspaces[0].Normal[0] != 1 {
		t.Error("clone shares normal storage with parent")
	}
}

func TestVerticesBudgetError(t *testing.T) {
	// High dimension with many halfspaces exceeds the enumeration budget
	// and must return a descriptive error instead of hanging.
	p := NewPolytope(12)
	rng := rand.New(rand.NewSource(44))
	for k := 0; k < 40; k++ {
		w := make([]float64, 12)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		p.Add(Halfspace{Normal: w})
	}
	if _, err := p.Vertices(); err == nil {
		t.Error("expected vertex-enumeration budget error at d=12 with 40 halfspaces")
	}
}

func TestZeroNormalHalfspaceIgnored(t *testing.T) {
	p := NewPolytope(3)
	p.Add(Halfspace{Normal: []float64{0, 0, 0}})
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Errorf("zero-normal halfspace changed the vertex set: %d vertices", len(vs))
	}
}

func TestRepairFeasibility(t *testing.T) {
	p := NewPolytope(3)
	p.Add(Halfspace{Normal: []float64{1, -1, 0}})  // u1 ≥ u2
	p.Add(Halfspace{Normal: []float64{-1, 1, 0}})  // u2 ≥ u1 (degenerate with above)
	p.Add(Halfspace{Normal: []float64{-1, -1, 0}}) // u1+u2 ≤ 0: kills the interior
	removed := p.RepairFeasibility(0)
	if removed == 0 {
		t.Fatal("repair removed nothing from a contradictory set")
	}
	slack, _, ok := p.InteriorSlack()
	if !ok || slack <= 0 {
		t.Errorf("interior not restored: slack=%v ok=%v", slack, ok)
	}
	// A healthy polytope is untouched.
	q := NewPolytope(3)
	q.Add(Halfspace{Normal: []float64{1, -1, 0}})
	if got := q.RepairFeasibility(0); got != 0 {
		t.Errorf("repair removed %d from a feasible polytope", got)
	}
	// maxDrops caps removals.
	r := NewPolytope(2)
	r.Add(Halfspace{Normal: []float64{-1, -1}})
	r.Add(Halfspace{Normal: []float64{-2, -2}})
	if got := r.RepairFeasibility(1); got > 1 {
		t.Errorf("repair ignored maxDrops: removed %d", got)
	}
}
