package geom

import (
	"math/rand"
	"testing"

	"isrl/internal/par"
)

// testPoly builds a d-dimensional utility range narrowed by a few random
// preference halfspaces, mirroring mid-interaction state.
func testPoly(t *testing.T, d int, seed int64) *Polytope {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewPolytope(d)
	for k := 0; k < d+2; k++ {
		pi := make([]float64, d)
		pj := make([]float64, d)
		for i := 0; i < d; i++ {
			pi[i] = rng.Float64()
			pj[i] = rng.Float64()
		}
		h := NewHalfspace(pi, pj)
		q := p.Clone()
		q.Add(h)
		if !q.IsEmpty() {
			p.Add(h)
		}
	}
	if p.IsEmpty() {
		t.Fatal("test polytope is empty")
	}
	return p
}

// Sample's chain decomposition is fixed by (seed, n, opts), so the drawn
// points must be bit-identical whether the chains run on one worker or many.
func TestSampleDeterministicAcrossWorkers(t *testing.T) {
	for _, d := range []int{3, 5} {
		draw := func(workers int) [][]float64 {
			defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
			pts, err := testPoly(t, d, 21).Sample(rand.New(rand.NewSource(22)), 40, SampleOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return pts
		}
		one := draw(1)
		many := draw(8)
		if len(one) != 40 || len(many) != 40 {
			t.Fatalf("d=%d: got %d and %d points, want 40", d, len(one), len(many))
		}
		for i := range one {
			for j := range one[i] {
				if one[i][j] != many[i][j] {
					t.Fatalf("d=%d: point %d dim %d: workers=1 %v, workers=8 %v",
						d, i, j, one[i][j], many[i][j])
				}
			}
		}
	}
}

// Vertex enumeration partitions by first constraint index with an ordered
// merge, so the vertex list must be bit-identical for any worker count.
func TestVerticesDeterministicAcrossWorkers(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		enum := func(workers int) [][]float64 {
			defer par.SetMaxWorkers(par.SetMaxWorkers(workers))
			vs, err := testPoly(t, d, 31).Vertices()
			if err != nil {
				t.Fatal(err)
			}
			return vs
		}
		one := enum(1)
		many := enum(8)
		if len(one) == 0 || len(one) != len(many) {
			t.Fatalf("d=%d: %d vs %d vertices", d, len(one), len(many))
		}
		for i := range one {
			for j := range one[i] {
				if one[i][j] != many[i][j] {
					t.Fatalf("d=%d: vertex %d dim %d differs across worker counts", d, i, j)
				}
			}
		}
	}
}
