package geom

import (
	"math/rand"

	"isrl/internal/vec"
)

// EnclosingBallOptions tunes the iterative minimum-enclosing-ball
// approximation of §IV-B. Zero values select the paper's defaults.
type EnclosingBallOptions struct {
	MaxIters  int     // default 200
	Threshold float64 // stop when the center offset drops below this; default 1e-6
	Rng       *rand.Rand
}

// EnclosingBall approximates the smallest sphere containing all points,
// using the paper's iterative scheme: repeatedly move the center toward the
// farthest point e₁ by ½(‖c−e₁‖ − ‖c−e₂‖), where e₂ is the second-farthest
// point. Lemma 3 shows the enclosing radius is non-increasing. The center is
// initialized at a random point when opts.Rng is set, otherwise at the
// centroid (deterministic).
func EnclosingBall(points [][]float64, opts EnclosingBallOptions) Ball {
	if len(points) == 0 {
		return Ball{}
	}
	d := len(points[0])
	if opts.MaxIters == 0 {
		opts.MaxIters = 200
	}
	if opts.Threshold == 0 {
		opts.Threshold = 1e-6
	}
	c := make([]float64, d)
	if opts.Rng != nil {
		base := points[opts.Rng.Intn(len(points))]
		copy(c, base)
	} else {
		for _, p := range points {
			vec.Add(c, c, p)
		}
		vec.Scale(c, 1/float64(len(points)), c)
	}
	if len(points) == 1 {
		return Ball{Center: c, Radius: 0}
	}
	dir := make([]float64, d)
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Two farthest points from the current center.
		i1, i2 := -1, -1
		var d1, d2 float64
		for i, p := range points {
			dist := vec.Dist(c, p)
			if dist > d1 {
				d2, i2 = d1, i1
				d1, i1 = dist, i
			} else if dist > d2 {
				d2, i2 = dist, i
			}
		}
		_ = i2
		offset := (d1 - d2) / 2
		if offset < opts.Threshold || d1 == 0 {
			return Ball{Center: c, Radius: d1}
		}
		// Move c toward the farthest point by offset.
		vec.Sub(dir, points[i1], c)
		vec.Normalize(dir)
		vec.AddScaled(c, c, offset, dir)
	}
	var r float64
	for _, p := range points {
		if dist := vec.Dist(c, p); dist > r {
			r = dist
		}
	}
	return Ball{Center: c, Radius: r}
}

// Contains reports whether u is inside the ball within tol.
func (b Ball) Contains(u []float64, tol float64) bool {
	return vec.Dist(b.Center, u) <= b.Radius+tol
}
