package geom

import (
	"context"
	"math/rand"
	"testing"
)

func benchPolytope(d, cuts int, seed int64) *Polytope {
	rng := rand.New(rand.NewSource(seed))
	p := NewPolytope(d)
	u := SampleSimplex(rng, d) // keep a witness feasible
	for k := 0; k < cuts; k++ {
		w := make([]float64, d)
		var wu float64
		for i := range w {
			w[i] = rng.NormFloat64()
			wu += w[i] * u[i]
		}
		if wu < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		p.Add(Halfspace{Normal: w})
	}
	return p
}

func BenchmarkVertices4D(b *testing.B) {
	p := benchPolytope(4, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.vertsDirty = true
		if _, err := p.Vertices(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInnerBall20D(b *testing.B) {
	p := benchPolytope(20, 15, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.InnerBall(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOuterRect20D(b *testing.B) {
	p := benchPolytope(20, 15, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.OuterRect(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHitAndRunSample(b *testing.B) {
	p := benchPolytope(4, 8, 4)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sample(rng, 64, SampleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclosingBall(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = SampleSimplex(rng, 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EnclosingBall(pts, EnclosingBallOptions{})
	}
}

func BenchmarkGreedyCover(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 60)
	for i := range pts {
		pts[i] = SampleSimplex(rng, 4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyCover(pts, 5, 0.1)
	}
}

// BenchmarkIncrementalClip4D measures one steady-state round of the
// incremental engine — clip the new halfspace into the maintained vertex
// set, then read the vertices — against BenchmarkVertices4D's from-scratch
// re-enumeration of the same kind of polytope.
func BenchmarkIncrementalClip4D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 4
	u := SampleSimplex(rng, d)
	cuts := make([]Halfspace, 11)
	for k := range cuts {
		w := make([]float64, d)
		var wu float64
		for i := range w {
			w[i] = rng.NormFloat64()
			wu += w[i] * u[i]
		}
		if wu < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		cuts[k] = Halfspace{Normal: w}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := NewPolytope(d)
		g := NewIncremental(p)
		for _, h := range cuts[:10] {
			g.Add(h)
		}
		if _, err := g.VerticesCtx(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		g.Add(cuts[10])
		if _, err := g.VerticesCtx(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertices5D stresses the parallel first-index partition with a
// larger enumeration pool (the paper's practical ceiling for exact
// polyhedra).
func BenchmarkVertices5D(b *testing.B) {
	p := benchPolytope(5, 14, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.vertsDirty = true
		if _, err := p.Vertices(); err != nil {
			b.Fatal(err)
		}
	}
}
