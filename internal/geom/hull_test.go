package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestExtremePointsSquare(t *testing.T) {
	// Four corners plus interior points: only corners are extreme.
	pts := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, // extreme
		{0.5, 0.5}, {0.25, 0.75}, // interior
		{0.5, 0}, // edge midpoint: convex combination of corners
	}
	got := ExtremePoints(pts)
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(got) != 4 {
		t.Fatalf("extreme points = %v, want the 4 corners", got)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("index %d wrongly reported extreme", i)
		}
	}
}

func TestExtremePointsDegenerate(t *testing.T) {
	if got := ExtremePoints(nil); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := ExtremePoints([][]float64{{0.3, 0.7}}); len(got) != 1 || got[0] != 0 {
		t.Errorf("single point must be extreme: %v", got)
	}
	// Duplicate points: a duplicate IS a convex combination of the other
	// copy, so at most one of each pair survives; the hull still covers
	// both corners.
	pts := [][]float64{{0, 0}, {0, 0}, {1, 1}}
	got := ExtremePoints(pts)
	if len(got) == 0 || len(got) > 2 {
		t.Errorf("duplicates handled badly: %v", got)
	}
}

// Property: every point is a convex combination of the reported extreme
// points — verified indirectly: dropping non-extreme points never changes
// the max of a linear function over the set.
func TestExtremePointsPreserveLinearMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		n := 5 + rng.Intn(15)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = SampleSimplex(rng, d)
		}
		ext := ExtremePoints(pts)
		if len(ext) == 0 {
			t.Fatal("no extreme points found")
		}
		for k := 0; k < 10; k++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			full := math.Inf(-1)
			for _, p := range pts {
				if s := dot(w, p); s > full {
					full = s
				}
			}
			hull := math.Inf(-1)
			for _, i := range ext {
				if s := dot(w, pts[i]); s > hull {
					hull = s
				}
			}
			if math.Abs(full-hull) > 1e-7 {
				t.Fatalf("trial %d: linear max differs: full %v hull %v", trial, full, hull)
			}
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestEstimateVolumeFullAndHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPolytope(3)
	if v := p.EstimateVolume(rng, 2000); math.Abs(v-1) > 1e-9 {
		t.Errorf("full simplex volume fraction = %v", v)
	}
	p.Add(Halfspace{Normal: []float64{1, -1, 0}}) // u1 ≥ u2: half by symmetry
	v := p.EstimateVolume(rng, 4000)
	if v < 0.45 || v > 0.55 {
		t.Errorf("half-simplex volume fraction = %v, want ≈0.5", v)
	}
	// Empty region.
	p.Add(Halfspace{Normal: []float64{-1, -1, -1}})
	if v := p.EstimateVolume(rng, 500); v != 0 {
		t.Errorf("impossible region volume = %v", v)
	}
}

// Lemma-5 style check: a polytope with twice the volume receives about
// twice the samples.
func TestVolumeTracksSampleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := NewPolytope(3) // u1 ≥ u2 (half)
	big.Add(Halfspace{Normal: []float64{1, -1, 0}})
	small := NewPolytope(3) // u1 ≥ u2 and u1 ≥ u3 (third, by symmetry)
	small.Add(Halfspace{Normal: []float64{1, -1, 0}})
	small.Add(Halfspace{Normal: []float64{1, 0, -1}})
	vb := big.EstimateVolume(rng, 6000)
	vs := small.EstimateVolume(rng, 6000)
	if vb <= vs {
		t.Fatalf("bigger polytope got fewer samples: %v vs %v", vb, vs)
	}
	if ratio := vb / vs; ratio < 1.2 || ratio > 1.8 {
		t.Errorf("volume ratio = %v, want ≈1.5", ratio)
	}
}
