package geom

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"isrl/internal/fault"
	"isrl/internal/par"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// vertexTol is the feasibility slack used when classifying enumerated basic
// solutions as vertices of R.
const vertexTol = 1e-8

// MaxVertexBases caps the number of constraint subsets Vertices will try
// before giving up; it protects against accidental use in high dimension
// with many halfspaces, where exact polyhedra are not meant to be used
// (the paper restricts polyhedron-maintaining algorithms to low d).
const MaxVertexBases = 2_000_000

// Vertices returns the extreme utility vectors of R (the paper's set E).
//
// A vertex of R lies on the hyperplane Σu = 1 and on d−1 further linearly
// independent active constraints drawn from the non-negativity facets
// {uᵢ = 0} and the learned hyperplanes {wₖ·u = 0}. Vertices enumerates all
// (d−1)-subsets of that pool, solves each d×d system, and keeps the feasible
// solutions, deduplicated. The result is cached until the polytope changes.
func (p *Polytope) Vertices() ([][]float64, error) {
	return p.VerticesCtx(context.Background())
}

// VerticesCtx is Vertices with tracing: an actual enumeration (cache-miss
// path only) is timed as a "geom.vertices" span carrying the halfspace and
// vertex counts, with the worker-pool fan-out as a child.
func (p *Polytope) VerticesCtx(ctx context.Context) ([][]float64, error) {
	if !p.vertsDirty {
		return p.verts, nil
	}
	ctx, sp := trace.Start(ctx, "geom.vertices")
	defer sp.End()
	start := time.Now()
	defer func() { verticesMS.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	vertexEnums.Inc()
	if err := fault.Hit(fault.PointVertices); err != nil {
		return nil, fmt.Errorf("geom: vertices: %w", err)
	}
	d := p.Dim
	// Constraint pool as normals of hyperplanes through the origin.
	pool := make([][]float64, 0, d+len(p.Halfspaces))
	for i := 0; i < d; i++ {
		e := make([]float64, d)
		e[i] = 1
		pool = append(pool, e) // facet uᵢ = 0 has normal eᵢ
	}
	for _, h := range p.Halfspaces {
		if vec.Norm(h.Normal) == 0 {
			continue
		}
		pool = append(pool, h.Normal)
	}
	if c := binom(len(pool), d-1); c > MaxVertexBases {
		return nil, fmt.Errorf("geom: vertex enumeration needs %d bases (max %d); reduce halfspaces or dimension", c, MaxVertexBases)
	}

	if d == 1 {
		return nil, fmt.Errorf("geom: dimension 1 unsupported")
	}

	// Partition the (d−1)-subset enumeration by first constraint index:
	// task t enumerates every subset whose smallest member is t. Each task
	// owns its matrix/output buffers and touches only read-only polytope
	// state, so tasks run concurrently; merging the per-task lists in task
	// order then reproduces the exact serial (lexicographic) enumeration
	// order, so the dedup representative — and the final sorted list — are
	// identical for any worker count.
	nTasks := len(pool) - (d - 1) + 1
	if nTasks < 0 {
		nTasks = 0
	}
	locals := make([][][]float64, nTasks)
	par.DoCtx(ctx, nTasks, func(t int) {
		locals[t] = p.enumerateVerticesFrom(pool, t)
	})

	var out [][]float64
	seen := make(map[string]bool)
	var keyBuf []byte
	for _, local := range locals {
		for _, u := range local {
			keyBuf = quantKeyAppend(keyBuf[:0], u)
			// string([]byte) map index does not allocate; only a genuinely
			// new key pays for its string conversion on insert.
			if !seen[string(keyBuf)] {
				seen[string(keyBuf)] = true
				out = append(out, u)
			}
		}
	}
	// Canonical order keeps downstream behaviour deterministic.
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	p.verts = out
	p.vertsDirty = false
	if sp != nil {
		sp.SetInt("halfspaces", int64(len(p.Halfspaces)))
		sp.SetInt("vertices", int64(len(out)))
	}
	return out, nil
}

// enumScratch is per-task enumeration scratch — the d×d system, its solver
// workspace and the subset index vector — pooled so the hot enumeration
// allocates only for vertices that actually make it into the output.
type enumScratch struct {
	A   *vec.Mat
	b   []float64
	x   []float64
	idx []int
	lin vec.LinSolver
}

var enumPool = sync.Pool{New: func() any { return new(enumScratch) }}

// enumerateVerticesFrom solves every d×d system whose active-constraint
// subset has smallest pool index first, returning feasible vertices in
// lexicographic enumeration order (undeduplicated).
func (p *Polytope) enumerateVerticesFrom(pool [][]float64, first int) [][]float64 {
	d := p.Dim
	sc := enumPool.Get().(*enumScratch)
	defer enumPool.Put(sc)
	if sc.A == nil || cap(sc.A.Data) < d*d {
		sc.A = vec.NewMat(d, d)
		sc.b = make([]float64, d)
		sc.x = make([]float64, d)
		sc.idx = make([]int, d)
	}
	A := sc.A
	A.Rows, A.Cols = d, d
	A.Data = A.Data[:d*d]
	b, idx := sc.b[:d], sc.idx[:d-1]
	vec.Fill(b, 0)
	b[0] = 1
	var out [][]float64
	idx[0] = first
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d-1 {
			// System: Σu = 1 plus the chosen active constraints = 0.
			for j := 0; j < d; j++ {
				A.Set(0, j, 1)
			}
			for r, ci := range idx {
				copy(A.Row(r+1), pool[ci])
			}
			u, ok := sc.lin.Solve(sc.x[:d], A, b, 1e-10)
			if !ok {
				return
			}
			if p.feasibleVertex(u) {
				// Only survivors escape; infeasible candidates reuse scratch.
				out = append(out, vec.Clone(u))
			}
			return
		}
		for i := start; i <= len(pool)-(d-1-k); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(first+1, 1)
	return out
}

func (p *Polytope) feasibleVertex(u []float64) bool {
	var s float64
	for _, ui := range u {
		if ui < -vertexTol {
			return false
		}
		s += ui
	}
	if math.Abs(s-1) > 1e-7 {
		return false
	}
	for _, h := range p.Halfspaces {
		if vec.Dot(h.Normal, u) < -vertexTol*(1+vec.Norm(h.Normal)) {
			return false
		}
	}
	return vec.AllFinite(u)
}

func quantKey(u []float64) string {
	return string(quantKeyAppend(make([]byte, 0, len(u)*8), u))
}

// quantKeyAppend appends the quantized key bytes of u to buf, letting hot
// loops reuse one buffer across candidates.
func quantKeyAppend(buf []byte, u []float64) []byte {
	for _, ui := range u {
		q := int64(math.Round(ui * 1e7))
		if q == 0 {
			q = 0 // normalize −0
		}
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(q>>s))
		}
	}
	return buf
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > MaxVertexBases {
			return c
		}
	}
	return c
}
