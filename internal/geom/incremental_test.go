package geom

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"isrl/internal/fault"
	"isrl/internal/vec"
)

// randSimplexPoint draws a point of the open simplex.
func randSimplexPoint(rng *rand.Rand, d int) []float64 {
	u := make([]float64, d)
	var s float64
	for i := range u {
		u[i] = 0.05 + rng.Float64()
		s += u[i]
	}
	vec.Scale(u, 1/s, u)
	return u
}

// randCut returns a pair-difference normal oriented to keep uStar feasible,
// the shape of every halfspace the interactive loop learns.
func randCut(rng *rand.Rand, d int, uStar []float64) []float64 {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.Float64() - rng.Float64()
	}
	if vec.Dot(w, uStar) < 0 {
		vec.Scale(w, -1, w)
	}
	return w
}

func sameVertices(t *testing.T, tag string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vertices, scratch has %d", tag, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: vertex %d coord %d: %v != scratch %v", tag, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestIncrementalMatchesScratchProperty interleaves an Incremental engine
// with from-scratch recomputation over many random halfspace sequences
// (adds and redundancy reductions) and demands: bit-identical vertex sets,
// LP optima within tolerance, and identical cut-probe verdicts — including
// ones served from the cross-round negative cache.
func TestIncrementalMatchesScratchProperty(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		uStar := randSimplexPoint(rng, d)
		pInc := NewPolytope(d)
		pScr := NewPolytope(d)
		g := NewIncremental(pInc)

		// Fixed probe pool so cached verdicts get re-asked in later rounds.
		probes := make([]Halfspace, 6)
		for k := range probes {
			probes[k] = Halfspace{Normal: randCut(rng, d, uStar)}
		}

		steps := 12 + rng.Intn(10)
		for step := 0; step < steps; step++ {
			w := randCut(rng, d, uStar)
			g.Add(Halfspace{Normal: w})
			pScr.Add(Halfspace{Normal: vec.Clone(w)})

			if rng.Intn(3) == 0 {
				rInc := g.Reduce()
				rScr := pScr.ReduceRedundant()
				if rInc != rScr {
					t.Fatalf("seed %d step %d: Reduce removed %d, scratch %d", seed, step, rInc, rScr)
				}
			}

			vInc, err := g.VerticesCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: incremental vertices: %v", seed, step, err)
			}
			vScr, err := pScr.VerticesCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: scratch vertices: %v", seed, step, err)
			}
			sameVertices(t, "vertices", vInc, vScr)

			bInc, err := g.InnerBallCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: incremental inner ball: %v", seed, step, err)
			}
			bScr, err := pScr.InnerBallCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: scratch inner ball: %v", seed, step, err)
			}
			if math.Abs(bInc.Radius-bScr.Radius) > 1e-6*(1+bScr.Radius) {
				t.Fatalf("seed %d step %d: inner radius %v, scratch %v", seed, step, bInc.Radius, bScr.Radius)
			}
			if !pScr.Contains(bInc.Center, 1e-6) {
				t.Fatalf("seed %d step %d: warm inner center outside R", seed, step)
			}

			minInc, maxInc, err := g.OuterRectCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: incremental outer rect: %v", seed, step, err)
			}
			minScr, maxScr, err := pScr.OuterRectCtx(ctx)
			if err != nil {
				t.Fatalf("seed %d step %d: scratch outer rect: %v", seed, step, err)
			}
			for i := 0; i < d; i++ {
				if math.Abs(minInc[i]-minScr[i]) > 1e-6 || math.Abs(maxInc[i]-maxScr[i]) > 1e-6 {
					t.Fatalf("seed %d step %d dim %d: rect [%v,%v], scratch [%v,%v]",
						seed, step, i, minInc[i], maxInc[i], minScr[i], maxScr[i])
				}
			}

			for k, h := range probes {
				got := g.CutsBothSides(uint64(k), h, 1e-9)
				want := pScr.CutsBothSides(h, 1e-9)
				if got != want {
					t.Fatalf("seed %d step %d probe %d: cuts=%v, scratch %v", seed, step, k, got, want)
				}
			}

			if uDot := vec.Dot(w, uStar); uDot < 0 {
				t.Fatalf("seed %d step %d: generator broke invariant", seed, step)
			}
			if !pScr.Contains(uStar, 1e-7) {
				t.Fatalf("seed %d step %d: uStar left R", seed, step)
			}
		}
	}
}

// TestIncrementalClipFaultFallsBackScratch arms geom.inc.clip at full
// probability: every clip degrades, the engine must rebuild from scratch
// enumeration each round, and all outputs stay bit-identical to the scratch
// polytope.
func TestIncrementalClipFaultFallsBackScratch(t *testing.T) {
	fault.Install(fault.NewPlan(3).Set(fault.PointIncClip, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)

	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	d := 4
	uStar := randSimplexPoint(rng, d)
	pInc := NewPolytope(d)
	pScr := NewPolytope(d)
	g := NewIncremental(pInc)
	for step := 0; step < 15; step++ {
		w := randCut(rng, d, uStar)
		g.Add(Halfspace{Normal: w})
		pScr.Add(Halfspace{Normal: vec.Clone(w)})
		vInc, err := g.VerticesCtx(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		vScr, err := pScr.VerticesCtx(ctx)
		if err != nil {
			t.Fatalf("step %d: scratch: %v", step, err)
		}
		sameVertices(t, "faulted vertices", vInc, vScr)
	}
	if got := fault.Installed().Injections(fault.PointIncClip); got == 0 {
		t.Fatal("fault plan armed but geom.inc.clip never injected")
	}
}

// TestIncrementalSyncAfterForeignMutation mutates the polytope behind the
// handle's back (direct Add, scratch reduce, feasibility repair) and checks
// the next access notices and re-synchronizes instead of serving stale state.
func TestIncrementalSyncAfterForeignMutation(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))
	d := 3
	uStar := randSimplexPoint(rng, d)
	p := NewPolytope(d)
	scr := NewPolytope(d)
	g := NewIncremental(p)
	for step := 0; step < 10; step++ {
		w := randCut(rng, d, uStar)
		if step%2 == 0 {
			g.Add(Halfspace{Normal: w}) // through the handle
		} else {
			p.Add(Halfspace{Normal: vec.Clone(w)}) // behind its back
		}
		scr.Add(Halfspace{Normal: vec.Clone(w)})
		if step == 5 {
			p.ReduceRedundant()
			scr.ReduceRedundant()
		}
		vInc, err := g.VerticesCtx(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		vScr, err := scr.VerticesCtx(ctx)
		if err != nil {
			t.Fatalf("step %d: scratch: %v", step, err)
		}
		sameVertices(t, "post-foreign-mutation vertices", vInc, vScr)
		if b, err := g.InnerBallCtx(ctx); err != nil || !scr.Contains(b.Center, 1e-6) {
			t.Fatalf("step %d: inner ball after foreign mutation: %v", step, err)
		}
	}
}
