package geom

import (
	"context"
	"fmt"
	"math"
	"sort"

	"isrl/internal/fault"
	"isrl/internal/lp"
	"isrl/internal/trace"
	"isrl/internal/vec"
)

// This file is the round-incremental geometry engine. The interactive loop
// mutates its polytope one halfspace per round, yet the scratch primitives
// (vertex enumeration, the Chebyshev LP, the 2d outer-rectangle LPs, the
// cuts-both-sides probes) recompute everything from the constraint list every
// time. An Incremental handle wraps one Polytope and maintains cross-round
// state instead:
//
//   - a VertexSet updated by clipping the current vertices against the new
//     halfspace — keep/cut classification, new vertices on crossing edges —
//     instead of re-enumerating all (d−1)-subsets;
//   - warm lp.Solvers for the inner-ball and base (feasibility/extrema)
//     programs, re-solved by dual-simplex repair after each push;
//   - a monotone negative cache for cut probes: a hyperplane that misses R
//     keeps missing it as R shrinks.
//
// Every maintained structure watches the polytope's mutation generation and
// degrades to the scratch path on out-of-band changes, numeric doubt, or an
// armed geom.inc.clip fault — results stay exactly those of the scratch
// primitives (bit-identical for vertices, tolerance-identical for warm LP).

// incVertex is one maintained vertex with its active constraint set: indices
// into the pool (unit normals first, then nonzero halfspace normals), sorted
// ascending, recording which hyperplanes the vertex lies on.
type incVertex struct {
	u      []float64
	active []int
}

// VertexSet maintains the vertex list of a simple polytope across halfspace
// additions and redundant-halfspace removals. It mirrors the constraint pool
// of Polytope.Vertices and reproduces its output bit for bit: kept vertices
// keep the floats of their original d×d solves, and a new vertex is solved
// from the same system rows, in the same order, that the scratch enumeration
// would build for its active set. Whenever the polytope is not simple —
// some vertex lies on more or fewer than d−1 pool hyperplanes — clipping
// refuses and the owner falls back to scratch enumeration.
type VertexSet struct {
	d      int
	pool   [][]float64 // d unit normals, then nonzero halfspace normals
	norms  []float64   // ‖pool[i]‖, for classification tolerances
	hsPool []int       // per polytope halfspace: its pool index, or −1 (zero normal)
	verts  []incVertex // sorted by lexLess on u
	simple bool        // every vertex has exactly d−1 active constraints
}

// Len reports the number of maintained vertices.
func (vs *VertexSet) Len() int { return len(vs.verts) }

// rebuild refreshes vs from a scratch enumeration of p (served from p's
// cache when clean) and recomputes every active set.
func (vs *VertexSet) rebuild(ctx context.Context, p *Polytope) error {
	verts, err := p.VerticesCtx(ctx)
	if err != nil {
		return err
	}
	d := p.Dim
	vs.d = d
	vs.pool = vs.pool[:0]
	vs.norms = vs.norms[:0]
	vs.hsPool = vs.hsPool[:0]
	for i := 0; i < d; i++ {
		e := make([]float64, d)
		e[i] = 1
		vs.pool = append(vs.pool, e)
		vs.norms = append(vs.norms, 1)
	}
	for _, h := range p.Halfspaces {
		n := vec.Norm(h.Normal)
		if n == 0 {
			vs.hsPool = append(vs.hsPool, -1)
			continue
		}
		vs.hsPool = append(vs.hsPool, len(vs.pool))
		vs.pool = append(vs.pool, h.Normal)
		vs.norms = append(vs.norms, n)
	}
	vs.verts = vs.verts[:0]
	vs.simple = true
	for _, u := range verts {
		act := make([]int, 0, d-1)
		for i, w := range vs.pool {
			if math.Abs(vec.Dot(w, u)) <= vertexTol*(1+vs.norms[i]) {
				act = append(act, i)
			}
		}
		if len(act) != d-1 {
			vs.simple = false
		}
		vs.verts = append(vs.verts, incVertex{u: u, active: act})
	}
	return nil
}

// clip folds one freshly added halfspace into the vertex set. p must already
// contain h as its last halfspace. It returns false whenever the incremental
// update cannot be trusted to match scratch enumeration — a vertex on the new
// hyperplane, a non-simple new vertex, a quantized-key collision, an emptied
// or collapsed region — and the caller must rebuild; vs may then be left
// partially updated.
func (vs *VertexSet) clip(p *Polytope, h Halfspace) bool {
	if !vs.simple {
		return false
	}
	d := vs.d
	nh := vec.Norm(h.Normal)
	if nh == 0 {
		// Scratch excludes zero normals from the pool; R is unchanged.
		vs.hsPool = append(vs.hsPool, -1)
		return true
	}
	newIdx := len(vs.pool)
	tolH := vertexTol * (1 + nh)
	var keep, cut []int
	for i := range vs.verts {
		s := vec.Dot(h.Normal, vs.verts[i].u)
		switch {
		case s > tolH:
			keep = append(keep, i)
		case s < -tolH:
			cut = append(cut, i)
		default:
			return false // vertex on the new hyperplane: no longer simple
		}
	}
	vs.pool = append(vs.pool, h.Normal)
	vs.norms = append(vs.norms, nh)
	vs.hsPool = append(vs.hsPool, newIdx)
	if len(cut) == 0 {
		// Every vertex strictly satisfies h, so conv(verts) = R does too:
		// h changed nothing and no subset containing it is feasible.
		return true
	}
	if len(keep) == 0 {
		return false // R lost every vertex; let the scratch path judge
	}

	// Each edge from a kept to a cut vertex crosses the new hyperplane in one
	// new vertex. In a simple polytope two vertices are adjacent exactly when
	// they share d−2 active constraints; the crossing point is the solution of
	// Σu = 1, those d−2 hyperplanes, and h — precisely the system the scratch
	// enumeration solves for the active set {shared…, h}, rows in ascending
	// pool order, so the floats come out bit-identical.
	A := vec.NewMat(d, d)
	b := make([]float64, d)
	b[0] = 1
	var fresh []incVertex
	shared := make([]int, 0, d-1)
	for _, ki := range keep {
		ka := vs.verts[ki].active
		for _, ci := range cut {
			ca := vs.verts[ci].active
			shared = shared[:0]
			x, y := 0, 0
			for x < len(ka) && y < len(ca) {
				switch {
				case ka[x] == ca[y]:
					shared = append(shared, ka[x])
					x++
					y++
				case ka[x] < ca[y]:
					x++
				default:
					y++
				}
			}
			if len(shared) != d-2 {
				continue // not adjacent: no edge to cross
			}
			for j := 0; j < d; j++ {
				A.Set(0, j, 1)
			}
			for r, si := range shared {
				copy(A.Row(r+1), vs.pool[si])
			}
			copy(A.Row(d-1), h.Normal)
			u, ok := vec.SolveLinear(A, b, 1e-10)
			if !ok {
				continue // scratch skips the singular system too
			}
			if !p.feasibleVertex(u) {
				continue
			}
			act := make([]int, 0, d-1)
			act = append(act, shared...)
			act = append(act, newIdx)
			fresh = append(fresh, incVertex{u: u, active: act})
		}
	}
	if len(fresh) == 0 {
		return false // vertices were cut with no replacement: degenerate
	}

	// The new vertices must themselves be simple — exactly d−1 active pool
	// constraints — or the next clip would misjudge adjacency.
	for fi := range fresh {
		u := fresh[fi].u
		n := 0
		for i, w := range vs.pool {
			if math.Abs(vec.Dot(w, u)) <= vertexTol*(1+vs.norms[i]) {
				n++
			}
		}
		if n != d-1 {
			return false
		}
	}

	// Scratch dedups by quantized key; a collision there must force a rebuild
	// here or the two lists diverge.
	seen := make(map[string]bool, len(keep)+len(fresh))
	for _, ki := range keep {
		seen[quantKey(vs.verts[ki].u)] = true
	}
	for fi := range fresh {
		k := quantKey(fresh[fi].u)
		if seen[k] {
			return false
		}
		seen[k] = true
	}

	sort.Slice(fresh, func(a, b int) bool { return lexLess(fresh[a].u, fresh[b].u) })
	merged := make([]incVertex, 0, len(keep)+len(fresh))
	x, y := 0, 0
	for x < len(keep) && y < len(fresh) {
		if lexLess(vs.verts[keep[x]].u, fresh[y].u) {
			merged = append(merged, vs.verts[keep[x]])
			x++
		} else {
			merged = append(merged, fresh[y])
			y++
		}
	}
	for ; x < len(keep); x++ {
		merged = append(merged, vs.verts[keep[x]])
	}
	merged = append(merged, fresh[y:]...)
	vs.verts = merged
	return true
}

// remove drops the polytope halfspace at list index listIdx from the pool
// bookkeeping. The caller has certified the halfspace redundant, and in a
// simple polytope a redundant hyperplane is active at no vertex, so the
// vertex list itself is unchanged; remove only reindexes the active sets.
// It returns false — caller must rebuild — when the certificate is
// contradicted at tolerance level (some vertex does lie on the hyperplane)
// or the set is not simple.
func (vs *VertexSet) remove(listIdx int) bool {
	pi := vs.hsPool[listIdx]
	vs.hsPool = append(vs.hsPool[:listIdx], vs.hsPool[listIdx+1:]...)
	if pi < 0 {
		return true // zero normal never entered the pool
	}
	if !vs.simple {
		return false
	}
	for i := range vs.verts {
		for _, a := range vs.verts[i].active {
			if a == pi {
				return false
			}
		}
	}
	vs.pool = append(vs.pool[:pi], vs.pool[pi+1:]...)
	vs.norms = append(vs.norms[:pi], vs.norms[pi+1:]...)
	for i := range vs.hsPool {
		if vs.hsPool[i] > pi {
			vs.hsPool[i]--
		}
	}
	for i := range vs.verts {
		act := vs.verts[i].active
		for k := range act {
			if act[k] > pi {
				act[k]--
			}
		}
	}
	return true
}

// Incremental is a per-session geometry handle over one Polytope. All
// methods route to the scratch primitives when the maintained state is cold
// or degraded, so callers get scratch semantics with cross-round reuse as an
// optimization. Not safe for concurrent use (matching lp.Solver).
type Incremental struct {
	P *Polytope

	vs      *VertexSet
	vsFresh bool // vs mirrors P and P.verts is the maintained list

	inner *lp.Solver // Chebyshev-center program; nil until first InnerBallCtx
	base  *lp.Solver // feasibility/extrema program; nil until first use

	interior []float64 // latest inner-ball center; see Interior

	// noCut caches hyperplanes proven (by an Optimal LP) not to cut R:
	// shrinking R preserves the verdict, so entries live until the polytope
	// grows. Keys are caller-chosen identities that must be stable for the
	// hyperplane across rounds; the margin must be constant per handle.
	noCut map[uint64]bool

	seenGen, seenGrow uint64
}

// NewIncremental returns a handle over p with no state warmed yet.
func NewIncremental(p *Polytope) *Incremental {
	return &Incremental{P: p, noCut: make(map[uint64]bool), seenGen: p.gen, seenGrow: p.grow}
}

// sync drops whatever an out-of-band polytope mutation invalidated. Mutations
// through the handle re-read the generation themselves, so only foreign ones
// (direct Add, RepairFeasibility, scratch ReduceRedundant) land here.
func (g *Incremental) sync() {
	if g.P.gen != g.seenGen {
		g.vsFresh = false
		g.inner, g.base = nil, nil
		g.interior = nil
		g.seenGen = g.P.gen
	}
	if g.P.grow != g.seenGrow {
		clear(g.noCut) // R may have grown: negative verdicts no longer hold
		g.seenGrow = g.P.grow
	}
}

// Add intersects the polytope with h, folding it into every maintained
// structure: the vertex set by halfspace clip, the warm solvers by
// constraint push. See AddCtx.
func (g *Incremental) Add(h Halfspace) { g.AddCtx(context.Background(), h) }

// AddCtx is Add with tracing: a successful or degraded clip shows up as a
// "geom.inc.clip" span when ctx carries an active trace.
func (g *Incremental) AddCtx(ctx context.Context, h Halfspace) {
	g.sync()
	p := g.P
	p.Add(h)
	g.seenGen = p.gen
	if g.vs != nil && g.vsFresh {
		_, sp := trace.Start(ctx, "geom.inc.clip")
		if err := fault.Hit(fault.PointIncClip); err != nil {
			g.vsFresh = false
			incFallbacks.Inc()
		} else if g.vs.clip(p, h) {
			incClips.Inc()
			verts := make([][]float64, len(g.vs.verts))
			for i := range g.vs.verts {
				verts[i] = g.vs.verts[i].u
			}
			p.verts = verts
			p.vertsDirty = false
		} else {
			g.vsFresh = false
			incFallbacks.Inc()
		}
		if sp != nil {
			sp.SetInt("vertices", int64(len(p.verts)))
		}
		sp.End()
	}
	if g.inner != nil {
		if row, ok := innerBallRow(h, p.Dim); ok {
			res := g.inner.Push(lp.Constraint{Coeffs: row, Sense: lp.GE, RHS: 0})
			if res.Status == lp.Optimal {
				g.interior = append(g.interior[:0], res.X[:p.Dim]...)
			} else {
				g.interior = nil
			}
		}
	}
	if g.base != nil {
		g.base.Push(lp.Constraint{Coeffs: h.Normal, Sense: lp.GE, RHS: 0})
	}
}

// VerticesCtx returns the vertex set of R, serving the maintained list when
// it is current and rebuilding it from scratch enumeration otherwise.
func (g *Incremental) VerticesCtx(ctx context.Context) ([][]float64, error) {
	g.sync()
	if g.vs != nil && g.vsFresh && !g.P.vertsDirty {
		incVertHits.Inc()
		return g.P.verts, nil
	}
	if g.vs == nil {
		g.vs = &VertexSet{}
	}
	incRebuilds.Inc()
	if err := g.vs.rebuild(ctx, g.P); err != nil {
		g.vsFresh = false
		return nil, err
	}
	g.vsFresh = true
	return g.P.verts, nil
}

// InnerBallCtx returns the Chebyshev ball of R, warm-re-solving the
// maintained inner-ball program instead of rebuilding the LP each round.
func (g *Incremental) InnerBallCtx(ctx context.Context) (Ball, error) {
	g.sync()
	_, sp := trace.Start(ctx, "geom.inner_ball")
	defer sp.End()
	if g.inner == nil {
		g.inner = lp.NewSolver(g.P.innerBallProblem())
	}
	res := g.inner.Solve()
	if res.Status != lp.Optimal {
		return Ball{}, fmt.Errorf("geom: inner ball: %v", res.Status)
	}
	d := g.P.Dim
	g.interior = append(g.interior[:0], res.X[:d]...)
	return Ball{Center: vec.Clone(res.X[:d]), Radius: res.Objective}, nil
}

// OuterRectCtx returns the per-dimension extrema of u over R, driving the 2d
// solves through the warm base solver (phase-1-free re-optimizations).
func (g *Incremental) OuterRectCtx(ctx context.Context) (emin, emax []float64, err error) {
	g.sync()
	_, sp := trace.Start(ctx, "geom.outer_rect")
	defer sp.End()
	if g.base == nil {
		g.base = lp.NewSolver(g.P.baseProblem(0))
	}
	d := g.P.Dim
	emin = make([]float64, d)
	emax = make([]float64, d)
	obj := make([]float64, d)
	for i := 0; i < d; i++ {
		vec.Fill(obj, 0)
		obj[i] = 1
		res := g.base.SolveWith(obj)
		if res.Status != lp.Optimal {
			return nil, nil, fmt.Errorf("geom: outer rect max dim %d: %v", i, res.Status)
		}
		emax[i] = res.Objective
		obj[i] = -1
		res = g.base.SolveWith(obj)
		if res.Status != lp.Optimal {
			return nil, nil, fmt.Errorf("geom: outer rect min dim %d: %v", i, res.Status)
		}
		emin[i] = -res.Objective
	}
	return emin, emax, nil
}

// CutsBothSides is Polytope.CutsBothSides through the warm base solver and
// the cross-round negative cache. key identifies the hyperplane of h and
// must be stable across rounds; margin must be the same on every call. Only
// verdicts certified by an Optimal solve are cached, so transient solver
// failures (including injected faults) never stick.
func (g *Incremental) CutsBothSides(key uint64, h Halfspace, margin float64) bool {
	g.sync()
	if g.noCut[key] {
		incProbeHits.Inc()
		return false
	}
	if g.base == nil {
		g.base = lp.NewSolver(g.P.baseProblem(0))
	}
	obj := make([]float64, g.P.Dim)
	copy(obj, h.Normal)
	res := g.base.SolveWith(obj)
	if res.Status != lp.Optimal {
		return false
	}
	if res.Objective <= margin {
		g.noCut[key] = true
		return false
	}
	vec.Scale(obj, -1, h.Normal)
	res = g.base.SolveWith(obj)
	if res.Status != lp.Optimal {
		return false
	}
	if res.Objective <= margin {
		g.noCut[key] = true
		return false
	}
	return true
}

// Reduce is Polytope.ReduceRedundant with maintained-state upkeep: probes
// use the same from-scratch relaxation LPs (identical removal decisions),
// the vertex set survives each removal by reindexing (a redundant halfspace
// is active at no vertex of a simple polytope), and the warm solvers are
// dropped for lazy rebuild — the inner-ball program normalizes every row
// into a ball constraint, so a removed redundant halfspace does change its
// optimum, and rebuilding also keeps tableau width bounded by the live
// constraint count.
func (g *Incremental) Reduce() int {
	g.sync()
	p := g.P
	removed := 0
	rest := make([]Halfspace, 0, len(p.Halfspaces))
	neg := make([]float64, p.Dim)
	for i := 0; i < len(p.Halfspaces); {
		h := p.Halfspaces[i]
		rest = append(rest[:0], p.Halfspaces[:i]...)
		rest = append(rest, p.Halfspaces[i+1:]...)
		q := &Polytope{Dim: p.Dim, Halfspaces: rest}
		if q.sideFeasible(vec.Scale(neg, -1, h.Normal), 1e-9) {
			i++ // h actively cuts; keep it
			continue
		}
		wasFresh := g.vsFresh && !p.vertsDirty
		p.Halfspaces = append(p.Halfspaces[:i], p.Halfspaces[i+1:]...)
		p.vertsDirty = true
		p.gen++
		removed++
		if g.vs != nil && g.vsFresh {
			if g.vs.remove(i) {
				if wasFresh {
					p.vertsDirty = false
				}
			} else {
				g.vsFresh = false
				incFallbacks.Inc()
			}
		}
	}
	if removed > 0 {
		g.inner, g.base = nil, nil
	}
	g.seenGen = p.gen
	return removed
}

// Interior returns the latest inner-ball center — a point interior to R as
// of the round it was computed — or nil when none is known. Callers must
// re-validate with Contains before relying on it; the handle clears it when
// it can no longer vouch for interiority.
func (g *Incremental) Interior() []float64 {
	g.sync()
	return g.interior
}
