package geom

import (
	"math/rand"

	"isrl/internal/lp"
	"isrl/internal/vec"
)

// ExtremePoints returns the indices of the points that are vertices of the
// convex hull of the input set. A point is a hull vertex exactly when it
// cannot be written as a convex combination of the other points, which is a
// linear feasibility problem — no explicit hull construction is needed, so
// this works in any dimension (the regime where quickhull-style algorithms
// blow up).
//
// UH-Simplex interacts with "extreme points of the convex hull" of the
// candidate set; this is the primitive behind that filter. Cost is one LP
// with n−1 variables per point, so callers cap n.
func ExtremePoints(points [][]float64) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	d := len(points[0])
	var out []int
	for i := 0; i < n; i++ {
		if isExtreme(points, i, d) {
			out = append(out, i)
		}
	}
	return out
}

func isExtreme(points [][]float64, i, d int) bool {
	n := len(points)
	if n == 1 {
		return true
	}
	// Feasibility: ∃λ ≥ 0, Σλ = 1, Σ λ_j p_j = p_i over j ≠ i.
	// Infeasible ⇒ p_i is extreme.
	m := n - 1
	prob := &lp.Problem{NumVars: m, Maximize: make([]float64, m)}
	ones := make([]float64, m)
	for j := range ones {
		ones[j] = 1
	}
	prob.AddEQ(ones, 1)
	for k := 0; k < d; k++ {
		row := make([]float64, m)
		col := 0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row[col] = points[j][k]
			col++
		}
		prob.AddEQ(row, points[i][k])
	}
	res := solveLP(prob)
	return res.Status != lp.Optimal
}

// EstimateVolume returns the fraction of the utility space U covered by R,
// estimated with n uniform simplex samples. This Monte-Carlo fraction is the
// quantity behind the paper's Lemma 5: the number of samples landing in a
// sub-polytope tracks its volume share. The error is O(1/√n).
func (p *Polytope) EstimateVolume(rng *rand.Rand, n int) float64 {
	if n <= 0 {
		n = 1000
	}
	in := 0
	for i := 0; i < n; i++ {
		u := SampleSimplex(rng, p.Dim)
		inside := true
		for _, h := range p.Halfspaces {
			if vec.Dot(h.Normal, u) < 0 {
				inside = false
				break
			}
		}
		if inside {
			in++
		}
	}
	return float64(in) / float64(n)
}
