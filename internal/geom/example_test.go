package geom_test

import (
	"fmt"

	"isrl/internal/geom"
)

// ExamplePolytope shows the utility range narrowing that drives the whole
// interactive regret query: a user preferring p1 to p2 halves the simplex.
func ExamplePolytope() {
	r := geom.NewPolytope(2) // the whole utility space U
	p1 := []float64{0.9, 0.1}
	p2 := []float64{0.1, 0.9}
	r.Add(geom.NewHalfspace(p1, p2)) // "I prefer p1" (Lemma 1)

	verts, err := r.Vertices()
	if err != nil {
		panic(err)
	}
	for _, v := range verts {
		fmt.Printf("[%.1f %.1f]\n", v[0], v[1])
	}
	// Output:
	// [0.5 0.5]
	// [1.0 0.0]
}

// ExamplePolytope_InnerBall computes the paper's §IV-C inner sphere.
func ExamplePolytope_InnerBall() {
	r := geom.NewPolytope(2)
	b, err := r.InnerBall()
	if err != nil {
		panic(err)
	}
	fmt.Printf("center=[%.1f %.1f] radius=%.1f\n", b.Center[0], b.Center[1], b.Radius)
	// Output: center=[0.5 0.5] radius=0.5
}
