// Package geom implements the computational geometry of the interactive
// regret query: the utility space (the probability simplex), hyperplanes
// induced by pairs of tuples, and the utility range — the polytope obtained
// by intersecting the simplex with the halfspaces learned from user answers.
//
// All geometry lives in the affine subspace Σu = 1 of R^d with u ≥ 0, as in
// the paper's §IV-A. Hyperplanes pass through the origin (they come from
// score comparisons u·(pᵢ−pⱼ) = 0), so each halfspace is stored as just its
// normal vector with the convention normal·u ≥ 0.
package geom

import (
	"fmt"

	"isrl/internal/vec"
)

// Halfspace is the closed homogeneous halfspace {u : Normal·u ≥ 0}.
// For a question ⟨pᵢ,pⱼ⟩ answered "prefer pᵢ", Normal = pᵢ − pⱼ (Lemma 1).
type Halfspace struct {
	Normal []float64
}

// NewHalfspace builds the halfspace recording that a user prefers pi to pj.
func NewHalfspace(pi, pj []float64) Halfspace {
	return Halfspace{Normal: vec.Sub(nil, pi, pj)}
}

// Flip returns the opposite halfspace (the user preferred the other tuple).
func (h Halfspace) Flip() Halfspace {
	return Halfspace{Normal: vec.Scale(nil, -1, h.Normal)}
}

// Contains reports whether u satisfies Normal·u ≥ -tol.
func (h Halfspace) Contains(u []float64, tol float64) bool {
	return vec.Dot(h.Normal, u) >= -tol
}

// Dist returns the Euclidean distance from point c to the hyperplane
// {u : Normal·u = 0}: |Normal·c| / ‖Normal‖. A zero normal yields +Inf so a
// degenerate pair is never chosen as "closest to the center".
func (h Halfspace) Dist(c []float64) float64 {
	n := vec.Norm(h.Normal)
	if n == 0 {
		return inf
	}
	d := vec.Dot(h.Normal, c)
	if d < 0 {
		d = -d
	}
	return d / n
}

// String renders the halfspace inequality for debugging.
func (h Halfspace) String() string {
	return fmt.Sprintf("{u: %v·u >= 0}", h.Normal)
}

const inf = 1e308

// SimplexVertices returns the d corner points of the utility space
// U = {u ≥ 0, Σu = 1}: the standard basis vectors.
func SimplexVertices(d int) [][]float64 {
	vs := make([][]float64, d)
	for i := range vs {
		v := make([]float64, d)
		v[i] = 1
		vs[i] = v
	}
	return vs
}

// SimplexCentroid returns (1/d, ..., 1/d), the barycenter of U.
func SimplexCentroid(d int) []float64 {
	c := make([]float64, d)
	for i := range c {
		c[i] = 1 / float64(d)
	}
	return c
}
