package lp_test

import (
	"fmt"

	"isrl/internal/lp"
)

// ExampleSolve maximizes 3x+5y over a classic textbook feasible region.
func ExampleSolve() {
	p := &lp.Problem{NumVars: 2, Maximize: []float64{3, 5}}
	p.AddLE([]float64{1, 0}, 4)  // x ≤ 4
	p.AddLE([]float64{0, 2}, 12) // 2y ≤ 12
	p.AddLE([]float64{3, 2}, 18) // 3x + 2y ≤ 18
	r := lp.Solve(p)
	fmt.Printf("%v objective=%.0f x=%.0f y=%.0f\n", r.Status, r.Objective, r.X[0], r.X[1])
	// Output: optimal objective=36 x=2 y=6
}

// ExampleSolve_infeasible shows the status for contradictory constraints.
func ExampleSolve_infeasible() {
	p := &lp.Problem{NumVars: 1, Maximize: []float64{1}}
	p.AddLE([]float64{1}, 1)
	p.AddGE([]float64{1}, 2)
	fmt.Println(lp.Solve(p).Status)
	// Output: infeasible
}
