package lp

import (
	"math/rand"
	"testing"
)

// benchProblem mirrors the geometry layer's feasibility probes: maximize a
// random direction over the utility simplex cut by extra halfspaces.
func benchProblem(rng *rand.Rand, d, cuts int) *Problem {
	p := &Problem{NumVars: d, Maximize: make([]float64, d)}
	for i := range p.Maximize {
		p.Maximize[i] = rng.NormFloat64()
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	p.AddEQ(ones, 1)
	u := make([]float64, d) // interior witness keeps the program feasible
	for i := range u {
		u[i] = 1 / float64(d)
	}
	for k := 0; k < cuts; k++ {
		w := make([]float64, d)
		var wu float64
		for i := range w {
			w[i] = rng.NormFloat64()
			wu += w[i] * u[i]
		}
		if wu < 0 {
			for i := range w {
				w[i] = -w[i]
			}
		}
		p.AddGE(w, 0)
	}
	return p
}

func benchSolve(b *testing.B, d, cuts int) {
	b.Helper()
	prob := benchProblem(rand.New(rand.NewSource(int64(d))), d, cuts)
	if Solve(prob).Status != Optimal {
		b.Fatal("benchmark problem not optimal")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(prob)
	}
}

func BenchmarkSolveD4(b *testing.B)  { benchSolve(b, 4, 10) }
func BenchmarkSolveD20(b *testing.B) { benchSolve(b, 20, 15) }
