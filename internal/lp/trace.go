package lp

import (
	"context"

	"isrl/internal/trace"
)

// SolveCtx is Solve with a tracing leaf span: when ctx carries an active
// trace the solve is timed as "lp.solve" with the problem shape and
// outcome attached; otherwise it is exactly Solve plus one allocation-free
// context lookup.
func SolveCtx(ctx context.Context, p *Problem) Result {
	sp := trace.StartLeaf(ctx, "lp.solve")
	res := Solve(p)
	if sp != nil {
		sp.SetInt("vars", int64(p.NumVars))
		sp.SetInt("constraints", int64(len(p.Constraints)))
		sp.SetAttr("status", res.Status.String())
		sp.End()
	}
	return res
}
