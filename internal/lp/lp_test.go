package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("Solve status = %v, want optimal", r.Status)
	}
	return r
}

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// max x+y s.t. x ≤ 2, y ≤ 3 → 5 at (2,3).
func TestBox(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{1, 1}}
	p.AddLE([]float64{1, 0}, 2)
	p.AddLE([]float64{0, 1}, 3)
	r := solveOK(t, p)
	almost(t, r.Objective, 5, 1e-9, "objective")
	almost(t, r.X[0], 2, 1e-9, "x")
	almost(t, r.X[1], 3, 1e-9, "y")
}

// Classic: max 3x+5y s.t. x≤4, 2y≤12, 3x+2y≤18 → 36 at (2,6).
func TestTextbook(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{3, 5}}
	p.AddLE([]float64{1, 0}, 4)
	p.AddLE([]float64{0, 2}, 12)
	p.AddLE([]float64{3, 2}, 18)
	r := solveOK(t, p)
	almost(t, r.Objective, 36, 1e-8, "objective")
	almost(t, r.X[0], 2, 1e-8, "x")
	almost(t, r.X[1], 6, 1e-8, "y")
}

// Equality constraint: max u1 over the probability simplex → 1 at e1.
func TestSimplexDomain(t *testing.T) {
	for d := 2; d <= 8; d++ {
		p := &Problem{NumVars: d, Maximize: make([]float64, d)}
		p.Maximize[0] = 1
		ones := make([]float64, d)
		for i := range ones {
			ones[i] = 1
		}
		p.AddEQ(ones, 1)
		r := solveOK(t, p)
		almost(t, r.Objective, 1, 1e-8, "objective")
		almost(t, r.X[0], 1, 1e-8, "u1")
	}
}

// GE constraints and a minimization phrased as max of the negation:
// min x+2y s.t. x+y ≥ 3, x ≥ 1 → 3 at (3,0).
func TestGEMinimization(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{-1, -2}}
	p.AddGE([]float64{1, 1}, 3)
	p.AddGE([]float64{1, 0}, 1)
	r := solveOK(t, p)
	almost(t, r.Objective, -3, 1e-8, "objective")
	almost(t, r.X[0], 3, 1e-8, "x")
	almost(t, r.X[1], 0, 1e-8, "y")
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Maximize: []float64{1}}
	p.AddLE([]float64{1}, 1)
	p.AddGE([]float64{1}, 2)
	if r := Solve(p); r.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{1, 0}}
	p.AddGE([]float64{1, 0}, 1)
	if r := Solve(p); r.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", r.Status)
	}
}

// Free variables: max -|style| via y free: max y s.t. y ≤ -2 needs free y.
func TestFreeVariable(t *testing.T) {
	p := &Problem{NumVars: 1, Maximize: []float64{1}, Free: []bool{true}}
	p.AddLE([]float64{1}, -2)
	r := solveOK(t, p)
	almost(t, r.Objective, -2, 1e-8, "objective")
	almost(t, r.X[0], -2, 1e-8, "y")
}

// Negative RHS handling on LE rows (row flips to GE internally).
func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x ≤ -3  (i.e. x ≥ 3) → objective -3.
	p := &Problem{NumVars: 1, Maximize: []float64{-1}}
	p.AddLE([]float64{-1}, -3)
	r := solveOK(t, p)
	almost(t, r.Objective, -3, 1e-8, "objective")
}

// Degenerate problem (multiple constraints active at the optimum).
func TestDegenerate(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{1, 1}}
	p.AddLE([]float64{1, 0}, 1)
	p.AddLE([]float64{0, 1}, 1)
	p.AddLE([]float64{1, 1}, 2)
	p.AddLE([]float64{2, 1}, 3)
	r := solveOK(t, p)
	almost(t, r.Objective, 2, 1e-8, "objective")
}

// Redundant equality rows must not report infeasible.
func TestRedundantEquality(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{1, 0}}
	p.AddEQ([]float64{1, 1}, 1)
	p.AddEQ([]float64{2, 2}, 2) // same plane
	r := solveOK(t, p)
	almost(t, r.Objective, 1, 1e-8, "objective")
}

// Chebyshev center of the unit square: max r s.t. r ≤ x, r ≤ 1-x, r ≤ y,
// r ≤ 1-y → r=1/2 at the center.
func TestChebyshevSquare(t *testing.T) {
	// vars: x, y, r
	p := &Problem{NumVars: 3, Maximize: []float64{0, 0, 1}}
	p.AddLE([]float64{-1, 0, 1}, 0) // r ≤ x
	p.AddLE([]float64{1, 0, 1}, 1)  // x + r ≤ 1
	p.AddLE([]float64{0, -1, 1}, 0) // r ≤ y
	p.AddLE([]float64{0, 1, 1}, 1)  // y + r ≤ 1
	r := solveOK(t, p)
	almost(t, r.Objective, 0.5, 1e-8, "radius")
	almost(t, r.X[0], 0.5, 1e-8, "cx")
	almost(t, r.X[1], 0.5, 1e-8, "cy")
}

// feasible reports whether x satisfies all constraints of p within tol.
func feasible(p *Problem, x []float64, tol float64) bool {
	for j := 0; j < p.NumVars; j++ {
		if !(j < len(p.Free) && p.Free[j]) && x[j] < -tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		var s float64
		for j, cf := range c.Coeffs {
			s += cf * x[j]
		}
		switch c.Sense {
		case LE:
			if s > c.RHS+tol {
				return false
			}
		case GE:
			if s < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(s-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// Property test: on random LPs over the probability simplex with random
// halfspace cuts through a known interior point, the solution is feasible
// and at least as good as the interior point.
func TestRandomSimplexCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(6)
		// Interior point: random from simplex interior.
		u := make([]float64, d)
		var s float64
		for i := range u {
			u[i] = 0.05 + rng.Float64()
			s += u[i]
		}
		for i := range u {
			u[i] /= s
		}
		p := &Problem{NumVars: d, Maximize: make([]float64, d)}
		for i := range p.Maximize {
			p.Maximize[i] = rng.NormFloat64()
		}
		ones := make([]float64, d)
		for i := range ones {
			ones[i] = 1
		}
		p.AddEQ(ones, 1)
		// Random halfspaces through random hyperplanes kept feasible at u.
		for k := 0; k < rng.Intn(8); k++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			var wu float64
			for i := range w {
				wu += w[i] * u[i]
			}
			if wu >= 0 {
				p.AddGE(w, 0)
			} else {
				p.AddLE(w, 0)
			}
		}
		r := Solve(p)
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v (u=%v)", trial, r.Status, u)
		}
		if !feasible(p, r.X, 1e-6) {
			t.Fatalf("trial %d: solution %v violates constraints", trial, r.X)
		}
		var objAtU float64
		for i := range u {
			objAtU += p.Maximize[i] * u[i]
		}
		if r.Objective < objAtU-1e-6 {
			t.Fatalf("trial %d: objective %v below feasible point's %v", trial, r.Objective, objAtU)
		}
	}
}

// Property test: random box LPs have the analytic corner optimum.
func TestRandomBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(6)
		p := &Problem{NumVars: d, Maximize: make([]float64, d)}
		ub := make([]float64, d)
		want := 0.0
		for j := 0; j < d; j++ {
			p.Maximize[j] = rng.NormFloat64()
			ub[j] = rng.Float64() * 5
			row := make([]float64, d)
			row[j] = 1
			p.AddLE(row, ub[j])
			if p.Maximize[j] > 0 {
				want += p.Maximize[j] * ub[j]
			}
		}
		r := solveOK(t, p)
		almost(t, r.Objective, want, 1e-6*(1+math.Abs(want)), "box objective")
	}
}

func BenchmarkSolveSimplexCut(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 10
	p := &Problem{NumVars: d, Maximize: make([]float64, d)}
	for i := range p.Maximize {
		p.Maximize[i] = rng.NormFloat64()
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	p.AddEQ(ones, 1)
	for k := 0; k < 20; k++ {
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		w[0] = math.Abs(w[0]) // keep e1 ~feasible-ish; feasibility not needed for the bench
		p.AddGE(w, -1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(p)
	}
}

func TestStringers(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("status strings wrong")
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Error("unknown values must still print")
	}
}

// An LP whose only feasible point is a single vertex (fully determined).
func TestPointFeasibleRegion(t *testing.T) {
	p := &Problem{NumVars: 2, Maximize: []float64{3, -2}}
	p.AddEQ([]float64{1, 0}, 0.25)
	p.AddEQ([]float64{0, 1}, 0.75)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	almost(t, r.X[0], 0.25, 1e-9, "x")
	almost(t, r.X[1], 0.75, 1e-9, "y")
	almost(t, r.Objective, 3*0.25-2*0.75, 1e-9, "objective")
}
