// Warm-started solving. A Solver owns one linear program that only ever
// grows by one constraint at a time — the shape of the interactive loop,
// where each round intersects the utility range with a single halfspace. It
// keeps the optimal basis and tableau across calls, so a re-solve after an
// added constraint is a dual-simplex repair (usually zero or a handful of
// pivots) and a re-solve under a new objective is a primal re-optimization
// from the previous basis (no phase 1), instead of a full two-phase cold
// solve either way. Any numeric doubt falls back to the cold path, which is
// bit-identical to Solve on the same accumulated problem.
package lp

import (
	"fmt"
	"math"

	"isrl/internal/fault"
	"isrl/internal/obs"
)

// Warm-start telemetry. solves counts warm attempts (Push and SolveWith on a
// live basis), hits the attempts that finished warm, fallbacks the attempts
// that had to rebuild cold; cold counts every from-scratch solve a Solver ran
// (lazy inits, periodic refactorizations and fallbacks alike).
var (
	warmSolves    = obs.Default().Counter("lp.warm.solves")
	warmHits      = obs.Default().Counter("lp.warm.hits")
	warmPivots    = obs.Default().Counter("lp.warm.pivots")
	warmFallbacks = obs.Default().Counter("lp.warm.fallbacks")
	warmCold      = obs.Default().Counter("lp.warm.cold")
)

// refactorEvery bounds floating-point drift: after this many consecutive
// warm pushes the tableau is rebuilt from scratch, like the periodic
// refactorization of a product-form simplex.
const refactorEvery = 32

// growReserve is the column/row headroom allocated beyond the current
// tableau so the usual push (one new slack column, one new row) extends
// slices in place instead of reallocating.
const growReserve = 48

// Solver is a reusable warm-started simplex over one growing problem.
// It is not safe for concurrent use. Result.X slices returned by its methods
// must be treated as read-only; they are freshly allocated per re-solve but
// cached between calls.
type Solver struct {
	prob Problem // owned accumulated problem
	res  Result

	solved     bool // res reflects prob
	infeasible bool // sticky: adding constraints cannot restore feasibility

	// Warm tableau state; meaningful only when warm is true.
	warm   bool
	rows   [][]float64 // m × (cols+1), RHS last; cap leaves growth headroom
	basis  []int
	banned []bool // dead artificial columns (phase 1); nil when none
	obj    []float64
	posCol []int
	negCol []int
	cols   int
	pushes int // warm pushes since the last cold solve

	ar *arena    // owned scratch for cold solves and reduced-cost rows
	xs []float64 // column-value scratch for X recovery
}

// NewSolver returns a solver owning a copy of p. Later changes to p are not
// seen; constraint coefficient slices are shared and must not be mutated.
func NewSolver(p *Problem) *Solver {
	s := &Solver{}
	s.prob.NumVars = p.NumVars
	s.prob.Maximize = append([]float64(nil), p.Maximize...)
	s.prob.Free = append([]bool(nil), p.Free...)
	s.prob.Constraints = append([]Constraint(nil), p.Constraints...)
	return s
}

// NumConstraints reports how many constraints the accumulated problem holds.
func (s *Solver) NumConstraints() int { return len(s.prob.Constraints) }

// Solve returns the current optimum, cold-solving on first use. Subsequent
// calls without intervening Push/SolveWith return the cached result.
func (s *Solver) Solve() Result {
	if !s.solved {
		s.cold()
	}
	return s.res
}

// Push appends one constraint and re-solves. On a live warm basis this is a
// dual-simplex repair: the new row is reduced against the basis and, when it
// violates feasibility, dual pivots restore it — typically far cheaper than
// a cold solve. EQ constraints, numeric trouble, the periodic
// refactorization and the lp.warm fault point all take the cold path, whose
// result is bit-identical to Solve on the same accumulated problem.
func (s *Solver) Push(c Constraint) Result {
	if len(c.Coeffs) != s.prob.NumVars {
		panic(fmt.Sprintf("lp: pushed constraint has %d coefficients, want %d", len(c.Coeffs), s.prob.NumVars))
	}
	own := Constraint{Coeffs: append([]float64(nil), c.Coeffs...), Sense: c.Sense, RHS: c.RHS}
	s.prob.Constraints = append(s.prob.Constraints, own)
	if s.infeasible {
		// A superset of an infeasible system stays infeasible.
		s.res = Result{Status: Infeasible}
		return s.res
	}
	if !s.solved || !s.warm || c.Sense == EQ {
		s.cold()
		return s.res
	}
	if s.pushes+1 >= refactorEvery {
		s.cold()
		return s.res
	}
	warmSolves.Inc()
	if err := fault.Hit(fault.PointLPWarm); err != nil {
		warmFallbacks.Inc()
		s.cold()
		return s.res
	}
	s.pushes++
	if s.pushWarm(own) {
		warmHits.Inc()
	} else {
		warmFallbacks.Inc()
		s.cold()
	}
	return s.res
}

// SolveWith re-optimizes under a new objective. On a live warm basis the
// previous optimal basis is primal-feasible for any objective, so this runs
// plain primal simplex from it — skipping phase 1 entirely. Infeasibility is
// objective-independent and short-circuits.
func (s *Solver) SolveWith(objective []float64) Result {
	if len(objective) != s.prob.NumVars {
		panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(objective), s.prob.NumVars))
	}
	s.prob.Maximize = append(s.prob.Maximize[:0], objective...)
	if s.infeasible {
		s.res = Result{Status: Infeasible}
		return s.res
	}
	if !s.solved || !s.warm {
		s.cold()
		return s.res
	}
	warmSolves.Inc()
	if err := fault.Hit(fault.PointLPWarm); err != nil {
		warmFallbacks.Inc()
		s.cold()
		return s.res
	}
	s.expandObj()
	s.ar.reset()
	tab := &tableau{t: s.rows, basis: s.basis, cols: s.cols, banned: s.banned, ar: s.ar}
	z, st := tab.run(s.obj, s.banned)
	switch st {
	case Optimal:
		warmHits.Inc()
		s.res = Result{Status: Optimal, X: s.extractX(), Objective: z}
	case Unbounded:
		// The tableau stayed primal-feasible but dual feasibility is gone;
		// the next Push must not assume an optimal basis.
		warmHits.Inc()
		s.warm = false
		s.res = Result{Status: Unbounded}
	default:
		warmFallbacks.Inc()
		s.cold()
	}
	return s.res
}

// cold rebuilds the tableau from scratch over the accumulated problem. It is
// Solve on s.prob — including the lp.solve fault hook, so chaos plans that
// poison cold solves poison lazily-initialized warm solvers the same way.
func (s *Solver) cold() {
	warmCold.Inc()
	s.solved = true
	s.pushes = 0
	if err := fault.Hit(fault.PointLPSolve); err != nil {
		s.res = Result{Status: IterLimit}
		s.warm = false
		return
	}
	if s.ar == nil {
		s.ar = new(arena)
	}
	s.ar.reset()
	res, tab, lay := solveCore(&s.prob, s.ar)
	s.res = res
	if res.Status == Infeasible {
		s.infeasible = true
	}
	if res.Status != Optimal {
		s.warm = false
		return
	}
	// Copy the arena-backed tableau into owned storage with growth headroom;
	// the arena is reused by the next cold solve or reduced-cost row.
	s.cols = lay.cols
	s.posCol = append(s.posCol[:0], lay.posCol...)
	s.negCol = append(s.negCol[:0], lay.negCol...)
	s.basis = append(s.basis[:0], tab.basis...)
	if tab.banned != nil {
		if cap(s.banned) < lay.cols+growReserve {
			s.banned = make([]bool, lay.cols, lay.cols+growReserve)
		} else {
			s.banned = s.banned[:lay.cols]
		}
		copy(s.banned, tab.banned)
	} else {
		s.banned = nil
	}
	m := len(tab.t)
	if cap(s.rows) < m {
		old := s.rows
		s.rows = make([][]float64, len(old), m+growReserve)
		copy(s.rows, old)
	}
	for i := 0; i < m; i++ {
		var row []float64
		if i < len(s.rows) && cap(s.rows[i]) >= lay.cols+1 {
			row = s.rows[i][:lay.cols+1]
		} else {
			row = make([]float64, lay.cols+1, lay.cols+1+growReserve)
		}
		copy(row, tab.t[i])
		if i < len(s.rows) {
			s.rows[i] = row
		} else {
			s.rows = append(s.rows, row)
		}
	}
	s.rows = s.rows[:m]
	s.warm = true
}

// expandObj spreads prob.Maximize over the standard-form columns.
func (s *Solver) expandObj() {
	if cap(s.obj) < s.cols {
		s.obj = make([]float64, s.cols, s.cols+growReserve)
	}
	s.obj = s.obj[:s.cols]
	for k := range s.obj {
		s.obj[k] = 0
	}
	for j, cj := range s.prob.Maximize {
		s.obj[s.posCol[j]] = cj
		if s.negCol[j] >= 0 {
			s.obj[s.negCol[j]] = -cj
		}
	}
}

// extractX recovers the original variables from the current basis.
func (s *Solver) extractX() []float64 {
	cols := s.cols
	if cap(s.xs) < cols {
		s.xs = make([]float64, cols, cols+growReserve)
	}
	s.xs = s.xs[:cols]
	for k := range s.xs {
		s.xs[k] = 0
	}
	for i, b := range s.basis {
		s.xs[b] = s.rows[i][cols]
	}
	n := s.prob.NumVars
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = s.xs[s.posCol[j]]
		if s.negCol[j] >= 0 {
			x[j] -= s.xs[s.negCol[j]]
		}
	}
	return x
}

// pushWarm repairs optimality after appending constraint c: a new slack
// column and basic row enter the tableau, then dual-simplex pivots drive any
// negative right-hand side out. Returns false when the repair should be
// abandoned for a cold rebuild (iteration cap, drifted solution).
func (s *Solver) pushWarm(c Constraint) bool {
	// ≤-form: a·x ≤ b. A GE row flips; the RHS may go negative — restoring
	// primal feasibility is exactly what the dual iteration is for.
	sign := 1.0
	b := c.RHS
	if c.Sense == GE {
		sign, b = -1, -b
	}

	// Grow every structure by the new slack column at index cols, shifting
	// the RHS right by one.
	cols := s.cols
	for i := range s.rows {
		row := append(s.rows[i], 0)
		row[cols+1] = row[cols]
		row[cols] = 0
		s.rows[i] = row
	}
	if s.banned != nil {
		s.banned = append(s.banned, false)
	}
	s.cols = cols + 1
	cols = s.cols
	slack := cols - 1

	// Rebuild the reduced-cost row for the current objective at the current
	// basis (the basis is optimal for it, so red ≤ 0 up to roundoff — dual
	// feasibility, the precondition for the dual ratio test).
	s.expandObj()
	s.ar.reset()
	red := s.ar.floats(cols + 1)
	copy(red, s.obj)
	for i, bi := range s.basis {
		cb := s.obj[bi]
		if cb == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			red[j] -= cb * s.rows[i][j]
		}
	}

	// New row in tableau coordinates, reduced against the basis so existing
	// basic columns stay clean.
	row := make([]float64, cols+1, cols+1+growReserve)
	for j, aj := range c.Coeffs {
		row[s.posCol[j]] = sign * aj
		if s.negCol[j] >= 0 {
			row[s.negCol[j]] = -sign * aj
		}
	}
	row[slack] = 1
	row[cols] = b
	for i, bi := range s.basis {
		f := row[bi]
		if f == 0 {
			continue
		}
		ti := s.rows[i]
		for j := 0; j <= cols; j++ {
			row[j] -= f * ti[j]
		}
		row[bi] = 0
	}
	s.rows = append(s.rows, row)
	s.basis = append(s.basis, slack)

	// Dual simplex: pick the most-negative RHS row, enter the column
	// minimizing red/t over t < 0 (smallest index on ties, which also breaks
	// degenerate cycles in practice), pivot, repeat.
	m := len(s.rows)
	maxIter := 200 + 20*m
	for iter := 0; iter < maxIter; iter++ {
		r, worst := -1, -eps
		for i := 0; i < m; i++ {
			if v := s.rows[i][cols]; v < worst {
				worst, r = v, i
			}
		}
		if r < 0 {
			break // primal feasible again: optimal
		}
		enter, best := -1, math.Inf(1)
		tr := s.rows[r]
		for j := 0; j < cols; j++ {
			if s.banned != nil && j < len(s.banned) && s.banned[j] {
				continue
			}
			if tr[j] < -eps {
				rc := red[j]
				if rc > 0 {
					rc = 0 // roundoff residue; dual feasibility holds
				}
				if ratio := rc / tr[j]; ratio < best {
					best, enter = ratio, j
				}
			}
		}
		if enter < 0 {
			// No column can restore this row: primal infeasible.
			s.infeasible = true
			s.warm = false
			s.res = Result{Status: Infeasible}
			return true
		}
		s.pivotWarm(r, enter, red)
		warmPivots.Inc()
		if iter == maxIter-1 {
			return false // cap hit with rows still negative
		}
	}

	x := s.extractX()
	// Sanity: the pushed constraint must hold at the recovered point; drift
	// beyond tolerance means the warm basis went numerically stale.
	var dot float64
	for j, aj := range c.Coeffs {
		dot += aj * x[j]
	}
	viol := 0.0
	switch c.Sense {
	case LE:
		viol = dot - c.RHS
	case GE:
		viol = c.RHS - dot
	}
	if viol > 1e-6*(1+math.Abs(c.RHS)) {
		return false
	}
	s.res = Result{Status: Optimal, X: x, Objective: -red[cols]}
	return true
}

// pivotWarm is tableau.pivot plus the reduced-cost update the run loop
// normally performs.
func (s *Solver) pivotWarm(leave, enter int, red []float64) {
	cols := s.cols
	prow := s.rows[leave]
	inv := 1 / prow[enter]
	for j := 0; j <= cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1
	for i := range s.rows {
		if i == leave {
			continue
		}
		f := s.rows[i][enter]
		if f == 0 {
			continue
		}
		row := s.rows[i]
		for j := 0; j <= cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
	}
	s.basis[leave] = enter
	if f := red[enter]; f != 0 {
		for j := 0; j <= cols; j++ {
			red[j] -= f * prow[j]
		}
		red[enter] = 0
	}
}
