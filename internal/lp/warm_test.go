package lp

import (
	"math"
	"math/rand"
	"testing"

	"isrl/internal/fault"
)

// randSimplexProblem builds a regret-query-shaped LP: d non-negative vars on
// the probability simplex, nHS homogeneous halfspace rows, random objective.
func randSimplexProblem(rng *rand.Rand, d, nHS int) *Problem {
	p := &Problem{NumVars: d, Maximize: make([]float64, d)}
	for j := range p.Maximize {
		p.Maximize[j] = rng.Float64()*2 - 1
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	p.AddEQ(ones, 1)
	for k := 0; k < nHS; k++ {
		p.AddGE(randNormal(rng, d), 0)
	}
	return p
}

func randNormal(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	for j := range w {
		w[j] = rng.Float64()*2 - 1
	}
	return w
}

// assertAgrees checks a warm result against the cold Solve of the same
// accumulated problem: identical status, objective within tolerance, and a
// primal-feasible point.
func assertAgrees(t *testing.T, tag string, warm Result, prob *Problem) {
	t.Helper()
	cold := Solve(prob)
	if warm.Status != cold.Status {
		t.Fatalf("%s: warm status %v, cold %v", tag, warm.Status, cold.Status)
	}
	if warm.Status != Optimal {
		return
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("%s: warm objective %v, cold %v", tag, warm.Objective, cold.Objective)
	}
	for i, c := range prob.Constraints {
		var dot float64
		for j, aj := range c.Coeffs {
			dot += aj * warm.X[j]
		}
		var viol float64
		switch c.Sense {
		case LE:
			viol = dot - c.RHS
		case GE:
			viol = c.RHS - dot
		case EQ:
			viol = math.Abs(dot - c.RHS)
		}
		if viol > 1e-6*(1+math.Abs(c.RHS)) {
			t.Fatalf("%s: warm X violates constraint %d by %v", tag, i, viol)
		}
	}
	for j, xj := range warm.X {
		if j >= len(prob.Free) || !prob.Free[j] {
			if xj < -1e-6 {
				t.Fatalf("%s: warm X[%d] = %v < 0", tag, j, xj)
			}
		}
	}
}

// TestWarmPushMatchesCold drives many random incremental sequences through
// Push and checks every intermediate optimum against a from-scratch solve.
func TestWarmPushMatchesCold(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		base := randSimplexProblem(rng, d, rng.Intn(4))
		s := NewSolver(base)
		assertAgrees(t, "init", s.Solve(), base)
		for step := 0; step < 25; step++ {
			c := Constraint{Coeffs: randNormal(rng, d), Sense: GE, RHS: 0}
			if rng.Intn(4) == 0 {
				// Occasional inhomogeneous LE rows exercise negative-RHS
				// handling in the dual repair.
				c = Constraint{Coeffs: randNormal(rng, d), Sense: LE, RHS: rng.Float64() - 0.3}
			}
			res := s.Push(c)
			base.Constraints = append(base.Constraints, c)
			assertAgrees(t, "push", res, base)
			if res.Status == Infeasible {
				break
			}
		}
	}
}

// TestWarmSolveWithMatchesCold interleaves objective changes and pushes.
func TestWarmSolveWithMatchesCold(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		base := randSimplexProblem(rng, d, 1+rng.Intn(3))
		s := NewSolver(base)
		s.Solve()
		for step := 0; step < 30; step++ {
			if rng.Intn(3) == 0 {
				c := Constraint{Coeffs: randNormal(rng, d), Sense: GE, RHS: 0}
				res := s.Push(c)
				base.Constraints = append(base.Constraints, c)
				assertAgrees(t, "push", res, base)
				if res.Status == Infeasible {
					break
				}
				continue
			}
			obj := randNormal(rng, d)
			res := s.SolveWith(obj)
			base.Maximize = obj
			assertAgrees(t, "solvewith", res, base)
		}
	}
}

// TestWarmInfeasibleSticky verifies that once a push proves the system
// infeasible, later pushes answer Infeasible without solving.
func TestWarmInfeasibleSticky(t *testing.T) {
	d := 3
	base := randSimplexProblem(rand.New(rand.NewSource(1)), d, 0)
	s := NewSolver(base)
	s.Solve()
	// x₀ ≥ 0.9 and x₀ ≤ 0.1 cannot both hold on the simplex.
	if res := s.Push(Constraint{Coeffs: []float64{1, 0, 0}, Sense: GE, RHS: 0.9}); res.Status != Optimal {
		t.Fatalf("first push: %v", res.Status)
	}
	if res := s.Push(Constraint{Coeffs: []float64{1, 0, 0}, Sense: LE, RHS: 0.1}); res.Status != Infeasible {
		t.Fatalf("conflicting push: %v, want infeasible", res.Status)
	}
	if res := s.Push(Constraint{Coeffs: []float64{0, 1, 0}, Sense: GE, RHS: 0}); res.Status != Infeasible {
		t.Fatalf("push after infeasible: %v, want sticky infeasible", res.Status)
	}
	if res := s.SolveWith([]float64{0, 0, 1}); res.Status != Infeasible {
		t.Fatalf("solvewith after infeasible: %v, want sticky infeasible", res.Status)
	}
}

// TestWarmFaultFallsBackCold proves the lp.warm fault point downgrades every
// warm operation to the cold path — whose results are bit-identical to Solve
// on the same accumulated problem — rather than corrupting state.
func TestWarmFaultFallsBackCold(t *testing.T) {
	fault.Install(fault.NewPlan(7).Set(fault.PointLPWarm, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)

	rng := rand.New(rand.NewSource(42))
	d := 4
	base := randSimplexProblem(rng, d, 2)
	s := NewSolver(base)
	for step := 0; step < 10; step++ {
		c := Constraint{Coeffs: randNormal(rng, d), Sense: GE, RHS: 0}
		res := s.Push(c)
		base.Constraints = append(base.Constraints, c)
		cold := Solve(base)
		if res.Status != cold.Status {
			t.Fatalf("step %d: status %v, cold %v", step, res.Status, cold.Status)
		}
		if res.Status == Optimal {
			if res.Objective != cold.Objective {
				t.Fatalf("step %d: fallback objective %v not bit-identical to cold %v", step, res.Objective, cold.Objective)
			}
			for j := range res.X {
				if res.X[j] != cold.X[j] {
					t.Fatalf("step %d: fallback X[%d] %v != cold %v", step, j, res.X[j], cold.X[j])
				}
			}
		}
		if res.Status == Infeasible {
			break
		}
	}
	if got := fault.Installed().Injections(fault.PointLPWarm); got == 0 {
		t.Fatal("fault plan armed but lp.warm never injected")
	}
}

// TestWarmColdInitHitsLPSolveFault: a plan poisoning lp.solve must poison a
// solver's lazy cold init too, so chaos runs degrade warm and cold users
// alike.
func TestWarmColdInitHitsLPSolveFault(t *testing.T) {
	fault.Install(fault.NewPlan(7).Set(fault.PointLPSolve, fault.Spec{ErrProb: 1}))
	defer fault.Install(nil)
	s := NewSolver(randSimplexProblem(rand.New(rand.NewSource(3)), 3, 2))
	if res := s.Solve(); res.Status != IterLimit {
		t.Fatalf("poisoned cold init returned %v, want iteration-limit", res.Status)
	}
}

// TestWarmRefactorization pushes past the refactorization interval and
// checks the periodic cold rebuild keeps answers correct.
func TestWarmRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 6
	base := randSimplexProblem(rng, d, 0)
	s := NewSolver(base)
	s.Solve()
	for step := 0; step < refactorEvery+8; step++ {
		// Very shallow cuts keep the polytope feasible for many rounds.
		w := randNormal(rng, d)
		for j := range w {
			w[j] = w[j]*0.05 + 1.0/float64(d)
		}
		c := Constraint{Coeffs: w, Sense: GE, RHS: 0}
		res := s.Push(c)
		base.Constraints = append(base.Constraints, c)
		assertAgrees(t, "refactor", res, base)
		if res.Status != Optimal {
			break
		}
	}
}
