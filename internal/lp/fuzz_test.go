package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolve drives the simplex with randomized problems: whatever the
// shape, Solve must terminate without panicking, and when it reports
// Optimal the solution must actually be feasible.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(42), uint8(1), uint8(0))
	f.Add(int64(7), uint8(6), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nv)%8
		m := int(nc) % 12
		p := &Problem{NumVars: n, Maximize: make([]float64, n), Free: make([]bool, n)}
		for i := range p.Maximize {
			p.Maximize[i] = rng.NormFloat64()
			p.Free[i] = rng.Intn(4) == 0
		}
		for k := 0; k < m; k++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			rhs := rng.NormFloat64() * 3
			switch rng.Intn(3) {
			case 0:
				p.AddLE(row, rhs)
			case 1:
				p.AddGE(row, rhs)
			default:
				p.AddEQ(row, rhs)
			}
		}
		r := Solve(p)
		switch r.Status {
		case Optimal:
			if !feasible(p, r.X, 1e-5) {
				t.Fatalf("optimal solution infeasible: %v", r.X)
			}
			if math.IsNaN(r.Objective) || math.IsInf(r.Objective, 0) {
				t.Fatalf("non-finite objective %v", r.Objective)
			}
		case Infeasible, Unbounded, IterLimit:
			// Legitimate outcomes for random problems.
		default:
			t.Fatalf("unknown status %v", r.Status)
		}
	})
}
