// Package lp implements a dense two-phase simplex solver for small linear
// programs in general form:
//
//	maximize   c·x
//	subject to Aᵢ·x {≤,=,≥} bᵢ   for each constraint i
//	           xⱼ ≥ 0, or xⱼ free
//
// The solver targets the problem sizes that appear in interactive regret
// queries — a handful to a few hundred constraints over 2–30 variables — and
// favours robustness over asymptotics: it runs Dantzig's rule with a
// degeneracy watchdog that switches to Bland's rule, which guarantees
// termination.
package lp

import (
	"fmt"
	"math"
	"sync"

	"isrl/internal/fault"
)

// arena recycles the simplex working set — tableau rows, index maps,
// reduced-cost row — across Solve calls via a sync.Pool. Solve runs on every
// geometry probe in the hot interactive loop, and rebuilding the tableau
// used to dominate its allocation profile. Carved slices are zeroed, so they
// behave exactly like fresh make() slices; Result.X is still freshly
// allocated and never aliases pooled memory.
type arena struct {
	f    []float64
	fOff int
	i    []int
	iOff int
	b    []bool
	bOff int
	r    [][]float64
	rOff int
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

func (a *arena) reset() { a.fOff, a.iOff, a.bOff, a.rOff = 0, 0, 0, 0 }

// floats carves a zeroed n-element slice from the arena. When the backing
// array is exhausted a larger one replaces it; slices carved earlier keep
// pointing at the old array and stay valid.
func (a *arena) floats(n int) []float64 {
	if a.fOff+n > len(a.f) {
		a.f = make([]float64, 2*len(a.f)+n)
		a.fOff = 0
	}
	s := a.f[a.fOff : a.fOff+n : a.fOff+n]
	a.fOff += n
	for k := range s {
		s[k] = 0
	}
	return s
}

func (a *arena) ints(n int) []int {
	if a.iOff+n > len(a.i) {
		a.i = make([]int, 2*len(a.i)+n)
		a.iOff = 0
	}
	s := a.i[a.iOff : a.iOff+n : a.iOff+n]
	a.iOff += n
	for k := range s {
		s[k] = 0
	}
	return s
}

func (a *arena) bools(n int) []bool {
	if a.bOff+n > len(a.b) {
		a.b = make([]bool, 2*len(a.b)+n)
		a.bOff = 0
	}
	s := a.b[a.bOff : a.bOff+n : a.bOff+n]
	a.bOff += n
	for k := range s {
		s[k] = false
	}
	return s
}

func (a *arena) rowPtrs(n int) [][]float64 {
	if a.rOff+n > len(a.r) {
		a.r = make([][]float64, 2*len(a.r)+n)
		a.rOff = 0
	}
	s := a.r[a.rOff : a.rOff+n : a.rOff+n]
	a.rOff += n
	for k := range s {
		s[k] = nil
	}
	return s
}

// Sense is the relation of a constraint row to its right-hand side.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // Aᵢ·x ≤ bᵢ
	EQ              // Aᵢ·x = bᵢ
	GE              // Aᵢ·x ≥ bᵢ
)

// String returns the comparison operator of the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// Constraint is a single linear constraint. Coeffs must have the problem's
// NumVars entries.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program in general form. The zero value is unusable;
// populate NumVars, Maximize, and Constraints. Variables are non-negative by
// default; set Free[j] to lift the bound on variable j (Free may be nil or
// shorter than NumVars, missing entries default to false).
type Problem struct {
	NumVars     int
	Maximize    []float64
	Constraints []Constraint
	Free        []bool
}

// AddLE appends coeffs·x ≤ rhs.
func (p *Problem) AddLE(coeffs []float64, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: LE, RHS: rhs})
}

// AddGE appends coeffs·x ≥ rhs.
func (p *Problem) AddGE(coeffs []float64, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: GE, RHS: rhs})
}

// AddEQ appends coeffs·x = rhs.
func (p *Problem) AddEQ(coeffs []float64, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: EQ, RHS: rhs})
}

// Status classifies the outcome of Solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit // iteration cap hit; numerical trouble
)

// String names the solve outcome.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Result is the outcome of Solve. X and Objective are meaningful only when
// Status is Optimal.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	eps     = 1e-9
	feasTol = 1e-7
)

// Solve solves the linear program. It never modifies p.
func Solve(p *Problem) Result {
	// Chaos hook (no-op unless a fault.Plan is installed): an injected error
	// reports IterLimit — exactly how a genuinely degenerate tableau
	// surfaces — so callers exercise their numeric-trouble paths.
	if err := fault.Hit(fault.PointLPSolve); err != nil {
		return Result{Status: IterLimit}
	}
	ar := arenaPool.Get().(*arena)
	ar.reset()
	defer arenaPool.Put(ar)
	res, _, _ := solveCore(p, ar)
	return res
}

// layout records the standard-form column map solveCore built: the x⁺/x⁻
// column of every original variable and the total column count. Slices are
// carved from the arena passed to solveCore and stay valid only until its
// next reset.
type layout struct {
	posCol []int
	negCol []int
	cols   int
}

// solveCore runs the two-phase simplex against the arena-backed tableau and
// returns the final tableau state alongside the result, so warm-start callers
// can copy the optimal basis out. On non-Optimal statuses the tableau is not
// meaningful. Solve is exactly fault-hook + pooled-arena + solveCore.
func solveCore(p *Problem, ar *arena) (Result, *tableau, layout) {
	n := p.NumVars
	if len(p.Maximize) != n {
		panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(p.Maximize), n))
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			panic(fmt.Sprintf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n))
		}
	}

	// --- Standard-form conversion -------------------------------------
	// Column layout: for each original variable j, one column (x⁺) and, when
	// the variable is free, a paired negative column (x⁻). Then one slack or
	// surplus column per inequality, then one artificial per row that needs
	// one (GE and EQ rows, and LE rows whose RHS went negative).
	free := func(j int) bool { return j < len(p.Free) && p.Free[j] }

	posCol := ar.ints(n) // column of x⁺ for var j
	negCol := ar.ints(n) // column of x⁻, or -1
	cols := 0
	for j := 0; j < n; j++ {
		posCol[j] = cols
		cols++
		if free(j) {
			negCol[j] = cols
			cols++
		} else {
			negCol[j] = -1
		}
	}
	m := len(p.Constraints)
	// Row-normalized copies with non-negative RHS.
	rows := ar.rowPtrs(m)
	rhs := ar.floats(m)
	senses := make([]Sense, m)
	for i, c := range p.Constraints {
		r := ar.floats(cols)
		for j := 0; j < n; j++ {
			r[posCol[j]] = c.Coeffs[j]
			if negCol[j] >= 0 {
				r[negCol[j]] = -c.Coeffs[j]
			}
		}
		b, s := c.RHS, c.Sense
		if b < 0 {
			for k := range r {
				r[k] = -r[k]
			}
			b = -b
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		rows[i], rhs[i], senses[i] = r, b, s
	}
	slackCol := ar.ints(m)
	for i := range slackCol {
		slackCol[i] = -1
	}
	for i, s := range senses {
		if s == LE || s == GE {
			slackCol[i] = cols
			cols++
		}
	}
	artCol := ar.ints(m)
	numArt := 0
	for i, s := range senses {
		if s == LE {
			artCol[i] = -1
			continue
		}
		artCol[i] = cols
		cols++
		numArt++
	}

	// Tableau: m rows × (cols+1); last column is RHS. basis[i] is the column
	// basic in row i.
	t := ar.rowPtrs(m)
	basis := ar.ints(m)
	for i := 0; i < m; i++ {
		row := ar.floats(cols + 1)
		copy(row, rows[i])
		row[cols] = rhs[i]
		switch senses[i] {
		case LE:
			row[slackCol[i]] = 1
			basis[i] = slackCol[i]
		case GE:
			row[slackCol[i]] = -1
			row[artCol[i]] = 1
			basis[i] = artCol[i]
		case EQ:
			row[artCol[i]] = 1
			basis[i] = artCol[i]
		}
		t[i] = row
	}

	tab := &tableau{t: t, basis: basis, cols: cols, ar: ar}
	lay := layout{posCol: posCol, negCol: negCol, cols: cols}

	// --- Phase 1: drive artificials out -------------------------------
	if numArt > 0 {
		// Objective: minimize Σ artificials == maximize −Σ artificials.
		obj := ar.floats(cols)
		for i := range artCol {
			if artCol[i] >= 0 {
				obj[artCol[i]] = -1
			}
		}
		z, st := tab.run(obj, nil)
		if st != Optimal {
			return Result{Status: IterLimit}, tab, lay
		}
		if z < -feasTol {
			return Result{Status: Infeasible}, tab, lay
		}
		// Pivot any lingering (degenerate, zero-valued) artificials out of
		// the basis, then forbid their columns.
		banned := make([]bool, cols)
		for i := range artCol {
			if artCol[i] >= 0 {
				banned[artCol[i]] = true
			}
		}
		for i := 0; i < m; i++ {
			if !banned[tab.basis[i]] {
				continue
			}
			// If every legal column is zero in this row the constraint is
			// redundant and the artificial stays basic at value 0, which is
			// harmless; otherwise pivot it out.
			for j := 0; j < cols; j++ {
				if banned[j] {
					continue
				}
				if math.Abs(tab.t[i][j]) > eps {
					tab.pivot(i, j)
					break
				}
			}
		}
		tab.banned = banned
	}

	// --- Phase 2: original objective -----------------------------------
	obj := ar.floats(cols)
	for j := 0; j < n; j++ {
		obj[posCol[j]] = p.Maximize[j]
		if negCol[j] >= 0 {
			obj[negCol[j]] = -p.Maximize[j]
		}
	}
	z, st := tab.run(obj, tab.banned)
	if st != Optimal {
		return Result{Status: st}, tab, lay
	}

	// Recover x.
	xs := ar.floats(cols)
	for i, b := range tab.basis {
		xs[b] = tab.t[i][cols]
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = xs[posCol[j]]
		if negCol[j] >= 0 {
			x[j] -= xs[negCol[j]]
		}
	}
	return Result{Status: Optimal, X: x, Objective: z}, tab, lay
}

// tableau is the dense simplex working state shared by both phases.
type tableau struct {
	t      [][]float64 // m × (cols+1)
	basis  []int
	cols   int
	banned []bool // columns barred from entering (dead artificials)
	ar     *arena // scratch source for the reduced-cost row
}

// run maximizes obj over the current tableau, returning the objective value.
// banned columns never enter the basis.
func (tb *tableau) run(obj []float64, banned []bool) (float64, Status) {
	m, cols := len(tb.t), tb.cols
	// Reduced-cost row: start from obj, eliminate basic columns.
	red := tb.ar.floats(cols + 1)
	copy(red, obj)
	for i, b := range tb.basis {
		cb := obj[b]
		if cb == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			red[j] -= cb * tb.t[i][j]
		}
	}
	maxIter := 200 * (m + cols + 10)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: most positive reduced cost (Dantzig), switching
		// to Bland's smallest-index rule once degeneracy is suspected.
		enter := -1
		if iter < blandAfter {
			best := eps
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if red[j] > best {
					best, enter = red[j], j
				}
			}
		} else {
			for j := 0; j < cols; j++ {
				if banned != nil && banned[j] {
					continue
				}
				if red[j] > eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return -red[cols], Optimal // optimal; objective is −red[rhs]
		}
		// Ratio test. Bland mode breaks ties on the smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tb.t[i][enter]
			if a <= eps {
				continue
			}
			ratio := tb.t[i][cols] / a
			if ratio < bestRatio-eps ||
				(iter >= blandAfter && ratio < bestRatio+eps && (leave < 0 || tb.basis[i] < tb.basis[leave])) {
				bestRatio, leave = ratio, i
			}
		}
		if leave < 0 {
			return 0, Unbounded
		}
		tb.pivot(leave, enter)
		// Update reduced costs.
		f := red[enter]
		if f != 0 {
			prow := tb.t[leave]
			for j := 0; j <= cols; j++ {
				red[j] -= f * prow[j]
			}
			red[enter] = 0
		}
	}
	return 0, IterLimit
}

// pivot makes column enter basic in row leave.
func (tb *tableau) pivot(leave, enter int) {
	m, cols := len(tb.t), tb.cols
	prow := tb.t[leave]
	p := prow[enter]
	inv := 1 / p
	for j := 0; j <= cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // kill rounding residue
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := tb.t[i][enter]
		if f == 0 {
			continue
		}
		row := tb.t[i]
		for j := 0; j <= cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
	}
	tb.basis[leave] = enter
}
