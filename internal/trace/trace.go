// Package trace is a stdlib-only span tracer for the serving path: a root
// span opens when a session is created, every HTTP request and algorithm
// round attaches a child, and the LP/geometry/worker-pool/WAL hot paths add
// timed leaves with their key attributes. Completed traces land in the
// Tracer's bounded ring buffer and slow-trace reservoir, browsable at
// GET /debug/traces.
//
// Propagation rides context.Context: Start derives a child span from the
// span stored in the context, and returns (ctx, nil) when no trace is
// attached. Every Span method is safe on a nil receiver, so the disabled
// path — no tracer configured, or a session that lost the sampling draw —
// costs one context lookup and nothing else: no allocations, no atomics,
// no branches in the instrumented kernels (bench-pinned by
// BenchmarkDisabledSpan and the trace_disabled_span row of the hot-path
// harness).
//
// Trace and span IDs interoperate with W3C Trace Context: an inbound
// traceparent header adopts the caller's trace ID and forces sampling, and
// responses echo a traceparent carrying the request's span. IDs and
// sampling draws are deterministic functions of the per-session seed, so a
// chaos or replay run produces the same traces every time.
package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one trace: 16 bytes, hex-rendered, W3C-compatible.
type TraceID [16]byte

// String renders the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// ParseTraceID decodes a 32-char hex trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// SpanID identifies one span within a trace: 8 bytes, hex-rendered.
type SpanID [8]byte

// String renders the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the invalid all-zero ID (used as the root's parent).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Attr is one key/value annotation on a span. Values are strings; SetInt
// and SetBool format on the enabled path only.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. The zero of usefulness is a
// nil *Span: every method no-ops, which is how the disabled path stays
// free. A span is created by Start/StartLeaf/StartChild and closed by End;
// attribute writers may be called from the goroutine that owns the span at
// any point in between.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	// Mutable state below is guarded by tr.mu: spans from concurrent HTTP
	// handlers and the algorithm goroutine append into one trace.
	dur   time.Duration
	ended bool
	attrs []Attr
}

// ID returns the span's ID (zero for nil spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.tr.mu.Unlock()
}

// SetInt attaches an integer attribute. The formatting happens after the
// nil check, so disabled-path callers pay nothing.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// End closes the span, fixing its duration. Double-End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now.Sub(s.start)
	}
	s.tr.mu.Unlock()
}

// StartChild opens a child span without touching a context — the handle
// form used where the caller already holds the parent (the server keeps
// each session's root span).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// spanKey carries the active span through a context. The type is zero-size
// so the disabled-path Value lookup allocates nothing.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a child of the context's span and returns a context carrying
// it. Without an active span (tracing disabled, or the session unsampled)
// it returns (ctx, nil) after a single allocation-free context lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartLeaf opens a child of the context's span without deriving a new
// context — the cheap form for leaf operations (one LP solve, one WAL
// fsync) that start no spans of their own.
func StartLeaf(ctx context.Context, name string) *Span {
	return SpanFromContext(ctx).StartChild(name)
}

// Trace is one tree of spans, usually spanning a whole interactive
// session. Spans append concurrently under mu; Finish seals the trace and
// hands it to the tracer's ring buffer and slow reservoir. All methods are
// nil-receiver-safe.
type Trace struct {
	tracer *Tracer
	id     TraceID
	name   string
	start  time.Time

	mu       sync.Mutex
	spans    []*Span
	dropped  int // spans discarded past the per-trace cap
	rngState uint64
	finished bool
	dur      time.Duration
}

// ID returns the trace ID (zero for nil traces).
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.id
}

// newSpan allocates and registers a span, or returns nil when the trace is
// finished or full (the per-trace span cap bounds memory on pathological
// sessions; drops are counted on the trace and in trace.spans_dropped).
func (tr *Trace) newSpan(name string, parent SpanID) *Span {
	if tr == nil {
		return nil
	}
	now := time.Now()
	tr.mu.Lock()
	if tr.finished || len(tr.spans) >= tr.tracer.maxSpans {
		tr.dropped++
		tr.mu.Unlock()
		tr.tracer.spansDropped.Inc()
		return nil
	}
	s := &Span{tr: tr, id: tr.nextSpanIDLocked(), parent: parent, name: name, start: now}
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// nextSpanIDLocked draws the next span ID from the trace's deterministic
// splitmix64 stream. Callers hold tr.mu.
func (tr *Trace) nextSpanIDLocked() SpanID {
	var id SpanID
	for {
		tr.rngState += 0x9e3779b97f4a7c15
		if v := mix64(tr.rngState); v != 0 {
			binary.BigEndian.PutUint64(id[:], v)
			return id
		}
	}
}

// Finish seals the trace: open spans are clipped at the finish instant,
// the trace moves into the tracer's ring buffer and slow reservoir, and a
// slow-threshold breach is logged. Finishing twice (or a nil trace) is a
// no-op, so every session exit path may call it unconditionally.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.tracer.finish(tr)
}

// mix64 is the splitmix64 output function: a fast, well-mixed hash used
// for deterministic ID generation and sampling draws.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// traceparentVersion is the W3C Trace Context version this package emits.
const traceparentVersion = "00"

// ParseTraceparent decodes a W3C traceparent header
// (version-traceid-spanid-flags). ok is false on any malformed field,
// unknown version syntax, or all-zero IDs, per the spec.
func ParseTraceparent(h string) (trace TraceID, span SpanID, sampled, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	// Version ff is forbidden; version 00 admits nothing after the flags;
	// higher versions may append fields after another dash.
	if h[:2] == "ff" {
		return TraceID{}, SpanID{}, false, false
	}
	if len(h) > 55 && (h[:2] == traceparentVersion || h[55] != '-') {
		return TraceID{}, SpanID{}, false, false
	}
	// The spec mandates lowercase hex; hex.Decode is laxer, so screen first.
	for i := 3; i < 55; i++ {
		if h[i] >= 'A' && h[i] <= 'F' {
			return TraceID{}, SpanID{}, false, false
		}
	}
	trace, ok = ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(span[:], []byte(h[36:52])); err != nil || span.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	return trace, span, flags[0]&1 == 1, true
}

// FormatTraceparent renders the W3C traceparent header for (trace, span).
func FormatTraceparent(trace TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return traceparentVersion + "-" + trace.String() + "-" + span.String() + "-" + flags
}
