package trace

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"isrl/internal/obs"
)

// quietTracer builds a tracer with an isolated registry and a discarded
// logger so tests neither pollute the default registry nor spam output.
func quietTracer(t *testing.T, opts Options) *Tracer {
	t.Helper()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	opts.Registry = obs.NewRegistry()
	if opts.SampleRate == 0 {
		opts.SampleRate = 1
	}
	return New(opts)
}

func TestTraceparentRoundTrip(t *testing.T) {
	var tid TraceID
	var sid SpanID
	copy(tid[:], []byte("0123456789abcdef"))
	copy(sid[:], []byte("zyxwvuts"))
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(tid, sid, sampled)
		if len(h) != 55 {
			t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
		}
		gtid, gsid, gsampled, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected its own output", h)
		}
		if gtid != tid || gsid != sid || gsampled != sampled {
			t.Fatalf("round trip %q = (%s, %s, %v), want (%s, %s, %v)",
				h, gtid, gsid, gsampled, tid, sid, sampled)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("sanity: %q should parse", valid)
	}
	// A future version may carry extra dash-delimited fields.
	if _, _, sampled, ok := ParseTraceparent("cc" + valid[2:] + "-extra"); !ok || !sampled {
		t.Fatalf("future-version traceparent with suffix should parse as sampled")
	}
	cases := map[string]string{
		"empty":               "",
		"truncated":           valid[:54],
		"bad separator":       strings.Replace(valid, "-", "_", 1),
		"version ff":          "ff" + valid[2:],
		"version 00 suffix":   valid + "-extra",
		"future no dash":      "cc" + valid[2:] + "junk",
		"zero trace id":       "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero span id":        "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"non-hex trace id":    "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",
		"non-hex span id":     "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01",
		"non-hex flags":       valid[:53] + "zz",
		"uppercase separator": strings.ToUpper(valid),
	}
	for name, h := range cases {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted a malformed header", name, h)
		}
	}
}

func TestParseTraceIDRejects(t *testing.T) {
	for _, s := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted an invalid ID", s)
		}
	}
	id, ok := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if !ok || id.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("ParseTraceID round trip failed: %v %v", id, ok)
	}
}

func TestSampledDeterministic(t *testing.T) {
	if (*Tracer)(nil).Sampled(7) {
		t.Fatal("nil tracer must never sample")
	}
	off := quietTracer(t, Options{SampleRate: -1})
	on := quietTracer(t, Options{SampleRate: 1})
	half := quietTracer(t, Options{SampleRate: 0.5})
	hits := 0
	for seed := int64(0); seed < 1000; seed++ {
		if off.Sampled(seed) {
			t.Fatalf("rate 0 sampled seed %d", seed)
		}
		if !on.Sampled(seed) {
			t.Fatalf("rate 1 skipped seed %d", seed)
		}
		first := half.Sampled(seed)
		if second := half.Sampled(seed); second != first {
			t.Fatalf("seed %d drew %v then %v: sampling is not deterministic", seed, first, second)
		}
		if first {
			hits++
		}
	}
	// The draw is a hash, not exact stratification; a wide band suffices.
	if hits < 350 || hits > 650 {
		t.Fatalf("rate 0.5 sampled %d/1000 seeds, want roughly half", hits)
	}
}

func TestStartTraceDeterministicIDs(t *testing.T) {
	a := quietTracer(t, Options{})
	b := quietTracer(t, Options{})
	ta, _ := a.StartTrace("session", TraceID{}, 42)
	tb, _ := b.StartTrace("session", TraceID{}, 42)
	if ta.ID().IsZero() || ta.ID() != tb.ID() {
		t.Fatalf("same seed produced trace IDs %s and %s, want equal nonzero", ta.ID(), tb.ID())
	}
	tc, _ := a.StartTrace("session", TraceID{}, 43)
	if tc.ID() == ta.ID() {
		t.Fatalf("different seeds produced the same trace ID %s", ta.ID())
	}
	var inbound TraceID
	inbound[0] = 0xab
	td, _ := a.StartTrace("session", inbound, 42)
	if td.ID() != inbound {
		t.Fatalf("inbound trace ID not adopted: got %s want %s", td.ID(), inbound)
	}
}

func TestDisabledPathNoAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "noop")
		if ctx2 != ctx || sp != nil {
			t.Fatal("Start on a plain context must return it unchanged with a nil span")
		}
		leaf := StartLeaf(ctx, "noop")
		leaf.SetAttr("k", "v")
		leaf.SetInt("n", 1)
		leaf.SetBool("b", true)
		leaf.StartChild("child").End()
		leaf.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path costs %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr8 := quietTracer(t, Options{BufferSize: 4})
	tr, root := tr8.StartTrace("session", TraceID{}, 1)
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want root", got)
	}

	rctx, round := Start(ctx, "session.round")
	round.SetInt("round", 1)
	leaf := StartLeaf(rctx, "lp.solve")
	leaf.SetAttr("status", "optimal")
	leaf.End()
	round.End()
	http := root.StartChild("http.answer")
	http.End()
	root.End()
	tr.Finish()

	// Finish again must be a no-op, and a finished trace accepts no spans.
	tr.Finish()
	if sp := root.StartChild("late"); sp != nil {
		t.Fatal("finished trace handed out a new span")
	}

	roots := tr.tree()
	if len(roots) != 1 || roots[0].Name != "session" {
		t.Fatalf("tree roots = %+v, want single session root", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "session.round" || kids[1].Name != "http.answer" {
		t.Fatalf("root children = %+v, want [session.round http.answer]", kids)
	}
	if kids[0].Attrs["round"] != "1" {
		t.Fatalf("round attrs = %v, want round=1", kids[0].Attrs)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "lp.solve" {
		t.Fatalf("round children = %+v, want [lp.solve]", kids[0].Children)
	}
	if kids[0].Children[0].Attrs["status"] != "optimal" {
		t.Fatalf("lp.solve attrs = %v", kids[0].Children[0].Attrs)
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	tc := quietTracer(t, Options{MaxSpans: 3})
	tr, root := tc.StartTrace("session", TraceID{}, 1)
	a := root.StartChild("a")
	b := root.StartChild("b")
	if a == nil || b == nil {
		t.Fatal("spans under the cap must be granted")
	}
	if c := root.StartChild("c"); c != nil {
		t.Fatal("span past MaxSpans must be dropped")
	}
	// Children of a dropped span drop silently too (nil receiver).
	tr.Finish()
	sum := tr.summary()
	if sum.Spans != 3 || sum.DroppedSpans != 1 {
		t.Fatalf("summary = %+v, want 3 spans, 1 dropped", sum)
	}
	if got := tc.spansDropped.Value(); got != 1 {
		t.Fatalf("trace.spans_dropped = %d, want 1", got)
	}
}

func TestOrphanSpansSurfaceAsRoots(t *testing.T) {
	tc := quietTracer(t, Options{})
	tr, root := tc.StartTrace("session", TraceID{}, 1)
	// Fabricate a span whose parent ID is unknown (as after a parent drop).
	orphan := tr.newSpan("orphan", SpanID{1, 2, 3, 4, 5, 6, 7, 8})
	orphan.End()
	root.End()
	tr.Finish()
	roots := tr.tree()
	if len(roots) != 2 {
		t.Fatalf("tree has %d roots, want 2 (root + orphan)", len(roots))
	}
}

func TestRingEvictionAndSlowReservoir(t *testing.T) {
	tc := quietTracer(t, Options{BufferSize: 2, SlowPerName: 2, SlowThreshold: time.Millisecond})
	var ids []TraceID
	for i := 0; i < 5; i++ {
		tr, root := tc.StartTrace("session", TraceID{}, int64(i))
		// Backdate the start so durations ascend deterministically without
		// sleeping: trace i ran for roughly (i+1)×10ms.
		tr.start = time.Now().Add(-time.Duration(i+1) * 10 * time.Millisecond)
		root.End()
		tr.Finish()
		ids = append(ids, tr.ID())
	}
	if got := tc.evicted.Value(); got != 3 {
		t.Fatalf("trace.traces_evicted = %d, want 3", got)
	}
	if got := tc.finishedC.Value(); got != 5 {
		t.Fatalf("trace.traces_finished = %d, want 5", got)
	}
	if got := tc.slowTraces.Value(); got != 5 {
		t.Fatalf("trace.slow_traces = %d, want 5 (all exceed 1ms)", got)
	}
	// Ring holds the last two; the reservoir keeps the two slowest (3, 4),
	// so trace 3 stays findable after eviction while trace 0 is gone.
	if tc.find(ids[4].String()) == nil || tc.find(ids[3].String()) == nil {
		t.Fatal("recent traces must be findable")
	}
	if tc.find(ids[0].String()) != nil {
		t.Fatal("trace 0 should be evicted from both ring and reservoir")
	}
	res := tc.slowByName["session"]
	if len(res) != 2 || res[0].dur < res[1].dur {
		t.Fatalf("slow reservoir misordered or missized: %d entries", len(res))
	}
}

func TestConcurrentSpanAppends(t *testing.T) {
	tc := quietTracer(t, Options{MaxSpans: 4096})
	tr, root := tc.StartTrace("session", TraceID{}, 9)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := ContextWithSpan(context.Background(), root)
			for i := 0; i < perWorker; i++ {
				rctx, sp := Start(ctx, "session.round")
				sp.SetInt("worker", int64(w))
				leaf := StartLeaf(rctx, "lp.solve")
				leaf.SetBool("ok", true)
				leaf.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	tr.Finish()
	sum := tr.summary()
	want := 1 + workers*perWorker*2
	if sum.Spans != want || sum.DroppedSpans != 0 {
		t.Fatalf("summary = %+v, want %d spans and no drops", sum, want)
	}
	roots := tr.tree()
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != workers*perWorker {
		t.Fatalf("root has %d children, want %d", got, workers*perWorker)
	}
	seen := make(map[string]bool, want)
	var walk func(n *spanNode)
	walk = func(n *spanNode) {
		if seen[n.ID] {
			t.Fatalf("span %s appears twice in the tree", n.ID)
		}
		seen[n.ID] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(roots[0])
	if len(seen) != want {
		t.Fatalf("tree holds %d unique spans, want %d", len(seen), want)
	}
}

func TestHandleTraces(t *testing.T) {
	tc := quietTracer(t, Options{})
	tr, root := tc.StartTrace("session", TraceID{}, 5)
	child := root.StartChild("session.round")
	child.SetInt("round", 1)
	child.End()
	root.End()
	tr.Finish()
	id := tr.ID().String()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		suffix := strings.TrimPrefix(req.URL.Path, "/debug/traces")
		suffix = strings.TrimPrefix(suffix, "/")
		tc.HandleTraces(rec, req, suffix)
		return rec
	}

	rec := get("/debug/traces")
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("list: code=%d content-type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var list struct {
		Traces []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans int    `json:"spans"`
		} `json:"traces"`
		Slowest map[string][]struct {
			ID string `json:"id"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list: bad JSON: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].ID != id || list.Traces[0].Spans != 2 {
		t.Fatalf("list = %+v, want the finished trace with 2 spans", list.Traces)
	}
	if len(list.Slowest["session"]) != 1 {
		t.Fatalf("slowest = %+v, want one session entry", list.Slowest)
	}

	rec = get("/debug/traces/" + id)
	var single struct {
		Trace struct {
			ID string `json:"id"`
		} `json:"trace"`
		Spans []struct {
			Name     string `json:"name"`
			Children []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
		t.Fatalf("single: bad JSON: %v", err)
	}
	if single.Trace.ID != id || len(single.Spans) != 1 || single.Spans[0].Name != "session" {
		t.Fatalf("single trace = %+v", single)
	}
	if len(single.Spans[0].Children) != 1 || single.Spans[0].Children[0].Attrs["round"] != "1" {
		t.Fatalf("single trace children = %+v", single.Spans[0].Children)
	}

	rec = get("/debug/traces/" + id + "?format=text")
	body := rec.Body.String()
	if !strings.Contains(body, "session.round") || !strings.Contains(body, "round=1") {
		t.Fatalf("text view missing span line: %q", body)
	}

	rec = get("/debug/traces/" + strings.Repeat("e", 32))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "no completed trace") {
		t.Fatalf("unknown trace: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var tr *Trace
	var sp *Span
	tr.Finish()
	if !tr.ID().IsZero() {
		t.Fatal("nil trace ID should be zero")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetBool("b", true)
	sp.End()
	if !sp.ID().IsZero() {
		t.Fatal("nil span ID should be zero")
	}
	if sp.StartChild("c") != nil {
		t.Fatal("nil span StartChild should be nil")
	}
	if tr2, root := (*Tracer)(nil).StartTrace("x", TraceID{}, 1); tr2 != nil || root != nil {
		t.Fatal("nil tracer StartTrace should return nils")
	}
	if ctx := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx) != nil {
		t.Fatal("nil span must not be stored in the context")
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartLeaf(ctx, "bench.noop")
		sp.SetInt("n", int64(i))
		sp.End()
	}
}
