package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"isrl/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultBufferSize  = 256
	DefaultSlowPerName = 8
	DefaultMaxSpans    = 512
)

// Options configures a Tracer.
type Options struct {
	// SampleRate is the fraction of sessions traced: <= 0 disables tracing,
	// >= 1 traces everything. The draw is a deterministic function of the
	// per-session seed (see Sampled), never of wall-clock entropy, so chaos
	// and replay runs reproduce their traces exactly. An inbound sampled
	// traceparent overrides the draw.
	SampleRate float64

	// SlowThreshold: finished traces at least this long are counted in
	// trace.slow_traces and logged at Warn. Zero disables the slow log (the
	// reservoir still fills — it keeps the N slowest regardless).
	SlowThreshold time.Duration

	// BufferSize bounds the completed-trace ring buffer.
	BufferSize int

	// SlowPerName bounds the slow reservoir: the N longest-duration traces
	// retained per root name, surviving ring eviction.
	SlowPerName int

	// MaxSpans caps spans per trace; excess spans are dropped (counted on
	// the trace and in trace.spans_dropped) so one pathological session
	// cannot balloon memory.
	MaxSpans int

	Logger   *slog.Logger  // default slog.Default()
	Registry *obs.Registry // default obs.Default()
}

// Tracer owns completed traces: a fixed ring buffer of the most recent
// plus a per-name reservoir of the slowest, both served at /debug/traces.
// A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	rate     float64
	slow     time.Duration
	maxSpans int
	slowPer  int
	log      *slog.Logger

	started      *obs.Counter
	finishedC    *obs.Counter
	evicted      *obs.Counter
	spansDropped *obs.Counter
	slowTraces   *obs.Counter

	mu         sync.Mutex
	ring       []*Trace
	pos        int
	slowByName map[string][]*Trace
}

// New builds a Tracer from opts.
func New(opts Options) *Tracer {
	if opts.BufferSize <= 0 {
		opts.BufferSize = DefaultBufferSize
	}
	if opts.SlowPerName <= 0 {
		opts.SlowPerName = DefaultSlowPerName
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = DefaultMaxSpans
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	return &Tracer{
		rate:         opts.SampleRate,
		slow:         opts.SlowThreshold,
		maxSpans:     opts.MaxSpans,
		slowPer:      opts.SlowPerName,
		log:          opts.Logger,
		started:      opts.Registry.Counter("trace.traces_started"),
		finishedC:    opts.Registry.Counter("trace.traces_finished"),
		evicted:      opts.Registry.Counter("trace.traces_evicted"),
		spansDropped: opts.Registry.Counter("trace.spans_dropped"),
		slowTraces:   opts.Registry.Counter("trace.slow_traces"),
		ring:         make([]*Trace, opts.BufferSize),
		slowByName:   make(map[string][]*Trace),
	}
}

// Sampled reports whether the session with the given seed should be
// traced. The draw hashes the seed (splitmix64, mapped to [0,1)) rather
// than consuming any RNG stream, so it perturbs neither algorithm
// determinism nor fault-injection randomness, and the same seed always
// draws the same verdict.
func (t *Tracer) Sampled(seed int64) bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	u := float64(mix64(uint64(seed)+0x9e3779b97f4a7c15)>>11) / (1 << 53)
	return u < t.rate
}

// StartTrace opens a trace and its root span. A zero id derives the trace
// ID deterministically from seed (adopting an inbound traceparent means
// passing its ID instead). Returns (nil, nil) on a nil tracer.
func (t *Tracer) StartTrace(name string, id TraceID, seed int64) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	if id.IsZero() {
		const golden = uint64(0x9e3779b97f4a7c15)
		binary.BigEndian.PutUint64(id[:8], mix64(uint64(seed)+golden))
		binary.BigEndian.PutUint64(id[8:], mix64(uint64(seed)+golden+golden))
		if id.IsZero() {
			id[15] = 1
		}
	}
	tr := &Trace{
		tracer:   t,
		id:       id,
		name:     name,
		start:    time.Now(),
		rngState: binary.BigEndian.Uint64(id[:8]) ^ uint64(seed),
	}
	t.started.Inc()
	return tr, tr.newSpan(name, SpanID{})
}

// finish seals tr (clipping any still-open spans), inserts it into the
// ring and the slow reservoir, and emits the slow-trace log when the
// threshold is breached.
func (t *Tracer) finish(tr *Trace) {
	now := time.Now()
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.dur = now.Sub(tr.start)
	for _, s := range tr.spans {
		if !s.ended {
			s.dur = now.Sub(s.start) // clipped, not ended: renders as unfinished
		}
	}
	dur, name, spans := tr.dur, tr.name, len(tr.spans)
	tr.mu.Unlock()

	t.finishedC.Inc()
	t.mu.Lock()
	if t.ring[t.pos] != nil {
		t.evicted.Inc()
	}
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	res := append(t.slowByName[name], tr)
	sort.SliceStable(res, func(i, j int) bool { return res[i].dur > res[j].dur })
	if len(res) > t.slowPer {
		res = res[:t.slowPer]
	}
	t.slowByName[name] = res
	t.mu.Unlock()

	if t.slow > 0 && dur >= t.slow {
		t.slowTraces.Inc()
		t.log.Warn("slow trace",
			"trace", tr.id.String(), "name", name,
			"ms", float64(dur)/float64(time.Millisecond), "spans", spans)
	}
}

// find returns the completed trace with the given hex ID, scanning the
// ring and the slow reservoir.
func (t *Tracer) find(hexID string) *Trace {
	id, ok := ParseTraceID(hexID)
	if !ok {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.ring {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	for _, res := range t.slowByName {
		for _, tr := range res {
			if tr.id == id {
				return tr
			}
		}
	}
	return nil
}

// traceSummary is one row of the /debug/traces list.
type traceSummary struct {
	ID           string    `json:"id"`
	Name         string    `json:"name"`
	Start        time.Time `json:"start"`
	DurationMS   float64   `json:"duration_ms"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
}

// spanNode is one node of the single-trace tree view.
type spanNode struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"` // offset from trace start
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Unfinished bool              `json:"unfinished,omitempty"`
	Children   []*spanNode       `json:"children,omitempty"`
}

func (tr *Trace) summary() traceSummary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return traceSummary{
		ID:           tr.id.String(),
		Name:         tr.name,
		Start:        tr.start,
		DurationMS:   float64(tr.dur) / float64(time.Millisecond),
		Spans:        len(tr.spans),
		DroppedSpans: tr.dropped,
	}
}

// tree renders the span forest. Spans whose parent was dropped by the
// span cap (or never ended before a panic) surface as extra roots rather
// than vanishing.
func (tr *Trace) tree() []*spanNode {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	nodes := make(map[SpanID]*spanNode, len(tr.spans))
	var roots []*spanNode
	for _, s := range tr.spans {
		n := &spanNode{
			ID:         s.id.String(),
			Name:       s.name,
			StartUS:    s.start.Sub(tr.start).Microseconds(),
			DurationMS: float64(s.dur) / float64(time.Millisecond),
			Unfinished: !s.ended,
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[s.id] = n
		// Spans append in creation order, so a live parent precedes its
		// children and is already in the map.
		if parent, ok := nodes[s.parent]; ok && !s.parent.IsZero() {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// HandleTraces serves the /debug/traces endpoints. id is the path suffix:
// empty for the list view, a hex trace ID for the tree view (add
// ?format=text for an indented ASCII tree).
func (t *Tracer) HandleTraces(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" {
		t.serveList(w)
		return
	}
	tr := t.find(id)
	if tr == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "{\"error\":\"no completed trace %q\"}\n", id)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var b strings.Builder
		sum := tr.summary()
		fmt.Fprintf(&b, "%s %s %.3fms spans=%d\n", sum.ID, sum.Name, sum.DurationMS, sum.Spans)
		for _, n := range tr.tree() {
			writeTextNode(&b, n, 1)
		}
		_, _ = w.Write([]byte(b.String()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"trace": tr.summary(),
		"spans": tr.tree(),
	})
}

func writeTextNode(b *strings.Builder, n *spanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.3fms", n.Name, n.DurationMS)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%s", k, n.Attrs[k])
		}
	}
	if n.Unfinished {
		b.WriteString(" (unfinished)")
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		writeTextNode(b, c, depth+1)
	}
}

// serveList renders the ring (newest first) and the slow reservoir.
func (t *Tracer) serveList(w http.ResponseWriter) {
	t.mu.Lock()
	recent := make([]*Trace, 0, len(t.ring))
	for _, tr := range t.ring {
		if tr != nil {
			recent = append(recent, tr)
		}
	}
	slowest := make(map[string][]*Trace, len(t.slowByName))
	for name, res := range t.slowByName {
		slowest[name] = append([]*Trace(nil), res...)
	}
	t.mu.Unlock()

	sort.Slice(recent, func(i, j int) bool { return recent[i].start.After(recent[j].start) })
	recentJSON := make([]traceSummary, len(recent))
	for i, tr := range recent {
		recentJSON[i] = tr.summary()
	}
	slowJSON := make(map[string][]traceSummary, len(slowest))
	for name, res := range slowest {
		rows := make([]traceSummary, len(res))
		for i, tr := range res {
			rows[i] = tr.summary()
		}
		slowJSON[name] = rows
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"traces":  recentJSON,
		"slowest": slowJSON,
	})
}
