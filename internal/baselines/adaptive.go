package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/par"
	"isrl/internal/vec"
)

// AdaptiveConfig tunes the preference-learning baseline.
type AdaptiveConfig struct {
	PoolSize  int // candidate pairs sampled per round (default 150)
	MaxRounds int // cap, default 500
}

func (c AdaptiveConfig) defaults() AdaptiveConfig {
	if c.PoolSize == 0 {
		c.PoolSize = 150
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 500
	}
	return c
}

// Adaptive reconstructs the preference-learning algorithm of Qian et al.
// (VLDB'15) discussed in the paper's related work: it asks adaptively
// chosen pairwise comparisons to learn the *utility vector itself* — each
// round bisecting the consistent region as evenly as it can — and only
// then returns the top tuple under the learned vector.
//
// The paper's critique is that deriving the full preference wastes
// questions when the goal is just an ε-regret tuple: Adaptive keeps asking
// until the utility vector is pinned to precision ε per coordinate, long
// after some tuple is already certifiably good enough. The ext-adaptive
// experiment quantifies exactly that gap.
type Adaptive struct {
	cfg AdaptiveConfig
	rng *rand.Rand
}

// NewAdaptive returns the baseline.
func NewAdaptive(cfg AdaptiveConfig, rng *rand.Rand) *Adaptive {
	return &Adaptive{cfg: cfg.defaults(), rng: rng}
}

// Name implements core.Algorithm.
func (a *Adaptive) Name() string { return "Adaptive" }

// Run implements core.Algorithm. eps is interpreted as the target precision
// of the learned utility vector (per the algorithm's own goal), not as a
// regret bound.
func (a *Adaptive) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	d := ds.Dim()
	poly := geom.NewPolytope(d)
	var trace []core.QA
	rounds := 0
	degReason := ""
	for rounds < a.cfg.MaxRounds {
		ball, err := poly.InnerBall()
		if err != nil {
			degReason = "utility range empty (contradictory answers)"
			break
		}
		emin, emax, err := poly.OuterRect()
		if err != nil {
			degReason = fmt.Sprintf("outer rectangle failed: %v", err)
			break
		}
		// Stop only when the utility vector itself is localized: every
		// coordinate pinned to within eps.
		if maxSpread(emin, emax) <= eps {
			break
		}
		act := a.pickPair(ds, poly, ball.Center)
		if act == nil {
			break
		}
		pi, pj := ds.Points[act[0]], ds.Points[act[1]]
		prefI := user.Prefer(pi, pj)
		if prefI {
			poly.Add(geom.NewHalfspace(pi, pj))
		} else {
			poly.Add(geom.NewHalfspace(pj, pi))
		}
		rounds++
		trace = append(trace, core.QA{I: act[0], J: act[1], PreferredI: prefI})
		if obs != nil {
			obs.Round(rounds, poly.Halfspaces)
		}
		if rounds%8 == 0 && len(poly.Halfspaces) > 2*d {
			poly.ReduceRedundant()
		}
	}
	// Return the top tuple under the learned preference.
	center := geom.SimplexCentroid(d)
	if ball, err := poly.InnerBall(); err == nil {
		center = ball.Center
	}
	if degReason != "" {
		return core.BestEffortResult(ds, center, rounds, trace, degReason), nil
	}
	idx := ds.TopPoint(center)
	return core.Result{PointIndex: idx, Point: ds.Points[idx], Rounds: rounds, Trace: trace}, nil
}

func maxSpread(emin, emax []float64) float64 {
	var m float64
	for i := range emin {
		if s := emax[i] - emin[i]; s > m {
			m = s
		}
	}
	return m
}

// pickPair selects the sampled pair whose hyperplane passes nearest the
// region's center and still cuts it — the even-bisection heuristic.
func (a *Adaptive) pickPair(ds *dataset.Dataset, poly *geom.Polytope, center []float64) *[2]int {
	n := ds.Len()
	type cand struct {
		i, j int
		dist float64
	}
	cands := make([]cand, 0, a.cfg.PoolSize)
	for t := 0; t < a.cfg.PoolSize; t++ {
		i, j := a.rng.Intn(n), a.rng.Intn(n)
		if i == j {
			continue
		}
		h := geom.NewHalfspace(ds.Points[i], ds.Points[j])
		if vec.Norm(h.Normal) < 1e-12 {
			continue
		}
		cands = append(cands, cand{i: i, j: j, dist: h.Dist(center)})
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].dist < cands[y].dist })
	// Probe the LP checks for a speculative window of upcoming candidates
	// on the worker pool; the serial scan below consumes the memoized
	// verdicts in dist order with the same 20-probe budget, so the chosen
	// pair is identical for any worker count.
	probed := make([]int8, len(cands)) // 0 = unprobed, 1 = cuts, 2 = no
	probe := func(ci int) bool {
		if probed[ci] == 0 {
			window := 1
			if w := par.Workers(); w > 1 {
				window = 2 * w
			}
			hi := ci + window
			if hi > len(cands) {
				hi = len(cands)
			}
			if hi > 20 { // never speculate past the probe budget
				hi = 20
			}
			par.Do(hi-ci, func(k int) {
				if probed[ci+k] != 0 {
					return
				}
				c := cands[ci+k]
				if poly.CutsBothSides(geom.NewHalfspace(ds.Points[c.i], ds.Points[c.j]), 1e-9) {
					probed[ci+k] = 1
				} else {
					probed[ci+k] = 2
				}
			})
		}
		return probed[ci] == 1
	}
	for ci, c := range cands {
		if ci >= 20 {
			break
		}
		if probe(ci) {
			return &[2]int{c.i, c.j}
		}
	}
	return nil
}
