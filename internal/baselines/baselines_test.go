package baselines

import (
	"math/rand"
	"testing"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
)

func testData(t *testing.T, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	ds := dataset.Anticorrelated(rand.New(rand.NewSource(seed)), n, d).Skyline()
	if ds.Len() < 5 {
		t.Fatalf("test dataset too small: %d", ds.Len())
	}
	return ds
}

// All polytope-based baselines must meet the exactness contract: returned
// regret ≤ ε under a truthful user.
func TestUHExactness(t *testing.T) {
	ds := testData(t, 300, 3, 1)
	rng := rand.New(rand.NewSource(2))
	algos := []core.Algorithm{
		NewUHRandom(UHConfig{}, rand.New(rand.NewSource(3))),
		NewUHSimplex(UHConfig{}, rand.New(rand.NewSource(99))),
	}
	for _, alg := range algos {
		for trial := 0; trial < 5; trial++ {
			u := geom.SampleSimplex(rng, 3)
			res, err := alg.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
				t.Errorf("%s trial %d: regret %v > eps", alg.Name(), trial, rr)
			}
			if res.Rounds <= 0 || res.Rounds >= 1000 {
				t.Errorf("%s: rounds = %d", alg.Name(), res.Rounds)
			}
			if len(res.Trace) != res.Rounds {
				t.Errorf("%s: trace %d != rounds %d", alg.Name(), len(res.Trace), res.Rounds)
			}
		}
	}
}

// The greedy variant should not be (systematically) worse than random.
func TestSimplexBeatsOrMatchesRandom(t *testing.T) {
	ds := testData(t, 400, 3, 4)
	rng := rand.New(rand.NewSource(5))
	randTotal, simpTotal := 0, 0
	simplex := NewUHSimplex(UHConfig{}, rand.New(rand.NewSource(99)))
	for trial := 0; trial < 8; trial++ {
		u := geom.SampleSimplex(rng, 3)
		random := NewUHRandom(UHConfig{}, rand.New(rand.NewSource(int64(trial))))
		rr, err := random.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := simplex.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		randTotal += rr.Rounds
		simpTotal += rs.Rounds
	}
	if simpTotal > randTotal*2 {
		t.Errorf("UH-Simplex (%d rounds) much worse than UH-Random (%d)", simpTotal, randTotal)
	}
}

func TestUHObserver(t *testing.T) {
	ds := testData(t, 200, 3, 6)
	rng := rand.New(rand.NewSource(7))
	alg := NewUHRandom(UHConfig{}, rng)
	var calls int
	res, err := alg.Run(ds, core.SimulatedUser{Utility: geom.SampleSimplex(rng, 3)}, 0.1,
		core.ObserverFunc(func(r int, hs []geom.Halfspace) { calls = r }))
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Rounds {
		t.Errorf("observer %d != rounds %d", calls, res.Rounds)
	}
}

func TestSinglePassReturnsGoodChampion(t *testing.T) {
	ds := testData(t, 400, 3, 8)
	rng := rand.New(rand.NewSource(9))
	var avg float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		u := geom.SampleSimplex(rng, 3)
		sp := NewSinglePass(SinglePassConfig{}, rand.New(rand.NewSource(int64(trial))))
		res, err := sp.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The champion beat everything it was compared against; with a
		// truthful user its regret is tiny in practice.
		avg += ds.RegretRatio(res.Point, u)
		if res.Rounds <= 0 {
			t.Errorf("trial %d: no questions asked", trial)
		}
	}
	if avg/trials > 0.1 {
		t.Errorf("average SinglePass regret %v too high", avg/trials)
	}
}

// SinglePass must ask far more questions than the UH family on the same
// data — the core phenomenon in the paper's Figures 9–10.
func TestSinglePassAsksMore(t *testing.T) {
	ds := testData(t, 600, 4, 10)
	rng := rand.New(rand.NewSource(11))
	u := geom.SampleSimplex(rng, 4)
	sp := NewSinglePass(SinglePassConfig{}, rand.New(rand.NewSource(12)))
	spRes, err := sp.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	uh := NewUHSimplex(UHConfig{}, rand.New(rand.NewSource(99)))
	uhRes, err := uh.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spRes.Rounds <= uhRes.Rounds {
		t.Errorf("SinglePass rounds %d ≤ UH-Simplex rounds %d; expected many more", spRes.Rounds, uhRes.Rounds)
	}
}

// SinglePass works in high dimension (no polytope) — the d=20 regime.
func TestSinglePassHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := dataset.Independent(rng, 300, 20)
	u := geom.SampleSimplex(rng, 20)
	sp := NewSinglePass(SinglePassConfig{}, rng)
	res, err := sp.Run(full, core.SimulatedUser{Utility: u}, 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Error("no questions asked at d=20")
	}
	if rr := full.RegretRatio(res.Point, u); rr > 0.3 {
		t.Errorf("regret %v too high", rr)
	}
}

func TestUtilityApproxFindsGoodPoint(t *testing.T) {
	ds := testData(t, 400, 3, 14)
	rng := rand.New(rand.NewSource(15))
	ua := NewUtilityApprox(UtilityApproxConfig{})
	var avg float64
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		u := geom.SampleSimplex(rng, 3)
		res, err := ua.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		avg += ds.RegretRatio(res.Point, u)
		if res.Rounds <= 0 {
			t.Error("no questions asked")
		}
		// Fake-tuple trace marks its artificial questions.
		for _, qa := range res.Trace {
			if qa.I != -1 || qa.J != -1 {
				t.Error("UtilityApprox must mark fake tuples with index -1")
			}
		}
	}
	if avg/trials > 0.15 {
		t.Errorf("average UtilityApprox regret %v too high", avg/trials)
	}
}

// UtilityApprox's rounds scale with d·log(1/ε): more rounds for tighter ε.
func TestUtilityApproxEpsSensitivity(t *testing.T) {
	ds := testData(t, 200, 4, 16)
	rng := rand.New(rand.NewSource(17))
	u := geom.SampleSimplex(rng, 4)
	ua := NewUtilityApprox(UtilityApproxConfig{})
	tight, err := ua.Run(ds, core.SimulatedUser{Utility: u}, 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ua.Run(ds, core.SimulatedUser{Utility: u}, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Rounds <= loose.Rounds {
		t.Errorf("tight eps rounds %d ≤ loose %d", tight.Rounds, loose.Rounds)
	}
}

func TestNoisyUsersDoNotCrash(t *testing.T) {
	ds := testData(t, 150, 3, 18)
	rng := rand.New(rand.NewSource(19))
	u := geom.SampleSimplex(rng, 3)
	noisy := core.NoisyUser{Utility: u, FlipProb: 0.25, Rng: rng}
	algos := []core.Algorithm{
		NewUHRandom(UHConfig{}, rand.New(rand.NewSource(20))),
		NewUHSimplex(UHConfig{}, rand.New(rand.NewSource(99))),
		NewSinglePass(SinglePassConfig{}, rand.New(rand.NewSource(21))),
		NewUtilityApprox(UtilityApproxConfig{}),
	}
	for _, alg := range algos {
		res, err := alg.Run(ds, noisy, 0.1, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.PointIndex < 0 || res.PointIndex >= ds.Len() {
			t.Errorf("%s: point index %d", alg.Name(), res.PointIndex)
		}
	}
}

// The hull filter must not break exactness and must never enlarge the
// candidate set's answer quality.
func TestUHSimplexHullFilter(t *testing.T) {
	ds := testData(t, 300, 3, 30)
	rng := rand.New(rand.NewSource(31))
	alg := NewUHSimplex(UHConfig{HullFilter: 500}, rand.New(rand.NewSource(32)))
	for trial := 0; trial < 3; trial++ {
		u := geom.SampleSimplex(rng, 3)
		res, err := alg.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rr := ds.RegretRatio(res.Point, u); rr > 0.1+1e-9 {
			t.Errorf("trial %d: regret %v > eps with hull filter", trial, rr)
		}
	}
}

// Adaptive learns the preference itself, so it must ask more questions than
// the regret-targeting stopping rule needs — and still land a good tuple.
func TestAdaptiveAsksMoreThanUH(t *testing.T) {
	ds := testData(t, 400, 3, 40)
	rng := rand.New(rand.NewSource(41))
	u := geom.SampleSimplex(rng, 3)
	ad := NewAdaptive(AdaptiveConfig{}, rand.New(rand.NewSource(42)))
	adRes, err := ad.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	uh := NewUHSimplex(UHConfig{}, rand.New(rand.NewSource(43)))
	uhRes, err := uh.Run(ds, core.SimulatedUser{Utility: u}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adRes.Rounds <= uhRes.Rounds {
		t.Errorf("Adaptive rounds %d ≤ UH-Simplex rounds %d; preference learning should cost more", adRes.Rounds, uhRes.Rounds)
	}
	if rr := ds.RegretRatio(adRes.Point, u); rr > 0.15 {
		t.Errorf("Adaptive regret %v too high after full preference learning", rr)
	}
	if len(adRes.Trace) != adRes.Rounds {
		t.Errorf("trace %d != rounds %d", len(adRes.Trace), adRes.Rounds)
	}
}
