package baselines

import (
	"math/rand"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/vec"
)

// SinglePassConfig tunes the streaming baseline.
type SinglePassConfig struct {
	// Particles is the size of the utility-vector particle set that
	// approximates the learned range for the skip filter (default 128).
	Particles int
	// StopCheckEvery controls how often the ε-coverage termination test
	// runs (default every 25 questions).
	StopCheckEvery int
	// CoverSample is how many dataset points the termination test samples
	// (default 200).
	CoverSample int
	MaxRounds   int // cap, default 5000
}

func (c SinglePassConfig) defaults() SinglePassConfig {
	if c.Particles == 0 {
		c.Particles = 128
	}
	if c.StopCheckEvery == 0 {
		c.StopCheckEvery = 25
	}
	if c.CoverSample == 0 {
		c.CoverSample = 200
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 5000
	}
	return c
}

// SinglePass reimplements the KDD'23 streaming baseline: it walks the
// dataset exactly once in a fixed random order keeping a current champion,
// and compares each arriving point against the champion unless rule-based
// filters prove the question unnecessary. The filters are pareto dominance
// and an ε-slack test on the learned utility range: a challenger q is worth
// asking about only if some utility vector consistent with all answers so
// far gives it more than (1−ε) times the champion's utility — otherwise the
// champion already ε-covers it. The consistent set is approximated by a
// particle cloud, so every step is a handful of dot products and the
// algorithm runs in any dimension.
//
// Because it never *selects* questions — the stream order decides — its
// question count is large and only mildly sensitive to ε: the behaviour the
// paper reports (e.g. 727 questions on Player, barely reacting to the
// threshold).
type SinglePass struct {
	cfg SinglePassConfig
	rng *rand.Rand
}

// NewSinglePass returns the baseline with its own RNG (the random sequence
// is part of the algorithm's definition).
func NewSinglePass(cfg SinglePassConfig, rng *rand.Rand) *SinglePass {
	return &SinglePass{cfg: cfg.defaults(), rng: rng}
}

// Name implements core.Algorithm.
func (s *SinglePass) Name() string { return "SinglePass" }

// Run implements core.Algorithm.
func (s *SinglePass) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	d := ds.Dim()
	order := s.rng.Perm(ds.Len())
	champion := order[0]
	var halfspaces []geom.Halfspace
	particles := make([][]float64, s.cfg.Particles)
	for i := range particles {
		particles[i] = geom.SampleSimplex(s.rng, d)
	}
	var trace []core.QA
	rounds := 0

	for _, qi := range order[1:] {
		if rounds >= s.cfg.MaxRounds {
			break
		}
		q, b := ds.Points[qi], ds.Points[champion]
		// Filter 1: pareto dominance decides without asking.
		if dataset.Dominates(b, q) {
			continue
		}
		if dataset.Dominates(q, b) {
			champion = qi
			continue
		}
		// Filter 2: skip only certain losers — no utility vector consistent
		// with the answers so far lets q beat the champion. The published
		// algorithm's filters are similarly conservative (they must be, to
		// keep its guarantee), which is why its question counts run into
		// the hundreds.
		if len(particles) > 0 {
			canWin := false
			for _, u := range particles {
				if vec.Dot(u, q) > vec.Dot(u, b) {
					canWin = true
					break
				}
			}
			if !canWin {
				continue
			}
		}
		prefQ := user.Prefer(q, b)
		opponent := champion
		var h geom.Halfspace
		if prefQ {
			h = geom.NewHalfspace(q, b)
			champion = qi
		} else {
			h = geom.NewHalfspace(b, q)
		}
		halfspaces = append(halfspaces, h)
		particles = s.updateParticles(particles, halfspaces, h)
		rounds++
		trace = append(trace, core.QA{I: qi, J: opponent, PreferredI: prefQ})
		if obs != nil {
			obs.Round(rounds, halfspaces)
		}
		// Periodic ε-termination: once the champion ε-covers a random
		// sample of the dataset under every utility vector still
		// consistent with the answers, further questions cannot improve
		// the ε-guarantee. A healthy particle cloud is required so the
		// consistent set is represented; larger ε stops earlier — the
		// published algorithm's mild ε-sensitivity.
		if rounds%s.cfg.StopCheckEvery == 0 && len(particles) >= s.cfg.Particles/2 {
			if s.championCovers(ds, ds.Points[champion], particles, eps) {
				break
			}
		}
	}
	return core.Result{
		PointIndex: champion,
		Point:      ds.Points[champion],
		Rounds:     rounds,
		Trace:      trace,
	}, nil
}

// championCovers reports whether the champion b ε-covers a random sample of
// the dataset under every particle: u·b ≥ (1−ε)·u·q for all sampled q and
// all consistent u.
func (s *SinglePass) championCovers(ds *dataset.Dataset, b []float64, particles [][]float64, eps float64) bool {
	n := ds.Len()
	sample := s.cfg.CoverSample
	if sample > n {
		sample = n
	}
	for k := 0; k < sample; k++ {
		q := ds.Points[s.rng.Intn(n)]
		for _, u := range particles {
			if vec.Dot(u, b) < (1-eps)*vec.Dot(u, q) {
				return false
			}
		}
	}
	return true
}

// updateParticles discards particles violating the newest halfspace and
// replenishes the cloud by jittering survivors and occasionally trying
// fresh global samples, rejection-tested against the full halfspace set, so
// the approximation tracks the shrinking range.
func (s *SinglePass) updateParticles(particles [][]float64, halfspaces []geom.Halfspace, newest geom.Halfspace) [][]float64 {
	kept := particles[:0]
	for _, u := range particles {
		if newest.Contains(u, 0) {
			kept = append(kept, u)
		}
	}
	if len(kept) == 0 {
		return kept
	}
	want := s.cfg.Particles
	d := len(kept[0])
	// Replenished particles are rejection-tested against a window of the
	// most recent halfspaces (plus whatever killed their siblings): testing
	// against the full history would make long streams quadratic, and the
	// recent constraints dominate the current range anyway. Jittered
	// children of surviving particles rarely violate old constraints.
	window := halfspaces
	const maxWindow = 128
	if len(window) > maxWindow {
		window = window[len(window)-maxWindow:]
	}
	consistent := func(u []float64) bool {
		for _, h := range window {
			if !h.Contains(u, 0) {
				return false
			}
		}
		return true
	}
	for tries := 0; len(kept) < want && tries < 6*want; tries++ {
		var cand []float64
		if tries%4 == 3 {
			cand = geom.SampleSimplex(s.rng, d)
		} else {
			base := kept[s.rng.Intn(len(kept))]
			cand = make([]float64, d)
			var sum float64
			for i := range cand {
				v := base[i] * (0.5 + s.rng.Float64())
				cand[i] = v
				sum += v
			}
			for i := range cand {
				cand[i] /= sum
			}
		}
		if consistent(cand) {
			kept = append(kept, cand)
		}
	}
	return kept
}
