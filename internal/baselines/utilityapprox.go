package baselines

import (
	"math"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/vec"
)

// UtilityApproxConfig tunes the fake-tuple baseline.
type UtilityApproxConfig struct {
	MaxRounds int // cap, default 1000
}

func (c UtilityApproxConfig) defaults() UtilityApproxConfig {
	if c.MaxRounds == 0 {
		c.MaxRounds = 1000
	}
	return c
}

// UtilityApprox reconstructs the SIGMOD'12 baseline discussed in the
// paper's related work: it shows the user *artificial* tuples engineered so
// each answer halves the feasible interval of one utility ratio. For every
// dimension i ≥ 2 it binary-searches the ratio uᵢ/u₁ by comparing a fake
// tuple scoring a·u₁ against one scoring b·uᵢ, then returns the dataset
// point maximizing the estimated utility vector.
//
// Being fake-tuple based, its questions may show unrealistic products — the
// deficiency (noted in the paper) that motivated the UH family. Its regret
// is not certified; the halving depth is chosen from ε.
type UtilityApprox struct {
	cfg UtilityApproxConfig
}

// NewUtilityApprox returns the baseline.
func NewUtilityApprox(cfg UtilityApproxConfig) *UtilityApprox {
	return &UtilityApprox{cfg: cfg.defaults()}
}

// Name implements core.Algorithm.
func (u *UtilityApprox) Name() string { return "UtilityApprox" }

// Run implements core.Algorithm. Trace entries use index −1 for the fake
// tuples (they are not dataset members).
func (u *UtilityApprox) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	d := ds.Dim()
	// Halving depth: interval width on t = r/(1+r) shrinks by 2⁻ᵏ; stop at
	// ~ε/d so the estimated vector is within ~ε of u* coordinate-wise.
	target := eps / float64(d)
	if target <= 0 || target >= 1 {
		target = 0.05
	}
	depth := int(math.Ceil(math.Log2(1 / target)))
	if depth < 1 {
		depth = 1
	}

	ratios := make([]float64, d) // uᵢ/u₁ estimates; ratios[0] = 1
	ratios[0] = 1
	var halfspaces []geom.Halfspace // for observers: each answer is a halfspace on u
	var trace []core.QA
	rounds := 0

	for i := 1; i < d && rounds < u.cfg.MaxRounds; i++ {
		lo, hi := 0.0, 1.0 // t = r/(1+r) ∈ (0,1)
		for k := 0; k < depth && rounds < u.cfg.MaxRounds; k++ {
			t := (lo + hi) / 2
			// Threshold ratio r = t/(1−t); compare a·u₁ vs b·uᵢ with
			// a/b = r, scaled into (0,1].
			r := t / (1 - t)
			a, b := r, 1.0
			if a > 1 {
				a, b = 1, 1/r
			}
			if a < 1e-9 {
				a = 1e-9
			}
			fake1 := make([]float64, d) // scores a·u₁
			fake1[0] = a
			fake2 := make([]float64, d) // scores b·uᵢ
			fake2[i] = b
			prefFirst := user.Prefer(fake1, fake2)
			// prefFirst ⇔ a·u₁ ≥ b·uᵢ ⇔ uᵢ/u₁ ≤ a/b = r ⇔ t* ≤ t.
			if prefFirst {
				hi = t
			} else {
				lo = t
			}
			rounds++
			trace = append(trace, core.QA{I: -1, J: -1, PreferredI: prefFirst})
			halfspaces = append(halfspaces, geom.NewHalfspace(chooseFake(prefFirst, fake1, fake2), chooseFake(!prefFirst, fake1, fake2)))
			if obs != nil {
				obs.Round(rounds, halfspaces)
			}
		}
		tMid := (lo + hi) / 2
		ratios[i] = tMid / (1 - tMid)
	}
	// Normalize the estimate onto the simplex and return its top point.
	est := vec.Clone(ratios)
	if s := vec.Sum(est); s > 0 {
		vec.Scale(est, 1/s, est)
	} else {
		est = geom.SimplexCentroid(d)
	}
	idx := ds.TopPoint(est)
	return core.Result{PointIndex: idx, Point: ds.Points[idx], Rounds: rounds, Trace: trace}, nil
}

func chooseFake(first bool, a, b []float64) []float64 {
	if first {
		return a
	}
	return b
}
