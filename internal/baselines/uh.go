// Package baselines reimplements, from their published descriptions, every
// comparator the paper evaluates against: UH-Random and UH-Simplex (Xie,
// Wong & Lall, SIGMOD'19), SinglePass (Zhang, Tatti & Gionis, KDD'23), and
// the older fake-tuple baseline UtilityApprox (Nanongkai et al., SIGMOD'12)
// discussed in the related work. All are short-term algorithms: they pick
// each question considering only the current round, which is exactly the
// behaviour the paper's RL algorithms are designed to beat.
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/par"
	"isrl/internal/vec"
)

// UHConfig tunes the UH family.
type UHConfig struct {
	MaxRounds  int // safety cap (default 1000)
	NumSamples int // utility vectors sampled per round to refresh candidates (default 64)
	PairPool   int // cap on candidate pairs evaluated per round (default 200)

	// HullFilter restricts UH-Simplex's candidates to convex-hull extreme
	// points (the published description) once the candidate set is small
	// enough for the LP-based extremity test; 0 disables, otherwise it is
	// the maximum candidate count at which the filter runs.
	HullFilter int
}

func (c UHConfig) defaults() UHConfig {
	if c.MaxRounds == 0 {
		c.MaxRounds = 1000
	}
	if c.NumSamples == 0 {
		c.NumSamples = 64
	}
	if c.PairPool == 0 {
		c.PairPool = 200
	}
	return c
}

// UHRandom is the SIGMOD'19 random-pair algorithm: it keeps the candidate
// set of points still able to be top-1 somewhere in the utility range and
// asks a uniformly random candidate pair each round. The polytope is
// maintained exactly, so like EA it is restricted to low dimensionality.
type UHRandom struct {
	cfg UHConfig
	rng *rand.Rand
}

// NewUHRandom returns the baseline with its own RNG.
func NewUHRandom(cfg UHConfig, rng *rand.Rand) *UHRandom {
	return &UHRandom{cfg: cfg.defaults(), rng: rng}
}

// Name implements core.Algorithm.
func (u *UHRandom) Name() string { return "UH-Random" }

// Run implements core.Algorithm.
func (u *UHRandom) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	return runUH(ds, user, eps, obs, u.cfg, u.rng, func(pairs [][2]int, verts [][]float64) [2]int {
		return pairs[u.rng.Intn(len(pairs))]
	})
}

// UHSimplex is the SIGMOD'19 greedy variant: among candidate pairs it picks
// the hyperplane that best balances the current vertex set of the utility
// range — the short-term expected-halving criterion.
type UHSimplex struct {
	cfg UHConfig
	rng *rand.Rand
}

// NewUHSimplex returns the baseline with its own RNG (used for candidate
// sampling only; selection is deterministic given the pool).
func NewUHSimplex(cfg UHConfig, rng *rand.Rand) *UHSimplex {
	return &UHSimplex{cfg: cfg.defaults(), rng: rng}
}

// Name implements core.Algorithm.
func (u *UHSimplex) Name() string { return "UH-Simplex" }

// Run implements core.Algorithm.
func (u *UHSimplex) Run(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer) (core.Result, error) {
	return runUH(ds, user, eps, obs, u.cfg, u.rng, func(pairs [][2]int, verts [][]float64) [2]int {
		// Score every pair on the worker pool, then take the first minimum
		// serially — the same pair the serial loop would pick.
		scores := make([]int, len(pairs))
		par.Do(len(pairs), func(i int) {
			w := vec.Sub(nil, ds.Points[pairs[i][0]], ds.Points[pairs[i][1]])
			pos, neg := 0, 0
			for _, v := range verts {
				s := vec.Dot(w, v)
				if s > 1e-9 {
					pos++
				} else if s < -1e-9 {
					neg++
				}
			}
			score := pos - neg
			if score < 0 {
				score = -score
			}
			scores[i] = score
		})
		best := pairs[0]
		bestScore := math.MaxInt32
		for i, s := range scores {
			if s < bestScore {
				bestScore, best = s, pairs[i]
			}
		}
		return best
	})
}

// runUH is the shared UH interaction loop: exact polytope maintenance,
// candidate discovery from vertex and sample top-1 points, Lemma-4 stopping.
func runUH(ds *dataset.Dataset, user core.User, eps float64, obs core.Observer, cfg UHConfig,
	rng *rand.Rand, pick func(pairs [][2]int, verts [][]float64) [2]int) (core.Result, error) {

	d := ds.Dim()
	poly := geom.NewPolytope(d)
	// Candidate set: initially every (skyline) point; pruned each round by
	// utility-range domination, as in the SIGMOD'19 algorithms.
	cands := make([]int, ds.Len())
	for i := range cands {
		cands[i] = i
	}
	var trace []core.QA
	rounds := 0
	degReason := ""
	for rounds < cfg.MaxRounds {
		verts, err := poly.Vertices()
		if err != nil {
			// Exhausted vertex budget or injected fault: degrade rather than
			// fail the whole session (core's shared contract).
			degReason = fmt.Sprintf("vertex enumeration failed: %v", err)
			break
		}
		if len(verts) == 0 {
			degReason = "utility range empty (contradictory answers)"
			break
		}
		if idx := core.StoppablePoint(ds, verts, eps); idx >= 0 {
			return core.Result{PointIndex: idx, Point: ds.Points[idx], Rounds: rounds, Trace: trace}, nil
		}
		cands = pruneByTops(ds, cands, verts)
		if cfg.HullFilter > 0 && len(cands) > 1 && len(cands) <= cfg.HullFilter {
			cands = hullCandidates(ds, cands)
		}
		pairs := cuttingPairs(ds, cands, verts, rng, cfg.PairPool)
		if len(pairs) == 0 {
			break
		}
		pr := pick(pairs, verts)
		pi, pj := ds.Points[pr[0]], ds.Points[pr[1]]
		prefI := user.Prefer(pi, pj)
		if prefI {
			poly.Add(geom.NewHalfspace(pi, pj))
		} else {
			poly.Add(geom.NewHalfspace(pj, pi))
		}
		poly.ReduceRedundant()
		rounds++
		trace = append(trace, core.QA{I: pr[0], J: pr[1], PreferredI: prefI})
		if obs != nil {
			obs.Round(rounds, poly.Halfspaces)
		}
	}
	if rounds >= cfg.MaxRounds && degReason == "" {
		degReason = "round cap reached without ε-certificate"
	}
	// Fallback: best point at the inner-ball center.
	center := geom.SimplexCentroid(d)
	if ball, err := poly.InnerBall(); err == nil {
		center = ball.Center
	}
	if degReason != "" {
		return core.BestEffortResult(ds, center, rounds, trace, degReason), nil
	}
	idx := ds.TopPoint(center)
	return core.Result{PointIndex: idx, Point: ds.Points[idx], Rounds: rounds, Trace: trace}, nil
}

// hullCandidates keeps only the candidates that are extreme points of the
// candidate set's convex hull — only those can be the unique top-1 under a
// linear utility, which is the candidate definition in the published
// UH-Simplex.
func hullCandidates(ds *dataset.Dataset, cands []int) []int {
	pts := make([][]float64, len(cands))
	for i, c := range cands {
		pts[i] = ds.Points[c]
	}
	ext := geom.ExtremePoints(pts)
	if len(ext) == 0 {
		return cands
	}
	out := make([]int, len(ext))
	for i, e := range ext {
		out[i] = cands[e]
	}
	return out
}

// pruneByTops drops candidates that are utility-dominated inside R by one of
// the current vertex-top points: if v·(p_t − p_c) ≥ 0 at every vertex v of R
// (strict somewhere), then by convexity p_t beats p_c everywhere in R and
// p_c can never be top-1 again — the SIGMOD'19 pruning rule.
func pruneByTops(ds *dataset.Dataset, cands []int, verts [][]float64) []int {
	tops := map[int]bool{}
	for _, t := range ds.TopPoints(verts, nil) {
		tops[t] = true
	}
	topIdx := make([]int, 0, len(tops))
	for i := range tops {
		topIdx = append(topIdx, i)
	}
	sort.Ints(topIdx) // map order is random; keep runs reproducible
	// Each candidate's domination verdict is independent of the others, so
	// the checks fan out across the worker pool; the keep filter below runs
	// serially over the verdict slots, preserving candidate order exactly.
	dominated := make([]bool, len(cands))
	par.Do(len(cands), func(ci int) {
		c := cands[ci]
		for _, t := range topIdx {
			if t == c {
				continue
			}
			w := vec.Sub(nil, ds.Points[t], ds.Points[c])
			allGE, strict := true, false
			for _, v := range verts {
				s := vec.Dot(w, v)
				if s < -1e-12 {
					allGE = false
					break
				}
				if s > 1e-12 {
					strict = true
				}
			}
			if allGE && strict {
				dominated[ci] = true
				return
			}
		}
	})
	keep := cands[:0]
	for ci, c := range cands {
		if !dominated[ci] {
			keep = append(keep, c)
		}
	}
	return keep
}

// cuttingPairs lists up to maxPairs candidate pairs whose hyperplane has
// vertices strictly on both sides (asking anything else cannot narrow R).
// When the full pair set is larger than maxPairs it is randomly subsampled.
func cuttingPairs(ds *dataset.Dataset, cands []int, verts [][]float64, rng *rand.Rand, maxPairs int) [][2]int {
	cuts := func(x, y int) bool {
		w := vec.Sub(nil, ds.Points[x], ds.Points[y])
		pos, neg := false, false
		for _, v := range verts {
			s := vec.Dot(w, v)
			if s > 1e-9 {
				pos = true
			} else if s < -1e-9 {
				neg = true
			}
			if pos && neg {
				return true
			}
		}
		return false
	}
	total := len(cands) * (len(cands) - 1) / 2
	var out [][2]int
	if total <= maxPairs {
		// Full enumeration: test every pair on the worker pool, then keep
		// the cutting ones in enumeration order — identical output for any
		// worker count.
		all := make([][2]int, 0, total)
		for x := 0; x < len(cands); x++ {
			for y := x + 1; y < len(cands); y++ {
				all = append(all, [2]int{cands[x], cands[y]})
			}
		}
		cutFlags := make([]bool, len(all))
		par.Do(len(all), func(i int) {
			cutFlags[i] = cuts(all[i][0], all[i][1])
		})
		for i, pr := range all {
			if cutFlags[i] {
				out = append(out, pr)
			}
		}
		return out
	}
	seen := map[[2]int]bool{}
	for tries := 0; len(out) < maxPairs && tries < 20*maxPairs; tries++ {
		a, b := cands[rng.Intn(len(cands))], cands[rng.Intn(len(cands))]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		if cuts(a, b) {
			out = append(out, key)
		}
	}
	return out
}
