package netfault

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop=0.1,kill=0.2,delay=5ms,after=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.1 || p.Kill != 0.2 || p.Delay != 5*time.Millisecond || p.After != 3 {
		t.Errorf("parsed plan %+v wrong", p)
	}
	for _, bad := range []string{
		"drop",              // no value
		"drop=1.5",          // probability out of range
		"nope=0.1",          // unknown key
		"delay=-3ms",        // negative delay
		"after=-1",          // negative after
		"drop=0.6,kill=0.6", // fates sum past 1
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

// echoServer answers every connection by echoing one read back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// An unarmed proxy is a transparent pipe.
func TestProxyPassThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the chaos proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo through proxy = %q, want %q", got, msg)
	}
}

// A kill-fated connection lets at most the truncation sliver through, then
// dies — the client sees a torn response.
func TestProxyKillTruncates(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Plan{Kill: 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := bytes.Repeat([]byte("x"), 4096)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	c.Write(big)
	got, _ := io.ReadAll(c) // ends in EOF or reset either way
	if len(got) >= len(big) {
		t.Errorf("kill fate let the whole %d-byte response through", len(got))
	}
	if len(got) > 256 {
		t.Errorf("truncation point %d past the 256-byte cap", len(got))
	}
	fates := p.Fates()
	if len(fates) != 1 || fates[0] != fateKill {
		t.Errorf("fates = %v, want [kill]", fates)
	}
}

// A drop-fated connection is severed at accept: reads fail immediately.
func TestProxyDropSevers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Plan{Drop: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	c.Write([]byte("anyone there?"))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Errorf("dropped connection delivered data")
	}
}

// Same seed, same plan, sequential connections → identical fate sequence.
// This is the invariant that makes chaos runs regressions, not flakes.
func TestFateSequenceDeterministic(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	plan := Plan{Drop: 0.2, Kill: 0.3, After: 2}

	run := func(seed int64) []int {
		p, err := New(addr, plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 20; i++ {
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c.SetDeadline(time.Now().Add(2 * time.Second))
			c.Write([]byte("ping"))
			io.ReadFull(c, make([]byte, 4)) // best effort; fate may kill it
			c.Close()
		}
		// Fates are drawn at accept; wait for all 20 accepts to land.
		deadline := time.Now().Add(5 * time.Second)
		for len(p.Fates()) < 20 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		return p.Fates()
	}

	a, b := run(99), run(99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed drew different fate sequences:\n%v\n%v", a, b)
	}
	for i := 0; i < plan.After && i < len(a); i++ {
		if a[i] != fatePass {
			t.Errorf("connection %d armed before After=%d elapsed", i, plan.After)
		}
	}
	c := run(100)
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds drew identical fate sequences (suspicious): %v", a)
	}
}
