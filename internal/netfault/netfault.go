// Package netfault is a seeded, deterministic TCP chaos proxy for exercising
// the client SDK and the server's exactly-once protocol under real network
// failure modes — not injected function errors (internal/fault's job) but
// actual connections dying on the wire: refused at accept, reset mid-stream,
// responses truncated after a handful of bytes, or black-holed entirely.
//
// Determinism mirrors internal/fault: every accepted connection draws a
// fixed number of rolls from one seeded source, in accept order, so a
// single-connection-at-a-time client (http.Transport with keep-alives off)
// replays the exact same fate sequence under a fixed seed. That is what lets
// the chaos suite assert byte-identical final results rather than "it
// probably worked": the fault schedule is a function of the seed, and the
// protocol must absorb it.
//
// Plans parse from compact strings in the style of fault.ParsePlan:
//
//	drop=0.1,kill=0.2,delay=5ms,after=3
//
// Keys: drop (refuse at accept), reset (RST immediately after the request is
// forwarded), kill (truncate the response after 1–256 bytes, then close —
// the nastiest case: the server applied the request but the client cannot
// know), blackhole (accept, read, answer nothing), delay (added latency per
// connection), after (connections passed through unarmed).
package netfault

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"isrl/internal/obs"
)

// Plan is the per-connection fate distribution. Probabilities are summed in
// drop, reset, kill, blackhole order against a single roll, so they must sum
// to at most 1.
type Plan struct {
	Drop      float64       // close the client connection at accept
	Reset     float64       // RST (linger 0) as soon as the upstream dial succeeds
	Kill      float64       // truncate the response after 1–256 bytes, then close
	Blackhole float64       // swallow the request, send nothing back
	Delay     time.Duration // latency added before the upstream dial
	After     int           // connections passed through unarmed
}

// ParsePlan builds a Plan from a compact key=value spec (see package doc).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("netfault: bad spec entry %q (want key=value)", kv)
		}
		switch k {
		case "drop", "reset", "kill", "blackhole":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return Plan{}, fmt.Errorf("netfault: bad probability %q for %s", v, k)
			}
			switch k {
			case "drop":
				p.Drop = f
			case "reset":
				p.Reset = f
			case "kill":
				p.Kill = f
			case "blackhole":
				p.Blackhole = f
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Plan{}, fmt.Errorf("netfault: bad delay %q", v)
			}
			p.Delay = d
		case "after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("netfault: bad after %q", v)
			}
			p.After = n
		default:
			return Plan{}, fmt.Errorf("netfault: unknown key %q", k)
		}
	}
	if s := p.Drop + p.Reset + p.Kill + p.Blackhole; s > 1 {
		return Plan{}, fmt.Errorf("netfault: fate probabilities sum to %.3f > 1", s)
	}
	return p, nil
}

// Proxy metrics, shared by all proxies in the process.
var (
	mConns     = obs.Default().Counter("netfault.connections")
	mDropped   = obs.Default().Counter("netfault.dropped")
	mReset     = obs.Default().Counter("netfault.resets")
	mTruncated = obs.Default().Counter("netfault.truncated")
	mBlackhole = obs.Default().Counter("netfault.blackholed")
	mDelayed   = obs.Default().Counter("netfault.delayed")
)

// Connection fates, decided at accept time.
const (
	fatePass = iota
	fateDrop
	fateReset
	fateKill
	fateBlackhole
)

// fate is one connection's drawn destiny.
type fate struct {
	kind  int
	trunc int64 // kill: response bytes to let through before closing
}

// Proxy is a live chaos proxy: one listener forwarding to one target, each
// connection's fate drawn from the seeded source in accept order.
type Proxy struct {
	target string
	plan   Plan
	ln     net.Listener

	rmu   sync.Mutex
	rng   *rand.Rand
	seen  int // connections accepted so far (for Plan.After)
	fates []int

	cmu    sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New starts a proxy on 127.0.0.1 (random port) forwarding to target
// ("host:port"). Close it to release the listener and every open connection.
func New(target string, plan Plan, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		plan:   plan,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Fates returns the fate kinds drawn so far, in accept order — the audit
// trail chaos tests use to confirm the plan actually did something.
func (p *Proxy) Fates() []int {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	return append([]int(nil), p.fates...)
}

// Close stops accepting, severs every open connection and waits for the
// forwarding goroutines to drain.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.cmu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.cmu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(cc) {
			cc.Close()
			return
		}
		mConns.Inc()
		f := p.draw()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(cc)
			p.handle(cc, f)
		}()
	}
}

// draw decides one connection's fate. Exactly two rolls are consumed per
// armed connection regardless of the outcome, so arming one fate never
// shifts the random sequence seen by the others — the same invariant
// fault.Plan keeps for its error/torn draws.
func (p *Proxy) draw() fate {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	p.seen++
	if p.seen <= p.plan.After {
		p.fates = append(p.fates, fatePass)
		return fate{kind: fatePass}
	}
	r := p.rng.Float64()
	trunc := int64(p.rng.Intn(256)) + 1
	f := fate{kind: fatePass, trunc: trunc}
	switch {
	case r < p.plan.Drop:
		f.kind = fateDrop
	case r < p.plan.Drop+p.plan.Reset:
		f.kind = fateReset
	case r < p.plan.Drop+p.plan.Reset+p.plan.Kill:
		f.kind = fateKill
	case r < p.plan.Drop+p.plan.Reset+p.plan.Kill+p.plan.Blackhole:
		f.kind = fateBlackhole
	}
	p.fates = append(p.fates, f.kind)
	return f
}

func (p *Proxy) track(c net.Conn) bool {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.cmu.Lock()
	delete(p.conns, c)
	p.cmu.Unlock()
	c.Close()
}

func (p *Proxy) handle(cc net.Conn, f fate) {
	if f.kind == fateDrop {
		mDropped.Inc()
		return // deferred untrack closes the client conn: connection refused-ish
	}
	if f.kind == fateBlackhole {
		mBlackhole.Inc()
		// Swallow whatever the client sends and answer nothing; the client's
		// per-try timeout is what ends this. Copy returns when the client
		// gives up or Close severs the conn.
		io.Copy(io.Discard, cc)
		return
	}
	if p.plan.Delay > 0 {
		mDelayed.Inc()
		time.Sleep(p.plan.Delay)
	}
	sc, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(sc) {
		sc.Close()
		return
	}
	defer p.untrack(sc)

	if f.kind == fateReset {
		mReset.Inc()
		// Forward the request so the server may well apply it, then slam the
		// door with an RST before any response byte escapes — the classic
		// "did my write commit?" ambiguity the round protocol resolves.
		go io.Copy(sc, cc)
		time.Sleep(2 * time.Millisecond)
		if tc, ok := cc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		return // deferred closes fire
	}

	// Pass and kill both forward the request upstream concurrently.
	done := make(chan struct{})
	go func() {
		io.Copy(sc, cc)
		if tc, ok := sc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		close(done)
	}()
	if f.kind == fateKill {
		mTruncated.Inc()
		// Let a sliver of the response through, then cut: the client sees a
		// torn body after the server already committed the answer.
		io.CopyN(cc, sc, f.trunc)
		sc.Close()
		cc.Close()
	} else {
		io.Copy(cc, sc)
		if tc, ok := cc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}
	<-done
}
