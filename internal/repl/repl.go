// Package repl implements hot-standby replication for the session journal.
//
// A primary subscribes to its own WAL (wal.Log.Subscribe) and streams every
// committed record to one follower over a length-framed TCP connection —
// the frames reuse the journal's uint32-length + CRC32 layout (wal.Frame /
// wal.ReadFrame), so wire corruption fails the same checksum that guards
// the disk. The follower folds records into its own journal with the
// idempotent wal.ApplyEntries/ApplySnapshot merge: shipping is at-least-once
// (every reconnect may replay a suffix or push a whole snapshot), apply is
// exactly-once.
//
// Split brain is prevented by a monotone failover epoch persisted as a WAL
// control record. A follower promotes by bumping the epoch; from then on it
// denies any primary whose hello carries a lower epoch, and a deposed
// primary that learns of the higher epoch fences its own journal — every
// subsequent append (and therefore every answer POST) fails with
// wal.ErrStaleEpoch until an operator re-seeds it as a follower.
//
// Promotion is driven by silence: when the follower hears nothing (batches,
// heartbeats) for PromoteAfter plus a seeded jitter, it bumps the epoch,
// rebuilds live sessions through the server's recovery path (OnPromote) and
// starts serving. The jitter keeps two followers of a future multi-standby
// deployment from promoting in the same instant.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"time"

	"isrl/internal/obs"
	"isrl/internal/trace"
	"isrl/internal/wal"
)

// maxFrameBytes bounds one wire frame. Snapshot chunks are the largest
// messages; SnapshotChunk sessions of bounded answer traces stay far under
// this, and a frame announcing more is treated as stream corruption.
const maxFrameBytes = 64 << 20

// msg is the single wire message shape; T discriminates. Every message is
// one CRC32 frame of JSON. Unknown types are ignored by both ends, so the
// anti-entropy triplet (digest/repreq/rep) is wire-compatible with nodes
// that predate it.
type msg struct {
	T       string             `json:"t"`              // hello|welcome|deny|snap|snapend|batch|hb|ack|digest|repreq|rep
	Epoch   uint64             `json:"ep,omitempty"`   // sender's failover epoch
	SID     uint64             `json:"sid,omitempty"`  // hello: primary stream id (resume token)
	Token   string             `json:"tok,omitempty"`  // hello: shared replication secret
	LSN     int64              `json:"lsn,omitempty"`  // position (meaning depends on T)
	Bytes   int64              `json:"b,omitempty"`    // cumulative bytes at LSN
	States  []wal.SessionState `json:"ss,omitempty"`   // snap: one chunk of sessions
	Entries []wal.Entry        `json:"es,omitempty"`   // batch: shipped journal entries
	Err     string             `json:"err,omitempty"`  // deny: human-readable reason
	Segs    []wal.SegmentInfo  `json:"segs,omitempty"` // digest: sealed-segment manifest
	Seq     int                `json:"seq,omitempty"`  // repreq|rep: segment sequence number
	Data    []byte             `json:"d,omitempty"`    // rep: raw segment bytes
	Want    bool               `json:"want,omitempty"` // digest: asks the peer to reply with its own
}

// Options tunes a replication node. The zero value is production-safe for a
// primary; followers usually set PromoteAfter.
type Options struct {
	// Heartbeat is the primary's idle keep-alive interval and the base for
	// the follower's read deadline (4x). Default 250ms.
	Heartbeat time.Duration
	// PromoteAfter is how long a follower tolerates silence before
	// promoting itself. 0 disables auto-promotion (Promote still works).
	PromoteAfter time.Duration
	// PromoteJitter widens PromoteAfter by a seeded draw in [0, jitter).
	// Default PromoteAfter/4.
	PromoteJitter time.Duration
	// RedialBackoff is the primary's pause between failed dials. Default 100ms.
	RedialBackoff time.Duration
	// DialTimeout bounds one dial attempt. Default 2s.
	DialTimeout time.Duration
	// BatchMax caps entries per shipped batch. Default 256.
	BatchMax int
	// SnapshotChunk caps sessions per snapshot frame. Default 256.
	SnapshotChunk int
	// RingCap caps the in-memory tail ring; a follower further behind than
	// this resynchronizes from a snapshot. Default 8192.
	RingCap int
	// Token is a shared secret for the replication link. A follower with a
	// Token set drops any hello that does not present it, so a peer that
	// can merely reach the -follow port cannot reset the promotion
	// watchdog, bump the epoch, or feed the journal. Empty disables the
	// check.
	Token string
	// DigestEvery is how often the primary announces its sealed-segment
	// digest over the stream for anti-entropy repair: each exchange lets
	// either end re-fetch quarantined segments whose bytes the peer still
	// holds intact. 0 disables the exchange.
	DigestEvery time.Duration
	// Seed feeds the promotion jitter and the stream id. 0 uses a
	// time-derived seed.
	Seed int64
	// Logger receives role transitions and stream errors. Default slog.Default().
	Logger *slog.Logger
	// Tracer, when set, records a "repl.ship" span per shipped batch.
	Tracer *trace.Tracer
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat <= 0 {
		return 250 * time.Millisecond
	}
	return o.Heartbeat
}

func (o Options) promoteJitter() time.Duration {
	if o.PromoteJitter > 0 {
		return o.PromoteJitter
	}
	return o.PromoteAfter / 4
}

func (o Options) redialBackoff() time.Duration {
	if o.RedialBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return o.RedialBackoff
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 2 * time.Second
	}
	return o.DialTimeout
}

func (o Options) batchMax() int {
	if o.BatchMax <= 0 {
		return 256
	}
	return o.BatchMax
}

func (o Options) snapshotChunk() int {
	if o.SnapshotChunk <= 0 {
		return 256
	}
	return o.SnapshotChunk
}

func (o Options) ringCap() int {
	if o.RingCap <= 0 {
		return 8192
	}
	return o.RingCap
}

func (o Options) logger() *slog.Logger {
	if o.Logger == nil {
		return slog.Default()
	}
	return o.Logger
}

// Stats is a point-in-time snapshot of one node's replication counters,
// exposed for tests and debugging without reaching into global metrics.
type Stats struct {
	SnapshotsSent    int64 // full snapshot pushes (primary)
	BatchesSent      int64
	RecordsSent      int64
	BytesSent        int64 // journal bytes covered by shipped batches
	HeartbeatsSent   int64
	Reconnects       int64 // failed dials + broken streams (primary)
	SnapshotsApplied int64 // snapshot pushes folded in (follower)
	RecordsApplied   int64
	HeartbeatsMissed int64 // read deadlines expired (follower)
	StaleDenied      int64 // hellos/batches denied for a stale epoch (follower)
	Promotions       int64
	DigestsSent      int64 // sealed-segment digests announced to the peer
	DigestsReceived  int64 // peer digests compared against the local manifest
	RepairsRequested int64 // quarantined segments this node asked the peer for
	RepairsServed    int64 // segment bodies served to the peer
	RepairsApplied   int64 // quarantined segments healed with peer bytes
	RepairsRejected  int64 // repair payloads refused (stale epoch or bad bytes)
}

var (
	mBatchesSent     = obs.Default().Counter("repl.batches_sent")
	mRecordsSent     = obs.Default().Counter("repl.records_sent")
	mBytesSent       = obs.Default().Counter("repl.bytes_sent")
	mSnapsSent       = obs.Default().Counter("repl.snapshots_sent")
	mHBSent          = obs.Default().Counter("repl.heartbeats_sent")
	mSendErrors      = obs.Default().Counter("repl.send_errors")
	mReconnects      = obs.Default().Counter("repl.reconnects")
	mRecordsApplied  = obs.Default().Counter("repl.records_applied")
	mSnapsApplied    = obs.Default().Counter("repl.snapshots_applied")
	mHBMissed        = obs.Default().Counter("repl.heartbeats_missed")
	mPromotions      = obs.Default().Counter("repl.promotions")
	mStaleDenied     = obs.Default().Counter("repl.stale_epoch_rejected")
	mDigestsSent     = obs.Default().Counter("repl.digests_sent")
	mRepairsServed   = obs.Default().Counter("repl.repairs_served")
	mRepairsApplied  = obs.Default().Counter("repl.repairs_applied")
	mRepairsRejected = obs.Default().Counter("repl.repairs_rejected")

	mLagRecords = obs.Default().Gauge("repl.lag_records")
	mLagBytes   = obs.Default().Gauge("repl.lag_bytes")
	mEpoch      = obs.Default().Gauge("repl.epoch")
)

// writeMsg frames and writes one message under a write deadline, so a
// blackholed peer surfaces as an error instead of a hung goroutine.
func writeMsg(conn net.Conn, m msg, deadline time.Duration) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repl: encode %s: %w", m.T, err)
	}
	frame, err := wal.Frame(payload, maxFrameBytes)
	if err != nil {
		return fmt.Errorf("repl: frame %s: %w", m.T, err)
	}
	conn.SetWriteDeadline(time.Now().Add(deadline))
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("repl: write %s: %w", m.T, err)
	}
	return nil
}

// readMsg reads one framed message under a read deadline.
func readMsg(conn net.Conn, deadline time.Duration) (msg, error) {
	conn.SetReadDeadline(time.Now().Add(deadline))
	payload, err := wal.ReadFrame(conn, maxFrameBytes)
	if err != nil {
		return msg{}, err
	}
	var m msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return msg{}, fmt.Errorf("repl: decode message: %w", err)
	}
	return m, nil
}

// errDeposed is returned inside the primary's stream loop when the follower
// announced a higher epoch that actually fenced the local journal: this
// node must stop replicating permanently.
var errDeposed = errors.New("repl: deposed by higher epoch")

// errDenied is returned when the follower denied the stream without
// presenting an epoch above ours — a follower mid-promotion whose bump is
// not yet durable. The primary redials like any broken stream; stopping
// here would leave an unfenced primary silently accepting writes.
var errDenied = errors.New("repl: denied without a fencing epoch")

// errResync is returned when the follower's position fell off the tail
// ring; the stream restarts with a snapshot push.
var errResync = errors.New("repl: follower position off the tail ring")

// splitmix64 advances and mixes a 64-bit state; the same generator the
// trace package uses for deterministic IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
