package repl

import (
	"errors"
	"net"
	"os"
	"time"

	"isrl/internal/fault"
)

// acceptLoop serves one primary connection at a time; a second dialer
// queues behind the first (the deposed-primary case resolves itself when
// the old stream breaks). Messages from a greeted, non-stale primary reset
// the promotion watchdog.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.ctx.Err() != nil {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.serve(conn)
		conn.Close()
	}
}

// serve handles one primary's stream until it breaks, the node closes, or
// the primary proves stale. Nothing before a valid hello handshake touches
// node state: an unauthenticated peer must not be able to reset the
// promotion watchdog, bump the epoch, or feed the journal.
func (n *Node) serve(conn net.Conn) {
	ioDeadline := 4 * n.opts.heartbeat()
	greeted := false
	for {
		if n.ctx.Err() != nil {
			return
		}
		m, err := readMsg(conn, ioDeadline)
		if err != nil {
			if os.IsTimeout(err) {
				mHBMissed.Inc()
				n.mu.Lock()
				n.stats.HeartbeatsMissed++
				n.mu.Unlock()
			}
			return
		}
		if m.T == "hello" && n.opts.Token != "" && m.Token != n.opts.Token {
			n.opts.logger().Warn("repl: dropping hello with bad replication token")
			return
		}
		if m.T != "hello" && !greeted {
			return // no handshake: drop before the message reaches anything
		}
		if n.deposedPrimary(m, conn, ioDeadline) {
			return
		}
		n.touch()
		switch m.T {
		case "hello":
			if !n.handleHello(m, conn, ioDeadline) {
				return
			}
			greeted = true
		case "snap":
			if err := fault.Hit(fault.PointReplApply); err != nil {
				return // drop the stream; the primary resyncs on redial
			}
			applied, err := n.log.ApplySnapshot(m.States)
			if err != nil {
				n.opts.logger().Warn("repl: snapshot apply failed", "err", err)
				return
			}
			mRecordsApplied.Add(int64(applied))
			n.mu.Lock()
			n.stats.RecordsApplied += int64(applied)
			n.mu.Unlock()
		case "snapend":
			mSnapsApplied.Inc()
			n.mu.Lock()
			n.stats.SnapshotsApplied++
			n.appliedLSN, n.appliedBytes = m.LSN, m.Bytes
			n.observePrimaryLocked(m)
			n.mu.Unlock()
			n.updateLagGauges()
			if !n.ack(conn, ioDeadline) {
				return
			}
		case "batch":
			if err := fault.Hit(fault.PointReplApply); err != nil {
				return
			}
			applied, err := n.log.ApplyEntries(m.Entries)
			if err != nil {
				n.opts.logger().Warn("repl: batch apply failed; forcing resync", "err", err)
				return // the primary will snapshot on reconnect if needed
			}
			mRecordsApplied.Add(int64(applied))
			n.mu.Lock()
			n.stats.RecordsApplied += int64(applied)
			n.appliedLSN, n.appliedBytes = m.LSN, m.Bytes
			n.observePrimaryLocked(m)
			n.mu.Unlock()
			n.updateLagGauges()
			if !n.ack(conn, ioDeadline) {
				return
			}
		case "hb":
			n.mu.Lock()
			n.observePrimaryLocked(m)
			n.mu.Unlock()
			n.updateLagGauges()
			if !n.ack(conn, ioDeadline) {
				return
			}
		case "digest":
			for _, req := range n.repairRequests(m) {
				if writeMsg(conn, req, ioDeadline) != nil {
					return
				}
			}
			if m.Want {
				if writeMsg(conn, n.digestMsg(false), ioDeadline) != nil {
					return
				}
			}
		case "repreq":
			if rep, ok := n.serveRepair(m); ok {
				if writeMsg(conn, rep, ioDeadline) != nil {
					return
				}
			}
		case "rep":
			n.applyRepair(m)
		}
	}
}

// deposedPrimary checks the sender's epoch against local state; a stale
// primary (lower epoch, or any primary once this node promoted) gets an
// explicit deny so it can fence itself, and the stream ends.
func (n *Node) deposedPrimary(m msg, conn net.Conn, deadline time.Duration) bool {
	localEpoch := n.log.Epoch()
	n.mu.Lock()
	stale := n.promoting || m.Epoch < localEpoch
	if stale {
		n.stats.StaleDenied++
		if m.T == "rep" {
			// A fenced primary offering to "repair" a promoted follower: the
			// payload dies at this gate and is counted as a rejected repair.
			n.stats.RepairsRejected++
		}
	}
	n.mu.Unlock()
	if !stale {
		return false
	}
	if m.T == "rep" {
		mRepairsRejected.Inc()
	}
	mStaleDenied.Inc()
	n.opts.logger().Warn("repl: denying stale primary", "their_epoch", m.Epoch, "our_epoch", localEpoch)
	writeMsg(conn, msg{T: "deny", Epoch: localEpoch, Err: "stale epoch: this follower promoted"}, deadline)
	return true
}

// handleHello adopts the primary's epoch when higher, resolves the resume
// position (a fresh stream id voids any previous position) and welcomes.
func (n *Node) handleHello(m msg, conn net.Conn, deadline time.Duration) bool {
	if m.Epoch > n.log.Epoch() {
		if err := n.log.SetEpoch(m.Epoch); err != nil {
			n.opts.logger().Warn("repl: cannot adopt primary epoch", "err", err)
			return false
		}
		mEpoch.Set(int64(m.Epoch))
	}
	n.mu.Lock()
	if m.SID != n.lastSID {
		n.lastSID = m.SID
		n.appliedLSN, n.appliedBytes = 0, 0
		n.primaryLSN, n.primaryBytes = 0, 0
	}
	resume := n.appliedLSN
	n.everSeen = true
	n.mu.Unlock()
	return writeMsg(conn, msg{T: "welcome", Epoch: n.log.Epoch(), LSN: resume}, deadline) == nil
}

// observePrimaryLocked records the primary's announced head position so Lag
// has a denominator. Callers hold n.mu.
func (n *Node) observePrimaryLocked(m msg) {
	if m.LSN > n.primaryLSN {
		n.primaryLSN = m.LSN
	}
	if m.Bytes > n.primaryBytes {
		n.primaryBytes = m.Bytes
	}
}

func (n *Node) updateLagGauges() {
	records, bytes := n.Lag()
	mLagRecords.Set(records)
	mLagBytes.Set(bytes)
}

func (n *Node) ack(conn net.Conn, deadline time.Duration) bool {
	n.mu.Lock()
	lsn, bytes := n.appliedLSN, n.appliedBytes
	n.mu.Unlock()
	return writeMsg(conn, msg{T: "ack", LSN: lsn, Bytes: bytes}, deadline) == nil
}

// touch resets the promotion watchdog.
func (n *Node) touch() {
	n.mu.Lock()
	n.lastSeen = time.Now()
	n.mu.Unlock()
}

// watchdog promotes the follower once the primary has been silent past
// PromoteAfter plus a seeded jitter.
func (n *Node) watchdog() {
	defer n.wg.Done()
	jitter := time.Duration(0)
	if j := n.opts.promoteJitter(); j > 0 {
		jitter = time.Duration(splitmix64(uint64(n.opts.Seed)+1) % uint64(j))
	}
	limit := n.opts.PromoteAfter + jitter
	tick := limit / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
		}
		n.mu.Lock()
		silent := time.Since(n.lastSeen)
		promoted := n.promoted
		n.mu.Unlock()
		if promoted {
			return
		}
		if silent >= limit {
			// Keep ticking until the promotion actually lands (n.promoted):
			// a failed epoch append resets `promoting`, so the next tick
			// retries instead of leaving the node wedged as a dead follower.
			if err := n.Promote(); err != nil {
				n.opts.logger().Warn("repl: promotion failed; retrying", "err", err)
			}
		}
	}
}
