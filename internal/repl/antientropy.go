package repl

// Anti-entropy repair rides the replication stream: either end
// periodically announces the sealed-segment digest from its WAL manifest
// (msg type "digest"), the peer compares it against its own manifest with
// wal.CompareDigest, and any locally-quarantined segment whose peer copy
// still matches the local manifest is re-fetched ("repreq" → "rep") and
// healed byte-identically with wal.RepairSegment. The epoch rules mirror
// the shipping path: every anti-entropy message carries the sender's
// epoch, a follower's deposedPrimary gate denies the lot from a stale
// primary, and applyRepair re-checks the epoch so a fenced node's bytes
// can never overwrite a promoted peer's history even if a gate is missed.
// Divergent-but-healthy segments (same length, different CRC on both
// sides) are counted and logged, never auto-adopted: with neither copy
// failing its own manifest there is no way to know which history is the
// true one, so that call is left to an operator.

// digestMsg builds this node's sealed-segment digest announcement. want
// asks the peer to answer with its own digest, closing the loop so both
// ends get a repair opportunity per exchange.
func (n *Node) digestMsg(want bool) msg {
	mDigestsSent.Inc()
	n.mu.Lock()
	n.stats.DigestsSent++
	n.mu.Unlock()
	return msg{T: "digest", Epoch: n.log.Epoch(), Segs: n.log.SealedSegments(), Want: want}
}

// repairRequests compares a peer digest against the local manifest and
// returns one repreq per segment this node wants healed.
func (n *Node) repairRequests(m msg) []msg {
	want, divergent := n.log.CompareDigest(m.Segs)
	n.mu.Lock()
	n.stats.DigestsReceived++
	n.stats.RepairsRequested += int64(len(want))
	n.mu.Unlock()
	if len(divergent) > 0 {
		n.opts.logger().Warn("repl: sealed segments diverge from peer; not auto-adopting",
			"segments", divergent)
	}
	reqs := make([]msg, 0, len(want))
	for _, seq := range want {
		reqs = append(reqs, msg{T: "repreq", Epoch: n.log.Epoch(), Seq: seq})
	}
	return reqs
}

// serveRepair answers one repreq with the raw segment bytes. ok=false when
// the segment cannot be served (quarantined here too, compacted away, or
// failing its own manifest check — SegmentData never ships unverified
// bytes); the requester just waits for a healthier exchange.
func (n *Node) serveRepair(m msg) (msg, bool) {
	data, _, err := n.log.SegmentData(m.Seq)
	if err != nil {
		n.opts.logger().Warn("repl: cannot serve repair", "seq", m.Seq, "err", err)
		return msg{}, false
	}
	mRepairsServed.Inc()
	n.mu.Lock()
	n.stats.RepairsServed++
	n.mu.Unlock()
	return msg{T: "rep", Epoch: n.log.Epoch(), Seq: m.Seq, Data: data}, true
}

// applyRepair folds one rep payload into a quarantined segment. A stale
// epoch is refused outright — a fenced primary must never "repair" a
// promoted follower — and RepairSegment independently refuses bytes that
// fail the local manifest, so a corrupt or malicious payload cannot land.
func (n *Node) applyRepair(m msg) {
	if m.Epoch < n.log.Epoch() {
		n.rejectRepair()
		n.opts.logger().Warn("repl: rejecting repair from stale epoch",
			"seq", m.Seq, "their_epoch", m.Epoch, "our_epoch", n.log.Epoch())
		return
	}
	if err := n.log.RepairSegment(m.Seq, m.Data); err != nil {
		n.rejectRepair()
		n.opts.logger().Warn("repl: repair payload refused", "seq", m.Seq, "err", err)
		return
	}
	mRepairsApplied.Inc()
	n.mu.Lock()
	n.stats.RepairsApplied++
	n.mu.Unlock()
	n.opts.logger().Info("repl: healed quarantined segment from peer", "seq", m.Seq)
}

func (n *Node) rejectRepair() {
	mRepairsRejected.Inc()
	n.mu.Lock()
	n.stats.RepairsRejected++
	n.mu.Unlock()
}
