package repl

import (
	"errors"
	"net"
	"time"

	"isrl/internal/fault"
	"isrl/internal/trace"
	"isrl/internal/wal"
)

// feedLoop drains the WAL subscription into the bounded tail ring. When the
// subscription overflows (the log closes the channel rather than block its
// append path), it resubscribes; the resulting gap is detected by LSN
// discontinuity and collapses the ring, which later forces a snapshot
// resync for any follower behind the gap.
func (n *Node) feedLoop(ch <-chan wal.Entry, cancel func()) {
	defer n.wg.Done()
	for {
		if done := n.drainSubscription(ch, cancel); done {
			return
		}
		ch, cancel = n.log.Subscribe(n.opts.ringCap())
	}
}

// drainSubscription consumes one subscription until it overflows (returns
// false: resubscribe) or the node closes (returns true).
func (n *Node) drainSubscription(ch <-chan wal.Entry, cancel func()) bool {
	defer cancel()
	for {
		select {
		case <-n.ctx.Done():
			return true
		case e, ok := <-ch:
			if !ok {
				n.opts.logger().Warn("repl: subscription overflowed; tail ring will resync")
				return false
			}
			n.feedEntry(e)
		}
	}
}

// feedEntry appends one committed entry to the tail ring, keeping the ring
// a run of consecutive LSNs over (floor, floor+len]. Duplicates are
// skipped; a gap (entries lost to a subscription overflow) restarts the
// ring at the new entry, stranding any follower behind it on the snapshot
// path.
func (n *Node) feedEntry(e wal.Entry) {
	n.mu.Lock()
	next := n.floor + int64(len(n.ring)) + 1
	switch {
	case e.LSN < next:
		n.mu.Unlock()
		return
	case e.LSN > next:
		n.ring = n.ring[:0]
		n.floor = e.LSN - 1
		n.floorBytes = -1 // position before the gap entry is unknown
	}
	n.ring = append(n.ring, e)
	if len(n.ring) > n.opts.ringCap() {
		trim := len(n.ring) - n.opts.ringCap()
		n.floorBytes = n.ring[trim-1].Bytes
		n.ring = append(n.ring[:0], n.ring[trim:]...)
		n.floor += int64(trim)
	}
	n.mu.Unlock()
	select {
	case n.notify <- struct{}{}:
	default:
	}
}

// takeBatch returns up to BatchMax entries with LSN > after, plus the
// cumulative journal position immediately before the first returned entry
// (-1 when that baseline was lost to a feed gap) so the caller can count
// shipped bytes. ok=false means the position fell off the ring (compacted
// past, or a feed gap): the caller must push a snapshot instead.
func (n *Node) takeBatch(after int64) (batch []wal.Entry, prevBytes int64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if after < n.floor {
		return nil, 0, false
	}
	i := after - n.floor
	if i >= int64(len(n.ring)) {
		return nil, 0, true
	}
	prevBytes = n.floorBytes
	if i > 0 {
		prevBytes = n.ring[i-1].Bytes
	}
	end := i + int64(n.opts.batchMax())
	if end > int64(len(n.ring)) {
		end = int64(len(n.ring))
	}
	batch = make([]wal.Entry, end-i)
	copy(batch, n.ring[i:end])
	return batch, prevBytes, true
}

// shipLoop dials the follower and streams until the node closes or the
// follower announces a higher epoch (this node is deposed: fence and stop
// for good). Every other failure — refused dial, broken pipe, a follower
// that fell off the tail ring — redials with backoff and resumes or
// resyncs.
func (n *Node) shipLoop() {
	defer n.wg.Done()
	backoff := n.opts.redialBackoff()
	for n.ctx.Err() == nil {
		conn, err := net.DialTimeout("tcp", n.target, n.opts.dialTimeout())
		if err != nil {
			mReconnects.Inc()
			n.bumpReconnects()
			if !n.sleep(backoff) {
				return
			}
			continue
		}
		err = n.stream(conn)
		conn.Close()
		switch {
		case errors.Is(err, errDeposed):
			// The log was fenced inside stream; appends now fail with
			// wal.ErrStaleEpoch and there is nothing left to ship.
			n.opts.logger().Warn("repl: deposed by follower with higher epoch; replication stopped",
				"fenced", n.log.Fenced())
			return
		case err != nil && n.ctx.Err() == nil:
			mReconnects.Inc()
			mSendErrors.Inc()
			n.bumpReconnects()
			n.opts.logger().Warn("repl: stream broken; redialing", "err", err)
		}
		if !n.sleep(backoff) {
			return
		}
	}
}

func (n *Node) bumpReconnects() {
	n.mu.Lock()
	n.stats.Reconnects++
	n.mu.Unlock()
}

func (n *Node) sleep(d time.Duration) bool {
	select {
	case <-n.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// stream runs one connection: handshake, optional snapshot resync, then the
// tail loop shipping batches and heartbeats while a reader goroutine folds
// in acks. Returns errDeposed when the follower fences us.
func (n *Node) stream(conn net.Conn) error {
	hbInterval := n.opts.heartbeat()
	ioDeadline := 4 * hbInterval

	if err := writeMsg(conn, msg{T: "hello", Epoch: n.log.Epoch(), SID: n.sid, Token: n.opts.Token}, ioDeadline); err != nil {
		return err
	}
	w, err := readMsg(conn, ioDeadline)
	if err != nil {
		return err
	}
	switch w.T {
	case "deny":
		if w.Epoch > n.log.Epoch() {
			n.log.Fence(w.Epoch)
			return errDeposed
		}
		// A deny without a higher epoch comes from a follower mid-promotion
		// whose epoch bump is not yet durable. Fencing with it would be a
		// no-op, leaving this node unfenced but silent — the split-brain
		// window. Treat it like a broken stream and redial until the
		// follower either presents an epoch that actually fences the
		// journal or accepts us again.
		return errDenied
	case "welcome":
		if w.Epoch > n.log.Epoch() {
			n.log.Fence(w.Epoch)
			return errDeposed
		}
	default:
		return errors.New("repl: unexpected handshake reply " + w.T)
	}

	// A follower resuming at LSN 0 against a log that recovered sessions at
	// boot can never receive those sessions from the tail stream (they
	// predate the in-memory LSN counter), so force the snapshot path.
	sent := w.LSN
	if _, _, ok := n.takeBatch(sent); !ok || (sent == 0 && n.log.HasBootState()) {
		pos, err := n.snapshot(conn, ioDeadline)
		if err != nil {
			return err
		}
		sent = pos.LSN
	}

	// Anti-entropy messages the reader wants written back (repair requests
	// and served segment bodies) queue here for the writer, which owns the
	// connection. The queue is small and lossy by design: a dropped frame
	// is re-generated by a later digest exchange.
	ctrl := make(chan msg, 32)
	enqueue := func(m msg) {
		select {
		case ctrl <- m:
		default:
			n.opts.logger().Warn("repl: anti-entropy queue full; dropping", "type", m.T, "seq", m.Seq)
		}
	}

	// Reader: acks move the lag gauges; a deny mid-stream means a promoted
	// follower — fence and kill the connection so the writer unblocks.
	readerErr := make(chan error, 1)
	go func() {
		for {
			m, err := readMsg(conn, 10*ioDeadline)
			if err != nil {
				readerErr <- err
				return
			}
			switch m.T {
			case "digest":
				for _, req := range n.repairRequests(m) {
					enqueue(req)
				}
			case "repreq":
				if rep, ok := n.serveRepair(m); ok {
					enqueue(rep)
				}
			case "rep":
				n.applyRepair(m)
			case "ack":
				n.mu.Lock()
				if m.LSN > n.ackLSN {
					n.ackLSN = m.LSN
				}
				ack := n.ackLSN
				n.mu.Unlock()
				pos := n.log.Pos()
				if lag := pos.LSN - ack; lag >= 0 {
					mLagRecords.Set(lag)
				}
			case "deny":
				if m.Epoch > n.log.Epoch() {
					n.log.Fence(m.Epoch)
					readerErr <- errDeposed
				} else {
					readerErr <- errDenied
				}
				return
			}
		}
	}()

	hb := time.NewTimer(hbInterval)
	defer hb.Stop()
	var digC <-chan time.Time
	if n.opts.DigestEvery > 0 {
		dig := time.NewTicker(n.opts.DigestEvery)
		defer dig.Stop()
		digC = dig.C
	}
	var batchSeq int64
	for {
		select {
		case err := <-readerErr:
			return err
		case <-n.ctx.Done():
			return nil
		default:
		}
		// Drain queued anti-entropy frames first so repairs flow even while
		// batches keep the stream busy.
	drain:
		for {
			select {
			case m := <-ctrl:
				if err := writeMsg(conn, m, ioDeadline); err != nil {
					return err
				}
			default:
				break drain
			}
		}
		batch, prevBytes, ok := n.takeBatch(sent)
		if !ok {
			return errResync
		}
		if len(batch) > 0 {
			if err := n.shipBatch(conn, batch, prevBytes, ioDeadline, batchSeq); err != nil {
				return err
			}
			sent = batch[len(batch)-1].LSN
			batchSeq++
			if !hb.Stop() {
				select {
				case <-hb.C:
				default:
				}
			}
			hb.Reset(hbInterval)
			continue
		}
		select {
		case err := <-readerErr:
			return err
		case <-n.ctx.Done():
			return nil
		case <-n.notify:
		case m := <-ctrl:
			if err := writeMsg(conn, m, ioDeadline); err != nil {
				return err
			}
		case <-digC:
			if err := writeMsg(conn, n.digestMsg(true), ioDeadline); err != nil {
				return err
			}
		case <-hb.C:
			hb.Reset(hbInterval)
			if err := fault.Hit(fault.PointReplHeartbeat); err != nil {
				mSendErrors.Inc()
				return err
			}
			pos := n.log.Pos()
			if err := writeMsg(conn, msg{T: "hb", Epoch: n.log.Epoch(), LSN: pos.LSN, Bytes: pos.Bytes}, ioDeadline); err != nil {
				return err
			}
			mHBSent.Inc()
			n.mu.Lock()
			n.stats.HeartbeatsSent++
			n.mu.Unlock()
		}
	}
}

// shipBatch sends one batch frame, traced when sampling selects it.
// prevBytes is the cumulative journal position before the batch's first
// entry (-1 when unknown), the baseline for shipped-byte accounting.
func (n *Node) shipBatch(conn net.Conn, batch []wal.Entry, prevBytes int64, deadline time.Duration, seq int64) error {
	if err := fault.Hit(fault.PointReplSend); err != nil {
		mSendErrors.Inc()
		return err
	}
	var sp *trace.Span
	var tr *trace.Trace
	if t := n.opts.Tracer; t != nil && t.Sampled(n.opts.Seed+seq) {
		tr, sp = t.StartTrace("repl.ship", trace.TraceID{}, n.opts.Seed+seq)
	}
	last := batch[len(batch)-1]
	m := msg{T: "batch", Epoch: n.log.Epoch(), LSN: last.LSN, Bytes: last.Bytes, Entries: batch}
	err := writeMsg(conn, m, deadline)
	if sp != nil {
		sp.SetInt("records", int64(len(batch)))
		sp.SetInt("lsn", last.LSN)
		sp.SetBool("error", err != nil)
		sp.End()
		tr.Finish()
	}
	if err != nil {
		return err
	}
	sentBytes := last.Bytes - prevBytes
	if prevBytes < 0 {
		// The baseline fell to a feed gap: count only the deltas inside the
		// batch rather than guess the first entry's frame size.
		sentBytes = last.Bytes - batch[0].Bytes
	}
	mBatchesSent.Inc()
	mRecordsSent.Add(int64(len(batch)))
	mBytesSent.Add(sentBytes)
	n.mu.Lock()
	n.stats.BatchesSent++
	n.stats.RecordsSent += int64(len(batch))
	n.stats.BytesSent += sentBytes
	n.mu.Unlock()
	return nil
}

// snapshot pushes the full session state in chunks, ending with a snapend
// frame carrying the position the snapshot is consistent with. The tail
// loop resumes from that position.
func (n *Node) snapshot(conn net.Conn, deadline time.Duration) (wal.Position, error) {
	if err := fault.Hit(fault.PointReplSend); err != nil {
		mSendErrors.Inc()
		return wal.Position{}, err
	}
	states, pos, epoch := n.log.ReplSnapshot()
	chunk := n.opts.snapshotChunk()
	for i := 0; i < len(states); i += chunk {
		end := i + chunk
		if end > len(states) {
			end = len(states)
		}
		if err := writeMsg(conn, msg{T: "snap", Epoch: epoch, States: states[i:end]}, deadline); err != nil {
			return wal.Position{}, err
		}
	}
	if err := writeMsg(conn, msg{T: "snapend", Epoch: epoch, LSN: pos.LSN, Bytes: pos.Bytes}, deadline); err != nil {
		return wal.Position{}, err
	}
	mSnapsSent.Inc()
	n.mu.Lock()
	n.stats.SnapshotsSent++
	n.mu.Unlock()
	n.opts.logger().Info("repl: pushed snapshot", "sessions", len(states), "lsn", pos.LSN)
	return pos, nil
}
