package repl

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"isrl/internal/wal"
)

// corruptSealed flips one byte in the sealed segment seq of dir and runs a
// scrub so the damage is detected and quarantined.
func corruptSealed(t *testing.T, l *wal.Log, dir string, seq int) {
	t.Helper()
	path := filepath.Join(dir, wal.SegName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment %d: %v", seq, err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := l.Scrub(context.Background(), 0)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corrupt != 1 {
		t.Fatalf("scrub found %d corrupt segments, want the 1 just planted", rep.Corrupt)
	}
}

// TestReplAntiEntropyRepairsBothEnds is the full repair loop: a streamed
// pair has byte-identical segment layouts, one sealed segment rots on each
// side, scrubbing quarantines them, and the periodic digest exchange heals
// both — the follower from the primary's digest, the primary from the
// follower's reply digest — restoring byte-identical files.
func TestReplAntiEntropyRepairsBothEnds(t *testing.T) {
	pLog, pDir := openLog(t, wal.Options{SegmentBytes: 256})
	fLog, fDir := openLog(t, wal.Options{SegmentBytes: 256})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	pOpts := fastOpts(1)
	pOpts.DigestEvery = 25 * time.Millisecond
	primary := NewPrimary(pLog, follower.Addr(), pOpts)
	primary.Start()
	defer primary.Close()

	driveSessions(t, pLog, 8, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)

	// A follower streamed from LSN 0 re-frames the identical records, so
	// the sealed layouts must agree — the precondition for raw-segment
	// repair (a snapshot-bootstrapped follower would fall back to resync).
	pSealed, fSealed := pLog.SealedSegments(), fLog.SealedSegments()
	if len(pSealed) < 3 || len(fSealed) < 3 {
		t.Fatalf("need ≥3 sealed segments on both ends, have %d/%d", len(pSealed), len(fSealed))
	}
	for i, s := range fSealed {
		if i < len(pSealed) && pSealed[i] != s {
			t.Fatalf("sealed layouts diverge at %d: primary %+v follower %+v", i, pSealed[i], s)
		}
	}

	// Rot a different sealed segment on each side.
	corruptSealed(t, pLog, pDir, pSealed[0].Seq)
	corruptSealed(t, fLog, fDir, fSealed[1].Seq)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(pLog.Quarantined()) == 0 && len(fLog.Quarantined()) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if q := pLog.Quarantined(); len(q) != 0 {
		t.Fatalf("primary still quarantined %v; anti-entropy never healed it", q)
	}
	if q := fLog.Quarantined(); len(q) != 0 {
		t.Fatalf("follower still quarantined %v; anti-entropy never healed it", q)
	}
	for _, seq := range []int{pSealed[0].Seq, fSealed[1].Seq} {
		a, err := os.ReadFile(filepath.Join(pDir, wal.SegName(seq)))
		if err != nil {
			t.Fatalf("primary segment %d after repair: %v", seq, err)
		}
		b, err := os.ReadFile(filepath.Join(fDir, wal.SegName(seq)))
		if err != nil {
			t.Fatalf("follower segment %d after repair: %v", seq, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("segment %d not byte-identical after repair", seq)
		}
	}
	if st := primary.Stats(); st.RepairsApplied == 0 {
		t.Errorf("primary applied no repairs: %+v", st)
	}
	if st := follower.Stats(); st.RepairsApplied == 0 || st.RepairsServed == 0 {
		t.Errorf("follower stats show no repair traffic: %+v", st)
	}
	if in := pLog.Integrity(); in.Repaired == 0 {
		t.Errorf("primary integrity shows no repairs: %+v", in)
	}
}

// TestReplStaleEpochRepairRejected pins the fencing rule for anti-entropy:
// once a follower promotes, a repair offer carrying the old epoch is
// denied at the gate and the quarantined segment stays untouched — a
// fenced primary can never rewrite a promoted node's history.
func TestReplStaleEpochRepairRejected(t *testing.T) {
	fLog, fDir := openLog(t, wal.Options{SegmentBytes: 256})
	driveSessions(t, fLog, 8, 0)
	sealed := fLog.SealedSegments()
	if len(sealed) == 0 {
		t.Fatal("no sealed segments to quarantine")
	}
	victim := sealed[0].Seq
	pristine, err := os.ReadFile(filepath.Join(fDir, wal.SegName(victim)))
	if err != nil {
		t.Fatal(err)
	}
	corruptSealed(t, fLog, fDir, victim)

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	// Handshake at epoch 0, then promote the follower underneath the link.
	conn, err := net.Dial("tcp", follower.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, msg{T: "hello", SID: 7}, time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := readMsg(conn, time.Second); err != nil || m.T != "welcome" {
		t.Fatalf("handshake reply = %+v, %v; want welcome", m, err)
	}
	if err := follower.Promote(); err != nil {
		t.Fatal(err)
	}

	// The stale "primary" offers the correct bytes — and must still be
	// denied: the gate is the epoch, not the payload.
	if err := writeMsg(conn, msg{T: "rep", Epoch: 0, Seq: victim, Data: pristine}, time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := readMsg(conn, time.Second); err != nil || m.T != "deny" {
		t.Fatalf("reply to stale repair = %+v, %v; want deny", m, err)
	}
	if q := fLog.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantine after stale repair = %v, want [%d] untouched", q, victim)
	}
	st := follower.Stats()
	if st.RepairsRejected == 0 {
		t.Errorf("stale repair not counted as rejected: %+v", st)
	}
	if st.StaleDenied == 0 {
		t.Errorf("stale repair not counted as a stale denial: %+v", st)
	}
	if st.RepairsApplied != 0 {
		t.Errorf("stale repair was applied: %+v", st)
	}
}
