package repl

import (
	"encoding/json"
	"errors"
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"isrl/internal/fault"
	"isrl/internal/netfault"
	"isrl/internal/wal"
)

// fastOpts are test timings: fast heartbeats so streams converge in
// milliseconds, quick redial so severed links heal inside the poll window.
func fastOpts(seed int64) Options {
	return Options{
		Heartbeat:     20 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
		DialTimeout:   time.Second,
		Seed:          seed,
	}
}

func openLog(t *testing.T, opts wal.Options) (*wal.Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

// statesJSON renders a log's full session snapshot in a canonical order for
// byte comparison across nodes.
func statesJSON(t *testing.T, l *wal.Log) string {
	t.Helper()
	states, _, _ := l.ReplSnapshot()
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	data, err := json.Marshal(states)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// waitSynced polls until the follower's journal state matches the
// primary's, failing the test after timeout.
func waitSynced(t *testing.T, primary, follower *wal.Log, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	want := statesJSON(t, primary)
	for time.Now().Before(deadline) {
		if statesJSON(t, follower) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged:\n primary: %s\nfollower: %s", want, statesJSON(t, follower))
}

// driveSessions appends a deterministic workload: n live sessions, each
// with three answers.
func driveSessions(t *testing.T, l *wal.Log, n, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := string(rune('a'+offset)) + string(rune('0'+i))
		if err := l.AppendCreate(wal.SessionState{ID: id, Algo: "ea", Eps: 0.1, Seed: int64(i), IdemKey: "k-" + id}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			if err := l.AppendAnswer(id, r%2 == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestReplStreamsTailToFollower is the basic happy path: a fresh pair
// resumes from LSN 0 without a snapshot, and everything the primary commits
// shows up byte-identical in the follower's journal.
func TestReplStreamsTailToFollower(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	fLog, _ := openLog(t, wal.Options{})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	primary := NewPrimary(pLog, follower.Addr(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	driveSessions(t, pLog, 4, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)

	if st := primary.Stats(); st.SnapshotsSent != 0 {
		t.Errorf("fresh pair pushed %d snapshots, want 0 (tail resume from LSN 0)", st.SnapshotsSent)
	}
	if st := follower.Stats(); st.RecordsApplied == 0 {
		t.Error("follower applied no records")
	}
	if r, _ := follower.Lag(); r != 0 {
		t.Errorf("converged follower reports lag %d records", r)
	}
	if role := follower.Role(); role != "follower" {
		t.Errorf("unpromoted follower reports role %q", role)
	}
}

// TestReplSnapshotsPreexistingState covers the other bootstrap path: the
// primary already has journaled sessions before replication starts, which
// are invisible to the LSN stream and must arrive via snapshot.
func TestReplSnapshotsPreexistingState(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	driveSessions(t, pLog, 3, 0) // journaled BEFORE the node exists
	pLog.Close()
	// Reopen: recovery rebuilds state without appending, so Pos() is 0 while
	// the journal holds three sessions — exactly the restart scenario.
	var err error
	pLog2, _, err := wal.Open(pLog.Dir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pLog2.Close()
	fLog, _ := openLog(t, wal.Options{})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	// The follower resumes at LSN 0 and the ring can serve from 0, but the
	// recovered sessions predate the stream entirely — a pure tail resume
	// would silently skip them. HasBootState must force the snapshot path.
	primary := NewPrimary(pLog2, follower.Addr(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	driveSessions(t, pLog2, 2, 5)
	waitSynced(t, pLog2, fLog, 5*time.Second)
	if st := primary.Stats(); st.SnapshotsSent == 0 {
		t.Error("recovered-state primary never snapshotted; follower would miss pre-stream sessions")
	}
}

// TestReplOffsetResumeAcrossRotation is the rotation regression pin: tiny
// segments force the WAL to rotate mid-stream, the link is severed and
// healed, and the reconnect must resume from the follower's offset — same
// stream id, no snapshot — without dropping the tail that rotation moved
// into a new segment file.
func TestReplOffsetResumeAcrossRotation(t *testing.T) {
	plan := fault.NewPlan(1)
	fault.Install(plan)
	defer fault.Install(nil)

	pLog, _ := openLog(t, wal.Options{SegmentBytes: 512}) // a handful of records per segment
	fLog, _ := openLog(t, wal.Options{})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	primary := NewPrimary(pLog, follower.Addr(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	driveSessions(t, pLog, 2, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)
	base := primary.Stats()

	// Sever the link: every send now fails, the stream breaks, redials keep
	// failing until healed.
	plan.Set(fault.PointReplSend, fault.Spec{ErrProb: 1})
	plan.Set(fault.PointReplHeartbeat, fault.Spec{ErrProb: 1})
	time.Sleep(50 * time.Millisecond)

	// Drive enough records through the outage to cross several 512-byte
	// rotation boundaries.
	driveSessions(t, pLog, 6, 3)

	// Heal and wait for convergence.
	plan.Set(fault.PointReplSend, fault.Spec{})
	plan.Set(fault.PointReplHeartbeat, fault.Spec{})
	waitSynced(t, pLog, fLog, 10*time.Second)

	after := primary.Stats()
	if after.SnapshotsSent != base.SnapshotsSent {
		t.Errorf("reconnect across rotation used a snapshot (%d -> %d); want pure offset resume",
			base.SnapshotsSent, after.SnapshotsSent)
	}
	if after.Reconnects == base.Reconnects {
		t.Error("link was never severed; the test exercised nothing")
	}
	// And the rotated tail really is on the follower's disk: reopen and count.
	follower.Close()
	fLog.Close()
	recs, err := wal.Records(fLog.Dir())
	if err != nil {
		t.Fatal(err)
	}
	creates := 0
	for _, r := range recs {
		if r.Kind == wal.KindCreate {
			creates++
		}
	}
	if creates != 8 {
		t.Errorf("follower journal holds %d creates, want 8 (rotation dropped part of the tail)", creates)
	}
}

// TestReplPromotionFencesDeposedPrimary drives the full failover protocol:
// the primary dies, the follower's watchdog promotes it (bumping the
// epoch), and when the old primary comes back its stream is denied and its
// journal fenced — appends fail with wal.ErrStaleEpoch.
func TestReplPromotionFencesDeposedPrimary(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	fLog, _ := openLog(t, wal.Options{})

	opts := fastOpts(2)
	opts.PromoteAfter = 150 * time.Millisecond
	opts.PromoteJitter = 20 * time.Millisecond
	follower, err := NewFollower(fLog, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	var promotedEpoch atomic.Uint64
	var promotedSessions atomic.Int64
	follower.OnPromote(func(epoch uint64, states []wal.SessionState) {
		promotedEpoch.Store(epoch)
		promotedSessions.Store(int64(len(states)))
	})
	follower.Start()
	defer follower.Close()

	primary := NewPrimary(pLog, follower.Addr(), fastOpts(1))
	primary.Start()

	driveSessions(t, pLog, 3, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)

	// Kill the primary node (the machine dies; its journal survives).
	primary.Close()

	// Role flips last in the promotion sequence (after the OnPromote hook),
	// so once it reads "primary" every other promotion effect is visible.
	deadline := time.Now().Add(5 * time.Second)
	for follower.Role() != "primary" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if follower.Role() != "primary" {
		t.Fatal("follower never promoted after primary silence")
	}
	if got := promotedEpoch.Load(); got != 1 {
		t.Fatalf("promotion epoch = %d, want 1", got)
	}
	if got := promotedSessions.Load(); got != 3 {
		t.Fatalf("OnPromote saw %d sessions, want 3", got)
	}
	if fLog.Epoch() != 1 {
		t.Fatalf("follower journal epoch = %d, want 1", fLog.Epoch())
	}

	// The deposed primary restarts its ship loop against the promoted node:
	// it must be denied and fence its own journal.
	revenant := NewPrimary(pLog, follower.Addr(), fastOpts(3))
	revenant.Start()
	defer revenant.Close()
	deadline = time.Now().Add(5 * time.Second)
	for !pLog.Fenced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !pLog.Fenced() {
		t.Fatal("deposed primary's journal never fenced")
	}
	if err := pLog.AppendAnswer("a0", true); !errors.Is(err, wal.ErrStaleEpoch) {
		t.Fatalf("deposed primary append: %v, want wal.ErrStaleEpoch", err)
	}
	if st := follower.Stats(); st.StaleDenied == 0 {
		t.Error("promoted follower denied no stale primaries")
	}
}

// TestReplDenyWithoutHigherEpochRedials pins the split-brain fix: a deny
// whose epoch is not above the primary's (a follower mid-promotion, before
// its epoch bump is durable) must be treated as a broken stream — the
// primary redials until a deny that can actually fence it arrives. The old
// behaviour stopped permanently on the first deny, leaving an unfenced
// primary accepting writes alongside the promoted follower.
func TestReplDenyWithoutHigherEpochRedials(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	driveSessions(t, pLog, 1, 0) // a live session to probe fenced appends with

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var denies atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			m, err := readMsg(conn, time.Second)
			if err != nil || m.T != "hello" {
				conn.Close()
				continue
			}
			// First few denies carry the primary's own epoch — the
			// mid-promotion race where SetEpoch is not yet durable. Then the
			// bump lands and denies carry the higher epoch.
			ep := m.Epoch
			if denies.Add(1) > 3 {
				ep = m.Epoch + 1
			}
			writeMsg(conn, msg{T: "deny", Epoch: ep, Err: "promoting"}, time.Second)
			conn.Close()
		}
	}()

	primary := NewPrimary(pLog, ln.Addr().String(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !pLog.Fenced() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !pLog.Fenced() {
		t.Fatal("primary never fenced: it stopped redialing after a non-fencing deny")
	}
	if got := denies.Load(); got <= 3 {
		t.Errorf("primary fenced after %d denies; the non-fencing denies cannot have fenced it", got)
	}
	if err := pLog.AppendAnswer("a0", true); !errors.Is(err, wal.ErrStaleEpoch) {
		t.Fatalf("fenced primary append: %v, want wal.ErrStaleEpoch", err)
	}
}

// TestReplPromoteRetriesAfterEpochAppendFailure pins the watchdog-wedge
// fix: when the epoch control record cannot be journaled (disk fault at
// promotion time), the follower must stay promotable and the watchdog must
// keep retrying rather than exiting with `promoting` stuck true.
func TestReplPromoteRetriesAfterEpochAppendFailure(t *testing.T) {
	plan := fault.NewPlan(1)
	fault.Install(plan)
	defer fault.Install(nil)

	fLog, _ := openLog(t, wal.Options{})
	opts := fastOpts(2)
	opts.PromoteAfter = 50 * time.Millisecond
	opts.PromoteJitter = 10 * time.Millisecond
	follower, err := NewFollower(fLog, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}

	plan.Set(fault.PointWALWrite, fault.Spec{ErrProb: 1})
	follower.Start()
	defer follower.Close()

	// Let the watchdog fire into the failing journal a few times.
	time.Sleep(200 * time.Millisecond)
	if follower.Role() == "primary" {
		t.Fatal("follower promoted while the epoch append was failing")
	}

	// Heal the disk: the next watchdog tick must complete the promotion.
	plan.Set(fault.PointWALWrite, fault.Spec{})
	deadline := time.Now().Add(5 * time.Second)
	for follower.Role() != "primary" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if follower.Role() != "primary" {
		t.Fatal("watchdog never retried promotion after the epoch append failure")
	}
	if fLog.Epoch() != 1 {
		t.Fatalf("promoted follower epoch = %d, want 1", fLog.Epoch())
	}
}

// TestReplPreHandshakeTrafficCannotStallPromotion pins the watchdog-
// suppression fix: validly-framed messages from a peer that never completes
// the hello handshake must be dropped without resetting the promotion
// watchdog, so a port-scanning (or malicious) peer cannot hold a follower
// out of promotion forever.
func TestReplPreHandshakeTrafficCannotStallPromotion(t *testing.T) {
	fLog, _ := openLog(t, wal.Options{})
	opts := fastOpts(2)
	opts.PromoteAfter = 100 * time.Millisecond
	opts.PromoteJitter = 20 * time.Millisecond
	follower, err := NewFollower(fLog, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	// Spam heartbeats with no hello, redialing every time the follower
	// (correctly) drops the connection.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.Dial("tcp", follower.Addr())
			if err != nil {
				continue
			}
			for writeMsg(conn, msg{T: "hb", Epoch: 99, LSN: 1}, 100*time.Millisecond) == nil {
				select {
				case <-stop:
					conn.Close()
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
			conn.Close()
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for follower.Role() != "primary" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if follower.Role() != "primary" {
		t.Fatal("pre-handshake heartbeats suppressed auto-promotion")
	}
}

// TestReplTokenGatesHandshake covers the shared-secret option: a follower
// with a Token drops hellos without it (no welcome, no epoch adoption),
// while a primary presenting the matching token streams normally.
func TestReplTokenGatesHandshake(t *testing.T) {
	fLog, _ := openLog(t, wal.Options{})
	fOpts := fastOpts(2)
	fOpts.Token = "s3cret"
	follower, err := NewFollower(fLog, "127.0.0.1:0", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	// Unauthenticated hello claiming a huge epoch: must be dropped, not
	// welcomed, and must not bump the follower's epoch.
	conn, err := net.Dial("tcp", follower.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, msg{T: "hello", Epoch: 42, SID: 7}, time.Second); err != nil {
		t.Fatal(err)
	}
	if m, err := readMsg(conn, time.Second); err == nil {
		t.Fatalf("follower replied %q to an unauthenticated hello, want dropped connection", m.T)
	}
	conn.Close()
	if got := fLog.Epoch(); got != 0 {
		t.Fatalf("unauthenticated hello bumped the epoch to %d", got)
	}

	pLog, _ := openLog(t, wal.Options{})
	pOpts := fastOpts(1)
	pOpts.Token = "s3cret"
	primary := NewPrimary(pLog, follower.Addr(), pOpts)
	primary.Start()
	defer primary.Close()
	driveSessions(t, pLog, 2, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)
}

// TestReplBytesSentMatchesJournal pins the shipped-byte accounting: a fresh
// pair streams the whole journal from LSN 0, so the primary's BytesSent
// must equal the journal's cumulative byte position exactly — no off-by-a-
// frame undercount.
func TestReplBytesSentMatchesJournal(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	fLog, _ := openLog(t, wal.Options{})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	primary := NewPrimary(pLog, follower.Addr(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	driveSessions(t, pLog, 4, 0)
	waitSynced(t, pLog, fLog, 5*time.Second)

	pos := pLog.Pos()
	if st := primary.Stats(); st.BytesSent != pos.Bytes {
		t.Errorf("BytesSent = %d, want %d (journal cumulative bytes)", st.BytesSent, pos.Bytes)
	}
}

// TestReplConvergesThroughNetfaultProxy rams the replication link itself
// through the seeded TCP chaos proxy: killed and delayed connections force
// reconnects and replays, and the idempotent apply still converges to
// byte-identical journals.
func TestReplConvergesThroughNetfaultProxy(t *testing.T) {
	pLog, _ := openLog(t, wal.Options{})
	fLog, _ := openLog(t, wal.Options{})

	follower, err := NewFollower(fLog, "127.0.0.1:0", fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	follower.Start()
	defer follower.Close()

	plan, err := netfault.ParsePlan("kill=0.7,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netfault.New(follower.Addr(), plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	primary := NewPrimary(pLog, proxy.Addr(), fastOpts(1))
	primary.Start()
	defer primary.Close()

	for burst := 0; burst < 5; burst++ {
		driveSessions(t, pLog, 2, burst*2)
		time.Sleep(20 * time.Millisecond)
	}
	waitSynced(t, pLog, fLog, 15*time.Second)

	injected := 0
	for _, f := range proxy.Fates() {
		if f != 0 {
			injected++
		}
	}
	if injected == 0 {
		t.Fatalf("proxy injected no faults across %d connections", len(proxy.Fates()))
	}
	t.Logf("repl link: %d connections, %d faulted, stats=%+v", len(proxy.Fates()), injected, primary.Stats())
}
