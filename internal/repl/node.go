package repl

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"isrl/internal/wal"
)

// Node is one end of a replication link: a primary shipping its journal to
// a standby, or a follower applying the stream and ready to promote.
// Constructors do not start goroutines — wire OnPromote and build the HTTP
// server first, then call Start.
type Node struct {
	log  *wal.Log
	opts Options

	target string       // primary: follower address to dial
	ln     net.Listener // follower: accept socket

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	role      string // "primary" or "follower"
	started   bool
	closed    bool
	promoting bool // Promote entered: epoch bump + recovery in flight
	promoted  bool // Promote finished: Role() now reports "primary"
	onPromote func(epoch uint64, states []wal.SessionState)
	stats     Stats

	// Primary tail ring: consecutive entries covering (floor, floor+len].
	// A follower whose resume LSN is below floor must take a snapshot.
	// floorBytes is the cumulative journal position at the floor entry (-1
	// when lost to a feed gap), so shipped-byte accounting has a baseline
	// for the first ring entry.
	ring       []wal.Entry
	floor      int64
	floorBytes int64
	notify     chan struct{}
	ackLSN     int64 // highest LSN the follower acknowledged
	sid        uint64

	// Follower apply position within the primary's current stream.
	appliedLSN   int64
	appliedBytes int64
	primaryLSN   int64 // highest position the primary announced
	primaryBytes int64
	lastSID      uint64
	lastSeen     time.Time
	everSeen     bool
}

// NewPrimary builds a primary that will ship log to the follower at target
// (host:port). Start begins dialing; until then nothing happens.
func NewPrimary(log *wal.Log, target string, opts Options) *Node {
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		log: log, opts: opts, target: target, role: "primary",
		ctx: ctx, cancel: cancel,
		notify: make(chan struct{}, 1),
		sid:    streamID(opts.Seed),
	}
	return n
}

// NewFollower builds a follower listening on addr for a primary's stream.
// It binds the socket eagerly (so Addr works and the primary can dial
// before Start) but accepts no connections until Start.
func NewFollower(log *wal.Log, addr string, opts Options) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		log: log, opts: opts, ln: ln, role: "follower",
		ctx: ctx, cancel: cancel,
		notify: make(chan struct{}, 1),
		sid:    streamID(opts.Seed),
	}
	return n, nil
}

// streamID derives the resume token a primary advertises; a restarted
// primary gets a fresh id so followers discard stale stream positions.
func streamID(seed int64) uint64 {
	x := uint64(seed)
	if seed == 0 {
		x = uint64(time.Now().UnixNano())
	}
	id := splitmix64(x)
	if id == 0 {
		id = 1
	}
	return id
}

// OnPromote registers the callback invoked (from the watchdog or Promote)
// after the epoch bump, with the new epoch and a consistent snapshot of
// every journaled session — the server's Recover hook. Must be called
// before Start.
func (n *Node) OnPromote(fn func(epoch uint64, states []wal.SessionState)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onPromote = fn
}

// Start launches the node's goroutines: feed+ship loops for a primary,
// accept loop plus promotion watchdog for a follower.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.closed {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	mEpoch.Set(int64(n.log.Epoch()))
	if n.target != "" {
		// Subscribe before returning so appends racing Start are captured:
		// anything committed after Start() is guaranteed to reach the ring
		// (a missed entry would force a needless snapshot resync).
		ch, cancel := n.log.Subscribe(n.opts.ringCap())
		pos := n.log.Pos()
		n.mu.Lock()
		n.floor, n.floorBytes = pos.LSN, pos.Bytes
		n.mu.Unlock()
		n.wg.Add(2)
		go n.feedLoop(ch, cancel)
		go n.shipLoop()
		return
	}
	n.mu.Lock()
	n.lastSeen = time.Now()
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop()
	if n.opts.PromoteAfter > 0 {
		n.wg.Add(1)
		go n.watchdog()
	}
}

// Close stops every goroutine and releases the listener. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	if n.ln != nil {
		n.ln.Close()
	}
	n.wg.Wait()
	return nil
}

// Addr returns the follower's listen address ("" on a primary).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Role reports "primary" or "follower"; a promoted follower reports
// "primary". Implements server.Replication.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted {
		return "primary"
	}
	return n.role
}

// Epoch returns the journal's durable failover epoch. Implements
// server.Replication.
func (n *Node) Epoch() uint64 { return n.log.Epoch() }

// Fenced reports whether this node's journal rejects appends because a
// higher epoch exists — a deposed primary. Implements server.Replication.
func (n *Node) Fenced() bool { return n.log.Fenced() }

// Lag returns how far the passive side trails the active one, in records
// and bytes: on a primary, local position minus the follower's last ack;
// on a follower, the primary's last announced position minus what has been
// applied. Implements server.Replication.
func (n *Node) Lag() (records, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == "primary" && !n.promoted {
		pos := n.log.Pos()
		records, bytes = pos.LSN-n.ackLSN, 0
		if records < 0 {
			records = 0
		}
		return records, bytes
	}
	records = n.primaryLSN - n.appliedLSN
	bytes = n.primaryBytes - n.appliedBytes
	if records < 0 {
		records = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return records, bytes
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Promote bumps the failover epoch, invokes the OnPromote hook with a
// consistent session snapshot, and only then flips Role() to "primary".
// The order matters: the epoch bump makes stale primaries deniable at
// once, but the role flip is what opens the server's replication gate —
// it must wait until the hook has rebuilt the sessions, or a fast client
// would see 404s instead of 503s mid-failover. Idempotent; safe to call
// manually even when auto-promotion is disabled. A failed epoch append
// clears the in-flight flag so the caller (or the watchdog) can retry.
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.promoting || n.closed {
		n.mu.Unlock()
		return nil
	}
	n.promoting = true
	cb := n.onPromote
	applied := n.appliedLSN
	n.mu.Unlock()

	epoch := n.log.Epoch() + 1
	if err := n.log.SetEpoch(epoch); err != nil {
		// Leave the node promotable: a wedged `promoting` flag would make
		// every later Promote a no-op, shed all client traffic forever, and
		// deny even a healthy primary's stream.
		n.mu.Lock()
		n.promoting = false
		n.mu.Unlock()
		return fmt.Errorf("repl: promote: %w", err)
	}
	mPromotions.Inc()
	mEpoch.Set(int64(epoch))
	n.opts.logger().Warn("repl: promoting to primary",
		"epoch", epoch, "applied_lsn", applied)
	if cb != nil {
		states, _, _ := n.log.ReplSnapshot()
		cb(epoch, states)
	}
	n.mu.Lock()
	n.promoted = true
	n.stats.Promotions++
	n.mu.Unlock()
	return nil
}
