package exp

import (
	"time"

	"isrl/internal/aa"
	"isrl/internal/core"
	"isrl/internal/ea"
)

// extNoise is the paper's future-work scenario (§VI) promoted to a full
// experiment: sweep the probability that the simulated user answers
// incorrectly and report how both RL algorithms degrade in rounds and
// achieved regret. Under noise the exactness certificates no longer bind,
// so the regret column is the interesting series.
func extNoise(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 3)
	e, err := c.trainedEA(ds, c.Eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	a, err := c.trainedAA(ds, c.Eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ext-noise", Title: "answer noise sweep (d=3, extension of §VI)",
		Columns: []string{"flip_prob", "algorithm", "user_questions", "time_s", "regret"}}
	users := c.testUsers(ds.Dim())
	noiseRng := c.rng(59)
	type variant struct {
		label    string
		alg      core.Algorithm
		majority int // 0 = ask each question once; k = majority-of-k
	}
	er, err := c.trainedEA(ds, c.Eps, ea.Config{Resilient: true}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{"EA", e, 0},
		{"AA", a, 0},
		{"EA majority-of-3", e, 3},
		{"AA majority-of-3", a, 3},
		{"EA resilient", er, 0},
	}
	for _, flip := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		for _, v := range variants {
			var questions, secs, regret float64
			for _, u := range users {
				var user core.User = core.NoisyUser{Utility: u, FlipProb: flip, Rng: noiseRng}
				cost := 1.0
				if v.majority > 0 {
					user = core.MajorityUser{Inner: user, K: v.majority}
					cost = float64(v.majority)
				}
				start := time.Now()
				res, err := v.alg.Run(ds, user, c.Eps, nil)
				if err != nil {
					return nil, err
				}
				secs += time.Since(start).Seconds()
				questions += cost * float64(res.Rounds)
				regret += ds.RegretRatio(res.Point, u)
			}
			n := float64(len(users))
			c.logf("ext-noise flip=%.2f %s questions=%.1f regret=%.4f", flip, v.label, questions/n, regret/n)
			t.AddRow(flip, v.label, questions/n, secs/n, regret/n)
		}
	}
	return t, nil
}
