package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"isrl/internal/aa"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/geom"
)

// Config scales every experiment. The paper's settings (§V) are n=100,000,
// d=4, ε=0.1, 10,000 training vectors, 10 trials; Full selects them, Quick
// and Tiny shrink the workload for laptop benches and unit tests. All
// randomness derives from Seed, so runs are reproducible.
type Config struct {
	N             int     // synthetic dataset size before skyline preprocessing
	Trials        int     // simulated users per measurement point
	TrainEpisodes int     // training utility vectors per agent
	Eps           float64 // default regret threshold
	Seed          int64
	Progress      io.Writer // optional progress log (nil = silent)
}

// Tiny is the unit-test scale: seconds per experiment.
func Tiny() Config {
	return Config{N: 600, Trials: 3, TrainEpisodes: 40, Eps: 0.1, Seed: 1}
}

// Quick is the default CLI/bench scale: minutes for the whole registry.
func Quick() Config {
	return Config{N: 10000, Trials: 5, TrainEpisodes: 400, Eps: 0.1, Seed: 1}
}

// Full is the paper scale. Expect hours on a laptop.
func Full() Config {
	return Config{N: 100000, Trials: 10, TrainEpisodes: 10000, Eps: 0.1, Seed: 1}
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// rng returns a reproducible generator for a named purpose.
func (c Config) rng(purpose int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + purpose))
}

// testUsers draws the hidden utility vectors of the simulated test users.
func (c Config) testUsers(d int) [][]float64 {
	rng := c.rng(7)
	users := make([][]float64, c.Trials)
	for i := range users {
		users[i] = geom.SampleSimplex(rng, d)
	}
	return users
}

// trainVectors draws the training set of utility vectors (§V samples them
// uniformly from the utility space).
func (c Config) trainVectors(d, episodes int) [][]float64 {
	rng := c.rng(11)
	out := make([][]float64, episodes)
	for i := range out {
		out[i] = geom.SampleSimplex(rng, d)
	}
	return out
}

// synthetic builds the skyline-preprocessed anti-correlated dataset used by
// the synthetic experiments.
func (c Config) synthetic(n, d int) *dataset.Dataset {
	return dataset.Anticorrelated(c.rng(13+int64(d)*31+int64(n)), n, d).Skyline()
}

// trainedEA builds and trains an EA agent.
func (c Config) trainedEA(ds *dataset.Dataset, eps float64, cfg ea.Config, episodes int) (*ea.EA, error) {
	e := ea.New(ds, eps, cfg, c.rng(17))
	if episodes > 0 {
		st, err := e.Train(c.trainVectors(ds.Dim(), episodes))
		if err != nil {
			return nil, err
		}
		c.logf("trained EA: %d episodes, avg %.1f rounds, loss ema %.5f, %d updates, %d syncs",
			st.Episodes, st.AvgRounds, st.RL.LossEMA, st.RL.Updates, st.RL.TargetSyncs)
	}
	return e, nil
}

// trainedAA builds and trains an AA agent.
func (c Config) trainedAA(ds *dataset.Dataset, eps float64, cfg aa.Config, episodes int) (*aa.AA, error) {
	a := aa.New(ds, eps, cfg, c.rng(19))
	if episodes > 0 {
		st, err := a.Train(c.trainVectors(ds.Dim(), episodes))
		if err != nil {
			return nil, err
		}
		c.logf("trained AA: %d episodes, avg %.1f rounds, loss ema %.5f, %d updates, %d syncs",
			st.Episodes, st.AvgRounds, st.RL.LossEMA, st.RL.Updates, st.RL.TargetSyncs)
	}
	return a, nil
}

// Stats aggregates one measurement point over the config's trials.
type Stats struct {
	Rounds  float64 // mean questions asked
	Seconds float64 // mean interaction wall time
	Regret  float64 // mean actual regret ratio of the returned point
}

// Measure runs alg once per test user and averages rounds, wall time and the
// actual regret ratio of the returned point — the paper's three metrics.
func Measure(alg core.Algorithm, ds *dataset.Dataset, eps float64, users [][]float64) (Stats, error) {
	var s Stats
	for _, u := range users {
		start := time.Now()
		res, err := alg.Run(ds, core.SimulatedUser{Utility: u}, eps, nil)
		if err != nil {
			return Stats{}, fmt.Errorf("exp: %s: %w", alg.Name(), err)
		}
		s.Seconds += time.Since(start).Seconds()
		s.Rounds += float64(res.Rounds)
		s.Regret += ds.RegretRatio(res.Point, u)
	}
	n := float64(len(users))
	if n > 0 {
		s.Rounds /= n
		s.Seconds /= n
		s.Regret /= n
	}
	return s, nil
}
