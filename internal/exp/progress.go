package exp

import (
	"time"

	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/geom"
	"isrl/internal/vec"
)

// progressMaxRounds bounds the per-round trace: the paper's Figures 7–8
// plot only the first ~15 rounds, and the max-regret estimate on a
// snapshot costs LPs proportional to the halfspace count, so tracing a
// SinglePass run thousands of rounds deep would be both pointless and
// quadratically expensive.
const progressMaxRounds = 30

// progressTrace runs alg once and records, for each of the first
// progressMaxRounds interactive rounds, the cumulative wall time and (after
// the run, so it never pollutes the timing) the paper's maximum-regret-ratio
// estimate from the halfspaces learned so far — the measurement protocol
// behind Figures 7 and 8.
func (c Config) progressTrace(alg core.Algorithm, ds *dataset.Dataset, eps float64, u []float64) (rounds []int, times []float64, regrets []float64, err error) {
	type snap struct {
		round      int
		elapsed    float64
		halfspaces []geom.Halfspace
	}
	var snaps []snap
	start := time.Now()
	obs := core.ObserverFunc(func(round int, hs []geom.Halfspace) {
		if round > progressMaxRounds {
			return
		}
		cp := make([]geom.Halfspace, len(hs))
		for i, h := range hs {
			cp[i] = geom.Halfspace{Normal: vec.Clone(h.Normal)}
		}
		snaps = append(snaps, snap{round: round, elapsed: time.Since(start).Seconds(), halfspaces: cp})
	})
	if _, err = alg.Run(ds, core.SimulatedUser{Utility: u}, eps, obs); err != nil {
		return nil, nil, nil, err
	}
	rng := c.rng(53)
	samples := 500
	if c.TrainEpisodes >= 1000 {
		samples = 10000 // paper-scale estimate
	}
	for _, s := range snaps {
		rounds = append(rounds, s.round)
		times = append(times, s.elapsed)
		regrets = append(regrets, core.MaxRegretEstimate(ds, s.halfspaces, rng, samples))
	}
	return rounds, times, regrets, nil
}

func (c Config) progressTable(id, title string, ds *dataset.Dataset, algos []core.Algorithm) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Columns: []string{"algorithm", "round", "max_regret", "cum_time_s"}}
	u := c.testUsers(ds.Dim())[0]
	for _, alg := range algos {
		rounds, times, regrets, err := c.progressTrace(alg, ds, c.Eps, u)
		if err != nil {
			return nil, err
		}
		for i := range rounds {
			t.AddRow(alg.Name(), rounds[i], regrets[i], times[i])
		}
		c.logf("%s %s: %d rounds traced", id, alg.Name(), len(rounds))
	}
	return t, nil
}

// fig7 — Interaction-process progress on the 4-dimensional dataset: current
// maximum regret ratio and accumulated time per round, for the low-d
// algorithms.
func fig7(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.progressTable("fig7", "interaction progress, anti-correlated d=4", ds, algos)
}

// fig8 — Interaction-process progress on the 20-dimensional dataset (AA vs
// SinglePass).
func fig8(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 20)
	algos, err := c.highDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.progressTable("fig8", "interaction progress, anti-correlated d=20", ds, algos)
}
