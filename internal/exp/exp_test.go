package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "t1", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.1234567)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== t1: demo ==") || !strings.Contains(out, "0.1235") {
		t.Errorf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" {
		t.Errorf("csv output:\n%s", buf.String())
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		2.5:    "2.5",
		1:      "1",
		0.1001: "0.1001",
		-0.5:   "-0.5",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q want %q", in, got, want)
		}
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, err := ByID("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
	if len(IDs()) != len(Registry) {
		t.Error("IDs length mismatch")
	}
}

func TestConfigPresetsOrdered(t *testing.T) {
	tiny, quick, full := Tiny(), Quick(), Full()
	if !(tiny.N < quick.N && quick.N < full.N) {
		t.Error("preset N not increasing")
	}
	if !(tiny.TrainEpisodes < quick.TrainEpisodes && quick.TrainEpisodes < full.TrainEpisodes) {
		t.Error("preset TrainEpisodes not increasing")
	}
	if full.TrainEpisodes != 10000 || full.N != 100000 {
		t.Error("Full must match the paper's settings")
	}
}

func tinyCfg() Config {
	c := Tiny()
	c.N = 300
	c.Trials = 2
	c.TrainEpisodes = 20
	return c
}

// Smoke-run the central ε sweep at tiny scale and check the headline shape:
// EA and AA never need more rounds than the worst baseline, and everyone's
// measured regret respects its guarantee regime.
func TestFig9TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment still takes a few seconds")
	}
	tab, err := fig9(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(epsGrid)*5 {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(epsGrid)*5)
	}
	// Collect rounds by algorithm at eps=0.1.
	rounds := map[string]float64{}
	for _, row := range tab.Rows {
		if row[0] == "0.1" {
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatalf("bad rounds cell %q", row[2])
			}
			rounds[row[1]] = v
		}
	}
	if len(rounds) != 5 {
		t.Fatalf("algorithms at eps=0.1: %v", rounds)
	}
	worstBaseline := rounds["UH-Random"]
	if rounds["UH-Simplex"] > worstBaseline {
		worstBaseline = rounds["UH-Simplex"]
	}
	if rounds["SinglePass"] > worstBaseline {
		worstBaseline = rounds["SinglePass"]
	}
	if rounds["EA"] > worstBaseline || rounds["AA"] > worstBaseline {
		t.Errorf("RL algorithms worse than the worst baseline: %v", rounds)
	}
}

func TestFig6aTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment still takes a few seconds")
	}
	tab, err := fig6a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 4 training sizes × 2 algorithms
		t.Errorf("rows = %d want 8", len(tab.Rows))
	}
}

func TestAblRLTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment still takes a few seconds")
	}
	tab, err := ablRL(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d want 4", len(tab.Rows))
	}
}

func TestProgressTraceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment still takes a few seconds")
	}
	c := tinyCfg()
	ds := c.synthetic(c.N, 3)
	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		t.Fatal(err)
	}
	rounds, times, regrets, err := c.progressTrace(algos[0], ds, c.Eps, c.testUsers(3)[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 || len(rounds) != len(times) || len(rounds) != len(regrets) {
		t.Fatalf("trace lengths %d/%d/%d", len(rounds), len(times), len(regrets))
	}
	// Cumulative time is non-decreasing.
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Error("cumulative time decreased")
			break
		}
	}
	// The estimate measures the paper's protocol point (top tuple at the
	// inner-sphere center), which need not be EA's certified point, so it
	// can exceed ε slightly — but it must have improved substantially over
	// the no-information estimate and stay in the same ballpark as ε.
	final := regrets[len(regrets)-1]
	if final > 5*c.Eps {
		t.Errorf("final max-regret estimate %v far above eps %v", final, c.Eps)
	}
}

func TestMeasureEmptyUsers(t *testing.T) {
	c := tinyCfg()
	ds := c.synthetic(300, 3)
	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Measure(algos[2], ds, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 0 || s.Seconds != 0 || s.Regret != 0 {
		t.Errorf("empty users stats = %+v", s)
	}
}

func TestSubsample(t *testing.T) {
	c := tinyCfg()
	c.N = 50
	ds := c.carData()
	if ds.Len() == 0 || ds.Len() > 50 {
		t.Errorf("subsampled car len = %d", ds.Len())
	}
	c.N = 0
	if got := c.playerData(); got.Dim() != 20 {
		t.Errorf("player dim = %d", got.Dim())
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**x — demo**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// Reproducibility: identical config and seed produce identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two tiny trainings")
	}
	c := tinyCfg()
	a, err := fig6b(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig6b(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
