package exp

import (
	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/ea"
)

// extAdaptive quantifies the related-work claim of §II-A: an algorithm that
// learns the user's *preference vector* (Adaptive, Qian et al. VLDB'15)
// asks many more questions than one that targets an ε-regret *tuple*,
// because it keeps asking after some tuple is already certifiably good
// enough.
func extAdaptive(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 3)
	e, err := c.trainedEA(ds, c.Eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	a, err := c.trainedAA(ds, c.Eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	algos := []core.Algorithm{
		e,
		a,
		baselines.NewAdaptive(baselines.AdaptiveConfig{}, c.rng(61)),
	}
	return c.sweepEps("ext-adaptive", "tuple-targeting vs preference-learning (d=3)", ds, algos)
}
