package exp

import "fmt"

// Experiment is one reproducible artifact of the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// Registry lists every experiment: one entry per figure of §V plus the
// ablations of DESIGN.md §5.
var Registry = []Experiment{
	{ID: "fig6a", Title: "Fig 6(a): vary training-set size (d=4)", Run: fig6a},
	{ID: "fig6b", Title: "Fig 6(b): vary action-space size m_h (d=4)", Run: fig6b},
	{ID: "fig7", Title: "Fig 7: interaction progress (d=4)", Run: fig7},
	{ID: "fig8", Title: "Fig 8: interaction progress (d=20)", Run: fig8},
	{ID: "fig9", Title: "Fig 9: vary eps (d=4, all algorithms)", Run: fig9},
	{ID: "fig10", Title: "Fig 10: vary eps (d=20, AA vs SinglePass)", Run: fig10},
	{ID: "fig11", Title: "Fig 11: vary n (d=4)", Run: fig11},
	{ID: "fig12", Title: "Fig 12: vary n (d=20)", Run: fig12},
	{ID: "fig13", Title: "Fig 13: vary d in 2..5", Run: fig13},
	{ID: "fig14", Title: "Fig 14: vary d in 5..25", Run: fig14},
	{ID: "fig15", Title: "Fig 15: vary eps on Car", Run: fig15},
	{ID: "fig16", Title: "Fig 16: vary eps on Player", Run: fig16},
	{ID: "abl-state", Title: "Ablation: EA state parts", Run: ablState},
	{ID: "abl-action", Title: "Ablation: AA action heuristic", Run: ablAction},
	{ID: "abl-greedy", Title: "Ablation: greedy vs random vertex cover", Run: ablGreedy},
	{ID: "abl-rl", Title: "Ablation: trained vs untrained agents", Run: ablRL},
	{ID: "abl-dqn", Title: "Ablation: stabilized vs paper DQN recipe", Run: ablDQN},
	{ID: "ext-noise", Title: "Extension: noisy-user sweep (paper §VI future work)", Run: extNoise},
	{ID: "ext-opt", Title: "Extension: optimality gap vs exact interaction tree (d=2)", Run: extOpt},
	{ID: "ext-adaptive", Title: "Extension: tuple-targeting vs preference-learning (related work §II-A)", Run: extAdaptive},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}
