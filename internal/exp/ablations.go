package exp

import (
	"isrl/internal/aa"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
	"isrl/internal/rl"
)

// named pairs a display label with an algorithm variant.
type named struct {
	label string
	alg   core.Algorithm
}

func (c Config) ablTable(id, title string, ds *dataset.Dataset, variants []named) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Columns: []string{"variant", "rounds", "time_s", "regret"}}
	users := c.testUsers(ds.Dim())
	for _, v := range variants {
		s, err := Measure(v.alg, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		c.logf("%s %s: rounds=%.1f", id, v.label, s.Rounds)
		t.AddRow(v.label, s.Rounds, s.Seconds, s.Regret)
	}
	return t, nil
}

// ablState isolates EA's two-part state (§IV-B): full state vs sphere-only
// vs extremes-only.
func ablState(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	full, err := c.trainedEA(ds, c.Eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	noExt, err := c.trainedEA(ds, c.Eps, ea.Config{NoExtremeState: true}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	noSph, err := c.trainedEA(ds, c.Eps, ea.Config{NoSphereState: true}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return c.ablTable("abl-state", "EA state ablation (d=4)", ds, []named{
		{"EA full state", full},
		{"EA no extreme vectors", noExt},
		{"EA no outer sphere", noSph},
	})
}

// ablAction isolates AA's nearest-to-center action heuristic (§IV-C).
func ablAction(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	near, err := c.trainedAA(ds, c.Eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	random, err := c.trainedAA(ds, c.Eps, aa.Config{RandomActions: true}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return c.ablTable("abl-action", "AA action-selection ablation (d=4)", ds, []named{
		{"AA nearest-to-center", near},
		{"AA random pairs", random},
	})
}

// ablGreedy isolates the Lemma-2 greedy max-coverage vertex selection.
func ablGreedy(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	greedy, err := c.trainedEA(ds, c.Eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	random, err := c.trainedEA(ds, c.Eps, ea.Config{RandomCover: true}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return c.ablTable("abl-greedy", "greedy vs random vertex cover (d=4)", ds, []named{
		{"EA greedy cover", greedy},
		{"EA random cover", random},
	})
}

// ablDQN compares the stabilized DQN recipe (Adam + Huber + Double DQN +
// unit reward — this repository's default) against the paper's verbatim §V
// setup (plain SGD, MSE, c = 100). A wide action space (m_h = 16) is used so
// question selection actually matters; see DESIGN.md §2.
func ablDQN(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	const mh = 16
	stab, err := c.trainedEA(ds, c.Eps, ea.Config{Mh: mh}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	paper, err := c.trainedEA(ds, c.Eps, ea.Config{Mh: mh, RL: rl.PaperConfig()}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	raw, err := c.trainedEA(ds, c.Eps, ea.Config{Mh: mh}, 0)
	if err != nil {
		return nil, err
	}
	return c.ablTable("abl-dqn", "DQN recipe ablation (EA, m_h=16, d=4)", ds, []named{
		{"EA stabilized recipe", stab},
		{"EA paper §V recipe", paper},
		{"EA untrained", raw},
	})
}

// ablRL isolates the RL contribution itself: trained vs untrained agents.
func ablRL(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	eaTrained, err := c.trainedEA(ds, c.Eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	eaRaw, err := c.trainedEA(ds, c.Eps, ea.Config{}, 0)
	if err != nil {
		return nil, err
	}
	aaTrained, err := c.trainedAA(ds, c.Eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	aaRaw, err := c.trainedAA(ds, c.Eps, aa.Config{}, 0)
	if err != nil {
		return nil, err
	}
	return c.ablTable("abl-rl", "trained vs untrained agents (d=4)", ds, []named{
		{"EA trained", eaTrained},
		{"EA untrained", eaRaw},
		{"AA trained", aaTrained},
		{"AA untrained", aaRaw},
	})
}
