// Package exp is the benchmark harness that regenerates every figure of the
// paper's evaluation (§V). Each experiment is registered under the figure id
// it reproduces (fig6a … fig16, plus ablations) and emits a Table whose rows
// are the series the paper plots. See DESIGN.md §4 for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured numbers.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each value with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown emits the table as a GitHub-flavoured markdown table with a
// bold caption — the format EXPERIMENTS.md embeds.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "**%s — %s**\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
