package exp

import (
	"isrl/internal/aa"
	"isrl/internal/ea"
)

// fig6a — Vary the training-set size: both RL algorithms should need fewer
// interactive rounds as more training utility vectors are seen (§V-A
// "Training"). Sizes scale with the configured TrainEpisodes.
func fig6a(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	users := c.testUsers(4)
	grid := []int{0, c.TrainEpisodes / 4, c.TrainEpisodes / 2, c.TrainEpisodes}
	t := &Table{ID: "fig6a", Title: "vary training size, anti-correlated d=4",
		Columns: []string{"train_episodes", "algorithm", "rounds"}}
	for _, episodes := range grid {
		e, err := c.trainedEA(ds, c.Eps, ea.Config{}, episodes)
		if err != nil {
			return nil, err
		}
		a, err := c.trainedAA(ds, c.Eps, aa.Config{}, episodes)
		if err != nil {
			return nil, err
		}
		se, err := Measure(e, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		sa, err := Measure(a, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		c.logf("fig6a train=%d EA=%.1f AA=%.1f", episodes, se.Rounds, sa.Rounds)
		t.AddRow(episodes, "EA", se.Rounds)
		t.AddRow(episodes, "AA", sa.Rounds)
	}
	return t, nil
}

// fig6b — Vary the action-space size m_h: AA degrades with a large action
// space (harder exploration), EA is less sensitive thanks to its richer
// state (§V-A "Training").
func fig6b(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	users := c.testUsers(4)
	grid := []int{3, 5, 8, 12}
	t := &Table{ID: "fig6b", Title: "vary action-space size m_h, anti-correlated d=4",
		Columns: []string{"m_h", "algorithm", "rounds"}}
	for _, mh := range grid {
		e, err := c.trainedEA(ds, c.Eps, ea.Config{Mh: mh}, c.TrainEpisodes)
		if err != nil {
			return nil, err
		}
		a, err := c.trainedAA(ds, c.Eps, aa.Config{Mh: mh}, c.TrainEpisodes)
		if err != nil {
			return nil, err
		}
		se, err := Measure(e, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		sa, err := Measure(a, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		c.logf("fig6b m_h=%d EA=%.1f AA=%.1f", mh, se.Rounds, sa.Rounds)
		t.AddRow(mh, "EA", se.Rounds)
		t.AddRow(mh, "AA", sa.Rounds)
	}
	return t, nil
}
