package exp

import (
	"isrl/internal/itree"
)

// extOpt measures the optimality gap: at d=2 the minimum worst-case number
// of questions is computable exactly (package itree), so every algorithm's
// measured rounds can be compared against the true optimum — quantifying
// how much of the possible improvement the RL policies capture. This
// extends the paper's Figure 1 analysis from an illustration to a
// measurement.
func extOpt(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 2)
	tree, err := itree.New(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	optWorst := tree.OptimalRounds()

	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	users := c.testUsers(2)
	// Per-user optimal averages, for a like-for-like mean comparison.
	var optMean float64
	for _, u := range users {
		tstar := u[0] // u = (t, 1−t)
		optMean += float64(tree.OptimalRoundsFor(tstar))
	}
	optMean /= float64(len(users))

	t := &Table{ID: "ext-opt", Title: "optimality gap vs exact interaction tree (d=2)",
		Columns: []string{"algorithm", "rounds", "optimal_rounds", "gap"}}
	t.AddRow("optimal-policy(worst-case)", float64(optWorst), float64(optWorst), 0.0)
	for _, alg := range algos {
		s, err := Measure(alg, ds, c.Eps, users)
		if err != nil {
			return nil, err
		}
		c.logf("ext-opt %s rounds=%.2f optimal=%.2f", alg.Name(), s.Rounds, optMean)
		t.AddRow(alg.Name(), s.Rounds, optMean, s.Rounds-optMean)
	}
	return t, nil
}
