package exp

import (
	"math/rand"

	"isrl/internal/aa"
	"isrl/internal/baselines"
	"isrl/internal/core"
	"isrl/internal/dataset"
	"isrl/internal/ea"
)

// epsGrid is the paper's threshold sweep (Figures 9, 10, 15, 16).
var epsGrid = []float64{0.05, 0.1, 0.15, 0.2, 0.25}

// lowDimAlgos assembles the full low-dimensional comparison: trained EA and
// AA plus all published baselines (the paper's Figure 9 line-up).
func (c Config) lowDimAlgos(ds *dataset.Dataset, eps float64) ([]core.Algorithm, error) {
	e, err := c.trainedEA(ds, eps, ea.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	a, err := c.trainedAA(ds, eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return []core.Algorithm{
		e,
		a,
		baselines.NewUHRandom(baselines.UHConfig{}, c.rng(23)),
		baselines.NewUHSimplex(baselines.UHConfig{}, c.rng(29)),
		baselines.NewSinglePass(baselines.SinglePassConfig{}, c.rng(31)),
	}, nil
}

// highDimAlgos assembles the d ≥ 10 comparison, where only AA and
// SinglePass remain viable (the paper's Figure 10 line-up).
func (c Config) highDimAlgos(ds *dataset.Dataset, eps float64) ([]core.Algorithm, error) {
	a, err := c.trainedAA(ds, eps, aa.Config{}, c.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return []core.Algorithm{
		a,
		baselines.NewSinglePass(baselines.SinglePassConfig{}, c.rng(31)),
	}, nil
}

// sweepEps renders an ε sweep (rounds, time, actual regret per algorithm).
func (c Config) sweepEps(id, title string, ds *dataset.Dataset, algos []core.Algorithm) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Columns: []string{"eps", "algorithm", "rounds", "time_s", "regret"}}
	users := c.testUsers(ds.Dim())
	for _, eps := range epsGrid {
		for _, alg := range algos {
			s, err := Measure(alg, ds, eps, users)
			if err != nil {
				return nil, err
			}
			c.logf("%s eps=%.2f %s: rounds=%.1f time=%.3fs regret=%.4f", id, eps, alg.Name(), s.Rounds, s.Seconds, s.Regret)
			t.AddRow(eps, alg.Name(), s.Rounds, s.Seconds, s.Regret)
		}
	}
	return t, nil
}

// fig9 — Vary ε on the 4-dimensional synthetic dataset; all algorithms.
func fig9(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 4)
	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.sweepEps("fig9", "vary eps, anti-correlated d=4", ds, algos)
}

// fig10 — Vary ε on the 20-dimensional synthetic dataset; AA vs SinglePass.
func fig10(c Config) (*Table, error) {
	ds := c.synthetic(c.N, 20)
	algos, err := c.highDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.sweepEps("fig10", "vary eps, anti-correlated d=20", ds, algos)
}

// sweepN renders a dataset-size sweep at fixed ε.
func (c Config) sweepN(id, title string, d int, grid []int, high bool) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Columns: []string{"n", "algorithm", "rounds", "time_s", "regret"}}
	users := c.testUsers(d)
	for _, n := range grid {
		ds := c.synthetic(n, d)
		var algos []core.Algorithm
		var err error
		if high {
			algos, err = c.highDimAlgos(ds, c.Eps)
		} else {
			algos, err = c.lowDimAlgos(ds, c.Eps)
		}
		if err != nil {
			return nil, err
		}
		for _, alg := range algos {
			s, err := Measure(alg, ds, c.Eps, users)
			if err != nil {
				return nil, err
			}
			c.logf("%s n=%d %s: rounds=%.1f time=%.3fs", id, n, alg.Name(), s.Rounds, s.Seconds)
			t.AddRow(n, alg.Name(), s.Rounds, s.Seconds, s.Regret)
		}
	}
	return t, nil
}

// nGrid scales the paper's 10k→1M sweep around the configured N.
func (c Config) nGrid() []int {
	return []int{c.N / 10, c.N / 3, c.N, 3 * c.N}
}

// fig11 — Vary n at d=4.
func fig11(c Config) (*Table, error) {
	return c.sweepN("fig11", "vary n, anti-correlated d=4", 4, c.nGrid(), false)
}

// fig12 — Vary n at d=20.
func fig12(c Config) (*Table, error) {
	return c.sweepN("fig12", "vary n, anti-correlated d=20", 20, c.nGrid(), true)
}

// sweepD renders a dimensionality sweep at fixed ε and n.
func (c Config) sweepD(id, title string, grid []int, high bool) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Columns: []string{"d", "algorithm", "rounds", "time_s", "regret"}}
	for _, d := range grid {
		ds := c.synthetic(c.N, d)
		users := c.testUsers(d)
		var algos []core.Algorithm
		var err error
		if high {
			algos, err = c.highDimAlgos(ds, c.Eps)
		} else {
			algos, err = c.lowDimAlgos(ds, c.Eps)
		}
		if err != nil {
			return nil, err
		}
		for _, alg := range algos {
			s, err := Measure(alg, ds, c.Eps, users)
			if err != nil {
				return nil, err
			}
			c.logf("%s d=%d %s: rounds=%.1f time=%.3fs", id, d, alg.Name(), s.Rounds, s.Seconds)
			t.AddRow(d, alg.Name(), s.Rounds, s.Seconds, s.Regret)
		}
	}
	return t, nil
}

// fig13 — Vary d ∈ {2..5} (low-dimensional regime, all algorithms).
func fig13(c Config) (*Table, error) {
	return c.sweepD("fig13", "vary d (low), anti-correlated", []int{2, 3, 4, 5}, false)
}

// fig14 — Vary d ∈ {5..25} (high-dimensional regime, AA vs SinglePass).
func fig14(c Config) (*Table, error) {
	return c.sweepD("fig14", "vary d (high), anti-correlated", []int{5, 10, 15, 20, 25}, true)
}

// carData builds the Car stand-in, optionally subsampled to the configured
// N (Tiny/Quick runs), then skyline-preprocessed.
func (c Config) carData() *dataset.Dataset {
	ds := dataset.SyntheticCar(c.rng(37))
	return c.subsample(ds, c.rng(41)).Skyline()
}

// playerData builds the Player stand-in likewise.
func (c Config) playerData() *dataset.Dataset {
	ds := dataset.SyntheticPlayer(c.rng(43))
	return c.subsample(ds, c.rng(47)).Skyline()
}

func (c Config) subsample(ds *dataset.Dataset, rng *rand.Rand) *dataset.Dataset {
	if c.N <= 0 || ds.Len() <= c.N {
		return ds
	}
	idx := rng.Perm(ds.Len())[:c.N]
	pts := make([][]float64, len(idx))
	for i, j := range idx {
		pts[i] = ds.Points[j]
	}
	return &dataset.Dataset{Name: ds.Name, Points: pts, Attrs: ds.Attrs}
}

// fig15 — Real dataset Car (d=3): vary ε, all algorithms.
func fig15(c Config) (*Table, error) {
	ds := c.carData()
	algos, err := c.lowDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.sweepEps("fig15", "vary eps, Car (synthetic stand-in)", ds, algos)
}

// fig16 — Real dataset Player (d=20): vary ε, AA vs SinglePass.
func fig16(c Config) (*Table, error) {
	ds := c.playerData()
	algos, err := c.highDimAlgos(ds, c.Eps)
	if err != nil {
		return nil, err
	}
	return c.sweepEps("fig16", "vary eps, Player (synthetic stand-in)", ds, algos)
}
