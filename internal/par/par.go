// Package par provides the repository's bounded worker pool: a minimal
// fan-out primitive for the candidate-scoring and geometry hot paths.
//
// Design rules, in order of importance:
//
//  1. Determinism. Do(n, fn) runs fn(0..n-1) exactly once each; callers
//     write results into preallocated slots indexed by i, so merge order is
//     fixed by construction and never depends on the worker count. Work
//     that needs randomness takes per-task RNG streams from SeedStreams,
//     whose seeds are drawn from the caller's rng in index order — a seeded
//     run therefore produces identical output with 1 worker or many.
//  2. Panic containment. A panic inside fn is captured, the remaining
//     workers drain, and the first panic is re-raised in the calling
//     goroutine wrapped in *TaskPanic. Callers running under core.Guard
//     see it as an ordinary panic and degrade; nothing deadlocks and no
//     goroutine dies silently.
//  3. No dependencies upward. par sits below geom/rl/core in the import
//     graph and must not import them.
package par

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"isrl/internal/trace"
)

// maxWorkers bounds the goroutines any single Do call may use. 0 means
// "use GOMAXPROCS at call time".
var maxWorkers atomic.Int64

// SetMaxWorkers overrides the pool width (0 restores the GOMAXPROCS
// default) and returns the previous setting, so tests can do
// defer SetMaxWorkers(SetMaxWorkers(1)).
func SetMaxWorkers(n int) int {
	prev := maxWorkers.Swap(int64(n))
	workersGauge.Set(int64(Workers()))
	return int(prev)
}

// Workers reports the current pool width: the SetMaxWorkers override when
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// TaskPanic wraps a panic raised by a pool task so the caller can tell a
// worker fault from one of its own. Do re-raises it in the calling
// goroutine after all workers have drained.
type TaskPanic struct {
	Index int    // task index whose fn panicked
	Value any    // original panic value
	Stack []byte // worker stack at panic time
}

// Error implements error so recover-based guards can treat it uniformly.
func (t *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", t.Index, t.Value)
}

// Do runs fn(i) for every i in [0, n), using up to Workers() goroutines.
// It returns only after every task has finished. If any fn panics, the
// first panic (by completion time) is re-raised in the caller as a
// *TaskPanic once the remaining tasks have drained.
//
// With one worker — or one task — fn runs inline on the calling goroutine,
// so sequential fallback behavior is exactly a for loop.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	doRuns.Inc()
	doTasks.Add(int64(n))
	if w <= 1 {
		inlineRuns.Inc()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *TaskPanic
	)
	task := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil {
					first = &TaskPanic{Index: i, Value: r, Stack: debug.Stack()}
				}
				mu.Unlock()
				taskPanics.Inc()
			}
		}()
		fn(i)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}

// DoCtx is Do with a tracing span: when ctx carries an active trace the
// whole fan-out — dispatch, queue wait behind busy workers, and the tasks
// themselves — is timed as one "par.do" span annotated with the task and
// worker counts. Task functions that want their own spans capture ctx
// themselves; span appends are trace-mutex-protected, so worker goroutines
// may record freely.
func DoCtx(ctx context.Context, n int, fn func(i int)) {
	sp := trace.StartLeaf(ctx, "par.do")
	if sp == nil {
		Do(n, fn)
		return
	}
	sp.SetInt("tasks", int64(n))
	sp.SetInt("workers", int64(Workers()))
	defer sp.End()
	Do(n, fn)
}

// SeedStreams derives k independent RNG streams from rng, drawing the k
// seeds in index order. Because the seeds depend only on rng's state and k
// — never on the worker count — handing stream i to task i keeps seeded
// runs reproducible under any parallelism.
func SeedStreams(rng *rand.Rand, k int) []*rand.Rand {
	out := make([]*rand.Rand, k)
	for i := range out {
		out[i] = rand.New(rand.NewSource(rng.Int63()))
	}
	return out
}
