package par_test

import (
	"errors"
	"strings"
	"testing"

	"isrl/internal/core"
	"isrl/internal/par"
)

// A panic inside a pool worker must surface through core.Guard exactly like
// a serial panic: converted to *PanicError, workers drained, no deadlock —
// the contract that lets algorithm serving degrade instead of dying when a
// fault lands on a parallel path.
func TestChaosGuardContainsWorkerPanic(t *testing.T) {
	defer par.SetMaxWorkers(par.SetMaxWorkers(4))
	err := core.Guard(func() {
		par.Do(32, func(i int) {
			if i == 7 {
				panic("injected worker fault")
			}
		})
	})
	if err == nil {
		t.Fatal("worker panic not converted to an error")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *core.PanicError", err, err)
	}
	tp, ok := pe.Value.(*par.TaskPanic)
	if !ok {
		t.Fatalf("PanicError.Value is %T, want *par.TaskPanic", pe.Value)
	}
	if tp.Index != 7 || !strings.Contains(tp.Error(), "injected worker fault") {
		t.Fatalf("TaskPanic = %+v", tp)
	}
	// The pool must be fully usable afterwards.
	ran := make([]bool, 8)
	par.Do(len(ran), func(i int) { ran[i] = true })
	for i, ok := range ran {
		if !ok {
			t.Fatalf("task %d did not run after contained panic", i)
		}
	}
}
