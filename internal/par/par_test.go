package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		defer SetMaxWorkers(SetMaxWorkers(workers))
		for _, n := range []int{0, 1, 3, 100} {
			counts := make([]int32, n)
			Do(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// Results written into index-addressed slots must be identical regardless
// of worker count — the merge-order determinism rule every caller relies on.
func TestDoOrderedResultsDeterministic(t *testing.T) {
	compute := func(workers int) []float64 {
		defer SetMaxWorkers(SetMaxWorkers(workers))
		out := make([]float64, 64)
		Do(len(out), func(i int) { out[i] = float64(i * i) })
		return out
	}
	one := compute(1)
	many := compute(runtime.GOMAXPROCS(0) + 3)
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("slot %d: workers=1 got %v, many %v", i, one[i], many[i])
		}
	}
}

// A worker panic must surface as *TaskPanic in the caller after all other
// tasks drain — never a deadlock, never a lost goroutine.
func TestDoRepanicsInCaller(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	var done atomic.Int32
	var got *TaskPanic
	func() {
		defer func() {
			r := recover()
			tp, ok := r.(*TaskPanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *TaskPanic", r, r)
			}
			got = tp
		}()
		Do(32, func(i int) {
			if i == 5 {
				panic("boom")
			}
			done.Add(1)
		})
	}()
	if got == nil || got.Index != 5 || got.Value != "boom" {
		t.Fatalf("TaskPanic = %+v", got)
	}
	if got.Error() == "" || len(got.Stack) == 0 {
		t.Fatalf("TaskPanic missing error text or stack")
	}
	if n := done.Load(); n != 31 {
		t.Fatalf("only %d of 31 non-panicking tasks completed", n)
	}
}

// Seed streams depend only on the parent rng and k, so per-task randomness
// reproduces under any parallelism.
func TestSeedStreamsDeterministic(t *testing.T) {
	a := SeedStreams(rand.New(rand.NewSource(9)), 5)
	b := SeedStreams(rand.New(rand.NewSource(9)), 5)
	for i := range a {
		for j := 0; j < 10; j++ {
			if x, y := a[i].Float64(), b[i].Float64(); x != y {
				t.Fatalf("stream %d draw %d: %v != %v", i, j, x, y)
			}
		}
	}
}

func TestSetMaxWorkersRoundTrip(t *testing.T) {
	orig := SetMaxWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", Workers())
	}
	if prev := SetMaxWorkers(orig); prev != 3 {
		t.Fatalf("previous = %d, want 3", prev)
	}
}
