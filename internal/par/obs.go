package par

import "isrl/internal/obs"

// Pool utilization metrics: how often fan-out actually engages goroutines
// versus falling back to the inline loop (single worker or single task),
// and whether any worker panics were contained. Exposed with the rest of
// the registry at /metrics.
var (
	doRuns       = obs.Default().Counter("par.do_runs")
	doTasks      = obs.Default().Counter("par.do_tasks")
	inlineRuns   = obs.Default().Counter("par.inline_runs")
	taskPanics   = obs.Default().Counter("par.task_panics")
	workersGauge = obs.Default().Gauge("par.workers")
)

func init() {
	workersGauge.Set(int64(Workers()))
}
