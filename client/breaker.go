package client

import (
	"log/slog"
	"sync"
	"time"

	"isrl/internal/obs"
)

// breakerState is the classic three-state machine: closed (traffic flows),
// open (fail fast), half-open (one probe in flight decides).
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker is a per-host circuit breaker. One Client talks to one base URL,
// but the host map costs nothing and keeps the breaker correct if callers
// share a transport across clients or a proxy rewrites the host.
type breaker struct {
	trips    int // consecutive failures that open the circuit; <=0 disables
	cooldown time.Duration
	now      func() time.Time
	log      *slog.Logger

	mu    sync.Mutex
	hosts map[string]*hostState

	mOpened    *obs.Counter
	mClosed    *obs.Counter
	mRejected  *obs.Counter
	mHalfOpens *obs.Counter
}

type hostState struct {
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // half-open: a probe request is already in flight
}

func newBreaker(trips int, cooldown time.Duration) *breaker {
	return &breaker{
		trips:    trips,
		cooldown: cooldown,
		now:      time.Now,
		log:      slog.Default(),
		hosts:    make(map[string]*hostState),
	}
}

// bind resolves the breaker's instruments against reg. Called once from
// client.New, after options have settled the registry choice.
func (b *breaker) bind(reg *obs.Registry) {
	b.mOpened = reg.Counter("client.breaker.opened")
	b.mClosed = reg.Counter("client.breaker.closed")
	b.mRejected = reg.Counter("client.breaker.rejected")
	b.mHalfOpens = reg.Counter("client.breaker.half_opens")
}

// allow reports whether a request to host may proceed. In the open state it
// rejects until the cooldown elapses, then admits exactly one half-open
// probe whose outcome (success or failure) decides the next state.
func (b *breaker) allow(host, sid string) bool {
	if b.trips <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[host]
	if h == nil {
		h = &hostState{}
		b.hosts[host] = h
	}
	switch h.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(h.openedAt) < b.cooldown {
			b.mRejected.Inc()
			return false
		}
		h.state = stateHalfOpen
		h.probing = true
		b.mHalfOpens.Inc()
		b.log.Warn("circuit breaker half-open; sending probe", "host", host, "session", sid)
		return true
	default: // half-open
		if h.probing {
			b.mRejected.Inc()
			return false
		}
		h.probing = true
		return true
	}
}

// quarantined reports, without mutating any state, whether host is in its
// open-circuit cooldown — the endpoint picker skips such hosts so failover
// traffic goes straight to a live endpoint instead of burning an attempt.
// Once the cooldown elapses it returns false so the host can earn a
// half-open probe again.
func (b *breaker) quarantined(host string) bool {
	if b.trips <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[host]
	if h == nil {
		return false
	}
	return h.state == stateOpen && b.now().Sub(h.openedAt) < b.cooldown
}

// success records a request that reached the server and got a definitive
// answer (any status — even a 503 proves the host is up and talking).
func (b *breaker) success(host string) {
	if b.trips <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[host]
	if h == nil {
		return
	}
	if h.state != stateClosed {
		b.mClosed.Inc()
		b.log.Warn("circuit breaker closed", "host", host)
	}
	h.state = stateClosed
	h.fails = 0
	h.probing = false
}

// failure records a transport-level failure. trips consecutive failures
// open the circuit; a failed half-open probe re-opens it for another
// cooldown.
func (b *breaker) failure(host, sid string) {
	if b.trips <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[host]
	if h == nil {
		h = &hostState{}
		b.hosts[host] = h
	}
	switch h.state {
	case stateHalfOpen:
		h.state = stateOpen
		h.openedAt = b.now()
		h.probing = false
		b.mOpened.Inc()
		b.log.Warn("circuit breaker re-opened: probe failed", "host", host, "session", sid)
	case stateClosed:
		h.fails++
		if h.fails >= b.trips {
			h.state = stateOpen
			h.openedAt = b.now()
			b.mOpened.Inc()
			b.log.Warn("circuit breaker opened", "host", host, "session", sid, "consecutive_failures", h.fails)
		}
	}
}
